//! Labor-sourcing report: the §5 view for someone deciding *where* to buy
//! crowd work — source quality/latency, geography, and workforce
//! engagement, with a concrete sourcing recommendation.
//!
//! ```sh
//! cargo run --release --example worker_sources_report
//! ```

use crowd_marketplace::analytics::workers::{geography, lifetimes, sources, workload};
use crowd_marketplace::prelude::*;
use crowd_marketplace::report::TextTable;

fn main() {
    eprintln!("simulating …");
    let study = Study::new(simulate(&SimConfig::new(31, 0.005)));

    let stats = sources::per_source(&study);

    // Rank sources like a buyer would: trust high, latency low, capacity
    // real. Keep only sources with enough volume to judge.
    let mut ranked: Vec<&sources::SourceStats> =
        stats.iter().filter(|s| s.n_tasks >= 200).collect();
    ranked.sort_by(|a, b| {
        let score = |s: &sources::SourceStats| s.mean_trust - 0.1 * s.mean_relative_task_time;
        score(b).total_cmp(&score(a))
    });

    let mut t = TextTable::new(
        "source scorecard (trust − 0.1 × relative latency, min 200 tasks)",
        &["rank", "source", "tasks", "workers", "trust", "rel time"],
    );
    for (i, s) in ranked.iter().take(12).enumerate() {
        t.add_row(vec![
            (i + 1).to_string(),
            s.name.clone(),
            s.n_tasks.to_string(),
            s.n_workers.to_string(),
            format!("{:.3}", s.mean_trust),
            format!("{:.2}×", s.mean_relative_task_time),
        ]);
    }
    println!("{}", t.render());

    if let Some(amt) = stats.iter().find(|s| s.name == "amt") {
        println!(
            "note: amt — the best-known source — ranks poorly here: trust {:.2}, {:.1}× median task time (§5.1)\n",
            amt.mean_trust, amt.mean_relative_task_time
        );
    }

    // Geography: where the workforce is.
    let geo = geography::distribution(&study);
    println!(
        "geography: {} countries; top-5 ({}) hold {:.0}% of workers\n",
        geo.n_countries(),
        geo.countries.iter().take(5).map(|(_, n, _)| n.as_str()).collect::<Vec<_>>().join(", "),
        geo.top_share(5) * 100.0
    );

    // Engagement: how much of the workforce can you actually rely on?
    let l = lifetimes::lifetime_stats(&study);
    let wl = workload::distribution(&study);
    println!(
        "engagement: {:.0}% of workers are one-day visitors; the {:.0}% repeat \
         workforce does {:.0}% of tasks; top-10% of workers do {:.0}%",
        l.one_day_fraction * 100.0,
        l.active_worker_fraction * 100.0,
        l.active_task_share * 100.0,
        wl.top10_share * 100.0
    );
    println!(
        "most workers put in <1h per working day ({:.0}%), so peak capacity ≠ headcount (§5.4)\n",
        wl.under_one_hour_fraction * 100.0
    );

    // Recommendation: dedicated + on-demand mix (the paper's takeaway).
    let dedicated = ranked.first().expect("some source qualifies");
    let burst: Option<&&sources::SourceStats> =
        ranked.iter().find(|s| s.avg_tasks_per_worker < dedicated.avg_tasks_per_worker / 5.0);
    println!("recommendation:");
    println!(
        "  primary (dedicated): {} — {:.0} tasks/worker, trust {:.2}",
        dedicated.name, dedicated.avg_tasks_per_worker, dedicated.mean_trust
    );
    match burst {
        Some(b) => println!(
            "  burst (on-demand):   {} — shallow per-worker load ({:.0} tasks/worker) absorbs spikes (§5.1)",
            b.name, b.avg_tasks_per_worker
        ),
        None => println!("  burst (on-demand):   none qualified at this scale"),
    }
}
