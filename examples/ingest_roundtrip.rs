//! Resilient ingest round trip: export a simulated marketplace to CSV,
//! damage it with the deterministic chaos harness, and load it back
//! through `crowd-ingest` — recovering exactly, or refusing with a
//! typed, attributed error.
//!
//! ```sh
//! cargo run --release --example ingest_roundtrip
//! ```
//!
//! The directory it exports is also a ready-made input for the CLI:
//! `repro --input-dir <dir> summary`.

use std::sync::Arc;

use crowd_marketplace::core::csv::{export_dir, Table};
use crowd_marketplace::ingest::{
    ingest, ingest_dir, ChaosSource, DirSource, Fault, FaultPlan, IngestOptions, ManualClock,
};
use crowd_marketplace::prelude::*;

fn main() {
    // 1. Export: six CSV tables plus `manifest.csv` (row counts + content
    //    digests, written last) — the ground truth every later load is
    //    judged against.
    let dataset = simulate(&SimConfig::new(7, 0.0005));
    let dir = std::env::temp_dir().join(format!("crowd_ingest_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    export_dir(&dataset, &dir).expect("export");
    println!("exported {} instances to {}", dataset.instances.len(), dir.display());

    // Zero wall-clock retries: the backoff clock only records its sleeps.
    let opts = IngestOptions { clock: Arc::new(ManualClock::new()), ..IngestOptions::default() };

    // 2. Clean load: every table verifies against the manifest.
    let clean = ingest_dir(&dir, &opts).expect("clean ingest");
    println!("clean ingest: {}", clean.report.summary());

    // 3. Recoverable damage: a duplicated instance record and a pair of
    //    swapped neighbours. Dedup + canonical re-sort reconstruct the
    //    dataset exactly — and the manifest digests prove it.
    let noisy = ChaosSource::new(DirSource::new(&dir)).with_plan(
        Table::Instances,
        FaultPlan {
            faults: vec![Fault::DuplicateRecord { record: 3 }, Fault::SwapWithNext { record: 7 }],
        },
    );
    let recovered = ingest(&noisy, &opts).expect("recoverable damage");
    println!("after duplicate + reorder: {}", recovered.report.summary());
    assert_eq!(recovered.dataset.instances, clean.dataset.instances, "provably recovered");

    // 4. Unrecoverable damage: one flipped bit, refused with a typed
    //    error naming the table — never a silently-wrong dataset.
    let corrupt = ChaosSource::new(DirSource::new(&dir))
        .with_plan(Table::Workers, FaultPlan::single(Fault::FlipBit { at: 40, bit: 3 }));
    match ingest(&corrupt, &opts) {
        Err(failure) => println!("after a bit flip: refused — {failure}"),
        Ok(_) => unreachable!("silent corruption must not pass verification"),
    }

    // 5. The study carries its provenance.
    let study = Study::new(clean.dataset).with_ingest_report(clean.report);
    let report = study.ingest_report().expect("attached report");
    println!("study coverage: {:.1}%", 100.0 * report.coverage());

    println!("dataset dir kept for the CLI: repro --input-dir {} summary", dir.display());
}
