//! Answer aggregation over simulated marketplace batches: majority vote vs
//! trust-weighted vote vs Dawid–Skene, compared on consensus strength and
//! mutual agreement (§4.1 motivates exact-match aggregation; §6 situates
//! the study in the crowd-powered data processing literature).
//!
//! ```sh
//! cargo run --release --example answer_aggregation
//! ```

use crowd_agg::{batch_judgments, dawid_skene, majority_vote, weighted_vote, DawidSkeneParams};
use crowd_marketplace::prelude::*;
use crowd_marketplace::report::TextTable;

fn main() {
    eprintln!("simulating …");
    let ds = simulate(&SimConfig::new(55, 0.002));
    let index = ds.index();

    // Pick the larger sampled batches (enough judgments to be interesting).
    let mut batch_ids: Vec<BatchId> = ds
        .batches
        .iter()
        .enumerate()
        .filter(|(_, b)| b.sampled)
        .map(|(i, _)| BatchId::from_usize(i))
        .collect();
    batch_ids.sort_by_key(|&b| std::cmp::Reverse(index.instances_of_batch(b).count()));
    batch_ids.truncate(12);

    let mut t = TextTable::new(
        "aggregation per batch: confidence = winning vote share / posterior",
        &["batch", "items", "classes", "majority conf", "weighted conf", "DS conf", "MV↔DS agree"],
    );
    let mut mv_ds_disagreements = 0usize;
    let mut items_total = 0usize;
    for &batch in &batch_ids {
        let bj = batch_judgments(&ds, &index, batch);
        if bj.judgments.is_empty() || bj.n_classes() < 2 {
            continue;
        }
        let mv = majority_vote(&bj.judgments, bj.n_classes());
        let wv = weighted_vote(&bj.judgments, &bj.trust, bj.n_classes());
        let Some(dsr) = dawid_skene(&bj.judgments, bj.n_classes(), &DawidSkeneParams::default())
        else {
            continue;
        };
        let agree = mv.agreement_with(&dsr.aggregation);
        mv_ds_disagreements += ((1.0 - agree) * mv.len() as f64).round() as usize;
        items_total += mv.len();
        t.add_row(vec![
            batch.to_string(),
            bj.items.len().to_string(),
            bj.n_classes().to_string(),
            format!("{:.3}", mv.mean_confidence()),
            format!("{:.3}", wv.mean_confidence()),
            format!("{:.3}", dsr.aggregation.mean_confidence()),
            format!("{:.1}%", agree * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "items where Dawid–Skene overturned the majority: {mv_ds_disagreements} of {items_total}"
    );
    println!(
        "\nDS reweights judgments by each worker's learned confusion matrix, so a\n\
         consistent minority of skilled workers can overturn a sloppy majority —\n\
         the same signal the marketplace's trust system approximates (§2.3)."
    );
}
