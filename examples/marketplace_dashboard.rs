//! Marketplace operations dashboard: the §3 administrator's view —
//! load, worker supply, engagement concentration, and heavy hitters —
//! rendered as terminal charts.
//!
//! ```sh
//! cargo run --release --example marketplace_dashboard
//! ```

use crowd_marketplace::analytics::marketplace::{arrivals, availability, load};
use crowd_marketplace::prelude::*;
use crowd_marketplace::report::{series_to_csv, LinePlot, Series};

fn main() {
    eprintln!("simulating …");
    let study = Study::new(simulate(&SimConfig::new(23, 0.005)));

    // Panel 1: load vs worker supply.
    let w = arrivals::weekly(&study);
    let workers = availability::weekly_workers(&study);
    let to_pts = |weeks: &[Timestamp]| weeks.len(); // (type hint helper, unused)
    let _ = to_pts;
    let load_series = Series::new(
        "instances issued",
        w.weeks
            .iter()
            .zip(&w.instances)
            .map(|(wk, &v)| (f64::from(wk.0), v as f64 + 1.0))
            .collect(),
    );
    let worker_series = Series::new(
        "active workers",
        workers
            .weeks
            .iter()
            .zip(&workers.active_workers)
            .map(|(wk, &v)| (f64::from(wk.0), v as f64 + 1.0))
            .collect(),
    );
    let panel1 = LinePlot::new("load vs supply (log y): task volume swings, workforce stays level")
        .log_y()
        .with_size(76, 14)
        .with_labels("week", "count")
        .add(load_series.clone())
        .add(worker_series);
    println!("{}", panel1.render());

    // Panel 2: engagement concentration.
    let e = availability::engagement_split(&study);
    println!(
        "engagement: top-10% of workers complete {:.1}% of all tasks\n",
        e.top10_task_share * 100.0
    );

    // Panel 3: heavy hitters.
    let hitters = load::heavy_hitters(&study, 5);
    let mut panel3 = LinePlot::new("top-5 heavy-hitter clusters, cumulative instances (log y)")
        .log_y()
        .with_size(76, 12)
        .with_labels("week", "cumulative instances");
    for h in &hitters {
        panel3 = panel3.add(Series::new(
            format!("cluster {}", h.cluster),
            h.cumulative.iter().map(|&(wk, c)| (f64::from(wk.0), c as f64)).collect(),
        ));
    }
    println!("{}", panel3.render());

    // Machine-readable output for external plotting.
    let csv = series_to_csv(&[load_series]);
    let path = std::env::temp_dir().join("marketplace_load.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("weekly load series written to {}", path.display());

    // Alerting: flag backlog weeks where pickup medians explode.
    let mut alerts = 0;
    for (wk, pickup) in w.weeks.iter().zip(&w.median_pickup) {
        if let Some(p) = pickup {
            if *p > 86_400.0 {
                alerts += 1;
                if alerts <= 5 {
                    println!(
                        "ALERT {}: median pickup {:.1} days — consider push-routing (§3.1)",
                        wk.label(),
                        p / 86_400.0
                    );
                }
            }
        }
    }
    if alerts > 5 {
        println!("… and {} more backlog weeks", alerts - 5);
    }
}
