//! Task-design advisor: the paper's §4.8 recommendations as a tool.
//!
//! Give it a proposed task interface and it (a) measures, from simulated
//! marketplace data, how each design choice shifts the three
//! effectiveness metrics, and (b) scores the proposal against the study's
//! recommendations.
//!
//! ```sh
//! cargo run --release --example task_design_advisor
//! ```

use crowd_marketplace::analytics::design::methodology::{run_experiment, Feature};
use crowd_marketplace::analytics::design::metrics::Metric;
use crowd_marketplace::analytics::Study;
use crowd_marketplace::html::extract_features;
use crowd_marketplace::html::generator::InterfaceSpec;
use crowd_marketplace::prelude::*;

/// A requester's draft task, as they would describe it.
struct Draft {
    name: &'static str,
    spec: InterfaceSpec,
    items_per_batch: u32,
}

fn main() {
    // The evidence base: a simulated marketplace history.
    eprintln!("building evidence base …");
    let study = Study::new(simulate(&SimConfig::new(11, 0.005)));

    // Two drafts of the same task — a bare-bones version and one following
    // the §4.8 recommendations.
    let drafts = [
        Draft {
            name: "draft A (bare)",
            spec: InterfaceSpec {
                title: "Find the official website of each business".into(),
                instruction_words: 25,
                questions: 1,
                text_boxes: 1,
                examples: 0,
                images: 0,
                choice_options: 2,
                seed: 1,
                variant: 1,
            },
            items_per_batch: 5,
        },
        Draft {
            name: "draft B (per §4.8)",
            spec: InterfaceSpec {
                title: "Find the official website of each business".into(),
                instruction_words: 600,
                questions: 4,
                text_boxes: 1,
                examples: 2,
                images: 1,
                choice_options: 4,
                seed: 1,
                variant: 1,
            },
            items_per_batch: 200,
        },
    ];

    // Evidence: measured effect of each feature on each metric.
    println!("measured feature effects (median metric in low-bin → high-bin):\n");
    let pairs = [
        (Feature::Words, Metric::Disagreement),
        (Feature::Items, Metric::Disagreement),
        (Feature::Items, Metric::TaskTime),
        (Feature::Items, Metric::PickupTime),
        (Feature::TextBoxes, Metric::Disagreement),
        (Feature::TextBoxes, Metric::TaskTime),
        (Feature::Examples, Metric::Disagreement),
        (Feature::Examples, Metric::PickupTime),
        (Feature::Images, Metric::TaskTime),
        (Feature::Images, Metric::PickupTime),
    ];
    for (feature, metric) in pairs {
        if let Some(e) = run_experiment(&study, feature, metric, None) {
            println!(
                "  {:<12} on {:<13} {:>9.3} → {:>9.3}  ({})",
                feature.name(),
                metric.name(),
                e.bin1.median,
                e.bin2.median,
                if e.significant { "significant" } else { "weak" }
            );
        }
    }

    println!("\nadvice per draft:\n");
    for d in &drafts {
        let html = d.spec.render();
        let f = extract_features(&html).expect("generated HTML parses");
        println!(
            "{} — {} words, {} text boxes, {} examples, {} images, {} items/batch",
            d.name, f.words, f.text_boxes, f.examples, f.images, d.items_per_batch
        );
        let mut score = 0;
        let mut advise = |ok: bool, msg: &str| {
            println!("  [{}] {}", if ok { "ok" } else { "!!" }, msg);
            score += i32::from(ok);
        };
        advise(f.words > 400, "detailed instructions reduce disagreement (§4.3: 0.147 → 0.108)");
        advise(
            d.items_per_batch >= 50,
            "batching many items cuts disagreement and task time (§4.5)",
        );
        advise(f.examples > 0, "examples cut disagreement and slash pickup time ~4.7× (§4.6)");
        advise(f.images > 0, "images attract workers — pickup ~3× faster (§4.7)");
        advise(
            f.text_boxes == 0,
            "free-text boxes raise disagreement and task time; prefer closed choices (§4.4)",
        );
        println!("  score: {score}/5\n");
    }
}
