//! Quickstart: simulate a marketplace, enrich it, and answer the study's
//! three headline questions in ~40 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use crowd_marketplace::analytics::design::summary;
use crowd_marketplace::analytics::marketplace::arrivals;
use crowd_marketplace::analytics::workers::lifetimes;
use crowd_marketplace::prelude::*;

fn main() {
    // A seeded, deterministic marketplace at 0.2% of the paper's volume —
    // about 54k task instances, simulated in a couple of seconds.
    let config = SimConfig::new(7, 0.002);
    let dataset = simulate(&config);
    println!(
        "simulated {} instances across {} batches by {} workers",
        dataset.instances.len(),
        dataset.batches.len(),
        dataset.workers.len()
    );

    // Enrichment (paper §2.4): cluster batches by task-HTML similarity,
    // extract design parameters, compute effectiveness metrics.
    let study = Study::new(dataset);
    println!("enriched into {} clusters\n", study.clusters().len());

    // 1. Marketplace dynamics (§3): how bursty is the load?
    if let Some(load) = arrivals::daily_load(&study, Timestamp::from_ymd(2015, 1, 1)) {
        println!(
            "§3.1 daily load: median {:.0} instances, peak {:.0}× the median",
            load.median, load.peak_ratio
        );
    }

    // 2. Task design (§4): which design choices matter?
    for row in summary::disagreement_table(&study).rows {
        println!(
            "§4   {} → disagreement {:.3} | {} → {:.3}{}",
            row.bin1_desc,
            row.bin1_median,
            row.bin2_desc,
            row.bin2_median,
            if row.significant { "  (p < 0.01)" } else { "" }
        );
    }

    // 3. Worker behavior (§5): who does the work?
    let l = lifetimes::lifetime_stats(&study);
    println!(
        "§5   {:.0}% of workers appear for a single day but do only {:.1}% of tasks;",
        l.one_day_fraction * 100.0,
        l.one_day_task_share * 100.0
    );
    println!(
        "     the {:.0}% active minority completes {:.0}% of all tasks",
        l.active_worker_fraction * 100.0,
        l.active_task_share * 100.0
    );
}
