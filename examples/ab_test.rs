//! A/B testing the paper's §4.8 design recommendations — the §7 future
//! work ("with full-fledged A/B testing, we may be able to solidify our
//! correlation and predictive claims with further causation-based
//! evidence") made concrete.
//!
//! Each experiment simulates a control marketplace and a treated one from
//! the same seed, applies one design intervention, and reports the causal
//! effect with a bootstrap CI and a rank-sum test.
//!
//! ```sh
//! cargo run --release --example ab_test
//! ```

use crowd_ab::AbExperiment;
use crowd_marketplace::analytics::design::metrics::Metric;
use crowd_marketplace::sim::{Intervention, SimConfig, TargetSelector};

fn main() {
    let config = SimConfig::new(404, 0.002);
    let experiments = [
        (
            "§4.6: add 2 examples → pickup time",
            Intervention::AddExamples { count: 2 },
            Metric::PickupTime,
        ),
        (
            "§4.6: add 2 examples → disagreement",
            Intervention::AddExamples { count: 2 },
            Metric::Disagreement,
        ),
        ("§4.4: remove text boxes → task time", Intervention::RemoveTextBoxes, Metric::TaskTime),
        (
            "§4.7: add an image → pickup time",
            Intervention::AddImages { count: 1 },
            Metric::PickupTime,
        ),
        (
            "§4.5: 10× items per batch → pickup time",
            Intervention::ScaleItems { factor: 10.0 },
            Metric::PickupTime,
        ),
        (
            "§4.3: 5× instruction words → disagreement",
            Intervention::ScaleWords { factor: 5.0 },
            Metric::Disagreement,
        ),
    ];

    println!("A/B experiments (paired seeds, 95% bootstrap CI on Δmedian):\n");
    for (label, intervention, metric) in experiments {
        eprint!("running: {label} … ");
        match (AbExperiment {
            config: config.clone(),
            target: TargetSelector::All,
            intervention,
            metric,
        })
        .try_run()
        {
            Ok(o) => {
                eprintln!("done");
                let stars = if o.significant() { "  ***" } else { "" };
                println!(
                    "{label}\n    control median {:>10.2}   treated {:>10.2}   Δ {:+.2} \
                     [{:+.2}, {:+.2}]   ({} types treated){stars}",
                    o.medians.0,
                    o.medians.1,
                    o.diff_ci.estimate,
                    o.diff_ci.lo,
                    o.diff_ci.hi,
                    o.treated_types
                );
                if let Some(rs) = o.rank_sum {
                    println!("    rank-sum p = {:.2e}", rs.p_value);
                }
            }
            Err(e) => {
                eprintln!("skipped");
                println!("{label}\n    not runnable: {e}");
            }
        }
        println!();
    }
    println!("*** = bootstrap CI excludes zero (causal at 95%)");
}
