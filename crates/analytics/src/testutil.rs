//! Shared test fixtures: simulated studies are expensive to build, so the
//! unit tests across this crate share two cached instances.

#![allow(missing_docs)]

use std::sync::OnceLock;

use crowd_sim::{simulate, SimConfig};

use crate::study::Study;

/// Tiny study (~30k instances) for structural tests.
pub fn tiny_study() -> &'static Study {
    static S: OnceLock<Study> = OnceLock::new();
    S.get_or_init(|| Study::new(simulate(&SimConfig::tiny(1301))))
}

/// Default-scale study (~270k instances) for distributional tests.
pub fn default_study() -> &'static Study {
    static S: OnceLock<Study> = OnceLock::new();
    S.get_or_init(|| Study::new(simulate(&SimConfig::default_scale(1303))))
}
