//! Redundancy analysis: how many judgments does the marketplace collect
//! per item, and does redundancy track task ambiguity?
//!
//! §4.1 motivates the disagreement metric as the signal requesters use to
//! set "the level of redundancy (e.g., more redundancy for confusing
//! questions)". This module measures the realized redundancy from the
//! instance rows.

use std::collections::BTreeMap;

use crowd_stats::descriptive::{median, Summary};

use crate::study::Study;

/// Redundancy statistics over a study.
#[derive(Debug, Clone)]
pub struct RedundancyStats {
    /// Judgments-per-item summary across all items.
    pub per_item: Summary,
    /// Median redundancy per cluster (aligned with `cluster_ids`).
    pub per_cluster_median: Vec<f64>,
    /// Cluster ids for `per_cluster_median`.
    pub cluster_ids: Vec<u32>,
    /// Fraction of items with at least two judgments (pairwise
    /// disagreement defined, §4.1).
    pub pairable_fraction: f64,
}

/// Computes redundancy statistics. `None` on an empty dataset.
pub fn redundancy(study: &Study) -> Option<RedundancyStats> {
    // Judgments per (batch, item), from the fused scan. BTreeMap order
    // matters: `Summary::of` folds the counts in iteration order, and a
    // hash map's per-process random seed would wobble the mean/stddev in
    // the last ulp across processes. Emptiness is judged on the fused map
    // too — `ds.instances` is empty for every columns-optional study.
    let per_item = &study.fused().per_item;
    if per_item.is_empty() {
        return None;
    }
    let counts: Vec<f64> = per_item.values().map(|&c| f64::from(c)).collect();
    let pairable = per_item.values().filter(|&&c| c >= 2).count() as f64 / per_item.len() as f64;

    // Per-cluster medians.
    let mut batch_cluster: BTreeMap<u32, u32> = BTreeMap::new();
    for m in study.enriched_batches() {
        batch_cluster.insert(m.batch.raw(), m.cluster);
    }
    let mut by_cluster: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for (&(batch, _), &count) in per_item {
        if let Some(&cluster) = batch_cluster.get(&batch) {
            by_cluster.entry(cluster).or_default().push(f64::from(count));
        }
    }
    let cluster_ids: Vec<u32> = by_cluster.keys().copied().collect();
    let per_cluster_median =
        cluster_ids.iter().map(|c| median(&by_cluster[c]).expect("non-empty cluster")).collect();

    Some(RedundancyStats {
        per_item: Summary::of(&counts)?,
        per_cluster_median,
        cluster_ids,
        pairable_fraction: pairable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::tiny_study()
    }

    #[test]
    fn redundancy_matches_marketplace_practice() {
        let r = redundancy(study()).unwrap();
        // The marketplace collects multiple judgments per item for
        // majority-vote aggregation (§4.1) — mean ≈ 3.
        assert!((2.0..=5.0).contains(&r.per_item.mean), "mean redundancy {}", r.per_item.mean);
        assert!(r.per_item.min >= 1.0);
        assert!(r.pairable_fraction > 0.98, "{}", r.pairable_fraction);
    }

    #[test]
    fn per_cluster_vectors_align() {
        let r = redundancy(study()).unwrap();
        assert_eq!(r.per_cluster_median.len(), r.cluster_ids.len());
        assert_eq!(r.cluster_ids.len(), study().clusters().len());
        for &m in &r.per_cluster_median {
            assert!(m >= 1.0);
        }
    }

    #[test]
    fn empty_dataset_yields_none() {
        let s = Study::new(crowd_core::DatasetBuilder::new().finish().unwrap());
        assert!(redundancy(&s).is_none());
    }
}
