//! Per-label drill-down experiments (paper §4.3–§4.7, Fig 25): do the
//! feature effects hold within individual task categories?

use crowd_core::labels::{Goal, Operator};

use crate::design::methodology::{run_experiment, Experiment, Feature, LabelFilter};
use crate::design::metrics::Metric;
use crate::study::Study;

/// The eight Fig 25 panels, in the paper's order.
pub const PANELS: [(Feature, Metric, LabelFilter); 8] = [
    // (a) #words vs disagreement on Gather tasks
    (Feature::Words, Metric::Disagreement, LabelFilter::Operator(Operator::Gather)),
    // (b) #words vs disagreement on Rating tasks
    (Feature::Words, Metric::Disagreement, LabelFilter::Operator(Operator::Rate)),
    // (c) #text-boxes vs task-time on Sentiment Analysis
    (Feature::TextBoxes, Metric::TaskTime, LabelFilter::Goal(Goal::SentimentAnalysis)),
    // (d) #examples vs disagreement on Language Understanding
    (Feature::Examples, Metric::Disagreement, LabelFilter::Goal(Goal::LanguageUnderstanding)),
    // (e) #items vs disagreement on Gather
    (Feature::Items, Metric::Disagreement, LabelFilter::Operator(Operator::Gather)),
    // (f) #items vs disagreement on Rating
    (Feature::Items, Metric::Disagreement, LabelFilter::Operator(Operator::Rate)),
    // (g) #images vs pickup-time on Extract
    (Feature::Images, Metric::PickupTime, LabelFilter::Operator(Operator::Extract)),
    // (h) #images vs pickup-time on Quality Assurance
    (Feature::Images, Metric::PickupTime, LabelFilter::Goal(Goal::QualityAssurance)),
];

/// One drill-down panel: the experiment (when enough data exists) plus its
/// paper identity.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Panel index (0-based, matching [`PANELS`]).
    pub index: usize,
    /// Human-readable description.
    pub description: String,
    /// The experiment, if the filtered population was large enough.
    pub experiment: Option<Experiment>,
}

/// Runs all Fig 25 panels.
pub fn fig25_panels(study: &Study) -> Vec<Panel> {
    PANELS
        .iter()
        .enumerate()
        .map(|(index, &(feature, metric, filter))| Panel {
            index,
            description: format!("{} vs {} on {:?}", feature.name(), metric.name(), filter),
            experiment: run_experiment(study, feature, metric, Some(filter)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::default_study()
    }

    #[test]
    fn all_panels_produced() {
        let panels = fig25_panels(study());
        assert_eq!(panels.len(), 8);
        let with_data = panels.iter().filter(|p| p.experiment.is_some()).count();
        assert!(with_data >= 6, "most panels have enough clusters: {with_data}");
    }

    #[test]
    fn items_effect_pronounced_for_gather() {
        // §4.5: "#items has a pronounced effect on disagreement for
        // (relatively hard) gather tasks".
        let s = study();
        let gather = run_experiment(
            s,
            Feature::Items,
            Metric::Disagreement,
            Some(LabelFilter::Operator(Operator::Gather)),
        );
        if let Some(e) = gather {
            // At reduced scale the gather subpopulation is small; assert
            // the direction only when the contrast is statistically real.
            if e.significant {
                assert!(e.effect() < 0.0, "items reduce disagreement for gather");
            }
        }
    }

    #[test]
    fn textboxes_raise_task_time_for_sentiment() {
        // §4.4 / Fig 25c.
        let s = study();
        let e = run_experiment(
            s,
            Feature::TextBoxes,
            Metric::TaskTime,
            Some(LabelFilter::Goal(Goal::SentimentAnalysis)),
        );
        if let Some(e) = e {
            assert!(e.effect() > 0.0, "text boxes slow SA tasks: {}", e.effect());
        }
    }

    #[test]
    fn images_cut_pickup_within_categories() {
        // §4.7: the image effect holds within Extract and QA.
        let s = study();
        for filter in
            [LabelFilter::Operator(Operator::Extract), LabelFilter::Goal(Goal::QualityAssurance)]
        {
            if let Some(e) = run_experiment(s, Feature::Images, Metric::PickupTime, Some(filter)) {
                assert!(e.effect() < 0.0, "{filter:?}: {}", e.effect());
            }
        }
    }

    #[test]
    fn descriptions_are_informative() {
        let panels = fig25_panels(study());
        assert!(panels[0].description.contains("#words"));
        assert!(panels[0].description.contains("disagreement"));
        assert!(panels[0].description.contains("Gather"));
    }
}
