//! Effectiveness metrics and the latency decomposition (paper §4.1,
//! Fig 13): pickup-time dominates task-time by orders of magnitude, which
//! justifies using pickup-time as *the* latency metric.

use crowd_stats::descriptive::median;

use crate::study::Study;

/// The three §4.1 effectiveness metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Error: average pairwise disagreement (§4.1).
    Disagreement,
    /// Cost: median task time in seconds.
    TaskTime,
    /// Latency: median pickup time in seconds.
    PickupTime,
}

impl Metric {
    /// All metrics.
    pub const ALL: [Metric; 3] = [Metric::Disagreement, Metric::TaskTime, Metric::PickupTime];

    /// Paper-style display name.
    pub const fn name(self) -> &'static str {
        match self {
            Metric::Disagreement => "disagreement",
            Metric::TaskTime => "task-time",
            Metric::PickupTime => "pickup-time",
        }
    }

    /// Reads the metric from a cluster aggregate.
    pub fn of_cluster(self, c: &crate::study::ClusterInfo) -> Option<f64> {
        match self {
            Metric::Disagreement => c.disagreement,
            Metric::TaskTime => c.task_time,
            Metric::PickupTime => c.pickup_time,
        }
    }
}

/// One point of the Fig 13 scatter: a batch's end-to-end time with its
/// pickup and task components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPoint {
    /// End-to-end time (seconds).
    pub end_to_end: f64,
    /// Median pickup time (seconds).
    pub pickup: f64,
    /// Median task time (seconds).
    pub task: f64,
}

/// Latency decomposition at batch and instance granularity (Fig 13a/13b),
/// plus the headline ratio.
#[derive(Debug, Clone, Default)]
pub struct LatencyDecomposition {
    /// Batch-level points (Fig 13a): one per enriched batch.
    pub batch_level: Vec<LatencyPoint>,
    /// Instance-level points (Fig 13b): median pickup/task per
    /// end-to-end splice (log-bucketed).
    pub instance_level: Vec<LatencyPoint>,
    /// Median over batches of `pickup / task` — the paper reports orders
    /// of magnitude.
    pub median_pickup_to_task_ratio: f64,
}

/// Computes the Fig 13 decomposition.
pub fn latency_decomposition(study: &Study) -> LatencyDecomposition {
    let mut batch_level = Vec::new();
    let mut ratios = Vec::new();
    for m in study.enriched_batches() {
        let (Some(p), Some(t)) = (m.pickup_time, m.task_time) else { continue };
        batch_level.push(LatencyPoint { end_to_end: p + t, pickup: p, task: t });
        if t > 0.0 {
            ratios.push(p / t);
        }
    }

    // Instance-level: end-to-end times bucketed into half-decade log
    // splices with medians per splice — precomputed by the fused scan.
    let instance_level = study.fused().instance_latency.clone();

    LatencyDecomposition {
        batch_level,
        instance_level,
        median_pickup_to_task_ratio: median(&ratios).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::tiny_study()
    }

    #[test]
    fn pickup_dominates_task_time() {
        // Fig 13 / §4.1: "the pickup-time for batches is orders of
        // magnitude higher than the task-time".
        let s = study();
        let d = latency_decomposition(s);
        assert!(d.median_pickup_to_task_ratio > 5.0, "ratio {}", d.median_pickup_to_task_ratio);
    }

    #[test]
    fn decomposition_components_sum() {
        let s = study();
        let d = latency_decomposition(s);
        for p in &d.batch_level {
            assert!((p.end_to_end - (p.pickup + p.task)).abs() < 1e-9);
            assert!(p.pickup > 0.0 && p.task > 0.0);
        }
    }

    #[test]
    fn instance_level_buckets_are_ordered() {
        let s = study();
        let d = latency_decomposition(s);
        assert!(d.instance_level.len() > 3, "several end-to-end splices");
        for w in d.instance_level.windows(2) {
            assert!(w[0].end_to_end < w[1].end_to_end);
        }
    }

    #[test]
    fn metric_accessors() {
        let s = study();
        let c = &s.clusters()[0];
        assert_eq!(Metric::Disagreement.of_cluster(c), c.disagreement);
        assert_eq!(Metric::TaskTime.of_cluster(c), c.task_time);
        assert_eq!(Metric::PickupTime.of_cluster(c), c.pickup_time);
        assert_eq!(Metric::Disagreement.name(), "disagreement");
        assert_eq!(Metric::ALL.len(), 3);
    }
}
