//! §4 "Effective Task Design": metrics, correlation methodology,
//! drill-downs, summary tables, and the predictive setting.

pub mod drilldown;
pub mod forecast;
pub mod methodology;
pub mod metrics;
pub mod prediction;
pub mod redundancy;
pub mod summary;
