//! The §4.9 predictive setting: bucketize each metric into 10 buckets
//! (by range and by percentiles) and predict the bucket with a decision
//! tree over simple design features, under 5-fold cross-validation.

use crowd_classify::bucketize::Bucketization;
use crowd_classify::crossval::{k_fold, CvReport};
use crowd_classify::tree::TreeParams;

use crate::design::methodology::eligible_clusters;
use crate::design::metrics::Metric;
use crate::study::{ClusterInfo, Study};

/// The two §4.9 bucketization schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Uniform-width buckets over the metric's value range.
    ByRange,
    /// Equal-population buckets.
    ByPercentiles,
}

/// Number of buckets (§4.9: "we bucketize the range of values into 10").
pub const N_BUCKETS: usize = 10;
/// Folds for cross-validation (§4.9: "5-fold cross-validation").
pub const N_FOLDS: usize = 5;

/// Outcome of one prediction experiment.
#[derive(Debug, Clone)]
pub struct PredictionResult {
    /// The metric predicted.
    pub metric: Metric,
    /// The bucketization scheme.
    pub scheme: Scheme,
    /// Upper bound of each bucket (the paper prints these).
    pub bucket_upper_bounds: Vec<f64>,
    /// Clusters per bucket.
    pub bucket_counts: Vec<usize>,
    /// Cross-validated accuracies.
    pub cv: CvReport,
    /// Clusters used.
    pub n_clusters: usize,
}

/// §4.9 feature sets per metric:
/// * disagreement — `{#items, has-example, #words, #text-boxes}`;
/// * task-time — `{#items, has-image, #text-boxes}`;
/// * pickup-time — `{#items, has-example, has-image}`.
pub fn feature_vector(metric: Metric, c: &ClusterInfo) -> Vec<f64> {
    let has_example = f64::from(c.examples > 0.0);
    let has_image = f64::from(c.images > 0.0);
    match metric {
        Metric::Disagreement => vec![c.items, has_example, c.words, c.text_boxes],
        Metric::TaskTime => vec![c.items, has_image, c.text_boxes],
        Metric::PickupTime => vec![c.items, has_example, has_image],
    }
}

/// Runs one §4.9 experiment. Returns `None` when there are too few
/// clusters or the metric is constant.
pub fn predict(
    study: &Study,
    metric: Metric,
    scheme: Scheme,
    seed: u64,
) -> Option<PredictionResult> {
    let clusters: Vec<&ClusterInfo> =
        eligible_clusters(study, None).filter(|c| metric.of_cluster(c).is_some()).collect();
    if clusters.len() < N_FOLDS * 4 {
        return None;
    }
    let values: Vec<f64> =
        clusters.iter().map(|c| metric.of_cluster(c).expect("filtered")).collect();
    let buckets = match scheme {
        Scheme::ByRange => Bucketization::by_range(&values, N_BUCKETS)?,
        Scheme::ByPercentiles => Bucketization::by_percentiles(&values, N_BUCKETS)?,
    };
    let y: Vec<usize> = values.iter().map(|&v| buckets.bucket_of(v)).collect();
    let x: Vec<Vec<f64>> = clusters.iter().map(|c| feature_vector(metric, c)).collect();
    let cv = k_fold(&x, &y, N_BUCKETS, N_FOLDS, seed, &TreeParams::default());
    Some(PredictionResult {
        metric,
        scheme,
        bucket_counts: buckets.counts(&values),
        bucket_upper_bounds: buckets.upper_bounds.clone(),
        cv,
        n_clusters: clusters.len(),
    })
}

/// Runs all six §4.9 experiments (3 metrics × 2 schemes).
pub fn predict_all(study: &Study, seed: u64) -> Vec<PredictionResult> {
    let mut out = Vec::new();
    for metric in Metric::ALL {
        for scheme in [Scheme::ByRange, Scheme::ByPercentiles] {
            if let Some(r) = predict(study, metric, scheme, seed) {
                out.push(r);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::default_study()
    }

    #[test]
    fn range_buckets_concentrate_time_metrics() {
        // §4.9: range bucketization of pickup/task time puts nearly all
        // clusters into the first bucket (the reported distribution is
        // [2906, 17, 8, 5, 1, 0, 0, 0, 0, 1]).
        let s = study();
        let r = predict(s, Metric::PickupTime, Scheme::ByRange, 1).unwrap();
        let first = r.bucket_counts[0] as f64;
        let total: usize = r.bucket_counts.iter().sum();
        assert!(first / total as f64 > 0.65, "skew (98.9% at paper scale): {:?}", r.bucket_counts);
    }

    #[test]
    fn range_accuracy_is_high_for_time_metrics() {
        // §4.9: 95% (task-time) and 98% (pickup-time) exact-bucket accuracy
        // under range bucketization — driven by the skew.
        let s = study();
        let t = predict(s, Metric::TaskTime, Scheme::ByRange, 2).unwrap();
        assert!(t.cv.accuracy > 0.6, "task-time accuracy {}", t.cv.accuracy);
        let p = predict(s, Metric::PickupTime, Scheme::ByRange, 2).unwrap();
        assert!(p.cv.accuracy > 0.6, "pickup accuracy {}", p.cv.accuracy);
        assert!(p.cv.accuracy > 0.3, "well above the 10% chance floor");
    }

    #[test]
    fn disagreement_tolerance_boost() {
        // §4.9: disagreement at 39% exact / 62% within one bucket — the
        // tolerance materially helps.
        let s = study();
        let d = predict(s, Metric::Disagreement, Scheme::ByRange, 3).unwrap();
        assert!(d.cv.accuracy > 0.15, "better than chance: {}", d.cv.accuracy);
        assert!(
            d.cv.accuracy_within_1 > d.cv.accuracy + 0.05,
            "±1 bucket helps: {} vs {}",
            d.cv.accuracy_within_1,
            d.cv.accuracy
        );
    }

    #[test]
    fn percentile_scheme_is_harder() {
        // §4.9: "for the percentile-bucketization … the classification
        // problem is much harder".
        let s = study();
        for metric in [Metric::TaskTime, Metric::PickupTime] {
            let range = predict(s, metric, Scheme::ByRange, 4).unwrap();
            let pct = predict(s, metric, Scheme::ByPercentiles, 4).unwrap();
            assert!(
                pct.cv.accuracy < range.cv.accuracy,
                "{:?}: percentile {} < range {}",
                metric,
                pct.cv.accuracy,
                range.cv.accuracy
            );
        }
    }

    #[test]
    fn percentile_beats_chance_with_tolerance() {
        // §4.9: ~40% within-1 accuracy vs a 10-bucket chance floor.
        let s = study();
        let d = predict(s, Metric::Disagreement, Scheme::ByPercentiles, 5).unwrap();
        assert!(d.cv.accuracy_within_1 > 0.28, "{}", d.cv.accuracy_within_1);
    }

    #[test]
    fn all_six_experiments_run() {
        let s = study();
        let all = predict_all(s, 6);
        assert_eq!(all.len(), 6);
        for r in &all {
            assert_eq!(r.bucket_upper_bounds.len(), N_BUCKETS);
            assert_eq!(r.bucket_counts.iter().sum::<usize>(), r.n_clusters);
            assert_eq!(r.cv.folds, N_FOLDS);
        }
    }

    #[test]
    fn feature_vectors_match_paper_sets() {
        let s = study();
        let c = &s.clusters()[0];
        assert_eq!(feature_vector(Metric::Disagreement, c).len(), 4);
        assert_eq!(feature_vector(Metric::TaskTime, c).len(), 3);
        assert_eq!(feature_vector(Metric::PickupTime, c).len(), 3);
    }
}
