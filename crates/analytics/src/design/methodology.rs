//! The §4.2 correlation-analysis methodology, one experiment per
//! `{feature, metric}` pair: cluster → median → bin at the median feature
//! value → t-test → CDF per bin.

use crowd_core::labels::{DataType, Goal, Operator};
use crowd_stats::binning::median_split;
use crowd_stats::cdf::EmpiricalCdf;

use crate::design::metrics::Metric;
use crate::study::{ClusterInfo, Study};

/// §4.1: tasks with disagreement above this are pruned as subjective.
pub const DISAGREEMENT_PRUNE_THRESHOLD: f64 = 0.5;

/// A requester-controllable design feature (§4.3–§4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feature {
    /// `#words` in the task HTML (§4.3).
    Words,
    /// `#items` in the batch (§4.5).
    Items,
    /// `#text-box` input fields (§4.4).
    TextBoxes,
    /// `#examples` prominently displayed (§4.6).
    Examples,
    /// `#images` (§4.7).
    Images,
}

impl Feature {
    /// All features.
    pub const ALL: [Feature; 5] =
        [Feature::Words, Feature::Items, Feature::TextBoxes, Feature::Examples, Feature::Images];

    /// Paper-style display name.
    pub const fn name(self) -> &'static str {
        match self {
            Feature::Words => "#words",
            Feature::Items => "#items",
            Feature::TextBoxes => "#text-boxes",
            Feature::Examples => "#examples",
            Feature::Images => "#images",
        }
    }

    /// Reads the feature from a cluster aggregate.
    pub fn of_cluster(self, c: &ClusterInfo) -> f64 {
        match self {
            Feature::Words => c.words,
            Feature::Items => c.items,
            Feature::TextBoxes => c.text_boxes,
            Feature::Examples => c.examples,
            Feature::Images => c.images,
        }
    }
}

/// Optional label restriction for drill-down experiments (§4.3: "we
/// separate tasks into buckets by their labels … and test the effect").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelFilter {
    /// Keep clusters with this goal.
    Goal(Goal),
    /// Keep clusters with this operator.
    Operator(Operator),
    /// Keep clusters with this data type.
    Data(DataType),
}

impl LabelFilter {
    /// Whether a cluster passes the filter.
    pub fn matches(self, c: &ClusterInfo) -> bool {
        match self {
            LabelFilter::Goal(g) => c.goals.contains(g),
            LabelFilter::Operator(o) => c.operators.contains(o),
            LabelFilter::Data(d) => c.data_types.contains(d),
        }
    }
}

/// Summary of one bin of a feature split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinSummary {
    /// Clusters in the bin.
    pub n: usize,
    /// Median metric value in the bin.
    pub median: f64,
}

/// One complete §4.2 experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The feature under test.
    pub feature: Feature,
    /// The metric observed.
    pub metric: Metric,
    /// Optional drill-down filter applied.
    pub filter: Option<LabelFilter>,
    /// The median feature value the split happened at.
    pub split_value: f64,
    /// Low-feature bin (Bin-1 in the paper's tables).
    pub bin1: BinSummary,
    /// High-feature bin (Bin-2).
    pub bin2: BinSummary,
    /// Welch t-test p-value between the bins' metric values.
    pub p_value: f64,
    /// Whether p < 0.01, the paper's bar (§4.2).
    pub significant: bool,
    /// CDF points of the metric in bin 1 (for the Figs 14/25 plots).
    pub cdf1: Vec<(f64, f64)>,
    /// CDF points in bin 2.
    pub cdf2: Vec<(f64, f64)>,
}

impl Experiment {
    /// The direction of the effect: negative when the high-feature bin has
    /// the *lower* metric value (feature improves the metric).
    pub fn effect(&self) -> f64 {
        self.bin2.median - self.bin1.median
    }

    /// The multiplicative size of the effect: `max(m2/m1, m1/m2)`.
    pub fn effect_ratio(&self) -> f64 {
        let (a, b) = (self.bin1.median, self.bin2.median);
        if a <= 0.0 || b <= 0.0 {
            return f64::INFINITY;
        }
        (a / b).max(b / a)
    }

    /// Significant at the paper's alpha = 0.01, or a large effect (>=1.5x)
    /// at alpha = 0.05 — the relaxation used by tests at reduced dataset
    /// scale, where the cluster population is ~5x smaller than the
    /// paper's and the weakest contrasts lose power.
    pub fn significant_or_strong(&self) -> bool {
        self.significant || (self.p_value < 0.05 && self.effect_ratio() >= 1.5)
    }
}

/// Runs one experiment over the labeled clusters. Returns `None` when the
/// population is too small or the feature is constant.
pub fn run_experiment(
    study: &Study,
    feature: Feature,
    metric: Metric,
    filter: Option<LabelFilter>,
) -> Option<Experiment> {
    let observations: Vec<(f64, f64)> = eligible_clusters(study, filter)
        .filter_map(|c| metric.of_cluster(c).map(|m| (feature.of_cluster(c), m)))
        .collect();
    if observations.len() < 8 {
        return None;
    }
    let split = median_split(&observations)?;
    // The significance test runs on log-transformed values for the two
    // time metrics: pickup and task times span four-plus orders of
    // magnitude (§4.9 sees pickups up to 1.6e7 s), where a mean-based test
    // on raw seconds is dominated by a handful of stale clusters. The
    // paper specifies "a t-test" on the bin distributions without fixing
    // the scale; log-seconds is the standard choice for latencies.
    // Reported bin medians stay on the raw scale.
    let t = if metric == Metric::Disagreement {
        split.t_test()?
    } else {
        let ln =
            |xs: &[f64]| -> Vec<f64> { xs.iter().filter(|&&v| v > 0.0).map(|v| v.ln()).collect() };
        crowd_stats::ttest::welch_t_test(&ln(&split.bin1), &ln(&split.bin2))?
    };
    let cdf1 = EmpiricalCdf::new(&split.bin1)?;
    let cdf2 = EmpiricalCdf::new(&split.bin2)?;
    Some(Experiment {
        feature,
        metric,
        filter,
        split_value: split.split_value,
        bin1: BinSummary { n: split.bin1.len(), median: split.median1()? },
        bin2: BinSummary { n: split.bin2.len(), median: split.median2()? },
        p_value: t.p_value,
        significant: t.significant(),
        cdf1: cdf1.points(),
        cdf2: cdf2.points(),
    })
}

/// The §4 study population: labeled clusters with the subjective tail
/// pruned (§4.1: disagreement > 0.5 removed), optionally label-filtered.
pub fn eligible_clusters<'a>(
    study: &'a Study,
    filter: Option<LabelFilter>,
) -> impl Iterator<Item = &'a ClusterInfo> + 'a {
    study
        .labeled_clusters()
        .filter(|c| c.disagreement.map(|d| d <= DISAGREEMENT_PRUNE_THRESHOLD).unwrap_or(true))
        .filter(move |c| filter.map(|f| f.matches(c)).unwrap_or(true))
}

/// Runs the full §4 grid: every feature × metric pair, unfiltered.
pub fn full_grid(study: &Study) -> Vec<Experiment> {
    let mut out = Vec::new();
    for feature in Feature::ALL {
        for metric in Metric::ALL {
            if let Some(e) = run_experiment(study, feature, metric, None) {
                out.push(e);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::default_study()
    }

    #[test]
    fn pruning_removes_subjective_tail() {
        let s = study();
        let all = s.labeled_clusters().count();
        let kept = eligible_clusters(s, None).count();
        assert!(kept < all, "some subjective clusters pruned");
        assert!(kept as f64 / all as f64 > 0.8, "but only a small tail");
        for c in eligible_clusters(s, None) {
            if let Some(d) = c.disagreement {
                assert!(d <= DISAGREEMENT_PRUNE_THRESHOLD);
            }
        }
    }

    #[test]
    fn words_reduce_disagreement() {
        // §4.3 / Table 1: higher #words → lower disagreement.
        let s = study();
        let e = run_experiment(s, Feature::Words, Metric::Disagreement, None).unwrap();
        assert!(e.bin2.median < e.bin1.median, "bin2 {} < bin1 {}", e.bin2.median, e.bin1.median);
        assert!(e.significant, "p = {}", e.p_value);
    }

    #[test]
    fn items_reduce_disagreement_and_task_time_but_raise_pickup() {
        // §4.5 / Tables 1–3.
        let s = study();
        let d = run_experiment(s, Feature::Items, Metric::Disagreement, None).unwrap();
        assert!(d.effect() < 0.0, "items cut disagreement");
        let t = run_experiment(s, Feature::Items, Metric::TaskTime, None).unwrap();
        assert!(t.effect() < 0.0, "items cut task time");
        let p = run_experiment(s, Feature::Items, Metric::PickupTime, None).unwrap();
        assert!(p.effect() > 0.0, "items raise pickup time");
    }

    #[test]
    fn text_boxes_raise_disagreement_and_task_time() {
        // §4.4 / Tables 1–2: the split lands at the "=0 vs >0" boundary.
        let s = study();
        let d = run_experiment(s, Feature::TextBoxes, Metric::Disagreement, None).unwrap();
        assert_eq!(d.split_value, 0.0, "median #text-boxes is 0");
        assert!(d.effect() > 0.0, "text boxes raise disagreement");
        let t = run_experiment(s, Feature::TextBoxes, Metric::TaskTime, None).unwrap();
        assert!(t.effect() > 0.0, "text boxes raise task time");
        assert!(t.significant_or_strong(), "p = {}", t.p_value);
    }

    #[test]
    fn examples_cut_disagreement_and_pickup() {
        // §4.6 / Tables 1 & 3.
        let s = study();
        let d = run_experiment(s, Feature::Examples, Metric::Disagreement, None).unwrap();
        assert!(d.effect() < 0.0, "examples cut disagreement: {}", d.effect());
        let p = run_experiment(s, Feature::Examples, Metric::PickupTime, None).unwrap();
        assert!(p.effect() < 0.0, "examples cut pickup dramatically");
        assert!(
            p.bin2.median < p.bin1.median * 0.6,
            "large effect: {} vs {}",
            p.bin2.median,
            p.bin1.median
        );
    }

    #[test]
    fn images_cut_pickup_and_task_time() {
        // §4.7 / Tables 2 & 3.
        let s = study();
        let p = run_experiment(s, Feature::Images, Metric::PickupTime, None).unwrap();
        assert!(p.effect() < 0.0, "images cut pickup");
        let t = run_experiment(s, Feature::Images, Metric::TaskTime, None).unwrap();
        assert!(t.effect() < 0.0, "images cut task time");
    }

    #[test]
    fn cdfs_are_valid_distributions() {
        let s = study();
        let e = run_experiment(s, Feature::Words, Metric::Disagreement, None).unwrap();
        for cdf in [&e.cdf1, &e.cdf2] {
            assert!(!cdf.is_empty());
            for w in cdf.windows(2) {
                assert!(w[0].0 < w[1].0, "x ascending");
                assert!(w[0].1 <= w[1].1, "y monotone");
            }
            assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn full_grid_covers_all_pairs() {
        let s = study();
        let grid = full_grid(s);
        assert_eq!(grid.len(), 15, "5 features × 3 metrics");
    }

    #[test]
    fn filter_restricts_population() {
        let s = study();
        let all = eligible_clusters(s, None).count();
        let gathers = eligible_clusters(s, Some(LabelFilter::Operator(Operator::Gather))).count();
        assert!(gathers < all);
        assert!(gathers > 0);
        for c in eligible_clusters(s, Some(LabelFilter::Goal(Goal::SentimentAnalysis))) {
            assert!(c.goals.contains(Goal::SentimentAnalysis));
        }
    }

    #[test]
    fn too_small_population_returns_none() {
        let tiny = Study::new(crowd_core::DatasetBuilder::new().finish().unwrap());
        assert!(run_experiment(&tiny, Feature::Words, Metric::Disagreement, None).is_none());
    }
}
