//! Pickup-latency forecasting: "when will my batch get picked up?"
//!
//! §6 notes that "understanding how tasks are picked up and worked on can
//! help the community develop better models of task latency". This module
//! is such a model: it fits a lognormal to the pickup medians of clusters
//! matching a design profile (examples / images / batch size — the §4
//! features that move pickup) and answers quantile and
//! completion-fraction queries for a prospective batch.

use crowd_stats::special::normal_cdf;

use crate::design::methodology::eligible_clusters;
use crate::study::Study;

/// The design profile of a prospective batch, in terms of the §4 features
/// that significantly move pickup time (Tables 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PickupProfile {
    /// Will the interface carry prominent examples?
    pub has_examples: bool,
    /// Will it carry images?
    pub has_images: bool,
    /// Will the batch be large (items above the marketplace median)?
    pub large_batch: bool,
}

impl PickupProfile {
    /// All eight profiles.
    pub fn all() -> impl Iterator<Item = PickupProfile> {
        (0..8u8).map(|b| PickupProfile {
            has_examples: b & 1 != 0,
            has_images: b & 2 != 0,
            large_batch: b & 4 != 0,
        })
    }
}

/// A fitted lognormal pickup model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PickupForecast {
    /// Mean of ln(pickup seconds) across matching clusters.
    pub mu: f64,
    /// Standard deviation of ln(pickup seconds).
    pub sigma: f64,
    /// Clusters the fit is based on.
    pub n_clusters: usize,
}

impl PickupForecast {
    /// Median forecast pickup, seconds.
    pub fn median_secs(&self) -> f64 {
        self.mu.exp()
    }

    /// The `p`-quantile (`0 < p < 1`) of pickup time in seconds.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile needs p in (0, 1)");
        (self.mu + self.sigma * z_quantile(p)).exp()
    }

    /// Expected fraction of instances picked up within `secs`.
    pub fn completion_fraction(&self, secs: f64) -> f64 {
        if secs <= 0.0 {
            return 0.0;
        }
        let z = (secs.ln() - self.mu) / self.sigma.max(1e-9);
        normal_cdf(z)
    }
}

/// Standard-normal quantile by bisection over the CDF (sufficient accuracy
/// for forecasting; avoids an inverse-erf implementation).
fn z_quantile(p: f64) -> f64 {
    let (mut lo, mut hi) = (-8.0f64, 8.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Fits the pickup model for a profile. `None` when fewer than 5 matching
/// clusters carry a pickup metric.
pub fn fit_pickup(study: &Study, profile: PickupProfile) -> Option<PickupForecast> {
    let items_median = {
        let mut all: Vec<f64> = eligible_clusters(study, None).map(|c| c.items).collect();
        if all.is_empty() {
            return None;
        }
        all.sort_by(f64::total_cmp);
        all[all.len() / 2]
    };
    let ln_pickups: Vec<f64> = eligible_clusters(study, None)
        .filter(|c| (c.examples > 0.0) == profile.has_examples)
        .filter(|c| (c.images > 0.0) == profile.has_images)
        .filter(|c| (c.items > items_median) == profile.large_batch)
        .filter_map(|c| c.pickup_time)
        .filter(|&p| p > 0.0)
        .map(f64::ln)
        .collect();
    if ln_pickups.len() < 5 {
        return None;
    }
    let n = ln_pickups.len() as f64;
    let mu = ln_pickups.iter().sum::<f64>() / n;
    let var = ln_pickups.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / (n - 1.0);
    Some(PickupForecast { mu, sigma: var.sqrt().max(1e-6), n_clusters: ln_pickups.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::default_study()
    }

    const BASELINE: PickupProfile =
        PickupProfile { has_examples: false, has_images: false, large_batch: false };

    #[test]
    fn fits_the_baseline_profile() {
        let f = fit_pickup(study(), BASELINE).expect("plenty of plain clusters");
        assert!(f.n_clusters > 50);
        assert!(f.median_secs() > 100.0 && f.median_secs() < 1.0e6, "{}", f.median_secs());
        assert!(f.sigma > 0.1);
    }

    #[test]
    fn quantiles_are_monotone() {
        let f = fit_pickup(study(), BASELINE).unwrap();
        let q = [0.1, 0.25, 0.5, 0.75, 0.9].map(|p| f.quantile(p));
        for w in q.windows(2) {
            assert!(w[0] < w[1]);
        }
        // The 0.5 quantile is the median.
        assert!((f.quantile(0.5) / f.median_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn completion_fraction_inverts_quantiles() {
        let f = fit_pickup(study(), BASELINE).unwrap();
        for p in [0.2, 0.5, 0.8] {
            let t = f.quantile(p);
            assert!((f.completion_fraction(t) - p).abs() < 1e-5);
        }
        assert_eq!(f.completion_fraction(0.0), 0.0);
        assert!(f.completion_fraction(1.0e12) > 0.999);
    }

    #[test]
    fn examples_profile_forecasts_faster_pickup() {
        // Table 3: examples cut pickup ~4.7×.
        let s = study();
        let plain = fit_pickup(s, BASELINE).unwrap();
        let with_examples = fit_pickup(s, PickupProfile { has_examples: true, ..BASELINE });
        if let Some(ex) = with_examples {
            assert!(
                ex.median_secs() < plain.median_secs(),
                "{} < {}",
                ex.median_secs(),
                plain.median_secs()
            );
        }
    }

    #[test]
    fn images_profile_forecasts_faster_pickup() {
        let s = study();
        let plain = fit_pickup(s, BASELINE).unwrap();
        let with_images = fit_pickup(s, PickupProfile { has_images: true, ..BASELINE }).unwrap();
        assert!(with_images.median_secs() < plain.median_secs());
    }

    #[test]
    fn z_quantile_matches_known_values() {
        assert!((z_quantile(0.5)).abs() < 1e-6, "{}", z_quantile(0.5));
        assert!((z_quantile(0.975) - 1.959_96).abs() < 1e-3);
        assert!((z_quantile(0.8413) - 1.0).abs() < 1e-2);
        assert!((z_quantile(0.0228) + 2.0).abs() < 1e-2);
    }

    #[test]
    fn empty_study_yields_none() {
        let s = crate::study::Study::new(crowd_core::DatasetBuilder::new().finish().unwrap());
        assert!(fit_pickup(&s, BASELINE).is_none());
    }

    #[test]
    fn all_profiles_enumerate() {
        assert_eq!(PickupProfile::all().count(), 8);
    }
}
