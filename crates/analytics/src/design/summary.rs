//! Summary tables 1–3 (paper §4.8): per metric, the features with
//! significant correlations and their bin medians.

use crate::design::methodology::{run_experiment, Experiment, Feature};
use crate::design::metrics::Metric;
use crate::study::Study;

/// One row of a summary table.
#[derive(Debug, Clone)]
pub struct SummaryRow {
    /// The feature.
    pub feature: Feature,
    /// Description of bin 1 (e.g. `#words ≤ 466`).
    pub bin1_desc: String,
    /// Clusters in bin 1.
    pub bin1_n: usize,
    /// Description of bin 2.
    pub bin2_desc: String,
    /// Clusters in bin 2.
    pub bin2_n: usize,
    /// Median metric value in bin 1.
    pub bin1_median: f64,
    /// Median metric value in bin 2.
    pub bin2_median: f64,
    /// t-test p-value.
    pub p_value: f64,
    /// Significant at the paper's p < 0.01 bar.
    pub significant: bool,
}

/// A summary table for one metric (Tables 1, 2, 3).
#[derive(Debug, Clone)]
pub struct SummaryTable {
    /// The metric summarized.
    pub metric: Metric,
    /// One row per feature.
    pub rows: Vec<SummaryRow>,
}

fn row_from(e: &Experiment) -> SummaryRow {
    // Binary-prevalence features split "=0 vs >0"; continuous features
    // split at the median value — match the paper's bin descriptors.
    let (d1, d2) = if e.split_value == 0.0 {
        (format!("{} = 0", e.feature.name()), format!("{} > 0", e.feature.name()))
    } else {
        (
            format!("{} ≤ {:.1}", e.feature.name(), e.split_value),
            format!("{} > {:.1}", e.feature.name(), e.split_value),
        )
    };
    SummaryRow {
        feature: e.feature,
        bin1_desc: d1,
        bin1_n: e.bin1.n,
        bin2_desc: d2,
        bin2_n: e.bin2.n,
        bin1_median: e.bin1.median,
        bin2_median: e.bin2.median,
        p_value: e.p_value,
        significant: e.significant,
    }
}

fn table(study: &Study, metric: Metric, features: &[Feature]) -> SummaryTable {
    let rows = features
        .iter()
        .filter_map(|&f| run_experiment(study, f, metric, None))
        .map(|e| row_from(&e))
        .collect();
    SummaryTable { metric, rows }
}

/// Table 1: features correlated with the disagreement score
/// (#words, #items, #text-boxes, #examples).
pub fn disagreement_table(study: &Study) -> SummaryTable {
    table(
        study,
        Metric::Disagreement,
        &[Feature::Words, Feature::Items, Feature::TextBoxes, Feature::Examples],
    )
}

/// Table 2: features correlated with median task time
/// (#items, #text-boxes, #images).
pub fn task_time_table(study: &Study) -> SummaryTable {
    table(study, Metric::TaskTime, &[Feature::Items, Feature::TextBoxes, Feature::Images])
}

/// Table 3: features correlated with median pickup time
/// (#items, #examples, #images).
pub fn pickup_time_table(study: &Study) -> SummaryTable {
    table(study, Metric::PickupTime, &[Feature::Items, Feature::Examples, Feature::Images])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::default_study()
    }

    #[test]
    fn table1_directions_match_paper() {
        let t = disagreement_table(study());
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            match row.feature {
                Feature::Words | Feature::Items | Feature::Examples => {
                    assert!(
                        row.bin2_median < row.bin1_median,
                        "{:?}: {} vs {}",
                        row.feature,
                        row.bin1_median,
                        row.bin2_median
                    );
                }
                Feature::TextBoxes => assert!(row.bin2_median > row.bin1_median),
                Feature::Images => unreachable!("not part of Table 1"),
            }
        }
    }

    #[test]
    fn table2_directions_match_paper() {
        let t = task_time_table(study());
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            match row.feature {
                Feature::Items | Feature::Images => {
                    assert!(row.bin2_median < row.bin1_median, "{:?}", row.feature)
                }
                Feature::TextBoxes => assert!(row.bin2_median > row.bin1_median),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn table3_directions_match_paper() {
        let t = pickup_time_table(study());
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            match row.feature {
                Feature::Examples | Feature::Images => {
                    assert!(row.bin2_median < row.bin1_median, "{:?}", row.feature)
                }
                Feature::Items => assert!(row.bin2_median > row.bin1_median),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn significant_rows_dominate() {
        // The paper's tables only contain correlations passing p < 0.01.
        let s = study();
        let significant: usize = [disagreement_table(s), task_time_table(s), pickup_time_table(s)]
            .iter()
            .flat_map(|t| &t.rows)
            .filter(|r| r.significant)
            .count();
        // At 1% scale the cluster population is ~5× smaller than the
        // paper's, so the weakest effects (e.g. examples × disagreement,
        // n₂ ≈ 25) can miss the 0.01 bar purely on power.
        assert!(significant >= 6, "most of the 10 rows significant, got {significant}");
    }

    #[test]
    fn binary_features_get_zero_split_descriptions() {
        let t = pickup_time_table(study());
        let examples_row =
            t.rows.iter().find(|r| r.feature == Feature::Examples).expect("examples row");
        assert!(examples_row.bin1_desc.contains("= 0"), "{}", examples_row.bin1_desc);
        assert!(examples_row.bin2_desc.contains("> 0"));
    }

    #[test]
    fn bin_counts_cover_population() {
        let s = study();
        let eligible = crate::design::methodology::eligible_clusters(s, None)
            .filter(|c| c.disagreement.is_some())
            .count();
        let t = disagreement_table(s);
        for row in &t.rows {
            assert_eq!(row.bin1_n + row.bin2_n, eligible, "{:?}", row.feature);
        }
    }
}
