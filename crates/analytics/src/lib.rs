//! # crowd-analytics
//!
//! Every analysis of the VLDB'17 crowdsourcing-marketplace study as a
//! typed Rust API, organized exactly like the paper:
//!
//! * [`marketplace`] — §3: task arrivals, worker availability, load
//!   distribution over clusters, task-type characterization, complexity
//!   trends (Figs 1–12);
//! * [`design`] — §4: effectiveness metrics, the feature/metric correlation
//!   methodology, label drill-downs, summary tables 1–3, and the §4.9
//!   predictive setting (Figs 13–14, 25);
//! * [`workers`] — §5: labor sources, geography, workloads, lifetimes and
//!   engagement (Figs 26–30).
//!
//! All analyses run against a [`Study`], which performs the paper's §2.4
//! enrichment over a raw [`crowd_core::Dataset`]: clustering batches by
//! task-HTML similarity, extracting design parameters from the HTML, and
//! computing the three effectiveness metrics per batch and cluster. The
//! analyses never look at generator internals — only at dataset rows.
//!
//! ```no_run
//! use crowd_sim::{simulate, SimConfig};
//! use crowd_analytics::Study;
//!
//! let study = Study::new(simulate(&SimConfig::default_scale(7)));
//! let arrivals = crowd_analytics::marketplace::arrivals::weekly(&study);
//! let t1 = crowd_analytics::design::summary::disagreement_table(&study);
//! println!("{} weeks, {} feature rows", arrivals.weeks.len(), t1.rows.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design;
pub mod fused;
pub mod marketplace;
pub mod study;
#[cfg(test)]
pub(crate) mod testutil;
pub mod view;
pub mod workers;

pub use study::{BatchMetrics, ClusterInfo, StreamingEnricher, Study};
pub use view::{FusedView, ViewHandle, ViewSnapshot};
