//! The live, versioned fused view: [`Study::fused`]'s aggregates
//! maintained **incrementally** under a stream of appended instance rows,
//! instead of one memoized scan over a frozen table.
//!
//! ## Equivalence contract
//!
//! After every applied delta, [`FusedView::apply`] publishes a snapshot
//! whose [`Fused`] is equal — under `crowd-testkit`'s order-tolerant
//! discipline, and bit-identical on every count, median, and integer-
//! second sum — to a cold batch [`Study`] built over the same row prefix
//! (same entities, same rows, same order). The mechanics that make this
//! hold:
//!
//! * **Chunk discipline.** Rows fold into [`ScanPass::CHUNK`]-sized
//!   accumulators merged in chunk order, exactly like the batch scan. The
//!   view keeps a merged prefix of *full* chunks plus a sub-chunk tail;
//!   each publish re-folds only the tail and merges it last, so every
//!   float sum reproduces the batch fold's rounding bit-for-bit.
//! * **Unclamped week keys.** The batch accumulator clamps week offsets
//!   into `[0, n_weeks)`, but `n_weeks` is derived from the dataset's own
//!   time span — the upper clamp never binds (every timestamp is ≤
//!   `time_max` by construction), and the lower clamp only floors
//!   negative-pickup rows at week 0, with `w0` fixed by the entity-side
//!   batch schedule. So the view keys weekly state by the plain
//!   `max(week - w0, 0)` offset and materializes the `n_weeks`-sized
//!   vectors at publish time, when the prefix's true span is known.
//! * **Publish-time enrichment.** `rel_time_sum` depends on per-batch
//!   median task times, which shift as rows arrive. The view keeps
//!   integer-exact per-`(source, batch)` work sums plus per-sampled-batch
//!   work-time piles, and recomputes medians + ratios at publish — medians
//!   of identical multisets are bit-identical (the shared sort-based
//!   [`median`]), and regrouping the positive ratio sum stays within the
//!   testkit ulp bound.
//!
//! ## Concurrency
//!
//! One writer owns the [`FusedView`]; readers hold cloneable
//! [`ViewHandle`]s. A publish builds the complete immutable
//! [`ViewSnapshot`] *first* and then swaps one `Arc` under a write lock,
//! so a reader always observes exactly one fully-formed version — never a
//! torn mix — and versions are monotone.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use crowd_core::prelude::*;
use crowd_stats::descriptive::median;

use crate::design::metrics::LatencyPoint;
use crate::fused::{month_index, Fused, SourceAgg, WorkerAgg};

/// One published, immutable state of the view.
#[derive(Debug)]
pub struct ViewSnapshot {
    /// Publish counter: 0 for the empty view, +1 per [`FusedView::apply`].
    pub version: u64,
    /// Instance rows folded into this snapshot.
    pub rows: usize,
    /// The fused aggregates over exactly those rows — equal to what a
    /// batch [`Study`](crate::Study) over the same prefix computes.
    pub fused: Fused,
}

/// The shared slot a publish swaps and a [`ViewHandle`] reads.
struct ViewShared {
    current: RwLock<Arc<ViewSnapshot>>,
}

/// A cloneable read handle: [`snapshot`](ViewHandle::snapshot) returns the
/// latest fully-published version.
#[derive(Clone)]
pub struct ViewHandle {
    shared: Arc<ViewShared>,
}

impl ViewHandle {
    /// The latest published snapshot. Lock-held time is one `Arc` clone;
    /// all query work happens against the immutable snapshot afterwards.
    pub fn snapshot(&self) -> Arc<ViewSnapshot> {
        Arc::clone(&self.shared.current.read().expect("view lock poisoned"))
    }
}

/// Per-source running totals (the incrementally maintainable half of
/// [`SourceAgg`]; `rel_time_*` is derived at publish).
#[derive(Debug, Clone, Copy, Default)]
struct SourceCore {
    n_tasks: u64,
    trust_sum: f64,
}

/// The delta accumulator: [`crate::fused::Fused`]'s raw state with
/// unclamped week keys and publish-deferred enrichment (see module docs).
#[derive(Debug, Clone, Default)]
struct LiveAcc {
    workers: BTreeMap<u32, WorkerAgg>,
    sources: BTreeMap<u32, SourceCore>,
    /// `(source, batch)` → (work-seconds sum, rows); sampled batches only.
    /// Work seconds are integer-valued, so the sum is order-exact.
    src_batch: BTreeMap<(u32, u32), (f64, u64)>,
    /// Work-time pile per sampled batch, in row order — the multiset the
    /// publish-time batch median is computed from.
    batch_times: BTreeMap<u32, Vec<f64>>,
    /// Keyed by unclamped week offset (grown on demand).
    issued: Vec<u64>,
    completed: Vec<u64>,
    pickups: Vec<Vec<f64>>,
    weekday: [u64; 7],
    per_day: BTreeMap<i64, u64>,
    buckets: BTreeMap<i32, (Vec<f64>, Vec<f64>)>,
    per_item: BTreeMap<(u32, u32), u32>,
    /// Largest end-time week seen (raw week index, not offset) — the
    /// stream-side contribution to the publish-time week window.
    max_end_week: Option<i32>,
}

fn bump(v: &mut Vec<u64>, i: usize) {
    if v.len() <= i {
        v.resize(i + 1, 0);
    }
    v[i] += 1;
}

impl LiveAcc {
    /// Mirrors [`crate::fused::FusedAcc::accept`] minus the week clamp and
    /// the batch-median lookup; any drift between the two is exactly what
    /// the differential suite pins.
    fn accept(&mut self, entities: &Dataset, w0: i32, row: InstanceRef<'_>) {
        let created = entities.batch(row.batch).created_at;
        let work_secs = row.work_time().as_secs() as f64;
        let pickup = (row.start - created).as_secs() as f64;
        let day = row.start.day_number();
        let week_off = |t: Timestamp| (t.week().0 - w0).max(0) as usize;

        // ---- per worker -------------------------------------------------
        let w = self.workers.entry(row.worker.raw()).or_insert_with(WorkerAgg::new);
        w.tasks += 1;
        w.work_secs += work_secs;
        w.trust_sum += f64::from(row.trust);
        w.first_day = w.first_day.min(day);
        w.last_day = w.last_day.max(day);
        w.days.insert(day);
        w.months.insert(month_index(row.start));
        w.intervals.push((row.start, row.end));
        let cell = w.weeks.entry(week_off(row.start)).or_default();
        cell.tasks += 1;
        cell.hours += row.work_time().as_hours_f64();

        // ---- per source -------------------------------------------------
        let src = entities.worker(row.worker).source;
        let s = self.sources.entry(src.raw()).or_default();
        s.n_tasks += 1;
        s.trust_sum += f64::from(row.trust);
        if entities.batch(row.batch).sampled {
            let rel = self.src_batch.entry((src.raw(), row.batch.raw())).or_default();
            rel.0 += work_secs;
            rel.1 += 1;
            self.batch_times.entry(row.batch.raw()).or_default().push(work_secs);
        }

        // ---- arrival / load series --------------------------------------
        bump(&mut self.issued, week_off(created));
        bump(&mut self.completed, week_off(row.end));
        let wi = week_off(created);
        if self.pickups.len() <= wi {
            self.pickups.resize(wi + 1, Vec::new());
        }
        self.pickups[wi].push(pickup);
        self.weekday[created.weekday().index()] += 1;
        *self.per_day.entry(created.day_number()).or_insert(0) += 1;

        // ---- latency decomposition (Fig 13b) ----------------------------
        let p = pickup.max(1.0);
        let task = row.work_time().as_secs().max(1) as f64;
        let splice = (2.0 * (p + task).log10()).floor() as i32;
        let bucket = self.buckets.entry(splice).or_default();
        bucket.0.push(p);
        bucket.1.push(task);

        // ---- redundancy -------------------------------------------------
        *self.per_item.entry((row.batch.raw(), row.item.raw())).or_insert(0) += 1;

        let ew = row.end.week().0;
        self.max_end_week = Some(self.max_end_week.map_or(ew, |m| m.max(ew)));
    }

    /// Mirrors [`crate::fused::FusedAcc::merge`]; `other` is the later
    /// chunk, so its piles extend after `self`'s (row order preserved).
    fn merge(&mut self, other: LiveAcc) {
        for (k, v) in other.workers {
            match self.workers.entry(k) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().absorb(v),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
        for (k, v) in other.sources {
            let mine = self.sources.entry(k).or_default();
            mine.n_tasks += v.n_tasks;
            mine.trust_sum += v.trust_sum;
        }
        for (k, (sum, n)) in other.src_batch {
            let mine = self.src_batch.entry(k).or_default();
            mine.0 += sum;
            mine.1 += n;
        }
        for (b, pile) in other.batch_times {
            self.batch_times.entry(b).or_default().extend(pile);
        }
        if self.issued.len() < other.issued.len() {
            self.issued.resize(other.issued.len(), 0);
        }
        for (i, c) in other.issued.into_iter().enumerate() {
            self.issued[i] += c;
        }
        if self.completed.len() < other.completed.len() {
            self.completed.resize(other.completed.len(), 0);
        }
        for (i, c) in other.completed.into_iter().enumerate() {
            self.completed[i] += c;
        }
        if self.pickups.len() < other.pickups.len() {
            self.pickups.resize(other.pickups.len(), Vec::new());
        }
        for (i, pile) in other.pickups.into_iter().enumerate() {
            self.pickups[i].extend(pile);
        }
        for (mine, theirs) in self.weekday.iter_mut().zip(other.weekday) {
            *mine += theirs;
        }
        for (d, c) in other.per_day {
            *self.per_day.entry(d).or_insert(0) += c;
        }
        for (splice, (pickups, tasks)) in other.buckets {
            let mine = self.buckets.entry(splice).or_default();
            mine.0.extend(pickups);
            mine.1.extend(tasks);
        }
        for (key, c) in other.per_item {
            *self.per_item.entry(key).or_insert(0) += c;
        }
        if let Some(ew) = other.max_end_week {
            self.max_end_week = Some(self.max_end_week.map_or(ew, |m| m.max(ew)));
        }
    }

    /// Materializes a [`Fused`] for the current prefix: fixes the week
    /// window, scatters the weekly series, and runs publish-time
    /// enrichment (batch medians → per-source relative time).
    fn shape(mut self, w0: i32, batch_max_week: Option<i32>) -> Fused {
        let max_week = match (batch_max_week, self.max_end_week) {
            (Some(b), Some(e)) => Some(b.max(e)),
            (b, e) => b.or(e),
        };
        let (w0, n_weeks) = match max_week {
            // `max_week ≥ w0` always: it includes the batch schedule `w0`
            // came from, and rows only push it later.
            Some(mw) => (w0, (mw - w0 + 1).max(0) as usize),
            None => (0, 0),
        };

        self.issued.resize(n_weeks, 0);
        self.completed.resize(n_weeks, 0);
        self.pickups.resize(n_weeks, Vec::new());
        let median_pickup = self.pickups.iter().map(|pile| median(pile)).collect();

        // Publish-time enrichment: batch medians over the prefix piles,
        // then the grouped ratio sums in (source, batch) key order.
        let batch_median: BTreeMap<u32, Option<f64>> =
            self.batch_times.iter().map(|(&b, pile)| (b, median(pile))).collect();
        let mut sources: BTreeMap<u32, SourceAgg> = self
            .sources
            .iter()
            .map(|(&id, core)| {
                (
                    id,
                    SourceAgg {
                        n_tasks: core.n_tasks,
                        trust_sum: core.trust_sum,
                        rel_time_sum: 0.0,
                        rel_time_n: 0,
                    },
                )
            })
            .collect();
        for (&(src, batch), &(work_sum, n)) in &self.src_batch {
            if let Some(Some(med)) = batch_median.get(&batch) {
                if *med > 0.0 {
                    let agg = sources.get_mut(&src).expect("src_batch implies a source entry");
                    agg.rel_time_sum += work_sum / med;
                    agg.rel_time_n += n;
                }
            }
        }

        let instance_latency: Vec<LatencyPoint> = self
            .buckets
            .into_iter()
            .filter_map(|(splice, (pickups, tasks))| {
                let e2e = 10f64.powf(f64::from(splice) / 2.0 + 0.25);
                Some(LatencyPoint {
                    end_to_end: e2e,
                    pickup: median(&pickups)?,
                    task: median(&tasks)?,
                })
            })
            .collect();

        Fused {
            w0,
            n_weeks,
            workers: self.workers,
            sources,
            issued: self.issued,
            completed: self.completed,
            median_pickup,
            weekday: self.weekday,
            per_day: self.per_day,
            instance_latency,
            per_item: self.per_item,
        }
    }
}

/// The incremental fused view (see module docs).
pub struct FusedView {
    entities: Arc<Dataset>,
    /// First week of the batch schedule; 0 when there are no batches (and
    /// then no row can ever arrive, since rows reference batches).
    w0: i32,
    /// Last week of the batch schedule, `None` without batches.
    batch_max_week: Option<i32>,
    /// Merged accumulator over every *full* chunk of the row log.
    total: LiveAcc,
    /// Rows past the last full chunk boundary (< [`ScanPass::CHUNK`]).
    tail: InstanceColumns,
    rows: usize,
    version: u64,
    shared: Arc<ViewShared>,
}

impl FusedView {
    /// An empty view over an entity-only dataset (batches, workers,
    /// sources present; instance table empty). Publishes version 0, which
    /// already equals the batch fused pass over zero rows.
    ///
    /// # Panics
    /// If `entities` carries instance rows — the view owns the row log.
    pub fn new(entities: Arc<Dataset>) -> FusedView {
        assert!(
            entities.instances.is_empty(),
            "FusedView is built over an entity-only dataset; rows arrive as deltas"
        );
        let weeks: Vec<i32> = entities.batches.iter().map(|b| b.created_at.week().0).collect();
        let w0 = weeks.iter().copied().min().unwrap_or(0);
        let batch_max_week = weeks.iter().copied().max();
        let fused = LiveAcc::default().shape(w0, batch_max_week);
        let snapshot = Arc::new(ViewSnapshot { version: 0, rows: 0, fused });
        let shared = Arc::new(ViewShared { current: RwLock::new(snapshot) });
        FusedView {
            entities,
            w0,
            batch_max_week,
            total: LiveAcc::default(),
            tail: InstanceColumns::new(),
            rows: 0,
            version: 0,
            shared,
        }
    }

    /// The entity context rows are resolved against.
    pub fn entities(&self) -> &Arc<Dataset> {
        &self.entities
    }

    /// Rows applied so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Version of the latest published snapshot.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// A read handle for concurrent queriers.
    pub fn handle(&self) -> ViewHandle {
        ViewHandle { shared: Arc::clone(&self.shared) }
    }

    /// Applies one delta batch of completed rows (appended to the log in
    /// order) and publishes a new snapshot — empty deltas publish too, so
    /// a heartbeat delta still bumps the version. Returns the snapshot.
    pub fn apply(&mut self, delta: &InstanceColumns) -> Arc<ViewSnapshot> {
        self.tail.extend_from(delta, 0..delta.len());
        self.rows += delta.len();
        // Drain every completed CHUNK from the tail into the running
        // total, folding in row order and merging in chunk order — the
        // batch scan's exact discipline.
        while self.tail.len() >= ScanPass::CHUNK {
            let rest = self.tail.split_off(ScanPass::CHUNK);
            let chunk = std::mem::replace(&mut self.tail, rest);
            self.total.merge(self.fold(&chunk));
        }
        self.publish()
    }

    fn fold(&self, cols: &InstanceColumns) -> LiveAcc {
        let mut acc = LiveAcc::default();
        for row in cols.iter() {
            acc.accept(&self.entities, self.w0, row);
        }
        acc
    }

    fn publish(&mut self) -> Arc<ViewSnapshot> {
        let mut acc = self.total.clone();
        if !self.tail.is_empty() {
            acc.merge(self.fold(&self.tail));
        }
        let fused = acc.shape(self.w0, self.batch_max_week);
        self.version += 1;
        let snapshot = Arc::new(ViewSnapshot { version: self.version, rows: self.rows, fused });
        *self.shared.current.write().expect("view lock poisoned") = Arc::clone(&snapshot);
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Study;
    use crowd_core::fixture::{order_sensitive, Fixture};

    fn entities_of(ds: &Dataset) -> Dataset {
        let mut e = ds.clone();
        e.instances = InstanceColumns::new();
        e
    }

    fn prefix_study(ds: &Dataset, rows: &InstanceColumns, n: usize) -> Study {
        let mut prefix = entities_of(ds);
        prefix.instances = rows.clone_range(0..n);
        Study::new(prefix)
    }

    #[test]
    fn empty_view_matches_batch_over_entities() {
        let mut f = Fixture::new();
        f.add_workers(2);
        f.add_batch(Duration::ZERO);
        f.add_batch(Duration::from_days(20));
        let ds = f.finish();
        let view = FusedView::new(Arc::new(entities_of(&ds)));
        let snap = view.handle().snapshot();
        let batch = Study::new(entities_of(&ds));
        assert_eq!(snap.version, 0);
        assert_eq!(&snap.fused, batch.fused(), "empty view equals batch over zero rows");
    }

    #[test]
    fn single_delta_matches_batch_exactly() {
        let mut f = Fixture::new();
        let ws = f.add_workers(3);
        let b0 = f.add_batch(Duration::ZERO);
        let b1 = f.add_batch(Duration::from_days(9));
        for i in 0..40i64 {
            f.instance(
                if i % 2 == 0 { b0 } else { b1 },
                (i % 7) as u32,
                ws[(i % 3) as usize],
                i * 937,
                30 + i,
            );
        }
        let ds = f.finish();
        let mut view = FusedView::new(Arc::new(entities_of(&ds)));
        let snap = view.apply(&ds.instances);
        let batch = Study::new(ds.clone());
        assert_eq!(&snap.fused, batch.fused(), "one-delta view is bitwise equal to batch");
    }

    #[test]
    fn chunk_boundary_deltas_stay_bitwise_equal() {
        // Order-sensitive trust magnitudes across a 2·CHUNK+1 log: any
        // deviation from the batch chunk/merge discipline shows up in the
        // last ulp of the sums.
        let ds = order_sensitive(2 * ScanPass::CHUNK + 1);
        let mut view = FusedView::new(Arc::new(entities_of(&ds)));
        let cuts = [1usize, ScanPass::CHUNK - 1, ScanPass::CHUNK + 3, 2 * ScanPass::CHUNK + 1];
        let mut done = 0usize;
        for cut in cuts {
            let delta = ds.instances.clone_range(done..cut);
            done = cut;
            let snap = view.apply(&delta);
            let oracle = prefix_study(&ds, &ds.instances, cut);
            assert_eq!(snap.rows, cut);
            assert_eq!(&snap.fused, oracle.fused(), "prefix {cut} must match batch");
        }
    }

    #[test]
    fn empty_deltas_bump_versions_without_changing_state() {
        let ds = order_sensitive(10);
        let mut view = FusedView::new(Arc::new(entities_of(&ds)));
        let a = view.apply(&ds.instances);
        let b = view.apply(&InstanceColumns::new());
        assert_eq!(b.version, a.version + 1);
        assert_eq!(a.fused, b.fused, "empty delta leaves the aggregates untouched");
        assert_eq!(view.handle().snapshot().version, b.version);
    }
}
