//! §3 "Marketplace Analyses": load, availability, distribution of work,
//! task characterization, and complexity trends.

pub mod arrivals;
pub mod availability;
pub mod labels;
pub mod load;
pub mod trends;
