//! Task characterization from manual labels (paper §3.4; Figs 9–11).
//!
//! Counts are **instance-weighted** (the paper reports "over 4 and 3
//! million tasks" for LU and T), computed over labeled clusters.

use crowd_core::labels::{DataType, Goal, Label, LabelSet, Operator};

use crate::study::{ClusterInfo, Study};

/// Instance-weighted label distribution for one category (Fig 9 panels).
#[derive(Debug, Clone)]
pub struct LabelDistribution {
    /// Category name (`goal` / `operator` / `data type`).
    pub category: &'static str,
    /// `(abbreviation, instances)` per label, in enum order.
    pub counts: Vec<(&'static str, u64)>,
}

impl LabelDistribution {
    /// Total instances across labels (multi-labeled tasks count per label).
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&(_, c)| c).sum()
    }

    /// Share of a label among all label assignments of this category.
    pub fn share(&self, abbrev: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .find(|&&(a, _)| a == abbrev)
            .map(|&(_, c)| c as f64 / total as f64)
            .unwrap_or(0.0)
    }
}

fn distribution<L: Label>(
    study: &Study,
    get: impl Fn(&ClusterInfo) -> LabelSet<L>,
) -> LabelDistribution {
    let mut counts = vec![0u64; L::COUNT];
    for c in study.labeled_clusters() {
        for l in get(c).iter() {
            counts[l.index()] += c.n_instances;
        }
    }
    LabelDistribution {
        category: L::CATEGORY,
        counts: L::all().map(|l| (l.abbrev(), counts[l.index()])).collect(),
    }
}

/// Fig 9a: instances per goal.
pub fn goal_distribution(study: &Study) -> LabelDistribution {
    distribution::<Goal>(study, |c| c.goals)
}

/// Fig 9b: instances per data type.
pub fn data_distribution(study: &Study) -> LabelDistribution {
    distribution::<DataType>(study, |c| c.data_types)
}

/// Fig 9c: instances per operator.
pub fn operator_distribution(study: &Study) -> LabelDistribution {
    distribution::<Operator>(study, |c| c.operators)
}

/// A cross-category matrix (Figs 10, 11): `cell[r][c]` is the number of
/// instances carrying row-label `r` and column-label `c`.
#[derive(Debug, Clone)]
pub struct CrossMatrix {
    /// Row category name.
    pub row_category: &'static str,
    /// Column category name.
    pub col_category: &'static str,
    /// Row label abbreviations.
    pub row_labels: Vec<&'static str>,
    /// Column label abbreviations.
    pub col_labels: Vec<&'static str>,
    /// Instance counts.
    pub cells: Vec<Vec<u64>>,
}

impl CrossMatrix {
    /// Row-normalized percentages (each row sums to 100, the stacked-bar
    /// breakdown of Figs 10/11), 0 for empty rows.
    pub fn row_percentages(&self) -> Vec<Vec<f64>> {
        self.cells
            .iter()
            .map(|row| {
                let total: u64 = row.iter().sum();
                row.iter()
                    .map(|&c| if total == 0 { 0.0 } else { 100.0 * c as f64 / total as f64 })
                    .collect()
            })
            .collect()
    }

    /// Percentage for a `(row, col)` abbreviation pair.
    pub fn percent(&self, row: &str, col: &str) -> f64 {
        let r = self.row_labels.iter().position(|&l| l == row);
        let c = self.col_labels.iter().position(|&l| l == col);
        match (r, c) {
            (Some(r), Some(c)) => self.row_percentages()[r][c],
            _ => 0.0,
        }
    }

    /// The transposed matrix (Fig 11 views are transposes of Fig 10).
    pub fn transposed(&self) -> CrossMatrix {
        let mut cells = vec![vec![0u64; self.row_labels.len()]; self.col_labels.len()];
        for (r, row) in self.cells.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                cells[c][r] = v;
            }
        }
        CrossMatrix {
            row_category: self.col_category,
            col_category: self.row_category,
            row_labels: self.col_labels.clone(),
            col_labels: self.row_labels.clone(),
            cells,
        }
    }
}

fn cross<R: Label, C: Label>(
    study: &Study,
    get_r: impl Fn(&ClusterInfo) -> LabelSet<R>,
    get_c: impl Fn(&ClusterInfo) -> LabelSet<C>,
) -> CrossMatrix {
    let mut cells = vec![vec![0u64; C::COUNT]; R::COUNT];
    for cl in study.labeled_clusters() {
        for r in get_r(cl).iter() {
            for c in get_c(cl).iter() {
                cells[r.index()][c.index()] += cl.n_instances;
            }
        }
    }
    CrossMatrix {
        row_category: R::CATEGORY,
        col_category: C::CATEGORY,
        row_labels: R::all().map(Label::abbrev).collect(),
        col_labels: C::all().map(Label::abbrev).collect(),
        cells,
    }
}

/// Fig 10a: data types used per goal.
pub fn data_given_goal(study: &Study) -> CrossMatrix {
    cross::<Goal, DataType>(study, |c| c.goals, |c| c.data_types)
}

/// Fig 10b: operators used per goal.
pub fn operator_given_goal(study: &Study) -> CrossMatrix {
    cross::<Goal, Operator>(study, |c| c.goals, |c| c.operators)
}

/// Fig 10c: operators applied per data type.
pub fn operator_given_data(study: &Study) -> CrossMatrix {
    cross::<DataType, Operator>(study, |c| c.data_types, |c| c.operators)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::default_study()
    }

    #[test]
    fn lu_and_transcription_lead_goals() {
        // Fig 9a: "language understanding and transcription are very
        // common … around 17% and 13%".
        let s = study();
        let d = goal_distribution(s);
        let lu = d.share("LU");
        let t = d.share("T");
        assert!(lu > d.share("ER"), "LU > ER");
        assert!(lu > d.share("SA"), "LU > SA");
        assert!(t > d.share("SA"), "T > SA");
        assert!(lu >= t, "LU is the most common goal");
    }

    #[test]
    fn text_and_image_lead_data() {
        // Fig 9b: text ≈ 40%, image ≈ 26%.
        let s = study();
        let d = data_distribution(s);
        assert!(d.share("Text") > 0.25);
        assert!(d.share("Text") > d.share("Image"));
        assert!(d.share("Image") > d.share("Audio"));
        assert!(d.share("Image") > d.share("Map"));
    }

    #[test]
    fn filter_and_rate_lead_operators() {
        // Fig 9c: filter ≈ 33%, rate ≈ 13%.
        let s = study();
        let d = operator_distribution(s);
        assert!(d.share("Filt") > 0.2);
        for op in ["Sort", "Count", "Gat", "Loc", "Exter"] {
            assert!(d.share("Filt") > d.share(op), "Filt > {op}");
        }
    }

    #[test]
    fn transcription_is_extraction_driven() {
        // §3.4: "one notable exception is transcription, where the primary
        // operation employed is extraction".
        let s = study();
        let m = operator_given_goal(s);
        let ext = m.percent("T", "Ext");
        let filt = m.percent("T", "Filt");
        assert!(ext > filt, "T uses Ext ({ext}%) over Filt ({filt}%)");
    }

    #[test]
    fn web_matters_for_er_and_sr() {
        // Fig 10a: web serves 24% of ER and 37% of SR tasks.
        let s = study();
        let m = data_given_goal(s);
        assert!(m.percent("ER", "Web") > 10.0);
        assert!(m.percent("SR", "Web") > 15.0);
        assert!(m.percent("SR", "Web") > m.percent("LU", "Web"));
    }

    #[test]
    fn social_media_matters_for_sentiment() {
        // Fig 10a: SA uses social media for ~13% of its data.
        let s = study();
        let m = data_given_goal(s);
        assert!(m.percent("SA", "Social") > m.percent("T", "Social"));
    }

    #[test]
    fn row_percentages_sum_to_100() {
        let s = study();
        for m in [data_given_goal(s), operator_given_goal(s), operator_given_data(s)] {
            for (r, row) in m.row_percentages().iter().enumerate() {
                let sum: f64 = row.iter().sum();
                let raw: u64 = m.cells[r].iter().sum();
                if raw > 0 {
                    assert!((sum - 100.0).abs() < 1e-9, "row {r} sums to {sum}");
                }
            }
        }
    }

    #[test]
    fn transpose_is_involution() {
        let s = study();
        let m = data_given_goal(s);
        let back = m.transposed().transposed();
        assert_eq!(m.cells, back.cells);
        assert_eq!(m.row_labels, back.row_labels);
        let t = m.transposed();
        assert_eq!(t.cells[0][0], m.cells[0][0]);
        assert_eq!(t.row_category, "data type");
    }

    #[test]
    fn totals_are_instance_weighted() {
        let s = study();
        let d = goal_distribution(s);
        // Instance-weighted totals far exceed cluster counts.
        assert!(d.total() > s.clusters().len() as u64 * 5);
    }
}
