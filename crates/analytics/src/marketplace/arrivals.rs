//! Task arrivals over time (paper §3.1; Figs 1, 2, 3).

use crowd_core::prelude::*;
use crowd_stats::descriptive::{median, percentile};
use crowd_table::{Agg, Table};

use crate::study::Study;

// Instance-level series (issued/completed/pickup/weekday/daily counts)
// come from the study's fused scan cache; only the *batch* table — orders
// of magnitude smaller — is walked here.

/// Weekly arrival series (Figs 1, 2a, 2b): instances, batches, distinct
/// tasks (sampled and all), completions, and the median pickup overlay.
#[derive(Debug, Clone, Default)]
pub struct WeeklyArrivals {
    /// Week of each row (consecutive, covering the whole dataset).
    pub weeks: Vec<WeekIndex>,
    /// Task instances issued (attributed to their batch's creation week).
    pub instances: Vec<u64>,
    /// Task instances completed (by instance end time).
    pub completed: Vec<u64>,
    /// Batches created.
    pub batches: Vec<u64>,
    /// Distinct tasks with ≥1 batch this week — sampled batches only
    /// (Fig 1 "sampled" line).
    pub distinct_tasks_sampled: Vec<u64>,
    /// Distinct tasks with ≥1 batch this week — all batches (Fig 1 "all").
    pub distinct_tasks_all: Vec<u64>,
    /// Median pickup time (seconds) of instances issued this week
    /// (the red overlay of Figs 2a / 5a).
    pub median_pickup: Vec<Option<f64>>,
}

impl WeeklyArrivals {
    /// Restricts the series to weeks at or after `cutoff` (e.g. the
    /// post-Jan-2015 views of Figs 2b and 5a).
    pub fn since(&self, cutoff: Timestamp) -> WeeklyArrivals {
        let cut = cutoff.week();
        let keep: Vec<usize> = (0..self.weeks.len()).filter(|&i| self.weeks[i] >= cut).collect();
        WeeklyArrivals {
            weeks: keep.iter().map(|&i| self.weeks[i]).collect(),
            instances: keep.iter().map(|&i| self.instances[i]).collect(),
            completed: keep.iter().map(|&i| self.completed[i]).collect(),
            batches: keep.iter().map(|&i| self.batches[i]).collect(),
            distinct_tasks_sampled: keep.iter().map(|&i| self.distinct_tasks_sampled[i]).collect(),
            distinct_tasks_all: keep.iter().map(|&i| self.distinct_tasks_all[i]).collect(),
            median_pickup: keep.iter().map(|&i| self.median_pickup[i]).collect(),
        }
    }
}

/// Computes the weekly arrival series.
pub fn weekly(study: &Study) -> WeeklyArrivals {
    let ds = study.dataset();
    // The week axis comes from the fused scan: its window covers instance
    // end times, which an entities-only (columns-optional) dataset cannot
    // see. Identical to the dataset-derived axis when columns are
    // resident — the fused pass uses the same `time_min`/`time_max`.
    let fused = study.fused();
    let (w0, n) = (fused.w0, fused.n_weeks);
    if n == 0 {
        return WeeklyArrivals::default();
    }

    let mut out = WeeklyArrivals {
        weeks: (0..n).map(|i| WeekIndex(w0 + i as i32)).collect(),
        instances: vec![0; n],
        completed: vec![0; n],
        batches: vec![0; n],
        distinct_tasks_sampled: vec![0; n],
        distinct_tasks_all: vec![0; n],
        median_pickup: vec![None; n],
    };

    // Distinct tasks per week, all vs sampled — via the columnar engine.
    let mut week_col: Vec<i64> = Vec::with_capacity(ds.batches.len());
    let mut type_col: Vec<f64> = Vec::with_capacity(ds.batches.len());
    let mut sampled_col: Vec<i64> = Vec::with_capacity(ds.batches.len());
    for b in &ds.batches {
        let w = (b.created_at.week().0 - w0) as i64;
        week_col.push(w);
        type_col.push(f64::from(b.task_type.raw()));
        sampled_col.push(i64::from(b.sampled));
        out.batches[w as usize] += 1;
    }
    let mut t = Table::new();
    t.push_int_column("week", week_col.clone()).expect("fresh table");
    t.push_float_column("task_type", type_col).expect("fresh table");
    t.push_int_column("sampled", sampled_col).expect("fresh table");

    let all = t
        .group_by("week")
        .expect("week col")
        .agg("task_type", Agg::CountDistinct)
        .expect("distinct")
        .finish();
    for row in 0..all.n_rows() {
        let w = all.ints("week").expect("week")[row] as usize;
        out.distinct_tasks_all[w] = all.floats("task_type_distinct").expect("col")[row] as u64;
    }
    let sampled_only = t.filter_by("sampled", |v| v.as_f64() == Some(1.0)).expect("mask");
    if sampled_only.n_rows() > 0 {
        let s = sampled_only
            .group_by("week")
            .expect("week col")
            .agg("task_type", Agg::CountDistinct)
            .expect("distinct")
            .finish();
        for row in 0..s.n_rows() {
            let w = s.ints("week").expect("week")[row] as usize;
            out.distinct_tasks_sampled[w] =
                s.floats("task_type_distinct").expect("col")[row] as u64;
        }
    }

    // Instances: issued (batch week) and completed (end week), plus pickup
    // overlay — all shaped from the fused scan.
    out.instances.copy_from_slice(&fused.issued);
    out.completed.copy_from_slice(&fused.completed);
    out.median_pickup.copy_from_slice(&fused.median_pickup);
    out
}

/// Fig 3: task instances issued per day of week.
pub fn by_weekday(study: &Study) -> [u64; 7] {
    study.fused().weekday
}

/// §3.1 takeaway: daily load statistics after a cutoff (paper: Jan 2015).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DailyLoad {
    /// Median instances per active day.
    pub median: f64,
    /// Busiest day's instances.
    pub max: f64,
    /// Lightest active day's instances.
    pub min: f64,
    /// `max / median` — the paper reports ≈ 30×.
    pub peak_ratio: f64,
    /// `min / median` — the paper reports ≈ 0.0004×.
    pub trough_ratio: f64,
    /// Number of active days measured.
    pub days: usize,
}

/// Computes daily load statistics for instances issued at or after
/// `since` (cutoff applied at day granularity — callers pass midnights).
/// Returns `None` when no instances qualify.
pub fn daily_load(study: &Study, since: Timestamp) -> Option<DailyLoad> {
    let cutoff = since.day_number();
    let counts: Vec<f64> = study
        .fused()
        .per_day
        .iter()
        .filter(|&(&day, _)| day >= cutoff)
        .map(|(_, &c)| c as f64)
        .collect();
    if counts.is_empty() {
        return None;
    }
    let med = median(&counts)?;
    let max = counts.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = counts.iter().copied().fold(f64::INFINITY, f64::min);
    let _ = percentile(&counts, 99.0);
    Some(DailyLoad {
        median: med,
        max,
        min,
        peak_ratio: max / med,
        trough_ratio: min / med,
        days: counts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::default_study()
    }

    #[test]
    fn weekly_series_is_consistent() {
        let s = study();
        let w = weekly(s);
        assert!(!w.weeks.is_empty());
        let total_issued: u64 = w.instances.iter().sum();
        assert_eq!(total_issued as usize, s.dataset().instances.len());
        let total_completed: u64 = w.completed.iter().sum();
        assert_eq!(total_completed as usize, s.dataset().instances.len());
        let total_batches: u64 = w.batches.iter().sum();
        assert_eq!(total_batches as usize, s.dataset().batches.len());
        // sampled distinct ≤ all distinct, weekly.
        for i in 0..w.weeks.len() {
            assert!(w.distinct_tasks_sampled[i] <= w.distinct_tasks_all[i]);
        }
    }

    #[test]
    fn post_regime_carries_most_load() {
        let s = study();
        let w = weekly(s);
        let cutoff = Timestamp::from_ymd(2015, 1, 1);
        let post = w.since(cutoff);
        let pre_total: u64 = w.instances.iter().sum::<u64>() - post.instances.iter().sum::<u64>();
        let post_total: u64 = post.instances.iter().sum();
        assert!(post_total > pre_total * 2, "§3.1: sparse before Jan 2015");
    }

    #[test]
    fn pickup_overlay_present_on_active_weeks() {
        let s = study();
        let w = weekly(s);
        for i in 0..w.weeks.len() {
            assert_eq!(w.median_pickup[i].is_some(), w.instances[i] > 0);
        }
    }

    #[test]
    fn high_load_weeks_have_lower_pickup() {
        // Fig 5a: the marketplace moves faster under load.
        let s = study();
        let w = weekly(s).since(Timestamp::from_ymd(2015, 1, 1));
        let mut pairs: Vec<(f64, f64)> = w
            .instances
            .iter()
            .zip(&w.median_pickup)
            .filter_map(|(&n, p)| p.map(|p| (n as f64, p)))
            .filter(|&(n, _)| n > 0.0)
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let lo: Vec<f64> = pairs[..pairs.len() / 3].iter().map(|&(_, p)| p).collect();
        let hi: Vec<f64> = pairs[pairs.len() * 2 / 3..].iter().map(|&(_, p)| p).collect();
        let (ml, mh) = (median(&lo).unwrap(), median(&hi).unwrap());
        assert!(mh < ml, "busy weeks pick up faster: {mh} vs {ml}");
    }

    #[test]
    fn weekday_distribution_declines_to_weekend() {
        let s = study();
        let by = by_weekday(s);
        let weekday_avg = by[..5].iter().sum::<u64>() as f64 / 5.0;
        let weekend_avg = by[5..].iter().sum::<u64>() as f64 / 2.0;
        assert!(weekday_avg > weekend_avg * 1.3, "Fig 3: weekdays up to 2× weekends: {by:?}");
        // The Mon > … > Fri decline is asserted on the generator weights
        // (crowd-sim calibration tests); instance totals at reduced scale
        // are too lumpy (a single bulk batch moves a whole weekday).
    }

    #[test]
    fn daily_load_ratios() {
        let s = study();
        let d = daily_load(s, Timestamp::from_ymd(2015, 1, 1)).unwrap();
        assert!(d.median > 0.0);
        assert!(d.peak_ratio > 3.0, "bursty: peak {}", d.peak_ratio);
        assert!(d.trough_ratio < 0.35, "troughs: {}", d.trough_ratio);
        assert!(d.days > 100);
    }

    #[test]
    fn daily_load_after_end_is_none() {
        let s = study();
        assert!(daily_load(s, Timestamp::from_ymd(2030, 1, 1)).is_none());
    }

    #[test]
    fn empty_dataset_yields_empty_series() {
        let ds = crowd_core::DatasetBuilder::new().finish().unwrap();
        let s = Study::new(ds);
        let w = weekly(&s);
        assert!(w.weeks.is_empty());
    }
}
