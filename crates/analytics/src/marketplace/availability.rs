//! Worker availability and engagement splits (paper §3.2; Figs 4, 5b).

use crowd_core::prelude::*;
use std::collections::HashSet;

use crate::study::Study;

/// Weekly active-worker counts (Fig 4).
#[derive(Debug, Clone, Default)]
pub struct WeeklyWorkers {
    /// Week of each row.
    pub weeks: Vec<WeekIndex>,
    /// Distinct workers with ≥1 instance started that week.
    pub active_workers: Vec<u64>,
}

/// Computes distinct active workers per week.
pub fn weekly_workers(study: &Study) -> WeeklyWorkers {
    let ds = study.dataset();
    let (Some(t0), Some(t1)) = (ds.time_min(), ds.time_max()) else {
        return WeeklyWorkers::default();
    };
    let w0 = t0.week().0;
    let n = (t1.week().0 - w0 + 1).max(0) as usize;
    let mut sets: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    for inst in &ds.instances {
        let w = ((inst.start.week().0 - w0).max(0) as usize).min(n - 1);
        sets[w].insert(inst.worker.raw());
    }
    WeeklyWorkers {
        weeks: (0..n).map(|i| WeekIndex(w0 + i as i32)).collect(),
        active_workers: sets.iter().map(|s| s.len() as u64).collect(),
    }
}

/// Fig 5b: weekly tasks and active time, split between the top-10% of
/// workers (by total tasks) and the rest.
#[derive(Debug, Clone, Default)]
pub struct EngagementSplit {
    /// Week of each row.
    pub weeks: Vec<WeekIndex>,
    /// Tasks completed by the top-10% workers.
    pub tasks_top10: Vec<u64>,
    /// Tasks completed by the bottom-90%.
    pub tasks_bot90: Vec<u64>,
    /// Active hours clocked by the top-10%.
    pub hours_top10: Vec<f64>,
    /// Active hours clocked by the bottom-90%.
    pub hours_bot90: Vec<f64>,
    /// Share of all tasks done by the top-10% (paper §5.2: > 80%).
    pub top10_task_share: f64,
}

/// Computes the engagement split.
pub fn engagement_split(study: &Study) -> EngagementSplit {
    let ds = study.dataset();
    let (Some(t0), Some(t1)) = (ds.time_min(), ds.time_max()) else {
        return EngagementSplit::default();
    };
    let w0 = t0.week().0;
    let n = (t1.week().0 - w0 + 1).max(0) as usize;

    // Rank workers by total tasks.
    let mut totals = vec![0u64; ds.workers.len()];
    for inst in &ds.instances {
        totals[inst.worker.index()] += 1;
    }
    let mut active: Vec<usize> = (0..ds.workers.len()).filter(|&i| totals[i] > 0).collect();
    active.sort_by_key(|&i| std::cmp::Reverse(totals[i]));
    let cut = (active.len() / 10).max(1);
    let mut is_top = vec![false; ds.workers.len()];
    for &i in &active[..cut.min(active.len())] {
        is_top[i] = true;
    }

    let mut out = EngagementSplit {
        weeks: (0..n).map(|i| WeekIndex(w0 + i as i32)).collect(),
        tasks_top10: vec![0; n],
        tasks_bot90: vec![0; n],
        hours_top10: vec![0.0; n],
        hours_bot90: vec![0.0; n],
        top10_task_share: 0.0,
    };
    let mut top_total = 0u64;
    for inst in &ds.instances {
        let w = ((inst.start.week().0 - w0).max(0) as usize).min(n - 1);
        let hours = inst.work_time().as_hours_f64();
        if is_top[inst.worker.index()] {
            out.tasks_top10[w] += 1;
            out.hours_top10[w] += hours;
            top_total += 1;
        } else {
            out.tasks_bot90[w] += 1;
            out.hours_bot90[w] += hours;
        }
    }
    out.top10_task_share = top_total as f64 / ds.instances.len().max(1) as f64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_stats::descriptive::median;

    fn study() -> &'static Study {
        crate::testutil::default_study()
    }

    #[test]
    fn weekly_worker_counts_are_bounded() {
        let s = study();
        let w = weekly_workers(s);
        let max = *w.active_workers.iter().max().unwrap();
        assert!(max > 0);
        assert!(max as usize <= s.dataset().workers.len());
    }

    #[test]
    fn worker_counts_vary_less_than_load() {
        // Fig 4 vs Fig 2a: worker counts are far more stable than task
        // counts. Compare coefficient of max/median over post-regime weeks.
        let s = study();
        let workers = weekly_workers(s);
        let arrivals = crate::marketplace::arrivals::weekly(s);
        let cutoff = Timestamp::from_ymd(2015, 1, 1).week();
        let wv: Vec<f64> = workers
            .weeks
            .iter()
            .zip(&workers.active_workers)
            .filter(|(w, &c)| **w >= cutoff && c > 0)
            .map(|(_, &c)| c as f64)
            .collect();
        let av: Vec<f64> = arrivals
            .weeks
            .iter()
            .zip(&arrivals.instances)
            .filter(|(w, &c)| **w >= cutoff && c > 0)
            .map(|(_, &c)| c as f64)
            .collect();
        let ratio = |v: &[f64]| {
            let max = v.iter().copied().fold(0.0, f64::max);
            max / median(v).unwrap()
        };
        assert!(
            ratio(&wv) < ratio(&av),
            "workers steadier than load: {} vs {}",
            ratio(&wv),
            ratio(&av)
        );
    }

    #[test]
    fn top10_dominates_tasks() {
        let s = study();
        let e = engagement_split(s);
        assert!(
            e.top10_task_share > 0.6,
            "§5.2: top-10% carries most of the load, got {}",
            e.top10_task_share
        );
        let top: u64 = e.tasks_top10.iter().sum();
        let bot: u64 = e.tasks_bot90.iter().sum();
        assert_eq!((top + bot) as usize, s.dataset().instances.len());
    }

    #[test]
    fn top10_spends_more_active_time() {
        let s = study();
        let e = engagement_split(s);
        let top: f64 = e.hours_top10.iter().sum();
        let bot: f64 = e.hours_bot90.iter().sum();
        assert!(top > bot, "Fig 5b: top-10% clocks more hours: {top} vs {bot}");
    }

    #[test]
    fn empty_dataset() {
        let s = Study::new(crowd_core::DatasetBuilder::new().finish().unwrap());
        assert!(weekly_workers(&s).weeks.is_empty());
        assert_eq!(engagement_split(&s).top10_task_share, 0.0);
    }
}
