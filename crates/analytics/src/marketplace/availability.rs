//! Worker availability and engagement splits (paper §3.2; Figs 4, 5b).

use crowd_core::prelude::*;

use crate::study::Study;

/// Weekly active-worker counts (Fig 4).
#[derive(Debug, Clone, Default)]
pub struct WeeklyWorkers {
    /// Week of each row.
    pub weeks: Vec<WeekIndex>,
    /// Distinct workers with ≥1 instance started that week.
    pub active_workers: Vec<u64>,
}

/// Computes distinct active workers per week.
pub fn weekly_workers(study: &Study) -> WeeklyWorkers {
    let fused = study.fused();
    if fused.n_weeks == 0 {
        return WeeklyWorkers::default();
    }
    // A worker is active in every week its per-week cells cover.
    let mut counts = vec![0u64; fused.n_weeks];
    for agg in fused.workers.values() {
        for &wk in agg.weeks.keys() {
            counts[wk] += 1;
        }
    }
    WeeklyWorkers {
        weeks: (0..fused.n_weeks).map(|i| WeekIndex(fused.w0 + i as i32)).collect(),
        active_workers: counts,
    }
}

/// Fig 5b: weekly tasks and active time, split between the top-10% of
/// workers (by total tasks) and the rest.
#[derive(Debug, Clone, Default)]
pub struct EngagementSplit {
    /// Week of each row.
    pub weeks: Vec<WeekIndex>,
    /// Tasks completed by the top-10% workers.
    pub tasks_top10: Vec<u64>,
    /// Tasks completed by the bottom-90%.
    pub tasks_bot90: Vec<u64>,
    /// Active hours clocked by the top-10%.
    pub hours_top10: Vec<f64>,
    /// Active hours clocked by the bottom-90%.
    pub hours_bot90: Vec<f64>,
    /// Share of all tasks done by the top-10% (paper §5.2: > 80%).
    pub top10_task_share: f64,
}

/// Computes the engagement split.
pub fn engagement_split(study: &Study) -> EngagementSplit {
    let fused = study.fused();
    let n = fused.n_weeks;
    if n == 0 {
        return EngagementSplit::default();
    }

    // Rank active workers by total tasks (stable sort: ties stay in
    // ascending worker-id order, as the BTreeMap iterates).
    let mut active: Vec<(u32, u64)> = fused.workers.iter().map(|(&w, a)| (w, a.tasks)).collect();
    active.sort_by_key(|&(_, tasks)| std::cmp::Reverse(tasks));
    let cut = (active.len() / 10).max(1).min(active.len());

    let mut out = EngagementSplit {
        weeks: (0..n).map(|i| WeekIndex(fused.w0 + i as i32)).collect(),
        tasks_top10: vec![0; n],
        tasks_bot90: vec![0; n],
        hours_top10: vec![0.0; n],
        hours_bot90: vec![0.0; n],
        top10_task_share: 0.0,
    };
    let mut top_total = 0u64;
    for (rank, &(worker, tasks)) in active.iter().enumerate() {
        let top = rank < cut;
        if top {
            top_total += tasks;
        }
        for (&wk, cell) in &fused.workers[&worker].weeks {
            if top {
                out.tasks_top10[wk] += cell.tasks;
                out.hours_top10[wk] += cell.hours;
            } else {
                out.tasks_bot90[wk] += cell.tasks;
                out.hours_bot90[wk] += cell.hours;
            }
        }
    }
    // Fused row count, not `ds.instances.len()`: the latter is zero for a
    // columns-optional study and would inflate the share past 1.
    out.top10_task_share = top_total as f64 / fused.n_instances().max(1) as f64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_stats::descriptive::median;

    fn study() -> &'static Study {
        crate::testutil::default_study()
    }

    #[test]
    fn weekly_worker_counts_are_bounded() {
        let s = study();
        let w = weekly_workers(s);
        let max = *w.active_workers.iter().max().unwrap();
        assert!(max > 0);
        assert!(max as usize <= s.dataset().workers.len());
    }

    #[test]
    fn worker_counts_vary_less_than_load() {
        // Fig 4 vs Fig 2a: worker counts are far more stable than task
        // counts. Compare coefficient of max/median over post-regime weeks.
        let s = study();
        let workers = weekly_workers(s);
        let arrivals = crate::marketplace::arrivals::weekly(s);
        let cutoff = Timestamp::from_ymd(2015, 1, 1).week();
        let wv: Vec<f64> = workers
            .weeks
            .iter()
            .zip(&workers.active_workers)
            .filter(|(w, &c)| **w >= cutoff && c > 0)
            .map(|(_, &c)| c as f64)
            .collect();
        let av: Vec<f64> = arrivals
            .weeks
            .iter()
            .zip(&arrivals.instances)
            .filter(|(w, &c)| **w >= cutoff && c > 0)
            .map(|(_, &c)| c as f64)
            .collect();
        let ratio = |v: &[f64]| {
            let max = v.iter().copied().fold(0.0, f64::max);
            max / median(v).unwrap()
        };
        assert!(
            ratio(&wv) < ratio(&av),
            "workers steadier than load: {} vs {}",
            ratio(&wv),
            ratio(&av)
        );
    }

    #[test]
    fn top10_dominates_tasks() {
        let s = study();
        let e = engagement_split(s);
        assert!(
            e.top10_task_share > 0.6,
            "§5.2: top-10% carries most of the load, got {}",
            e.top10_task_share
        );
        let top: u64 = e.tasks_top10.iter().sum();
        let bot: u64 = e.tasks_bot90.iter().sum();
        assert_eq!((top + bot) as usize, s.dataset().instances.len());
    }

    #[test]
    fn top10_spends_more_active_time() {
        let s = study();
        let e = engagement_split(s);
        let top: f64 = e.hours_top10.iter().sum();
        let bot: f64 = e.hours_bot90.iter().sum();
        assert!(top > bot, "Fig 5b: top-10% clocks more hours: {top} vs {bot}");
    }

    #[test]
    fn empty_dataset() {
        let s = Study::new(crowd_core::DatasetBuilder::new().finish().unwrap());
        assert!(weekly_workers(&s).weeks.is_empty());
        assert_eq!(engagement_split(&s).top10_task_share, 0.0);
    }
}
