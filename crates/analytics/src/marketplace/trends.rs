//! Simple-vs-complex trend over time (paper §3.5; Fig 12).
//!
//! "On the y-axis we plot the cumulative number of clusters of tasks …
//! one line each for simple, versus complex tasks", for each of the three
//! label categories, with batches deduplicated into clusters.

use crowd_core::labels::Complexity;
use crowd_core::time::WeekIndex;

use crate::study::{ClusterInfo, Study};

/// Cumulative simple/complex cluster counts per week for one category.
#[derive(Debug, Clone, Default)]
pub struct ComplexityTrend {
    /// Category name.
    pub category: &'static str,
    /// Week of each row.
    pub weeks: Vec<WeekIndex>,
    /// Cumulative clusters whose label set is entirely simple.
    pub simple: Vec<u64>,
    /// Cumulative clusters with any complex label.
    pub complex: Vec<u64>,
}

impl ComplexityTrend {
    /// Final totals `(simple, complex)`.
    pub fn totals(&self) -> (u64, u64) {
        (self.simple.last().copied().unwrap_or(0), self.complex.last().copied().unwrap_or(0))
    }
}

fn trend(
    study: &Study,
    category: &'static str,
    class: impl Fn(&ClusterInfo) -> Option<Complexity>,
) -> ComplexityTrend {
    let clusters: Vec<(&ClusterInfo, Complexity)> =
        study.labeled_clusters().filter_map(|c| class(c).map(|cx| (c, cx))).collect();
    if clusters.is_empty() {
        return ComplexityTrend { category, ..Default::default() };
    }
    let w0 = clusters.iter().map(|(c, _)| c.first_week.0).min().unwrap();
    let w1 = clusters.iter().map(|(c, _)| c.first_week.0).max().unwrap();
    let n = (w1 - w0 + 1) as usize;
    let mut simple_new = vec![0u64; n];
    let mut complex_new = vec![0u64; n];
    for (c, cx) in &clusters {
        let w = (c.first_week.0 - w0) as usize;
        match cx {
            Complexity::Simple => simple_new[w] += 1,
            Complexity::Complex => complex_new[w] += 1,
        }
    }
    let cumulate = |v: &[u64]| {
        let mut acc = 0;
        v.iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect::<Vec<u64>>()
    };
    ComplexityTrend {
        category,
        weeks: (0..n).map(|i| WeekIndex(w0 + i as i32)).collect(),
        simple: cumulate(&simple_new),
        complex: cumulate(&complex_new),
    }
}

/// Fig 12a: simple vs complex *goals*.
pub fn goal_trend(study: &Study) -> ComplexityTrend {
    trend(study, "goal", |c| c.goals.complexity())
}

/// Fig 12b: simple vs complex *operators*.
pub fn operator_trend(study: &Study) -> ComplexityTrend {
    trend(study, "operator", |c| c.operators.complexity())
}

/// Fig 12c: simple vs complex *data types*.
pub fn data_trend(study: &Study) -> ComplexityTrend {
    trend(study, "data type", |c| c.data_types.complexity())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::tiny_study()
    }

    #[test]
    fn cumulative_series_are_monotone() {
        let s = study();
        for t in [goal_trend(s), operator_trend(s), data_trend(s)] {
            assert!(!t.weeks.is_empty(), "{}", t.category);
            for w in t.simple.windows(2) {
                assert!(w[0] <= w[1]);
            }
            for w in t.complex.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn complex_goals_outnumber_simple() {
        // Fig 12a: "620 clusters with complex goals, and just 80 with
        // simple goals" by Jan 2016 — complex dominates heavily.
        let s = study();
        let (simple, complex) = goal_trend(s).totals();
        assert!(complex > simple, "complex goals lead: {complex} vs {simple}");
    }

    #[test]
    fn complex_data_outnumbers_text() {
        // Fig 12c: ~510 non-textual vs ~240 textual clusters.
        let s = study();
        let (simple, complex) = data_trend(s).totals();
        assert!(complex > simple, "non-text data leads: {complex} vs {simple}");
    }

    #[test]
    fn operators_are_comparable() {
        // Fig 12b: "the usage of complex operators is comparable to that of
        // simple operators" (410 vs 340).
        let s = study();
        let (simple, complex) = operator_trend(s).totals();
        let ratio = complex as f64 / simple.max(1) as f64;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "simple and complex operators comparable: {simple} vs {complex}"
        );
    }

    #[test]
    fn totals_cover_labeled_clusters() {
        let s = study();
        let (simple, complex) = goal_trend(s).totals();
        let labeled_with_goals = s.labeled_clusters().filter(|c| !c.goals.is_empty()).count();
        assert_eq!((simple + complex) as usize, labeled_with_goals);
    }
}
