//! Distribution of work across distinct tasks (paper §3.3; Figs 6, 7, 8).

use crowd_core::prelude::*;
use crowd_stats::descriptive::median;

use crate::study::Study;

/// Cluster-size statistics (Fig 6: batches per cluster; Fig 7: instances
/// per cluster; plus the §3.3 headline numbers).
#[derive(Debug, Clone, Default)]
pub struct ClusterLoad {
    /// Batches per cluster, one entry per cluster.
    pub batches_per_cluster: Vec<u32>,
    /// Instances per cluster.
    pub instances_per_cluster: Vec<u64>,
    /// Clusters spanning more than 100 batches ("heavy hitters", §3.3).
    pub clusters_over_100_batches: usize,
    /// Clusters with fewer than 10 batches ("one-off" tasks).
    pub one_off_clusters: usize,
    /// Median instances per cluster (paper: ≈ 400 at full scale).
    pub median_instances_per_cluster: f64,
}

/// Computes cluster load statistics.
pub fn cluster_load(study: &Study) -> ClusterLoad {
    let batches: Vec<u32> = study.clusters().iter().map(|c| c.batches.len() as u32).collect();
    let instances: Vec<u64> = study.clusters().iter().map(|c| c.n_instances).collect();
    let inst_f: Vec<f64> = instances.iter().map(|&x| x as f64).collect();
    ClusterLoad {
        clusters_over_100_batches: batches.iter().filter(|&&b| b > 100).count(),
        one_off_clusters: batches.iter().filter(|&&b| b < 10).count(),
        median_instances_per_cluster: median(&inst_f).unwrap_or(0.0),
        batches_per_cluster: batches,
        instances_per_cluster: instances,
    }
}

/// Log-log histogram points for Figs 6/7: `(size, #clusters of that size
/// bucket)`, using power-of-two buckets.
pub fn log_histogram(sizes: &[u64]) -> Vec<(u64, u64)> {
    let mut buckets: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for &s in sizes {
        let bucket = if s == 0 { 0 } else { 1u64 << (63 - s.leading_zeros()) };
        *buckets.entry(bucket).or_insert(0) += 1;
    }
    buckets.into_iter().collect()
}

/// One heavy hitter's cumulative activity (Fig 8).
#[derive(Debug, Clone)]
pub struct HeavyHitter {
    /// Cluster id.
    pub cluster: u32,
    /// Batches in the cluster.
    pub n_batches: usize,
    /// Weekly cumulative instance counts as `(week, cumulative)` pairs,
    /// only for weeks where the count changed.
    pub cumulative: Vec<(WeekIndex, u64)>,
}

/// The top-`n` clusters by batch count with their cumulative instance
/// curves (Fig 8 plots the top 10).
pub fn heavy_hitters(study: &Study, n: usize) -> Vec<HeavyHitter> {
    let ds = study.dataset();
    let mut order: Vec<&crate::study::ClusterInfo> = study.clusters().iter().collect();
    order.sort_by_key(|c| std::cmp::Reverse(c.batches.len()));

    order
        .iter()
        .take(n)
        .map(|c| {
            // Instances per week for this cluster, then cumulative.
            let mut per_week: std::collections::BTreeMap<i32, u64> =
                std::collections::BTreeMap::new();
            for &b in &c.batches {
                let week = ds.batch(b).created_at.week().0;
                let count = study.batch_metrics(b).map(|m| u64::from(m.n_instances)).unwrap_or(0);
                *per_week.entry(week).or_insert(0) += count;
            }
            let mut cumulative = Vec::with_capacity(per_week.len());
            let mut acc = 0u64;
            for (week, count) in per_week {
                acc += count;
                cumulative.push((WeekIndex(week), acc));
            }
            HeavyHitter { cluster: c.id, n_batches: c.batches.len(), cumulative }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::tiny_study()
    }

    #[test]
    fn load_totals_are_consistent() {
        let s = study();
        let load = cluster_load(s);
        let total_batches: u32 = load.batches_per_cluster.iter().sum();
        assert_eq!(total_batches as usize, s.enriched_batches().count());
        let total_instances: u64 = load.instances_per_cluster.iter().sum();
        assert_eq!(total_instances as usize, s.dataset().instances.len());
    }

    #[test]
    fn one_off_clusters_dominate_counts() {
        // §3.3: "a large number of tasks that are 'one-off' with a small
        // number (< 10) of batches".
        let s = study();
        let load = cluster_load(s);
        let frac = load.one_off_clusters as f64 / load.batches_per_cluster.len() as f64;
        assert!(frac > 0.6, "one-off majority: {frac}");
    }

    #[test]
    fn instance_mass_is_skewed() {
        // Fig 7: a few clusters hold orders of magnitude more instances.
        let s = study();
        let load = cluster_load(s);
        let max = *load.instances_per_cluster.iter().max().unwrap() as f64;
        assert!(
            max / load.median_instances_per_cluster > 30.0,
            "skew: max {max} vs median {}",
            load.median_instances_per_cluster
        );
    }

    #[test]
    fn log_histogram_conserves_mass() {
        let sizes = vec![1, 1, 2, 3, 5, 9, 17, 200, 1023];
        let hist = log_histogram(&sizes);
        let total: u64 = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total as usize, sizes.len());
        // Buckets are powers of two.
        for &(b, _) in &hist {
            assert!(b == 0 || b.is_power_of_two());
        }
    }

    #[test]
    fn heavy_hitters_are_sorted_and_cumulative() {
        let s = study();
        let hh = heavy_hitters(s, 10);
        assert!(hh.len() <= 10);
        assert!(!hh.is_empty());
        for pair in hh.windows(2) {
            assert!(pair[0].n_batches >= pair[1].n_batches);
        }
        for h in &hh {
            for w in h.cumulative.windows(2) {
                assert!(w[0].1 <= w[1].1, "cumulative is monotone");
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn top_heavy_hitter_has_many_batches() {
        let s = study();
        let hh = heavy_hitters(s, 1);
        assert!(
            hh[0].n_batches >= 10,
            "heavy hitters span many batches even at tiny scale: {}",
            hh[0].n_batches
        );
    }
}
