//! The enriched study context (paper §2.4): clustering, design-parameter
//! extraction, and effectiveness metrics over a raw dataset.

use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;

use crowd_cluster::{ClusterParams, Clusterer, Clustering};
use crowd_core::answer::{item_disagreement, item_disagreement_ref};
use crowd_core::prelude::*;
use crowd_html::{extract_features, ExtractedFeatures};
use crowd_stats::descriptive::{median, median_inplace};
use rayon::prelude::*;

use crate::fused::Fused;

/// Per-batch enrichment: extracted design features plus the three §4.1
/// effectiveness metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMetrics {
    /// The batch.
    pub batch: BatchId,
    /// Cluster id assigned by HTML-similarity clustering (§3.3).
    pub cluster: u32,
    /// Instances observed in the batch.
    pub n_instances: u32,
    /// Distinct items the batch operated on (`#items`, §4.5).
    pub n_items: u32,
    /// Disagreement score (§4.1); `None` when no item has ≥ 2 judgments.
    pub disagreement: Option<f64>,
    /// Median task time in seconds (§4.1 "cost").
    pub task_time: Option<f64>,
    /// Median pickup time in seconds (§4.1 "latency").
    pub pickup_time: Option<f64>,
    /// Design parameters extracted from the batch's sample HTML (§2.4).
    pub features: ExtractedFeatures,
}

/// Cluster-level aggregate: medians across member batches (§4.2 step 1).
#[derive(Debug, Clone)]
pub struct ClusterInfo {
    /// Dense cluster id.
    pub id: u32,
    /// Member batches (sampled only), in dataset order.
    pub batches: Vec<BatchId>,
    /// Total instances across member batches.
    pub n_instances: u64,
    /// Whether manual labels are available (§2.4: ~83%).
    pub labeled: bool,
    /// Goal labels of the cluster's majority task type.
    pub goals: LabelSet<Goal>,
    /// Operator labels.
    pub operators: LabelSet<Operator>,
    /// Data-type labels.
    pub data_types: LabelSet<DataType>,
    /// Median `#words` across member batches.
    pub words: f64,
    /// Median `#text-box`.
    pub text_boxes: f64,
    /// Median `#examples`.
    pub examples: f64,
    /// Median `#images`.
    pub images: f64,
    /// Median `#items`.
    pub items: f64,
    /// Median disagreement across member batches.
    pub disagreement: Option<f64>,
    /// Median task-time (seconds).
    pub task_time: Option<f64>,
    /// Median pickup-time (seconds).
    pub pickup_time: Option<f64>,
    /// Week of the cluster's earliest batch (for §3.5 trends).
    pub first_week: WeekIndex,
}

/// The provider a columns-optional [`Study`] defers its fused scan to
/// (see [`Study::from_enrichment_streamed`]).
pub type FusedSource = Box<dyn Fn(&Study) -> Fused + Send + Sync>;

/// The enriched dataset all analyses run on.
///
/// A study normally holds the full instance table in `ds`. In
/// **columns-optional** mode
/// ([`from_enrichment_streamed`](Study::from_enrichment_streamed)) `ds`
/// carries only the entity tables — the instance rows live elsewhere (a
/// sharded snapshot file), [`n_instances`](Study::n_instances) reports the
/// true row count, and the fused scan is produced by an injected source
/// that streams the rows back one shard at a time. Analytics functions
/// that consume only the fused cache (all of them, post-§15) behave
/// identically in both modes.
pub struct Study {
    ds: Dataset,
    index: DatasetIndex,
    /// Parallel to `ds.batches`; `None` for unsampled batches.
    batch_metrics: Vec<Option<BatchMetrics>>,
    clusters: Vec<ClusterInfo>,
    /// Instance rows the study covers — `ds.instances.len()` when the
    /// columns are resident, the streamed row count otherwise.
    n_rows: usize,
    /// Columns-optional fused provider; `None` means scan `ds.instances`.
    fused_source: Option<FusedSource>,
    /// Raw instance-table aggregates from the one fused scan, computed on
    /// first use (most analytics functions only shape this cache), paired
    /// with the instance-column mutation count the scan observed so a
    /// post-scan mutation is refused instead of silently served stale.
    fused: OnceLock<(u64, Fused)>,
    /// Shards the fused scan partitions the instance table into (the
    /// `--shards` knob). Purely a scheduling/memory knob: the chunk-
    /// aligned [`ShardPlan`] makes any value produce bit-identical
    /// results (`tests/parallel_determinism.rs`, `tests/export_golden.rs`).
    shards: usize,
    /// Load provenance when the dataset came through the resilient ingest
    /// path (`None` for simulated or trusted-import datasets).
    ingest: Option<IngestReport>,
}

impl Study {
    /// Enriches a dataset with default clustering parameters.
    pub fn new(ds: Dataset) -> Study {
        Study::with_cluster_params(ds, ClusterParams::default())
    }

    /// Enriches with explicit clustering parameters (the paper reports
    /// tuning the match threshold by inspection, §3.3).
    pub fn with_cluster_params(ds: Dataset, params: ClusterParams) -> Study {
        // ---- §3.3: cluster sampled batches by HTML similarity ----------
        let clustering = {
            let (_ids, docs) = sampled_docs(&ds);
            Clusterer::new(params).cluster(&docs)
        };
        Study::with_clustering(ds, clustering)
    }

    /// Enriches against an externally computed clustering — the entry
    /// point for callers that already hold labels (an A/B harness reusing
    /// one clustering across arms, or a snapshot warm start recomputing
    /// enrichment only).
    ///
    /// # Panics
    /// If `clustering` does not cover exactly the sampled batches (its
    /// length must equal their count; labels are positional in dataset
    /// order, as produced by clustering [`sampled_docs`]).
    pub fn with_clustering(ds: Dataset, clustering: Clustering) -> Study {
        let index = ds.index();
        let metrics = enrich_batches(&ds, &index, &clustering);
        Study::assemble(ds, index, metrics)
    }

    /// Rebuilds a `Study` from persisted per-batch enrichment, skipping
    /// clustering and metric computation entirely — the snapshot warm
    /// path. `metrics` must be the sampled batches in dataset order, with
    /// dense cluster ids, exactly as [`enrich_batches`] produces (and as
    /// `crowd-snapshot` validates on decode).
    pub fn from_enrichment(ds: Dataset, metrics: Vec<BatchMetrics>) -> Study {
        let index = ds.index();
        Study::assemble(ds, index, metrics)
    }

    /// Columns-optional constructor: `entities` carries every table
    /// *except* instances (its instance table must be empty), `n_rows` is
    /// the true row count, and `fused_source` produces the fused scan on
    /// first use — typically by streaming shard sections back off disk, so
    /// no more than one shard of rows is ever resident. `metrics` follows
    /// the same positional contract as [`from_enrichment`](Self::from_enrichment).
    ///
    /// # Panics
    /// If `entities` already holds instance rows (that would make
    /// [`n_instances`](Self::n_instances) ambiguous — use
    /// [`from_enrichment`](Self::from_enrichment) instead).
    pub fn from_enrichment_streamed(
        entities: Dataset,
        metrics: Vec<BatchMetrics>,
        n_rows: usize,
        fused_source: impl Fn(&Study) -> Fused + Send + Sync + 'static,
    ) -> Study {
        assert!(
            entities.instances.is_empty(),
            "columns-optional studies are built from entity-only datasets"
        );
        let index = entities.index();
        let mut study = Study::assemble(entities, index, metrics);
        study.n_rows = n_rows;
        study.fused_source = Some(Box::new(fused_source));
        study
    }

    /// Shared tail of every constructor: scatter metrics into the
    /// batch-indexed table and aggregate clusters.
    fn assemble(ds: Dataset, index: DatasetIndex, metrics: Vec<BatchMetrics>) -> Study {
        // Labels are dense, so the cluster count is one past the largest.
        let n_clusters = metrics.iter().map(|m| m.cluster).max().map_or(0, |m| m as usize + 1);
        let mut batch_metrics: Vec<Option<BatchMetrics>> = vec![None; ds.batches.len()];
        for metrics in metrics {
            let slot = metrics.batch.index();
            batch_metrics[slot] = Some(metrics);
        }
        let clusters = aggregate_clusters(&ds, &batch_metrics, n_clusters);
        let n_rows = ds.instances.len();
        Study {
            ds,
            index,
            batch_metrics,
            clusters,
            n_rows,
            fused_source: None,
            fused: OnceLock::new(),
            shards: 1,
            ingest: None,
        }
    }

    /// Partitions the fused scan into at most `shards` chunk-aligned
    /// shards (see [`ShardPlan`]). Results are bit-identical at any value;
    /// this only changes how the one pass over the instance table is
    /// scheduled. Clamped to at least 1.
    ///
    /// # Panics
    /// If the fused scan already ran (the knob must be set before first
    /// use, or the setting would silently not apply).
    pub fn with_shards(mut self, shards: usize) -> Study {
        assert!(self.fused.get().is_none(), "set shards before the fused scan runs");
        self.shards = shards.max(1);
        self
    }

    /// The shard plan the fused scan runs under.
    pub fn shard_plan(&self) -> ShardPlan {
        ShardPlan::new(self.ds.instances.len(), self.shards)
    }

    /// Attaches the [`IngestReport`] the dataset was loaded under, so every
    /// analysis downstream can state its input coverage.
    pub fn with_ingest_report(mut self, report: IngestReport) -> Study {
        self.ingest = Some(report);
        self
    }

    /// Load provenance, when the dataset came through resilient ingest.
    pub fn ingest_report(&self) -> Option<&IngestReport> {
        self.ingest.as_ref()
    }

    /// The fused instance-table aggregates (one [`ScanPass`] run, cached).
    ///
    /// Public so `crowd-testkit` can differential-test the fused engine
    /// against its straight-line oracles; analytics callers should prefer
    /// the shaped module functions.
    ///
    /// # Panics
    /// If the instance columns were mutated (via
    /// [`instances_mut`](Self::instances_mut)) after the scan ran: the
    /// cache would be stale, and serving it silently is exactly the bug
    /// this refusal pins. Recompute by building a fresh `Study` — or keep
    /// live data in a [`crate::view::FusedView`], which applies deltas
    /// instead of memoizing one scan.
    pub fn fused(&self) -> &Fused {
        let (scanned_at, fused) = self.fused.get_or_init(|| {
            let stamp = self.ds.instances.mutation_count();
            let fused = match &self.fused_source {
                Some(source) => source(self),
                None => crate::fused::compute(self),
            };
            (stamp, fused)
        });
        assert_eq!(
            *scanned_at,
            self.ds.instances.mutation_count(),
            "instance columns mutated after the fused scan ran; the memoized \
             aggregates are stale — rebuild the Study (or use a FusedView for \
             live data)"
        );
        fused
    }

    /// Mutable access to the resident instance columns, for repair surgery
    /// and tests. Any row-visible mutation after the fused scan already ran
    /// makes [`fused`](Self::fused) refuse (panic) instead of serving the
    /// stale cache.
    ///
    /// # Panics
    /// In columns-optional mode (no resident columns to mutate).
    pub fn instances_mut(&mut self) -> &mut InstanceColumns {
        assert!(
            self.columns_resident(),
            "columns-optional studies have no resident instance columns to mutate"
        );
        &mut self.ds.instances
    }

    /// The underlying dataset. In columns-optional mode the instance table
    /// is empty — use [`n_instances`](Self::n_instances) for the row
    /// count, never `dataset().instances.len()`.
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// Instance rows the study covers, independent of whether the columns
    /// are resident.
    pub fn n_instances(&self) -> usize {
        self.n_rows
    }

    /// Whether the instance columns are resident in
    /// [`dataset`](Self::dataset) (`false` only for columns-optional
    /// studies over a non-empty table).
    pub fn columns_resident(&self) -> bool {
        self.ds.instances.len() == self.n_rows
    }

    /// Navigation indexes.
    pub fn index(&self) -> &DatasetIndex {
        &self.index
    }

    /// Enrichment for one batch (`None` for unsampled batches).
    pub fn batch_metrics(&self, batch: BatchId) -> Option<&BatchMetrics> {
        self.batch_metrics[batch.index()].as_ref()
    }

    /// All enriched batches, in dataset order.
    pub fn enriched_batches(&self) -> impl Iterator<Item = &BatchMetrics> {
        self.batch_metrics.iter().flatten()
    }

    /// All clusters.
    pub fn clusters(&self) -> &[ClusterInfo] {
        &self.clusters
    }

    /// Labeled clusters only — the ~3,200 the paper's §4 analysis uses.
    pub fn labeled_clusters(&self) -> impl Iterator<Item = &ClusterInfo> {
        self.clusters.iter().filter(|c| c.labeled)
    }

    /// Pickup latency of an instance (start − batch creation).
    pub fn pickup_secs(&self, inst: InstanceRef<'_>) -> f64 {
        self.ds.pickup_time(inst).as_secs() as f64
    }
}

/// The sampled batches, in dataset order, paired with the HTML documents
/// clustering runs over (missing pages cluster as the empty string).
///
/// This is *the* positional contract shared by clustering, enrichment,
/// and the snapshot format: index `pos` in the returned vectors, in a
/// [`Clustering`], in `Derived::labels`, and in persisted metrics all
/// name the same batch.
pub fn sampled_docs(ds: &Dataset) -> (Vec<BatchId>, Vec<&str>) {
    let sampled: Vec<BatchId> = ds
        .batches
        .iter()
        .enumerate()
        .filter(|(_, b)| b.sampled)
        .map(|(i, _)| BatchId::from_usize(i))
        .collect();
    let docs: Vec<&str> =
        sampled.iter().map(|&b| ds.batch(b).html.as_deref().unwrap_or("")).collect();
    (sampled, docs)
}

/// §2.4 + §4.1: per-batch features and metrics for every sampled batch,
/// in dataset order. Enrichment is independent per batch: fan it out
/// across threads and collect in sampled order — the result is
/// position-determined, hence thread-count-invariant.
///
/// # Panics
/// If `clustering` was not computed over exactly the sampled batches
/// (one label per sampled batch, positionally).
pub fn enrich_batches(
    ds: &Dataset,
    index: &DatasetIndex,
    clustering: &Clustering,
) -> Vec<BatchMetrics> {
    let (sampled, _docs) = sampled_docs(ds);
    assert_eq!(
        clustering.labels().len(),
        sampled.len(),
        "clustering must cover exactly the sampled batches"
    );
    let indexed: Vec<(usize, BatchId)> = sampled.iter().copied().enumerate().collect();
    indexed
        .par_iter()
        .map(|&(pos, batch)| compute_batch_metrics(ds, index, batch, clustering.cluster_of(pos)))
        .collect()
}

thread_local! {
    /// Per-thread `(pickups, times, item_scores)` scratch for
    /// [`compute_batch_metrics`]: the float piles are cleared (capacity
    /// kept) between batches, so the parallel enrichment fan-out only
    /// allocates while a thread's high-water batch size still grows.
    /// `by_item` cannot join them — it borrows `&Answer` from the dataset,
    /// and a thread-local must be `'static`.
    static METRIC_SCRATCH: std::cell::RefCell<(Vec<f64>, Vec<f64>, Vec<f64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

fn compute_batch_metrics(
    ds: &Dataset,
    index: &DatasetIndex,
    batch: BatchId,
    cluster: u32,
) -> BatchMetrics {
    METRIC_SCRATCH.with(|scratch| {
        let (pickups, times, item_scores) = &mut *scratch.borrow_mut();
        pickups.clear();
        times.clear();
        item_scores.clear();

        let created = ds.batch(batch).created_at;
        // BTreeMap, not HashMap: the disagreement average below sums floats in
        // map-iteration order, and f64 addition rounding depends on that order.
        // A randomized hash order would make the last ulp of the score vary
        // from run to run (and thread pool to thread pool); item-id order fixes
        // the sum bit-for-bit.
        let mut by_item: BTreeMap<u32, Vec<&Answer>> = BTreeMap::new();
        let mut n_instances = 0u32;
        for inst_id in index.instances_of_batch(batch) {
            let inst = ds.instance(inst_id);
            n_instances += 1;
            pickups.push((inst.start - created).as_secs() as f64);
            times.push(inst.work_time().as_secs() as f64);
            by_item.entry(inst.item.raw()).or_default().push(inst.answer);
        }
        let n_items = by_item.len() as u32;

        // §4.1: average item-level pairwise disagreement.
        for answers in by_item.values() {
            if let Some(score) = item_disagreement_ref(answers) {
                item_scores.push(score);
            }
        }
        let disagreement = if item_scores.is_empty() {
            None
        } else {
            Some(item_scores.iter().sum::<f64>() / item_scores.len() as f64)
        };

        let features = ds
            .batch(batch)
            .html
            .as_deref()
            .and_then(|h| extract_features(h).ok())
            .unwrap_or_default();

        BatchMetrics {
            batch,
            cluster,
            n_instances,
            n_items,
            disagreement,
            task_time: median(times),
            pickup_time: median(pickups),
            features,
        }
    })
}

/// Streaming replacement for the per-batch half of [`enrich_batches`]: a
/// [`ShardSink`] that folds each flushed shard into per-batch metric
/// piles during a cold build, so enrichment never needs the full instance
/// table resident. Feature extraction (batch-scale, HTML-driven) happens
/// in [`finish`](StreamingEnricher::finish), off the resident entity
/// tables.
///
/// Relies on the simulator's delivery contract: rows arrive grouped by
/// batch, batches in ascending id order — exactly the order
/// `DatasetIndex::instances_of_batch` replays them in, so every pile (and
/// every float fold over it) matches [`compute_batch_metrics`]
/// bit-for-bit. At most one batch's pile is open at a time; finished
/// batches reduce to a handful of scalars immediately.
pub struct StreamingEnricher {
    /// Batch creation times, copied from the entity tables (batch-scale).
    created: Vec<Timestamp>,
    /// Sampled flag per batch — only sampled batches get piles.
    sampled: Vec<bool>,
    /// The open pile (sampled batches only).
    current: Option<BatchPile>,
    /// Last batch id seen, for the grouped-ascending assertion.
    last_batch: Option<usize>,
    /// Reduced per-batch stats, indexed by batch id.
    cores: Vec<Option<BatchCore>>,
    rows: usize,
    /// Recycled pile buffers: closing a pile returns its float piles and
    /// per-item answer vectors here (cleared, capacity kept), so the
    /// one-open-pile-at-a-time loop stops allocating once the high-water
    /// batch shape has been seen.
    spare_pickups: Vec<f64>,
    spare_times: Vec<f64>,
    spare_scores: Vec<f64>,
    spare_answer_vecs: Vec<Vec<Answer>>,
}

/// The in-flight accumulation for one sampled batch.
struct BatchPile {
    batch: usize,
    created: Timestamp,
    n_instances: u32,
    pickups: Vec<f64>,
    times: Vec<f64>,
    by_item: BTreeMap<u32, Vec<Answer>>,
}

/// One sampled batch's reduced metrics (everything of [`BatchMetrics`]
/// that needs instance rows).
#[derive(Clone, Copy)]
struct BatchCore {
    n_instances: u32,
    n_items: u32,
    disagreement: Option<f64>,
    task_time: Option<f64>,
    pickup_time: Option<f64>,
}

impl StreamingEnricher {
    /// An enricher for the batches of `entities` (instance table ignored).
    pub fn new(entities: &Dataset) -> StreamingEnricher {
        StreamingEnricher {
            created: entities.batches.iter().map(|b| b.created_at).collect(),
            sampled: entities.batches.iter().map(|b| b.sampled).collect(),
            current: None,
            last_batch: None,
            cores: vec![None; entities.batches.len()],
            rows: 0,
            spare_pickups: Vec::new(),
            spare_times: Vec::new(),
            spare_scores: Vec::new(),
            spare_answer_vecs: Vec::new(),
        }
    }

    /// Rows folded so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    fn close_pile(&mut self) {
        let Some(mut pile) = self.current.take() else { return };
        // Mirror of `compute_batch_metrics`, fold for fold: same median
        // function, same item-id iteration order for the disagreement sum.
        let mut item_scores = std::mem::take(&mut self.spare_scores);
        item_scores.clear();
        for answers in pile.by_item.values() {
            if let Some(score) = item_disagreement(answers) {
                item_scores.push(score);
            }
        }
        let disagreement = if item_scores.is_empty() {
            None
        } else {
            Some(item_scores.iter().sum::<f64>() / item_scores.len() as f64)
        };
        self.cores[pile.batch] = Some(BatchCore {
            n_instances: pile.n_instances,
            n_items: pile.by_item.len() as u32,
            disagreement,
            task_time: median(&pile.times),
            pickup_time: median(&pile.pickups),
        });
        // Recycle the pile's buffers for the next sampled batch.
        self.spare_scores = item_scores;
        pile.pickups.clear();
        self.spare_pickups = pile.pickups;
        pile.times.clear();
        self.spare_times = pile.times;
        for (_, mut v) in std::mem::take(&mut pile.by_item) {
            v.clear();
            self.spare_answer_vecs.push(v);
        }
    }

    /// Closes the last pile and assembles [`BatchMetrics`] for **every**
    /// sampled batch of `entities` (zero-instance ones included), in
    /// dataset order with `clustering`'s positional labels — the exact
    /// output contract of [`enrich_batches`].
    ///
    /// # Panics
    /// If `clustering` does not cover exactly the sampled batches.
    pub fn finish(mut self, entities: &Dataset, clustering: &Clustering) -> Vec<BatchMetrics> {
        self.close_pile();
        let (sampled, _docs) = sampled_docs(entities);
        assert_eq!(
            clustering.labels().len(),
            sampled.len(),
            "clustering must cover exactly the sampled batches"
        );
        let indexed: Vec<(usize, BatchId)> = sampled.iter().copied().enumerate().collect();
        indexed
            .par_iter()
            .map(|&(pos, batch)| {
                let core = self.cores[batch.index()].unwrap_or(BatchCore {
                    n_instances: 0,
                    n_items: 0,
                    disagreement: None,
                    task_time: None,
                    pickup_time: None,
                });
                let features = entities
                    .batch(batch)
                    .html
                    .as_deref()
                    .and_then(|h| extract_features(h).ok())
                    .unwrap_or_default();
                BatchMetrics {
                    batch,
                    cluster: clustering.cluster_of(pos),
                    n_instances: core.n_instances,
                    n_items: core.n_items,
                    disagreement: core.disagreement,
                    task_time: core.task_time,
                    pickup_time: core.pickup_time,
                    features,
                }
            })
            .collect()
    }
}

impl ShardSink for StreamingEnricher {
    type Error = std::convert::Infallible;

    fn flush(
        &mut self,
        base: usize,
        shard: &InstanceColumns,
    ) -> std::result::Result<(), Self::Error> {
        assert_eq!(base, self.rows, "shards must arrive contiguously in ascending order");
        for row in shard.iter() {
            let bi = row.batch.index();
            if self.last_batch != Some(bi) {
                if let Some(last) = self.last_batch {
                    assert!(bi > last, "rows must arrive grouped by batch, batches ascending");
                }
                self.close_pile();
                self.last_batch = Some(bi);
                if self.sampled[bi] {
                    self.current = Some(BatchPile {
                        batch: bi,
                        created: self.created[bi],
                        n_instances: 0,
                        pickups: std::mem::take(&mut self.spare_pickups),
                        times: std::mem::take(&mut self.spare_times),
                        by_item: BTreeMap::new(),
                    });
                }
            }
            // Disjoint field borrows: the pool feeds `or_insert_with`
            // while the pile is mutably borrowed.
            let spare_answer_vecs = &mut self.spare_answer_vecs;
            if let Some(pile) = &mut self.current {
                pile.n_instances += 1;
                pile.pickups.push((row.start - pile.created).as_secs() as f64);
                pile.times.push(row.work_time().as_secs() as f64);
                pile.by_item
                    .entry(row.item.raw())
                    .or_insert_with(|| spare_answer_vecs.pop().unwrap_or_default())
                    .push(row.answer.clone());
            }
        }
        self.rows += shard.len();
        Ok(())
    }
}

fn aggregate_clusters(
    ds: &Dataset,
    batch_metrics: &[Option<BatchMetrics>],
    n_clusters: usize,
) -> Vec<ClusterInfo> {
    let mut members: Vec<Vec<&BatchMetrics>> = vec![Vec::new(); n_clusters];
    for m in batch_metrics.iter().flatten() {
        members[m.cluster as usize].push(m);
    }

    // Per-cluster medians are independent; compute them across threads in
    // cluster-id order (the nonempty list is ordered, and the parallel map
    // preserves input order, so output is thread-count-invariant).
    let nonempty: Vec<(usize, &Vec<&BatchMetrics>)> =
        members.iter().enumerate().filter(|(_, ms)| !ms.is_empty()).collect();
    nonempty
        .par_iter()
        .map(|&(id, ms)| {
            // Majority task type supplies the cluster's manual labels
            // (the paper labels one task per cluster, §3.4).
            let mut type_votes: HashMap<TaskTypeId, usize> = HashMap::new();
            for m in ms {
                *type_votes.entry(ds.batch(m.batch).task_type).or_insert(0) += 1;
            }
            let majority = type_votes
                .iter()
                .max_by_key(|&(_, &c)| c)
                .map(|(&t, _)| t)
                .expect("non-empty cluster");
            let tt = ds.task_type(majority);

            // Selection, not a full sort: these scratch vectors are
            // rebuilt per cluster, so the O(n log n) sort inside `median`
            // was pure overhead.
            let med = |f: &dyn Fn(&BatchMetrics) -> Option<f64>| {
                let mut vals: Vec<f64> = ms.iter().filter_map(|m| f(m)).collect();
                median_inplace(&mut vals)
            };
            let medf = |f: &dyn Fn(&BatchMetrics) -> f64| {
                let mut vals: Vec<f64> = ms.iter().map(|m| f(m)).collect();
                median_inplace(&mut vals).unwrap_or(0.0)
            };

            ClusterInfo {
                id: id as u32,
                batches: ms.iter().map(|m| m.batch).collect(),
                n_instances: ms.iter().map(|m| u64::from(m.n_instances)).sum(),
                labeled: tt.is_labeled(),
                goals: tt.goals,
                operators: tt.operators,
                data_types: tt.data_types,
                words: medf(&|m| f64::from(m.features.words)),
                text_boxes: medf(&|m| f64::from(m.features.text_boxes)),
                examples: medf(&|m| f64::from(m.features.examples)),
                images: medf(&|m| f64::from(m.features.images)),
                items: medf(&|m| f64::from(m.n_items)),
                disagreement: med(&|m| m.disagreement),
                task_time: med(&|m| m.task_time),
                pickup_time: med(&|m| m.pickup_time),
                first_week: ms
                    .iter()
                    .map(|m| ds.batch(m.batch).created_at.week())
                    .min()
                    .expect("non-empty cluster"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::tiny_study()
    }

    #[test]
    fn enriches_every_sampled_batch() {
        let s = study();
        let sampled = s.dataset().batches.iter().filter(|b| b.sampled).count();
        assert_eq!(s.enriched_batches().count(), sampled);
        for (i, b) in s.dataset().batches.iter().enumerate() {
            assert_eq!(
                s.batch_metrics(BatchId::from_usize(i)).is_some(),
                b.sampled,
                "metrics exactly for sampled batches"
            );
        }
    }

    #[test]
    fn fused_refuses_after_post_scan_mutation() {
        // Regression: the memoized fused scan used to make any later data
        // change silently invisible — the cache kept serving pre-mutation
        // aggregates. It must refuse instead.
        let mut s = Study::new(crowd_sim::simulate(&crowd_sim::SimConfig::tiny(77)));
        let tasks_before: u64 = s.fused().workers.values().map(|w| w.tasks).sum();
        assert!(tasks_before > 0);
        let trust = s.dataset().instances.row(0).trust;
        s.instances_mut().set_trust(0, (trust - 0.5).abs());
        let refused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = s.fused().workers.len();
        }));
        assert!(refused.is_err(), "stale fused cache must be refused, not served");
    }

    #[test]
    fn fused_allows_mutation_before_the_scan() {
        let mut s = Study::new(crowd_sim::simulate(&crowd_sim::SimConfig::tiny(78)));
        let trust = s.dataset().instances.row(0).trust;
        s.instances_mut().set_trust(0, trust); // row-visible write, same value
        let n = s.dataset().instances.len() as u64;
        assert_eq!(s.fused().n_instances(), n, "pre-scan mutation is fine");
        assert_eq!(s.fused().n_instances(), n, "and the cache stays valid");
    }

    #[test]
    fn metrics_are_plausible() {
        let s = study();
        for m in s.enriched_batches() {
            if let Some(d) = m.disagreement {
                assert!((0.0..=1.0).contains(&d), "disagreement {d}");
            }
            if let Some(t) = m.task_time {
                assert!(t > 0.0);
            }
            if let Some(p) = m.pickup_time {
                assert!(p > 0.0);
            }
            assert!(m.n_items <= m.n_instances);
        }
    }

    #[test]
    fn pickup_dominates_task_time_in_aggregate() {
        // Fig 13: pickup-time is orders of magnitude above task-time.
        let s = study();
        let pickups: Vec<f64> = s.enriched_batches().filter_map(|m| m.pickup_time).collect();
        let times: Vec<f64> = s.enriched_batches().filter_map(|m| m.task_time).collect();
        let mp = median(&pickups).unwrap();
        let mt = median(&times).unwrap();
        assert!(mp > mt * 3.0, "median pickup {mp} ≫ median task time {mt}");
    }

    #[test]
    fn clusters_cover_all_enriched_batches() {
        let s = study();
        let in_clusters: usize = s.clusters().iter().map(|c| c.batches.len()).sum();
        assert_eq!(in_clusters, s.enriched_batches().count());
        for c in s.clusters() {
            assert!(!c.batches.is_empty());
            assert!(c.n_instances > 0);
        }
    }

    #[test]
    fn clustering_recovers_task_types() {
        // Batches of one task type should overwhelmingly share a cluster.
        let s = study();
        let mut type_to_clusters: HashMap<u32, std::collections::HashSet<u32>> = HashMap::new();
        for m in s.enriched_batches() {
            let tt = s.dataset().batch(m.batch).task_type.raw();
            type_to_clusters.entry(tt).or_default().insert(m.cluster);
        }
        let split_types = type_to_clusters.values().filter(|set| set.len() > 1).count();
        let frac = split_types as f64 / type_to_clusters.len() as f64;
        assert!(frac < 0.12, "few types split across clusters: {frac}");
        // And the number of clusters is near the number of observed types.
        let n_types = type_to_clusters.len();
        let n_clusters = s.clusters().len();
        assert!(
            (n_clusters as f64) < n_types as f64 * 1.35,
            "clusters {n_clusters} vs types {n_types}"
        );
    }

    #[test]
    fn streaming_enricher_matches_enrich_batches_bitwise() {
        let ds = crowd_sim::simulate(&crowd_sim::SimConfig::tiny(1301));
        let clustering = {
            let (_ids, docs) = sampled_docs(&ds);
            crowd_cluster::Clusterer::new(ClusterParams::default()).cluster(&docs)
        };
        let index = ds.index();
        let monolithic = enrich_batches(&ds, &index, &clustering);

        // Entity-only view + shard-by-shard replay of the instance rows,
        // at several shard widths (the enricher is width-invariant).
        let mut entities = ds.clone();
        entities.instances = crowd_core::dataset::InstanceColumns::new();
        for shards in [1usize, 4, 16] {
            let plan = ShardPlan::new(ds.instances.len(), shards);
            let mut enricher = StreamingEnricher::new(&entities);
            let sharded = ShardedColumns::split(ds.instances.clone(), shards);
            for (base, shard) in sharded.iter_shards() {
                enricher.flush(base, shard).expect("infallible");
            }
            assert_eq!(enricher.rows(), ds.instances.len());
            let streamed = enricher.finish(&entities, &clustering);
            assert_eq!(streamed, monolithic, "shards={shards} plan={plan:?}");
        }
    }

    #[test]
    #[should_panic(expected = "ascending order")]
    fn streaming_enricher_rejects_gaps() {
        let ds = crowd_sim::simulate(&crowd_sim::SimConfig::tiny(1301));
        let mut entities = ds.clone();
        entities.instances = crowd_core::dataset::InstanceColumns::new();
        let mut enricher = StreamingEnricher::new(&entities);
        let _ = enricher.flush(ScanPass::CHUNK, &ds.instances);
    }

    #[test]
    fn columns_optional_study_reports_rows_and_streams_fused() {
        let ds = crowd_sim::simulate(&crowd_sim::SimConfig::tiny(1301));
        let n = ds.instances.len();
        let full = Study::new(ds.clone());
        let metrics: Vec<BatchMetrics> = full.enriched_batches().cloned().collect();

        let mut entities = ds.clone();
        entities.instances = crowd_core::dataset::InstanceColumns::new();
        let rows = std::sync::Arc::new(ds.instances.clone());
        let lean = Study::from_enrichment_streamed(entities, metrics, n, move |study| {
            // Stand-in for the snapshot reader: stream the held columns
            // back in CHUNK-aligned shards.
            let sharded = ShardedColumns::split((*rows).clone(), 7);
            let shards = sharded
                .iter_shards()
                .map(|(base, shard)| Ok::<_, std::convert::Infallible>((base, shard.clone())));
            let metrics: Vec<BatchMetrics> = study.enriched_batches().cloned().collect();
            crate::fused::compute_streamed(
                study.dataset(),
                &metrics,
                rows.end_col().iter().copied().max(),
                shards,
            )
            .expect("infallible stream")
        });

        assert!(!lean.columns_resident());
        assert!(full.columns_resident());
        assert_eq!(lean.n_instances(), n);
        assert_eq!(full.n_instances(), n);
        assert!(lean.dataset().instances.is_empty());
        assert_eq!(lean.clusters().len(), full.clusters().len());
        assert_eq!(lean.fused(), full.fused(), "streamed fused is bit-identical");
    }

    #[test]
    fn labeled_cluster_fraction_near_83_percent() {
        let s = study();
        let labeled = s.labeled_clusters().count() as f64;
        let frac = labeled / s.clusters().len() as f64;
        assert!((0.70..=0.95).contains(&frac), "§2.4: ~83% labeled, got {frac}");
    }

    #[test]
    fn cluster_features_reflect_extraction() {
        let s = study();
        for c in s.clusters() {
            assert!(c.words > 0.0, "every interface has words");
            assert!(c.items >= 1.0);
        }
        // Some clusters have examples/images, most do not (§4.6, §4.7).
        let with_ex = s.clusters().iter().filter(|c| c.examples > 0.0).count();
        let with_im = s.clusters().iter().filter(|c| c.images > 0.0).count();
        assert!(with_ex < s.clusters().len() / 4);
        assert!(with_im > 0);
    }
}
