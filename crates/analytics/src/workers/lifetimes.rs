//! Worker lifetimes and engagement (paper §5.3–§5.4; Fig 30).
//!
//! All lifetime quantities are *emergent*: computed from instance
//! timestamps, exactly as the authors did — "the number of days between
//! their last and first activity on the marketplace".

use crowd_stats::descriptive::{mean, median, percentile};

use crate::study::Study;

/// Per-worker lifetime aggregates for workers with ≥1 task.
#[derive(Debug, Clone, Default)]
pub struct LifetimeStats {
    /// Lifetime in days (last − first activity + 1) per worker.
    pub lifetimes_days: Vec<u32>,
    /// Distinct working days per worker.
    pub working_days: Vec<u32>,
    /// Fraction of lifetime days on which the worker was active.
    pub active_fraction: Vec<f64>,
    /// Tasks per worker (aligned with the other vectors).
    pub tasks: Vec<u64>,
    /// Fraction of workers with a one-day lifetime (paper: 52.7%).
    pub one_day_fraction: f64,
    /// Share of tasks done by one-day workers (paper: 2.4%).
    pub one_day_task_share: f64,
    /// Fraction of workers with lifetime < 100 days (paper: 79%).
    pub short_lifetime_fraction: f64,
    /// Share of tasks done by "active" workers (>10 working days;
    /// paper: 83%).
    pub active_task_share: f64,
    /// Fraction of the whole workforce that is "active" (paper: ~15%).
    pub active_worker_fraction: f64,
    /// Among active workers, the fraction averaging ≥1 working day per
    /// week of lifetime (paper: >43%).
    pub weekly_active_fraction: f64,
}

/// Computes lifetime statistics.
pub fn lifetime_stats(study: &Study) -> LifetimeStats {
    let fused = study.fused();
    let mut out = LifetimeStats::default();
    let total_tasks: u64 = fused.workers.values().map(|a| a.tasks).sum();
    let mut one_day_tasks = 0u64;
    let mut active_tasks = 0u64;
    let mut n_active = 0usize;
    let mut weekly_active = 0usize;

    for agg in fused.workers.values() {
        let lifetime = (agg.last_day - agg.first_day + 1) as u32;
        let wd = agg.days.len() as u32;
        out.lifetimes_days.push(lifetime);
        out.working_days.push(wd);
        out.active_fraction.push(f64::from(wd) / f64::from(lifetime));
        out.tasks.push(agg.tasks);
        if lifetime == 1 {
            one_day_tasks += agg.tasks;
        }
        if wd > 10 {
            n_active += 1;
            active_tasks += agg.tasks;
            if f64::from(wd) >= f64::from(lifetime) / 7.0 {
                weekly_active += 1;
            }
        }
    }
    let n_workers = fused.workers.len().max(1) as f64;
    out.one_day_fraction =
        out.lifetimes_days.iter().filter(|&&l| l == 1).count() as f64 / n_workers;
    out.one_day_task_share = one_day_tasks as f64 / total_tasks.max(1) as f64;
    out.short_lifetime_fraction =
        out.lifetimes_days.iter().filter(|&&l| l < 100).count() as f64 / n_workers;
    out.active_task_share = active_tasks as f64 / total_tasks.max(1) as f64;
    out.active_worker_fraction = n_active as f64 / n_workers;
    out.weekly_active_fraction = weekly_active as f64 / n_active.max(1) as f64;
    out
}

/// §5.4 "Trust": distribution of average trust among active workers
/// (>10 working days).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveTrust {
    /// Mean of active workers' average trust (paper: ≥ 0.91).
    pub mean: f64,
    /// Median (paper: ≥ 0.91).
    pub median: f64,
    /// 10th percentile (paper: 90% of active workers above 0.84).
    pub p10: f64,
    /// Active workers measured.
    pub n: usize,
}

/// Computes the active-worker trust distribution; `None` when no worker
/// has more than 10 working days.
pub fn active_trust(study: &Study) -> Option<ActiveTrust> {
    let avgs: Vec<f64> = study
        .fused()
        .workers
        .values()
        .filter(|a| a.days.len() > 10)
        .map(|a| a.trust_sum / a.tasks as f64)
        .collect();
    if avgs.is_empty() {
        return None;
    }
    Some(ActiveTrust {
        mean: mean(&avgs)?,
        median: median(&avgs)?,
        p10: percentile(&avgs, 10.0)?,
        n: avgs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::tiny_study()
    }

    #[test]
    fn majority_are_one_day_workers() {
        // §5.3: 52.7% of workers have a one-day lifetime.
        let l = lifetime_stats(study());
        assert!(
            (0.30..=0.70).contains(&l.one_day_fraction),
            "one-day fraction {}",
            l.one_day_fraction
        );
    }

    #[test]
    fn one_day_workers_do_little_work() {
        // §5.3: one-day workers complete only ~2.4% of tasks.
        let l = lifetime_stats(study());
        assert!(l.one_day_task_share < 0.15, "share {}", l.one_day_task_share);
    }

    #[test]
    fn short_lifetimes_dominate() {
        // §5.3: 79% of lifetimes under 100 days.
        let l = lifetime_stats(study());
        assert!(l.short_lifetime_fraction > 0.6, "short fraction {}", l.short_lifetime_fraction);
    }

    #[test]
    fn active_minority_does_most_work() {
        // §5.3: ~15% of workers are active repeats doing >80% of tasks.
        let l = lifetime_stats(study());
        assert!(l.active_worker_fraction < 0.5, "{}", l.active_worker_fraction);
        assert!(l.active_task_share > 0.5, "active share {}", l.active_task_share);
        assert!(l.active_task_share > l.one_day_task_share * 5.0);
    }

    #[test]
    fn vectors_are_aligned_and_valid() {
        let l = lifetime_stats(study());
        assert_eq!(l.lifetimes_days.len(), l.working_days.len());
        assert_eq!(l.lifetimes_days.len(), l.active_fraction.len());
        assert_eq!(l.lifetimes_days.len(), l.tasks.len());
        for i in 0..l.lifetimes_days.len() {
            assert!(l.working_days[i] >= 1);
            assert!(l.working_days[i] <= l.lifetimes_days[i]);
            assert!(l.active_fraction[i] > 0.0 && l.active_fraction[i] <= 1.0);
        }
    }

    #[test]
    fn some_long_lifetimes_exist() {
        // Fig 30a: lifetimes extend to hundreds of days.
        let l = lifetime_stats(study());
        let max = *l.lifetimes_days.iter().max().unwrap();
        assert!(max > 200, "max lifetime {max}");
    }

    #[test]
    fn active_trust_is_high() {
        // §5.4: mean/median ≈ 0.91, 90% above 0.84.
        let t = active_trust(study()).expect("active workers exist");
        assert!(t.mean > 0.85, "mean {}", t.mean);
        assert!(t.median > 0.85, "median {}", t.median);
        assert!(t.p10 > 0.80, "p10 {}", t.p10);
        assert!(t.n > 10);
    }
}
