//! Cohort retention: group workers by the month of their first activity
//! and track the fraction still active k months later.
//!
//! §5.3 shows lifetimes and working days in aggregate; the cohort view is
//! the standard sharper instrument (the paper's related work cites "a
//! cohort analysis of Mechanical Turk", reference \[16\]) and quantifies the takeaway
//! that "the availability of workers decreases exponentially with
//! experience".

use crowd_core::time::Timestamp;

use crate::study::Study;

/// One monthly cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct Cohort {
    /// First day of the cohort month.
    pub month_start: Timestamp,
    /// Workers whose first activity fell in this month.
    pub size: u64,
    /// `retention[k]` = fraction of the cohort active in month
    /// `join + k`; `retention[0] == 1` by construction.
    pub retention: Vec<f64>,
}

#[cfg(test)]
use crate::fused::month_index;

fn month_start(index: i32) -> Timestamp {
    Timestamp::from_ymd(index.div_euclid(12), (index.rem_euclid(12) + 1) as u32, 1)
}

/// Computes monthly cohorts with retention horizons up to the end of the
/// dataset. Workers with zero instances are excluded (unobservable).
pub fn monthly_cohorts(study: &Study) -> Vec<Cohort> {
    let fused = study.fused();
    let Some(max_month) = fused.workers.values().filter_map(|a| a.months.last().copied()).max()
    else {
        return Vec::new();
    };

    // Group workers by join month (= their earliest active month).
    let mut cohorts: std::collections::BTreeMap<i32, Vec<u32>> = std::collections::BTreeMap::new();
    for (&w, agg) in &fused.workers {
        let join = *agg.months.first().expect("active worker has months");
        cohorts.entry(join).or_default().push(w);
    }

    cohorts
        .into_iter()
        .map(|(join_month, members)| {
            let horizon = (max_month - join_month) as usize + 1;
            let mut retention = vec![0.0; horizon];
            for &w in &members {
                for &m in &fused.workers[&w].months {
                    retention[(m - join_month) as usize] += 1.0;
                }
            }
            let size = members.len() as u64;
            for r in retention.iter_mut() {
                *r /= size as f64;
            }
            Cohort { month_start: month_start(join_month), size, retention }
        })
        .collect()
}

/// The mean retention curve across cohorts (simple average over cohorts
/// that reach horizon `k`), truncated to `max_months`.
pub fn mean_retention(cohorts: &[Cohort], max_months: usize) -> Vec<f64> {
    (0..max_months)
        .map(|k| {
            let with_horizon: Vec<f64> =
                cohorts.iter().filter(|c| c.retention.len() > k).map(|c| c.retention[k]).collect();
            if with_horizon.is_empty() {
                0.0
            } else {
                with_horizon.iter().sum::<f64>() / with_horizon.len() as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::tiny_study()
    }

    #[test]
    fn cohort_sizes_cover_active_workforce() {
        let s = study();
        let cohorts = monthly_cohorts(s);
        assert!(!cohorts.is_empty());
        let total: u64 = cohorts.iter().map(|c| c.size).sum();
        let active = {
            let ds = s.dataset();
            let mut seen = vec![false; ds.workers.len()];
            for inst in &ds.instances {
                seen[inst.worker.index()] = true;
            }
            seen.iter().filter(|&&x| x).count() as u64
        };
        assert_eq!(total, active);
    }

    #[test]
    fn retention_starts_at_one_and_is_bounded() {
        for c in monthly_cohorts(study()) {
            assert!((c.retention[0] - 1.0).abs() < 1e-12, "joiners are active at k=0");
            for &r in &c.retention {
                assert!((0.0..=1.0).contains(&r));
            }
        }
    }

    #[test]
    fn retention_decays_on_average() {
        // §5.3: "availability of workers decreases exponentially with
        // experience" — month-1 retention is far below month-0.
        let cohorts = monthly_cohorts(study());
        let mean = mean_retention(&cohorts, 6);
        assert!(mean[1] < 0.7, "m1 retention {}", mean[1]);
        assert!(mean[3] <= mean[1] + 0.1, "retention keeps decaying: {mean:?}");
    }

    #[test]
    fn cohorts_are_chronological() {
        let cohorts = monthly_cohorts(study());
        for w in cohorts.windows(2) {
            assert!(w[0].month_start < w[1].month_start);
        }
    }

    #[test]
    fn month_math_roundtrips() {
        for (y, m) in [(2012, 7), (2015, 1), (2016, 12)] {
            let t = Timestamp::from_ymd(y, m, 15);
            let idx = month_index(t);
            assert_eq!(month_start(idx).ymd(), (y, m, 1));
        }
    }

    #[test]
    fn empty_dataset() {
        let s = Study::new(crowd_core::DatasetBuilder::new().finish().unwrap());
        assert!(monthly_cohorts(&s).is_empty());
        assert_eq!(mean_retention(&[], 3), vec![0.0, 0.0, 0.0]);
    }
}
