//! Work-session segmentation — the "attention spans" the paper names as a
//! §5 goal ("understanding worker attention spans, lifetimes, and general
//! behavior") and §7 future work ("a deeper understanding of worker
//! behavior by looking at phenomena such as worker anchoring, worker
//! learning, and interactions between various jobs").
//!
//! A session is a maximal run of one worker's instances where each next
//! instance starts within `gap` of the previous instance's end. Session
//! statistics quantify how long workers stay engaged once they sit down.

use crowd_core::time::Duration;
use crowd_stats::descriptive::median_sorted;

use crate::study::Study;

/// Default session-splitting gap: 30 minutes of inactivity.
pub const DEFAULT_GAP: Duration = Duration::from_mins(30);

/// One work session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Session {
    /// Worker (dataset index).
    pub worker: u32,
    /// Instances completed within the session.
    pub instances: u32,
    /// Wall-clock span in seconds (first start → last end).
    pub span_secs: f64,
}

/// Aggregate session statistics.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// All sessions.
    pub sessions: Vec<Session>,
    /// Median session span in minutes.
    pub median_span_mins: f64,
    /// Median instances per session.
    pub median_instances: f64,
    /// Mean sessions per active worker.
    pub mean_sessions_per_worker: f64,
    /// Fraction of sessions consisting of a single instance
    /// (drive-by participation).
    pub single_instance_fraction: f64,
}

/// Segments every worker's instances into sessions.
///
/// Interval lists come from the fused scan cache; only the sort and the
/// gap-dependent segmentation happen per call, so varying `gap` never
/// re-reads the instance table.
pub fn sessions(study: &Study, gap: Duration) -> SessionStats {
    let fused = study.fused();
    let mut out = SessionStats::default();
    let mut active_workers = 0usize;
    for (&worker, agg) in &fused.workers {
        active_workers += 1;
        // Stable sort: ties keep row order, like the index sort this
        // replaced.
        let mut intervals = agg.intervals.clone();
        intervals.sort_by_key(|&(start, _)| start);
        let (mut start, mut end) = intervals[0];
        let mut count = 1u32;
        for &(s, e) in intervals.iter().skip(1) {
            if s - end <= gap {
                count += 1;
                if e > end {
                    end = e;
                }
            } else {
                out.sessions.push(Session {
                    worker,
                    instances: count,
                    span_secs: (end - start).as_secs() as f64,
                });
                start = s;
                end = e;
                count = 1;
            }
        }
        out.sessions.push(Session {
            worker,
            instances: count,
            span_secs: (end - start).as_secs() as f64,
        });
    }

    if out.sessions.is_empty() {
        return out;
    }
    // `median_sorted`, not `sorted[len / 2]`: the latter is the *upper*
    // central element on even-length lists, biasing both medians high.
    let mut spans: Vec<f64> = out.sessions.iter().map(|s| s.span_secs / 60.0).collect();
    spans.sort_by(f64::total_cmp);
    out.median_span_mins = median_sorted(&spans).expect("sessions is non-empty");
    let mut counts: Vec<f64> = out.sessions.iter().map(|s| f64::from(s.instances)).collect();
    counts.sort_by(f64::total_cmp);
    out.median_instances = median_sorted(&counts).expect("sessions is non-empty");
    out.mean_sessions_per_worker = out.sessions.len() as f64 / active_workers.max(1) as f64;
    out.single_instance_fraction =
        out.sessions.iter().filter(|s| s.instances == 1).count() as f64 / out.sessions.len() as f64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::prelude::*;

    fn study() -> &'static Study {
        crate::testutil::tiny_study()
    }

    /// Hand-built dataset: one worker with two clear sessions.
    fn two_session_dataset() -> Study {
        let mut b = DatasetBuilder::new();
        let s = b.add_source(Source::new("s", SourceKind::Dedicated));
        let c = b.add_country("X");
        let w = b.add_worker(Worker::new(s, c));
        let tt = b.add_task_type(TaskType::new("t"));
        let t0 = Timestamp::from_ymd(2015, 4, 1);
        let batch = b.add_batch(Batch::new(tt, t0).with_html("<p>q</p>"));
        // Session 1: three instances back-to-back; session 2 after 2 hours.
        let offsets = [(0i64, 60i64), (90, 150), (200, 260), (7_600, 7_700)];
        for (i, &(start, end)) in offsets.iter().enumerate() {
            b.add_instance(TaskInstance {
                batch,
                item: ItemId::new(i as u32),
                worker: w,
                start: t0 + Duration::from_secs(start),
                end: t0 + Duration::from_secs(end),
                trust: 0.9,
                answer: Answer::Choice(0),
            });
        }
        Study::new(b.finish().unwrap())
    }

    #[test]
    fn splits_on_the_gap() {
        let s = two_session_dataset();
        let stats = sessions(&s, DEFAULT_GAP);
        assert_eq!(stats.sessions.len(), 2);
        assert_eq!(stats.sessions[0].instances, 3);
        assert_eq!(stats.sessions[1].instances, 1);
        assert!((stats.sessions[0].span_secs - 260.0).abs() < 1e-9);
        assert_eq!(stats.mean_sessions_per_worker, 2.0);
        assert_eq!(stats.single_instance_fraction, 0.5);
    }

    #[test]
    fn giant_gap_merges_everything() {
        let s = two_session_dataset();
        let stats = sessions(&s, Duration::from_hours(6));
        assert_eq!(stats.sessions.len(), 1);
        assert_eq!(stats.sessions[0].instances, 4);
    }

    #[test]
    fn zero_gap_splits_everything_disjoint() {
        let s = two_session_dataset();
        let stats = sessions(&s, Duration::ZERO);
        // Instances don't touch exactly → every instance its own session.
        assert_eq!(stats.sessions.len(), 4);
    }

    #[test]
    fn simulated_world_has_plausible_sessions() {
        let stats = sessions(study(), DEFAULT_GAP);
        assert!(!stats.sessions.is_empty());
        assert!(stats.median_span_mins >= 0.0);
        assert!(stats.mean_sessions_per_worker >= 1.0);
        // §5.4: most workers put in < 1h per working day, so sessions are
        // typically short.
        assert!(stats.median_span_mins < 120.0, "median session {} mins", stats.median_span_mins);
        // Total instances across sessions equals the dataset.
        let total: u32 = stats.sessions.iter().map(|s| s.instances).sum();
        assert_eq!(total as usize, study().dataset().instances.len());
    }

    #[test]
    fn sessions_are_per_worker() {
        let stats = sessions(study(), DEFAULT_GAP);
        // No session may span more instances than its worker performed.
        let ds = study().dataset();
        let mut per_worker = vec![0u32; ds.workers.len()];
        for inst in &ds.instances {
            per_worker[inst.worker.index()] += 1;
        }
        for s in &stats.sessions {
            assert!(s.instances <= per_worker[s.worker as usize]);
        }
    }

    #[test]
    fn empty_dataset() {
        let s = Study::new(DatasetBuilder::new().finish().unwrap());
        let stats = sessions(&s, DEFAULT_GAP);
        assert!(stats.sessions.is_empty());
        assert_eq!(stats.median_span_mins, 0.0);
    }
}
