//! §5 "Worker Analyses": labor sources, geography, workloads, lifetimes
//! and engagement.

pub mod cohorts;
pub mod geography;
pub mod lifetimes;
pub mod sessions;
pub mod sources;
pub mod workload;
