//! Labor-source analysis (paper §5.1; Figs 26, 27).

use crowd_core::prelude::*;
use crowd_stats::descriptive::median;

use crate::study::Study;

/// Per-source aggregate statistics (the Fig 27 panels).
#[derive(Debug, Clone)]
pub struct SourceStats {
    /// The source.
    pub source: SourceId,
    /// Source name.
    pub name: String,
    /// Workers recruited by the source who performed at least one task.
    pub n_workers: u64,
    /// Tasks performed by those workers.
    pub n_tasks: u64,
    /// Average tasks per worker (Fig 26a).
    pub avg_tasks_per_worker: f64,
    /// Mean trust over the source's instances (Fig 27b/c).
    pub mean_trust: f64,
    /// Mean relative task time: worker time divided by the batch median
    /// (Fig 27e/f).
    pub mean_relative_task_time: f64,
}

/// Computes per-source statistics over all sources with ≥1 task.
pub fn per_source(study: &Study) -> Vec<SourceStats> {
    let ds = study.dataset();
    let fused = study.fused();

    // Each worker belongs to exactly one source, so "distinct workers
    // seen per source" is a count over the fused per-worker aggregates.
    let mut active_workers = vec![0u64; ds.sources.len()];
    for &w in fused.workers.keys() {
        active_workers[ds.worker(WorkerId::new(w)).source.index()] += 1;
    }

    fused
        .sources
        .iter()
        .map(|(&s, agg)| {
            let workers = active_workers[s as usize];
            SourceStats {
                source: SourceId::new(s),
                name: ds.source(SourceId::new(s)).name.clone(),
                n_workers: workers,
                n_tasks: agg.n_tasks,
                avg_tasks_per_worker: agg.n_tasks as f64 / workers.max(1) as f64,
                mean_trust: agg.trust_sum / agg.n_tasks as f64,
                mean_relative_task_time: if agg.rel_time_n > 0 {
                    agg.rel_time_sum / agg.rel_time_n as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// The top `n` sources by worker count (Fig 27a).
pub fn top_by_workers(stats: &[SourceStats], n: usize) -> Vec<&SourceStats> {
    let mut order: Vec<&SourceStats> = stats.iter().collect();
    order.sort_by_key(|s| std::cmp::Reverse(s.n_workers));
    order.truncate(n);
    order
}

/// The top `n` sources by task count (Fig 27d), plus their combined share
/// of all tasks (paper: top-10 ≈ 95%).
pub fn top_by_tasks(stats: &[SourceStats], n: usize) -> (Vec<&SourceStats>, f64) {
    let total: u64 = stats.iter().map(|s| s.n_tasks).sum();
    let mut order: Vec<&SourceStats> = stats.iter().collect();
    order.sort_by_key(|s| std::cmp::Reverse(s.n_tasks));
    order.truncate(n);
    let share = order.iter().map(|s| s.n_tasks).sum::<u64>() as f64 / total.max(1) as f64;
    (order, share)
}

/// Fig 26b: number of sources with active workers, per week.
#[derive(Debug, Clone, Default)]
pub struct ActiveSources {
    /// Week of each row.
    pub weeks: Vec<WeekIndex>,
    /// Sources with ≥1 instance that week.
    pub active_sources: Vec<u32>,
}

/// Computes the weekly active-source counts.
pub fn active_sources_weekly(study: &Study) -> ActiveSources {
    let ds = study.dataset();
    let fused = study.fused();
    let n = fused.n_weeks;
    if n == 0 {
        return ActiveSources::default();
    }
    let mut sets: Vec<std::collections::BTreeSet<u32>> = vec![std::collections::BTreeSet::new(); n];
    for (&w, agg) in &fused.workers {
        let src = ds.worker(WorkerId::new(w)).source.raw();
        for &wk in agg.weeks.keys() {
            sets[wk].insert(src);
        }
    }
    ActiveSources {
        weeks: (0..n).map(|i| WeekIndex(fused.w0 + i as i32)).collect(),
        active_sources: sets.iter().map(|s| s.len() as u32).collect(),
    }
}

/// §5.1 headline statistics about source quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceQualityStats {
    /// Fraction of sources with mean trust below 0.8 (paper: ≈10%).
    pub low_trust_fraction: f64,
    /// Fraction of sources with mean relative task time ≥ 3 (paper: ≈5%).
    pub slow_fraction: f64,
    /// The internal pool's share of all tasks (paper: ≈2%).
    pub internal_task_share: f64,
    /// Median of the per-source mean relative task time (≈1 by design).
    pub median_relative_time: f64,
}

/// Computes §5.1 source-quality statistics.
pub fn quality_stats(study: &Study, stats: &[SourceStats]) -> SourceQualityStats {
    let ds = study.dataset();
    let n = stats.len().max(1) as f64;
    let low_trust = stats.iter().filter(|s| s.mean_trust < 0.8).count() as f64;
    let slow = stats.iter().filter(|s| s.mean_relative_task_time >= 3.0).count() as f64;
    let total: u64 = stats.iter().map(|s| s.n_tasks).sum();
    let internal: u64 =
        stats.iter().filter(|s| ds.source(s.source).is_internal()).map(|s| s.n_tasks).sum();
    let rels: Vec<f64> = stats.iter().map(|s| s.mean_relative_task_time).collect();
    SourceQualityStats {
        low_trust_fraction: low_trust / n,
        slow_fraction: slow / n,
        internal_task_share: internal as f64 / total.max(1) as f64,
        median_relative_time: median(&rels).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::default_study()
    }

    #[test]
    fn task_totals_match_dataset() {
        let s = study();
        let stats = per_source(s);
        let total: u64 = stats.iter().map(|x| x.n_tasks).sum();
        assert_eq!(total as usize, s.dataset().instances.len());
        assert!(stats.len() > 30, "many sources active: {}", stats.len());
    }

    #[test]
    fn top_sources_dominate_tasks() {
        // §5.1: "the most popular 10 sources account for 95% of the tasks".
        let s = study();
        let stats = per_source(s);
        let (_, share) = top_by_tasks(&stats, 10);
        assert!(share > 0.85, "top-10 task share {share}");
    }

    #[test]
    fn amt_is_slow_and_untrusted() {
        // Fig 27: amt has mean trust ≈0.75 and rel. task time > 5.
        let s = study();
        let stats = per_source(s);
        let amt = stats.iter().find(|x| x.name == "amt");
        if let Some(amt) = amt {
            assert!(amt.mean_trust < 0.82, "amt trust {}", amt.mean_trust);
            assert!(
                amt.mean_relative_task_time > 2.5,
                "amt rel time {}",
                amt.mean_relative_task_time
            );
        }
    }

    #[test]
    fn quality_stats_match_section_5_1() {
        let s = study();
        let stats = per_source(s);
        let q = quality_stats(s, &stats);
        assert!(q.internal_task_share < 0.10, "internal ≈2%: {}", q.internal_task_share);
        assert!(
            (0.5..=2.0).contains(&q.median_relative_time),
            "most sources ≈1×: {}",
            q.median_relative_time
        );
        assert!(q.low_trust_fraction < 0.35);
    }

    #[test]
    fn avg_tasks_per_worker_varies_widely() {
        // Fig 26a: dedicated sources do orders of magnitude more per
        // worker than on-demand ones.
        let s = study();
        let stats = per_source(s);
        let max = stats.iter().map(|x| x.avg_tasks_per_worker).fold(0.0, f64::max);
        let min = stats.iter().map(|x| x.avg_tasks_per_worker).fold(f64::INFINITY, f64::min);
        assert!(max / min > 10.0, "spread {max} / {min}");
    }

    #[test]
    fn active_sources_steadier_than_load() {
        // Fig 26b: "a relatively fixed number of active sources" while
        // task volume swings.
        let s = study();
        let a = active_sources_weekly(s);
        let post: Vec<f64> = a
            .weeks
            .iter()
            .zip(&a.active_sources)
            .filter(|(w, &c)| w.start() >= Timestamp::from_ymd(2015, 1, 1) && c > 0)
            .map(|(_, &c)| f64::from(c))
            .collect();
        let max = post.iter().copied().fold(0.0, f64::max);
        let med = median(&post).unwrap();
        assert!(max / med < 3.0, "source count stability: {}", max / med);
    }

    #[test]
    fn top_by_workers_is_sorted() {
        let s = study();
        let stats = per_source(s);
        let top = top_by_workers(&stats, 10);
        for w in top.windows(2) {
            assert!(w[0].n_workers >= w[1].n_workers);
        }
        assert_eq!(top.len().min(10), top.len());
        // NeoDev leads recruitment (§5.1).
        assert_eq!(top[0].name, "neodev");
    }
}
