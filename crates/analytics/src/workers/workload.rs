//! Worker workload distribution (paper §5.2; Fig 29).

use crate::study::Study;

/// Per-worker workload aggregates for workers with ≥1 task.
#[derive(Debug, Clone, Default)]
pub struct WorkloadDistribution {
    /// Task counts sorted descending — the Fig 29a rank plot.
    pub tasks_by_rank: Vec<u64>,
    /// Total hours on tasks per worker (unordered) — Fig 29b.
    pub total_hours: Vec<f64>,
    /// Average hours per active day per worker — Fig 29c.
    pub hours_per_active_day: Vec<f64>,
    /// Share of all tasks done by the top-10% of workers (paper: > 80%).
    pub top10_share: f64,
    /// Fraction of workers working < 1 hour per active day (paper: > 90%).
    pub under_one_hour_fraction: f64,
}

/// Computes the workload distribution.
pub fn distribution(study: &Study) -> WorkloadDistribution {
    let fused = study.fused();
    let aggs: Vec<_> = fused.workers.values().collect();

    let mut tasks_by_rank: Vec<u64> = aggs.iter().map(|a| a.tasks).collect();
    tasks_by_rank.sort_unstable_by_key(|&c| std::cmp::Reverse(c));

    let total: u64 = tasks_by_rank.iter().sum();
    let cut = (tasks_by_rank.len() / 10).max(1);
    let top: u64 = tasks_by_rank.iter().take(cut).sum();

    let total_hours: Vec<f64> = aggs.iter().map(|a| a.work_secs / 3_600.0).collect();
    let hours_per_active_day: Vec<f64> =
        aggs.iter().map(|a| a.work_secs / 3_600.0 / a.days.len().max(1) as f64).collect();
    let under_one_hour = hours_per_active_day.iter().filter(|&&h| h < 1.0).count() as f64;

    WorkloadDistribution {
        top10_share: top as f64 / total.max(1) as f64,
        under_one_hour_fraction: under_one_hour / aggs.len().max(1) as f64,
        tasks_by_rank,
        total_hours,
        hours_per_active_day,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::tiny_study()
    }

    #[test]
    fn rank_plot_is_descending() {
        let d = distribution(study());
        for w in d.tasks_by_rank.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(!d.tasks_by_rank.is_empty());
    }

    #[test]
    fn top10_does_most_of_the_work() {
        // §5.2: "more than 80% of the tasks are completed by just 10% of
        // the workforce".
        let d = distribution(study());
        assert!(d.top10_share > 0.6, "top-10% share {}", d.top10_share);
    }

    #[test]
    fn most_workers_under_an_hour_per_day() {
        // §5.4: "more than 90% of the workers work for less than 1 hour
        // during their working days".
        let d = distribution(study());
        assert!(
            d.under_one_hour_fraction > 0.75,
            "under-1h fraction {}",
            d.under_one_hour_fraction
        );
    }

    #[test]
    fn long_tail_of_hours_exists() {
        // Fig 29b: a handful of workers clock hundreds of hours; most few.
        let d = distribution(study());
        let max = d.total_hours.iter().copied().fold(0.0, f64::max);
        let median = {
            let mut v = d.total_hours.clone();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        assert!(max / median.max(1e-9) > 20.0, "heavy tail: {max} vs {median}");
    }

    #[test]
    fn totals_match_instances() {
        let s = study();
        let d = distribution(s);
        let total: u64 = d.tasks_by_rank.iter().sum();
        assert_eq!(total as usize, s.dataset().instances.len());
    }
}
