//! Geographic distribution of the workforce (paper §5.1, Fig 28).

use crowd_core::prelude::*;

use crate::study::Study;

/// Workers per country, for countries with at least one participating
/// worker, sorted descending.
#[derive(Debug, Clone)]
pub struct GeoDistribution {
    /// `(country, name, workers)` rows, descending by worker count.
    pub countries: Vec<(CountryId, String, u64)>,
    /// Total participating workers.
    pub total_workers: u64,
}

impl GeoDistribution {
    /// Share of the workforce held by the top `n` countries.
    pub fn top_share(&self, n: usize) -> f64 {
        let top: u64 = self.countries.iter().take(n).map(|&(_, _, c)| c).sum();
        top as f64 / self.total_workers.max(1) as f64
    }

    /// Number of countries represented.
    pub fn n_countries(&self) -> usize {
        self.countries.len()
    }
}

/// Computes the country distribution over workers who performed ≥1 task.
pub fn distribution(study: &Study) -> GeoDistribution {
    let ds = study.dataset();
    let mut per_country = vec![0u64; ds.countries.len()];
    let mut total = 0u64;
    for &w in study.fused().workers.keys() {
        per_country[ds.worker(WorkerId::new(w)).country.index()] += 1;
        total += 1;
    }
    let mut countries: Vec<(CountryId, String, u64)> = per_country
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (CountryId::from_usize(i), ds.countries[i].name.clone(), c))
        .collect();
    countries.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c));
    GeoDistribution { countries, total_workers: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> &'static Study {
        crate::testutil::tiny_study()
    }

    #[test]
    fn usa_leads() {
        let g = distribution(study());
        assert_eq!(g.countries[0].1, "USA", "Fig 28: USA contributes the most workers");
    }

    #[test]
    fn top5_hold_about_half() {
        // Fig 28: "close to 50% of the workers come from 5 countries".
        let g = distribution(study());
        let share = g.top_share(5);
        assert!((0.40..=0.65).contains(&share), "top-5 share {share}");
    }

    #[test]
    fn many_countries_represented() {
        // Fig 28: 148 countries at full scale; a tiny run still spans many.
        let g = distribution(study());
        assert!(g.n_countries() > 50, "countries {}", g.n_countries());
    }

    #[test]
    fn counts_are_descending_and_sum() {
        let g = distribution(study());
        for w in g.countries.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        let sum: u64 = g.countries.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(sum, g.total_workers);
    }
}
