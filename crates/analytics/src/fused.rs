//! The fused analytics pass: every instance-table aggregate the paper's
//! figures need, computed in **one** deterministic [`ScanPass`].
//!
//! Before this module each analytics function re-walked `ds.instances`
//! on its own (~28 full-table scans for a full reproduction run). Now a
//! single composite accumulator ([`FusedAcc`]) gathers the raw per-worker,
//! per-source, per-week, per-day, per-splice and per-item aggregates in
//! one pass, and the public functions in [`crate::marketplace`],
//! [`crate::workers`] and [`crate::design`] *shape* their outputs from the
//! cached [`Fused`] result (held in a `OnceLock` on [`Study`]).
//!
//! ## Determinism
//!
//! The engine inherits the `ScanPass` contract: fixed-size chunks folded
//! in row order, merged sequentially in chunk order — so every float sum
//! here is bit-identical at any thread count. All keyed state uses
//! `BTreeMap`/`BTreeSet` so shaping iterates in a process-independent
//! order (a `HashMap`'s random seed must never decide the order in which
//! floats are added or rows are exported).
//!
//! The raw aggregate types here are public so that `crowd-testkit` can
//! compare the fused engine field-by-field against straight-line oracle
//! re-implementations (differential testing); analytics callers should
//! keep consuming the shaped outputs in [`crate::marketplace`],
//! [`crate::workers`] and [`crate::design`] instead.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crowd_core::prelude::*;
use crowd_stats::descriptive::median;

use crate::design::metrics::LatencyPoint;
use crate::study::Study;

/// Months since year 0, for cohort bucketing.
pub fn month_index(t: Timestamp) -> i32 {
    let (y, m, _) = t.ymd();
    y * 12 + (m as i32 - 1)
}

/// Tasks and active hours of one worker inside one week.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WeekCell {
    /// Instances started this week.
    pub tasks: u64,
    /// Work-time hours clocked this week.
    pub hours: f64,
}

/// Raw per-worker aggregates (only workers with ≥ 1 instance appear).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerAgg {
    /// Instances performed.
    pub tasks: u64,
    /// Total work time in seconds (integer-valued, so order-exact).
    pub work_secs: f64,
    /// Sum of trust scores.
    pub trust_sum: f64,
    /// Day number of the first activity.
    pub first_day: i64,
    /// Day number of the last activity.
    pub last_day: i64,
    /// Distinct active day numbers.
    pub days: BTreeSet<i64>,
    /// Distinct active months (see [`month_index`]).
    pub months: BTreeSet<i32>,
    /// `(start, end)` of every instance, in row order (for sessions).
    pub intervals: Vec<(Timestamp, Timestamp)>,
    /// Per-week activity, keyed by week offset from the dataset's first
    /// week (clamped like the availability figures).
    pub weeks: BTreeMap<usize, WeekCell>,
}

impl WorkerAgg {
    pub(crate) fn new() -> WorkerAgg {
        WorkerAgg {
            tasks: 0,
            work_secs: 0.0,
            trust_sum: 0.0,
            first_day: i64::MAX,
            last_day: i64::MIN,
            days: BTreeSet::new(),
            months: BTreeSet::new(),
            intervals: Vec::new(),
            weeks: BTreeMap::new(),
        }
    }

    pub(crate) fn absorb(&mut self, o: WorkerAgg) {
        self.tasks += o.tasks;
        self.work_secs += o.work_secs;
        self.trust_sum += o.trust_sum;
        self.first_day = self.first_day.min(o.first_day);
        self.last_day = self.last_day.max(o.last_day);
        self.days.extend(o.days);
        self.months.extend(o.months);
        self.intervals.extend(o.intervals);
        for (wk, cell) in o.weeks {
            let mine = self.weeks.entry(wk).or_default();
            mine.tasks += cell.tasks;
            mine.hours += cell.hours;
        }
    }
}

/// Raw per-source aggregates (only sources with ≥ 1 instance appear).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SourceAgg {
    /// Instances performed by the source's workers.
    pub n_tasks: u64,
    /// Sum of trust scores.
    pub trust_sum: f64,
    /// Sum of work-time / batch-median-task-time ratios.
    pub rel_time_sum: f64,
    /// Instances contributing to `rel_time_sum`.
    pub rel_time_n: u64,
}

/// Everything the analytics layer needs from the instance table, gathered
/// in one scan and cached on the [`Study`].
#[derive(Debug, Clone, PartialEq)]
pub struct Fused {
    /// First week index of the dataset (0 when empty).
    pub w0: i32,
    /// Number of weeks covered (0 when empty).
    pub n_weeks: usize,
    /// Per-worker aggregates, keyed by raw worker id (ascending).
    pub workers: BTreeMap<u32, WorkerAgg>,
    /// Per-source aggregates, keyed by raw source id (ascending).
    pub sources: BTreeMap<u32, SourceAgg>,
    /// Instances issued per week (attributed to the batch-creation week).
    pub issued: Vec<u64>,
    /// Instances completed per week (by instance end time).
    pub completed: Vec<u64>,
    /// Median pickup seconds of instances issued per week.
    pub median_pickup: Vec<Option<f64>>,
    /// Instances issued per day of week (of the batch creation time).
    pub weekday: [u64; 7],
    /// Instances issued per day number (of the batch creation time).
    pub per_day: BTreeMap<i64, u64>,
    /// Fig 13b instance-level latency points, one per end-to-end splice.
    pub instance_latency: Vec<LatencyPoint>,
    /// Judgments per `(batch, item)`.
    pub per_item: BTreeMap<(u32, u32), u32>,
}

impl Fused {
    /// Total instance rows the scan covered — the authoritative count for
    /// consumers that must work when the study runs columns-optional (the
    /// weekday histogram counts every row exactly once).
    pub fn n_instances(&self) -> u64 {
        self.weekday.iter().sum()
    }
}

/// The composite accumulator feeding [`Fused`] from one [`ScanPass`].
struct FusedAcc {
    // -- configuration (copied into every chunk's working copy) ----------
    w0: i32,
    n_weeks: usize,
    /// Median task time per batch (`None` for unsampled batches), indexed
    /// by batch id.
    batch_median: Arc<Vec<Option<f64>>>,
    // -- state -----------------------------------------------------------
    workers: BTreeMap<u32, WorkerAgg>,
    sources: BTreeMap<u32, SourceAgg>,
    issued: Vec<u64>,
    completed: Vec<u64>,
    pickups: Vec<Vec<f64>>,
    weekday: [u64; 7],
    per_day: BTreeMap<i64, u64>,
    /// Per half-decade log-splice: (pickup secs, task secs) piles.
    buckets: BTreeMap<i32, (Vec<f64>, Vec<f64>)>,
    per_item: BTreeMap<(u32, u32), u32>,
}

impl FusedAcc {
    fn proto(w0: i32, n_weeks: usize, batch_median: Arc<Vec<Option<f64>>>) -> FusedAcc {
        FusedAcc {
            w0,
            n_weeks,
            batch_median,
            workers: BTreeMap::new(),
            sources: BTreeMap::new(),
            issued: vec![0; n_weeks],
            completed: vec![0; n_weeks],
            pickups: vec![Vec::new(); n_weeks],
            weekday: [0; 7],
            per_day: BTreeMap::new(),
            buckets: BTreeMap::new(),
            per_item: BTreeMap::new(),
        }
    }

    fn week_of(&self, t: Timestamp) -> usize {
        ((t.week().0 - self.w0).max(0) as usize).min(self.n_weeks - 1)
    }
}

impl Accumulator for FusedAcc {
    type Output = Fused;

    fn init(&self) -> Self {
        FusedAcc::proto(self.w0, self.n_weeks, Arc::clone(&self.batch_median))
    }

    fn accept(&mut self, ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        let created = ds.batch(row.batch).created_at;
        let work_secs = row.work_time().as_secs() as f64;
        let pickup = (row.start - created).as_secs() as f64;
        let day = row.start.day_number();

        // ---- per worker -------------------------------------------------
        let w = self.workers.entry(row.worker.raw()).or_insert_with(WorkerAgg::new);
        w.tasks += 1;
        w.work_secs += work_secs;
        w.trust_sum += f64::from(row.trust);
        w.first_day = w.first_day.min(day);
        w.last_day = w.last_day.max(day);
        w.days.insert(day);
        w.months.insert(month_index(row.start));
        w.intervals.push((row.start, row.end));
        if self.n_weeks > 0 {
            let wk = ((row.start.week().0 - self.w0).max(0) as usize).min(self.n_weeks - 1);
            let cell = w.weeks.entry(wk).or_default();
            cell.tasks += 1;
            cell.hours += row.work_time().as_hours_f64();
        }

        // ---- per source -------------------------------------------------
        let src = ds.worker(row.worker).source;
        let s = self.sources.entry(src.raw()).or_default();
        s.n_tasks += 1;
        s.trust_sum += f64::from(row.trust);
        if let Some(med) = self.batch_median[row.batch.index()] {
            if med > 0.0 {
                s.rel_time_sum += work_secs / med;
                s.rel_time_n += 1;
            }
        }

        // ---- arrival / load series --------------------------------------
        if self.n_weeks > 0 {
            let wi = self.week_of(created);
            let wc = self.week_of(row.end);
            self.issued[wi] += 1;
            self.completed[wc] += 1;
            self.pickups[wi].push(pickup);
        }
        self.weekday[created.weekday().index()] += 1;
        *self.per_day.entry(created.day_number()).or_insert(0) += 1;

        // ---- latency decomposition (Fig 13b) ----------------------------
        let p = pickup.max(1.0);
        let task = row.work_time().as_secs().max(1) as f64;
        let splice = (2.0 * (p + task).log10()).floor() as i32;
        let bucket = self.buckets.entry(splice).or_default();
        bucket.0.push(p);
        bucket.1.push(task);

        // ---- redundancy -------------------------------------------------
        *self.per_item.entry((row.batch.raw(), row.item.raw())).or_insert(0) += 1;
    }

    /// Columnar form of [`FusedAcc::accept`], called once per ≤ 8192-row
    /// chunk: derived per-row values (batch creation time, work seconds,
    /// pickup, clamped week indices, log-splice) are precomputed in tight
    /// straight-line loops over the column slices, then each state family
    /// is updated in its own ascending-row sub-loop.
    ///
    /// Bit-identity with the row loop: the families (per-worker map,
    /// per-source map, weekly series, weekday histogram, per-day counts,
    /// latency buckets, per-item counts) write disjoint state, and every
    /// sub-loop walks rows in ascending order — so each float accumulator
    /// receives exactly the values `accept` would feed it, in the same
    /// order.
    fn accept_chunk(
        &mut self,
        ds: &Dataset,
        _base: usize,
        cols: &InstanceColumns,
        range: std::ops::Range<usize>,
    ) {
        let batches = &cols.batch_col()[range.clone()];
        let items = &cols.item_col()[range.clone()];
        let workers = &cols.worker_col()[range.clone()];
        let starts = &cols.start_col()[range.clone()];
        let ends = &cols.end_col()[range.clone()];
        let trusts = &cols.trust_col()[range];
        let n = batches.len();

        // ---- columnar precompute ----------------------------------------
        let created: Vec<Timestamp> = batches.iter().map(|&b| ds.batch(b).created_at).collect();
        let work_secs: Vec<f64> =
            starts.iter().zip(ends).map(|(&s, &e)| (e - s).as_secs() as f64).collect();
        let pickup: Vec<f64> =
            starts.iter().zip(&created).map(|(&s, &c)| (s - c).as_secs() as f64).collect();
        let day: Vec<i64> = starts.iter().map(|s| s.day_number()).collect();
        let src: Vec<u32> = workers.iter().map(|&w| ds.worker(w).source.raw()).collect();
        let (wk, wi, wc): (Vec<usize>, Vec<usize>, Vec<usize>) = if self.n_weeks > 0 {
            (
                starts.iter().map(|&t| self.week_of(t)).collect(),
                created.iter().map(|&t| self.week_of(t)).collect(),
                ends.iter().map(|&t| self.week_of(t)).collect(),
            )
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        let splice: Vec<i32> = pickup
            .iter()
            .zip(&work_secs)
            .map(|(&pk, &ws)| {
                let p = pk.max(1.0);
                let task = ws.max(1.0);
                (2.0 * (p + task).log10()).floor() as i32
            })
            .collect();

        // ---- per worker -------------------------------------------------
        for i in 0..n {
            let w = self.workers.entry(workers[i].raw()).or_insert_with(WorkerAgg::new);
            w.tasks += 1;
            w.work_secs += work_secs[i];
            w.trust_sum += f64::from(trusts[i]);
            w.first_day = w.first_day.min(day[i]);
            w.last_day = w.last_day.max(day[i]);
            w.days.insert(day[i]);
            w.months.insert(month_index(starts[i]));
            w.intervals.push((starts[i], ends[i]));
            if self.n_weeks > 0 {
                let cell = w.weeks.entry(wk[i]).or_default();
                cell.tasks += 1;
                cell.hours += (ends[i] - starts[i]).as_hours_f64();
            }
        }

        // ---- per source -------------------------------------------------
        for i in 0..n {
            let s = self.sources.entry(src[i]).or_default();
            s.n_tasks += 1;
            s.trust_sum += f64::from(trusts[i]);
            if let Some(med) = self.batch_median[batches[i].index()] {
                if med > 0.0 {
                    s.rel_time_sum += work_secs[i] / med;
                    s.rel_time_n += 1;
                }
            }
        }

        // ---- arrival / load series --------------------------------------
        if self.n_weeks > 0 {
            for i in 0..n {
                self.issued[wi[i]] += 1;
                self.completed[wc[i]] += 1;
                self.pickups[wi[i]].push(pickup[i]);
            }
        }
        for &c in &created {
            self.weekday[c.weekday().index()] += 1;
        }
        for &c in &created {
            *self.per_day.entry(c.day_number()).or_insert(0) += 1;
        }

        // ---- latency decomposition (Fig 13b) ----------------------------
        for i in 0..n {
            let bucket = self.buckets.entry(splice[i]).or_default();
            bucket.0.push(pickup[i].max(1.0));
            bucket.1.push(work_secs[i].max(1.0));
        }

        // ---- redundancy -------------------------------------------------
        for i in 0..n {
            *self.per_item.entry((batches[i].raw(), items[i].raw())).or_insert(0) += 1;
        }
    }

    fn merge(&mut self, other: Self) {
        for (k, v) in other.workers {
            match self.workers.entry(k) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().absorb(v),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
        for (k, v) in other.sources {
            let mine = self.sources.entry(k).or_default();
            mine.n_tasks += v.n_tasks;
            mine.trust_sum += v.trust_sum;
            mine.rel_time_sum += v.rel_time_sum;
            mine.rel_time_n += v.rel_time_n;
        }
        for (mine, theirs) in self.issued.iter_mut().zip(other.issued) {
            *mine += theirs;
        }
        for (mine, theirs) in self.completed.iter_mut().zip(other.completed) {
            *mine += theirs;
        }
        for (mine, theirs) in self.pickups.iter_mut().zip(other.pickups) {
            mine.extend(theirs);
        }
        for (mine, theirs) in self.weekday.iter_mut().zip(other.weekday) {
            *mine += theirs;
        }
        for (d, c) in other.per_day {
            *self.per_day.entry(d).or_insert(0) += c;
        }
        for (splice, (pickups, tasks)) in other.buckets {
            let mine = self.buckets.entry(splice).or_default();
            mine.0.extend(pickups);
            mine.1.extend(tasks);
        }
        for (key, c) in other.per_item {
            *self.per_item.entry(key).or_insert(0) += c;
        }
    }

    fn finish(self, _ds: &Dataset) -> Fused {
        let median_pickup = self.pickups.iter().map(|pile| median(pile)).collect();
        let instance_latency = self
            .buckets
            .into_iter()
            .filter_map(|(splice, (pickups, tasks))| {
                let e2e = 10f64.powf(f64::from(splice) / 2.0 + 0.25);
                Some(LatencyPoint {
                    end_to_end: e2e,
                    pickup: median(&pickups)?,
                    task: median(&tasks)?,
                })
            })
            .collect();
        Fused {
            w0: self.w0,
            n_weeks: self.n_weeks,
            workers: self.workers,
            sources: self.sources,
            issued: self.issued,
            completed: self.completed,
            median_pickup,
            weekday: self.weekday,
            per_day: self.per_day,
            instance_latency,
            per_item: self.per_item,
        }
    }
}

/// Runs the fused pass for a study. Called once per `Study` (memoized).
pub fn compute(study: &Study) -> Fused {
    let ds = study.dataset();
    let (w0, n_weeks) = match (ds.time_min(), ds.time_max()) {
        (Some(t0), Some(t1)) => (t0.week().0, (t1.week().0 - t0.week().0 + 1).max(0) as usize),
        _ => (0, 0),
    };
    let mut batch_median: Vec<Option<f64>> = vec![None; ds.batches.len()];
    for m in study.enriched_batches() {
        if let Some(t) = m.task_time {
            batch_median[m.batch.index()] = Some(t);
        }
    }
    let proto = FusedAcc::proto(w0, n_weeks, Arc::new(batch_median));
    // Shard-partitioned fused pass: with the default single shard this is
    // exactly `ScanPass::run`; under `--shards N` each shard's chunk
    // partials merge into the running total in global chunk order, so the
    // result is bit-identical either way (DESIGN.md §15).
    ScanPass::run_plan(ds, &study.shard_plan(), &proto)
}

/// Runs the fused pass over a stream of owned shards — the bounded-memory
/// snapshot path, where per-shard file sections feed the scan directly and
/// the full instance table is never resident. `ds` supplies the entity
/// context (batches, workers); `batch_metrics` the per-batch median task
/// times ([`crate::study::BatchMetrics::task_time`]) the source aggregates
/// need; `time_max` the dataset-wide latest instance end, which an
/// entity-only dataset cannot reproduce (it sees only batch creation
/// times) — pass the persisted value so the week window matches the
/// materialized scan's. Bit-identical to [`compute`] on the equivalent
/// monolithic study.
pub fn compute_streamed<E>(
    ds: &Dataset,
    batch_metrics: &[crate::study::BatchMetrics],
    time_max: Option<Timestamp>,
    shards: impl Iterator<Item = std::result::Result<(usize, InstanceColumns), E>>,
) -> std::result::Result<Fused, E> {
    let t1 = [time_max, ds.time_max()].into_iter().flatten().max();
    let (w0, n_weeks) = match (ds.time_min(), t1) {
        (Some(t0), Some(t1)) => (t0.week().0, (t1.week().0 - t0.week().0 + 1).max(0) as usize),
        _ => (0, 0),
    };
    let mut batch_median: Vec<Option<f64>> = vec![None; ds.batches.len()];
    for m in batch_metrics {
        if let Some(t) = m.task_time {
            batch_median[m.batch.index()] = Some(t);
        }
    }
    let proto = FusedAcc::proto(w0, n_weeks, Arc::new(batch_median));
    ScanPass::run_stream(ds, &proto, shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_is_computed_once_and_totals_match() {
        let s = crate::testutil::tiny_study();
        let ds = s.dataset();
        let before = ScanPass::full_scan_count();
        let f = s.fused();
        let g = s.fused();
        assert!(ScanPass::full_scan_count() - before <= 1, "memoized");
        assert_eq!(f.workers.len(), g.workers.len());

        let n = ds.instances.len() as u64;
        assert_eq!(f.workers.values().map(|w| w.tasks).sum::<u64>(), n);
        assert_eq!(f.sources.values().map(|s| s.n_tasks).sum::<u64>(), n);
        assert_eq!(f.issued.iter().sum::<u64>(), n);
        assert_eq!(f.completed.iter().sum::<u64>(), n);
        assert_eq!(f.weekday.iter().sum::<u64>(), n);
        assert_eq!(f.per_day.values().sum::<u64>(), n);
        assert_eq!(f.per_item.values().map(|&c| u64::from(c)).sum::<u64>(), n);
        let intervals: usize = f.workers.values().map(|w| w.intervals.len()).sum();
        assert_eq!(intervals, ds.instances.len());
    }

    #[test]
    fn worker_aggregates_are_internally_consistent() {
        let s = crate::testutil::tiny_study();
        for agg in s.fused().workers.values() {
            assert!(agg.tasks > 0);
            assert!(agg.first_day <= agg.last_day);
            assert!(!agg.days.is_empty());
            assert!(agg.days.len() as u64 <= agg.tasks);
            assert!(!agg.months.is_empty());
            assert_eq!(agg.intervals.len() as u64, agg.tasks);
            assert_eq!(agg.weeks.values().map(|c| c.tasks).sum::<u64>(), agg.tasks);
        }
    }
}
