//! Analytics-shaped accumulators shared by the scan bench and the perf
//! gate: the six states the analytics layer actually folds (daily arrival
//! counts, weekday histogram, trust and work-time sums, per-worker and
//! per-item tallies), plus the fused-vs-per-module runners built on them.
//! Keeping them in one place means the checked-in `BENCH_scan.json`
//! baseline and the CI regression gate measure the identical workload.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use crowd_analytics::FusedView;
use crowd_core::dataset::{Dataset, InstanceColumns, InstanceRef};
use crowd_core::{Accumulator, InstanceId, ScanPass};

/// Instances issued per day — `arrivals::daily_load` shape.
#[derive(Debug, Default)]
pub struct DailyIssued(pub BTreeMap<i64, u64>);

impl Accumulator for DailyIssued {
    type Output = BTreeMap<i64, u64>;
    fn init(&self) -> Self {
        DailyIssued::default()
    }
    fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        *self.0.entry(row.start.day_number()).or_insert(0) += 1;
    }
    fn accept_chunk(
        &mut self,
        _ds: &Dataset,
        _base: usize,
        cols: &InstanceColumns,
        range: std::ops::Range<usize>,
    ) {
        for s in &cols.start_col()[range] {
            *self.0.entry(s.day_number()).or_insert(0) += 1;
        }
    }
    fn merge(&mut self, other: Self) {
        for (day, n) in other.0 {
            *self.0.entry(day).or_insert(0) += n;
        }
    }
    fn finish(self, _ds: &Dataset) -> Self::Output {
        self.0
    }
}

/// Instances by day of week — `arrivals::by_weekday` shape.
#[derive(Debug, Default)]
pub struct WeekdayHist(pub [u64; 7]);

impl Accumulator for WeekdayHist {
    type Output = [u64; 7];
    fn init(&self) -> Self {
        WeekdayHist::default()
    }
    fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        self.0[row.start.weekday().index()] += 1;
    }
    fn accept_chunk(
        &mut self,
        _ds: &Dataset,
        _base: usize,
        cols: &InstanceColumns,
        range: std::ops::Range<usize>,
    ) {
        for s in &cols.start_col()[range] {
            self.0[s.weekday().index()] += 1;
        }
    }
    fn merge(&mut self, other: Self) {
        for (a, b) in self.0.iter_mut().zip(other.0) {
            *a += b;
        }
    }
    fn finish(self, _ds: &Dataset) -> Self::Output {
        self.0
    }
}

/// Order-sensitive float fold — `sources`/`lifetimes` trust shape.
#[derive(Debug, Default)]
pub struct TrustSum(pub f64);

impl Accumulator for TrustSum {
    type Output = f64;
    fn init(&self) -> Self {
        TrustSum::default()
    }
    fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        self.0 += f64::from(row.trust);
    }
    // Same values, same ascending order → bit-identical float sum.
    fn accept_chunk(
        &mut self,
        _ds: &Dataset,
        _base: usize,
        cols: &InstanceColumns,
        range: std::ops::Range<usize>,
    ) {
        for &t in &cols.trust_col()[range] {
            self.0 += f64::from(t);
        }
    }
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
    fn finish(self, _ds: &Dataset) -> Self::Output {
        self.0
    }
}

/// Total seconds worked — `availability::engagement_split` hours shape.
#[derive(Debug, Default)]
pub struct WorkSecs(pub f64);

impl Accumulator for WorkSecs {
    type Output = f64;
    fn init(&self) -> Self {
        WorkSecs::default()
    }
    fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        self.0 += row.work_time().as_secs() as f64;
    }
    fn accept_chunk(
        &mut self,
        _ds: &Dataset,
        _base: usize,
        cols: &InstanceColumns,
        range: std::ops::Range<usize>,
    ) {
        let starts = &cols.start_col()[range.clone()];
        let ends = &cols.end_col()[range];
        for (&s, &e) in starts.iter().zip(ends) {
            self.0 += (e - s).as_secs() as f64;
        }
    }
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
    fn finish(self, _ds: &Dataset) -> Self::Output {
        self.0
    }
}

/// Tasks per worker — `workload::distribution` shape.
#[derive(Debug, Default)]
pub struct PerWorkerTasks(pub BTreeMap<u32, u64>);

impl Accumulator for PerWorkerTasks {
    type Output = BTreeMap<u32, u64>;
    fn init(&self) -> Self {
        PerWorkerTasks::default()
    }
    fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        *self.0.entry(row.worker.raw()).or_insert(0) += 1;
    }
    fn accept_chunk(
        &mut self,
        _ds: &Dataset,
        _base: usize,
        cols: &InstanceColumns,
        range: std::ops::Range<usize>,
    ) {
        for w in &cols.worker_col()[range] {
            *self.0.entry(w.raw()).or_insert(0) += 1;
        }
    }
    fn merge(&mut self, other: Self) {
        for (w, n) in other.0 {
            *self.0.entry(w).or_insert(0) += n;
        }
    }
    fn finish(self, _ds: &Dataset) -> Self::Output {
        self.0
    }
}

/// Judgments per item — `redundancy` shape.
#[derive(Debug, Default)]
pub struct PerItemJudgments(pub BTreeMap<(u32, u32), u32>);

impl Accumulator for PerItemJudgments {
    type Output = BTreeMap<(u32, u32), u32>;
    fn init(&self) -> Self {
        PerItemJudgments::default()
    }
    fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        *self.0.entry((row.batch.raw(), row.item.raw())).or_insert(0) += 1;
    }
    fn accept_chunk(
        &mut self,
        _ds: &Dataset,
        _base: usize,
        cols: &InstanceColumns,
        range: std::ops::Range<usize>,
    ) {
        let batches = &cols.batch_col()[range.clone()];
        let items = &cols.item_col()[range];
        for (b, i) in batches.iter().zip(items) {
            *self.0.entry((b.raw(), i.raw())).or_insert(0) += 1;
        }
    }
    fn merge(&mut self, other: Self) {
        for (k, n) in other.0 {
            *self.0.entry(k).or_insert(0) += n;
        }
    }
    fn finish(self, _ds: &Dataset) -> Self::Output {
        self.0
    }
}

/// Number of analytics modules the per-module shape simulates.
pub const MODULES: u64 = 6;

/// One fused pass carrying all six accumulators; returns rows scanned.
pub fn run_fused(ds: &Dataset) -> u64 {
    let proto = (
        DailyIssued::default(),
        WeekdayHist::default(),
        TrustSum::default(),
        WorkSecs::default(),
        PerWorkerTasks::default(),
        PerItemJudgments::default(),
    );
    let out = ScanPass::run(ds, &proto);
    black_box(&out);
    ds.instances.len() as u64
}

/// The pre-refactor shape: one full-table pass per module.
pub fn run_per_module(ds: &Dataset) -> u64 {
    black_box(ScanPass::run(ds, &DailyIssued::default()));
    black_box(ScanPass::run(ds, &WeekdayHist::default()));
    black_box(ScanPass::run(ds, &TrustSum::default()));
    black_box(ScanPass::run(ds, &WorkSecs::default()));
    black_box(ScanPass::run(ds, &PerWorkerTasks::default()));
    black_box(ScanPass::run(ds, &PerItemJudgments::default()));
    MODULES * ds.instances.len() as u64
}

/// Incremental refresh vs rebuild-from-zero for the live fused view:
/// applies `rows` to a [`FusedView`] in `delta`-row batches once, then
/// rebuilds a fresh view over the full prefix at every one of those same
/// boundaries — the cost a naive "recompute on refresh" service pays.
/// Returns rebuild-time / incremental-time (bigger is better).
///
/// The shape of the ratio is what the gate pins: with D equal deltas the
/// rebuild side scans ~D/2 times more rows, so the ratio collapses
/// toward 1 exactly when `FusedView::apply` degrades into re-folding the
/// whole accumulated prefix per delta — the regression this guards.
pub fn view_rebuild_ratio(entities: &Arc<Dataset>, rows: &InstanceColumns, delta: usize) -> f64 {
    let n = rows.len();
    assert!(n > 0 && delta > 0, "ratio needs a non-empty workload");
    let mut cuts = Vec::new();
    let mut at = 0;
    while at < n {
        at = (at + delta).min(n);
        cuts.push(at);
    }
    let deltas: Vec<InstanceColumns> = cuts
        .iter()
        .scan(0, |prev, &cut| {
            let d = rows.clone_range(*prev..cut);
            *prev = cut;
            Some(d)
        })
        .collect();
    let prefixes: Vec<InstanceColumns> = cuts.iter().map(|&cut| rows.clone_range(0..cut)).collect();

    let (incremental, applied) = measure(5, || {
        let mut view = FusedView::new(Arc::clone(entities));
        let mut last = 0;
        for d in &deltas {
            last = view.apply(d).fused.n_instances();
        }
        last
    });
    assert_eq!(applied, n as u64);
    let (rebuild, _) = measure(3, || {
        let mut last = 0;
        for p in &prefixes {
            let mut view = FusedView::new(Arc::clone(entities));
            last = view.apply(p).fused.n_instances();
        }
        last
    });
    rebuild / incremental
}

/// Median wall-clock of `runs` calls to `f`, with the value `f` returned.
pub fn measure(runs: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut times: Vec<f64> = Vec::with_capacity(runs);
    let mut out = 0;
    for _ in 0..runs {
        let t = Instant::now();
        out = f();
        times.push(t.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], out)
}
