//! # crowd-bench
//!
//! Benchmark harness regenerating every table and figure of the study.
//! The criterion benches (under `benches/`) call the same analytics APIs
//! as the `repro` binary, so `cargo bench` both measures the analysis cost
//! and exercises the full reproduction path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shapes;

use std::sync::OnceLock;

use crowd_analytics::Study;
use crowd_sim::{simulate, SimConfig};

/// Fixed seed used by every benchmark, for comparable runs.
pub const BENCH_SEED: u64 = 0xBE7C;

/// A lazily built, process-wide benchmark study at test scale
/// (≈30k instances) so criterion iterations measure analysis, not
/// simulation.
pub fn bench_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::new(simulate(&SimConfig::tiny(BENCH_SEED))))
}

/// A small config for benchmarking the simulator itself.
pub fn bench_sim_config() -> SimConfig {
    SimConfig::tiny(BENCH_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_once_and_is_nonempty() {
        let a = bench_study() as *const Study;
        let b = bench_study() as *const Study;
        assert_eq!(a, b, "cached");
        assert!(!bench_study().clusters().is_empty());
    }
}
