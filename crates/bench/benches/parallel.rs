//! Parallel-pipeline speedup: the full `Study::new` build (simulation is
//! excluded; the dataset is prepared once per iteration batch) and the
//! end-to-end simulate+enrich run, each under a 1-thread pool and a pool
//! sized to the host. The two configurations must produce identical
//! results — see `tests/parallel_determinism.rs` — so this measures the
//! pure scheduling win. Numbers land in `BENCH_parallel.json` by hand.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use crowd_analytics::Study;
use crowd_sim::{simulate, SimConfig};
use rayon::ThreadPoolBuilder;

fn cfg() -> SimConfig {
    SimConfig::new(2017, 0.05)
}

fn bench_study_build(c: &mut Criterion) {
    // `CROWD_THREADS` overrides the host core count, matching the bins'
    // knob; it also lets a single-core host exercise the multi-thread path
    // (measuring pure scheduling overhead rather than speedup).
    let host_threads = std::env::var("CROWD_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let mut g = c.benchmark_group("parallel");
    g.sample_size(10);
    for threads in [1, host_threads] {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        g.bench_function(format!("study_new/threads={threads}"), |b| {
            b.iter_batched(
                || simulate(&cfg()),
                |ds| pool.install(|| black_box(Study::new(ds))),
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_function(format!("simulate/threads={threads}"), |b| {
            b.iter(|| pool.install(|| black_box(simulate(&cfg()))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_study_build);
criterion_main!(benches);
