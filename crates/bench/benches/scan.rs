//! Scan-engine bench: one fused [`ScanPass`] carrying several
//! accumulators versus the pre-refactor shape of one full-table pass per
//! analytics module. The six accumulators mirror the state the analytics
//! layer actually folds (daily arrival counts, weekday histogram, trust
//! and work-time sums, per-worker and per-item tallies).
//!
//! Besides the criterion timings, the run measures rows-scanned/sec for
//! both shapes directly and writes them to `BENCH_scan.json` at the
//! workspace root, next to `BENCH_parallel.json`.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use crowd_bench::bench_study;
use crowd_core::dataset::{Dataset, InstanceRef};
use crowd_core::{Accumulator, InstanceId, ScanPass};

/// Instances issued per day — `arrivals::daily_load` shape.
#[derive(Debug, Default)]
struct DailyIssued(BTreeMap<i64, u64>);

impl Accumulator for DailyIssued {
    type Output = BTreeMap<i64, u64>;
    fn init(&self) -> Self {
        DailyIssued::default()
    }
    fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        *self.0.entry(row.start.day_number()).or_insert(0) += 1;
    }
    fn merge(&mut self, other: Self) {
        for (day, n) in other.0 {
            *self.0.entry(day).or_insert(0) += n;
        }
    }
    fn finish(self, _ds: &Dataset) -> Self::Output {
        self.0
    }
}

/// Instances by day of week — `arrivals::by_weekday` shape.
#[derive(Debug, Default)]
struct WeekdayHist([u64; 7]);

impl Accumulator for WeekdayHist {
    type Output = [u64; 7];
    fn init(&self) -> Self {
        WeekdayHist::default()
    }
    fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        self.0[row.start.weekday().index()] += 1;
    }
    fn merge(&mut self, other: Self) {
        for (a, b) in self.0.iter_mut().zip(other.0) {
            *a += b;
        }
    }
    fn finish(self, _ds: &Dataset) -> Self::Output {
        self.0
    }
}

/// Order-sensitive float fold — `sources`/`lifetimes` trust shape.
#[derive(Debug, Default)]
struct TrustSum(f64);

impl Accumulator for TrustSum {
    type Output = f64;
    fn init(&self) -> Self {
        TrustSum::default()
    }
    fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        self.0 += f64::from(row.trust);
    }
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
    fn finish(self, _ds: &Dataset) -> Self::Output {
        self.0
    }
}

/// Total seconds worked — `availability::engagement_split` hours shape.
#[derive(Debug, Default)]
struct WorkSecs(f64);

impl Accumulator for WorkSecs {
    type Output = f64;
    fn init(&self) -> Self {
        WorkSecs::default()
    }
    fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        self.0 += row.work_time().as_secs() as f64;
    }
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
    fn finish(self, _ds: &Dataset) -> Self::Output {
        self.0
    }
}

/// Tasks per worker — `workload::distribution` shape.
#[derive(Debug, Default)]
struct PerWorkerTasks(BTreeMap<u32, u64>);

impl Accumulator for PerWorkerTasks {
    type Output = BTreeMap<u32, u64>;
    fn init(&self) -> Self {
        PerWorkerTasks::default()
    }
    fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        *self.0.entry(row.worker.raw()).or_insert(0) += 1;
    }
    fn merge(&mut self, other: Self) {
        for (w, n) in other.0 {
            *self.0.entry(w).or_insert(0) += n;
        }
    }
    fn finish(self, _ds: &Dataset) -> Self::Output {
        self.0
    }
}

/// Judgments per item — `redundancy` shape.
#[derive(Debug, Default)]
struct PerItemJudgments(BTreeMap<(u32, u32), u32>);

impl Accumulator for PerItemJudgments {
    type Output = BTreeMap<(u32, u32), u32>;
    fn init(&self) -> Self {
        PerItemJudgments::default()
    }
    fn accept(&mut self, _ds: &Dataset, _id: InstanceId, row: InstanceRef<'_>) {
        *self.0.entry((row.batch.raw(), row.item.raw())).or_insert(0) += 1;
    }
    fn merge(&mut self, other: Self) {
        for (k, n) in other.0 {
            *self.0.entry(k).or_insert(0) += n;
        }
    }
    fn finish(self, _ds: &Dataset) -> Self::Output {
        self.0
    }
}

const MODULES: u64 = 6;

fn run_fused(ds: &Dataset) -> u64 {
    let proto = (
        DailyIssued::default(),
        WeekdayHist::default(),
        TrustSum::default(),
        WorkSecs::default(),
        PerWorkerTasks::default(),
        PerItemJudgments::default(),
    );
    let out = ScanPass::run(ds, &proto);
    black_box(&out);
    ds.instances.len() as u64
}

fn run_per_module(ds: &Dataset) -> u64 {
    black_box(ScanPass::run(ds, &DailyIssued::default()));
    black_box(ScanPass::run(ds, &WeekdayHist::default()));
    black_box(ScanPass::run(ds, &TrustSum::default()));
    black_box(ScanPass::run(ds, &WorkSecs::default()));
    black_box(ScanPass::run(ds, &PerWorkerTasks::default()));
    black_box(ScanPass::run(ds, &PerItemJudgments::default()));
    MODULES * ds.instances.len() as u64
}

/// Median wall-clock of `runs` calls to `f`, with the rows it scanned.
fn measure(runs: usize, f: impl Fn() -> u64) -> (f64, u64) {
    let mut times: Vec<f64> = Vec::with_capacity(runs);
    let mut rows = 0;
    for _ in 0..runs {
        let t = Instant::now();
        rows = f();
        times.push(t.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], rows)
}

fn write_report(ds: &Dataset) {
    let (fused_s, fused_rows) = measure(5, || run_fused(ds));
    let (seq_s, seq_rows) = measure(5, || run_per_module(ds));
    let json = format!(
        r#"{{
  "benchmark": "crates/bench/benches/scan.rs",
  "command": "cargo bench -p crowd-bench --bench scan",
  "workload": "SimConfig::tiny(BENCH_SEED), {n} instances, {modules} analytics-shaped accumulators",
  "results": {{
    "fused_one_pass": {{ "median_ms": {fused_ms:.1}, "rows_scanned": {fused_rows}, "rows_per_sec": {fused_rps:.0} }},
    "per_module_passes": {{ "median_ms": {seq_ms:.1}, "rows_scanned": {seq_rows}, "rows_per_sec": {seq_rps:.0} }}
  }},
  "speedup_to_same_outputs": {speedup:.2},
  "note": "rows_per_sec is raw scan throughput; the fused pass reaches the same {modules} outputs having scanned {modules}x fewer rows. repro/export fuse all instance-level analytics into one such pass (tests/scan_fusion.rs)."
}}
"#,
        n = ds.instances.len(),
        modules = MODULES,
        fused_ms = fused_s * 1e3,
        fused_rps = fused_rows as f64 / fused_s,
        seq_ms = seq_s * 1e3,
        seq_rows = seq_rows,
        seq_rps = seq_rows as f64 / seq_s,
        speedup = seq_s / fused_s,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("[scan] wrote {path}"),
        Err(e) => eprintln!("[scan] could not write {path}: {e}"),
    }
}

fn bench_scan(c: &mut Criterion) {
    let ds = bench_study().dataset();
    let n = ds.instances.len() as u64;
    let mut g = c.benchmark_group("scan");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));
    g.bench_function("fused_one_pass", |b| b.iter(|| run_fused(ds)));
    g.throughput(Throughput::Elements(MODULES * n));
    g.bench_function("per_module_passes", |b| b.iter(|| run_per_module(ds)));
    g.finish();
    write_report(ds);
}

criterion_group!(scan, bench_scan);
criterion_main!(scan);
