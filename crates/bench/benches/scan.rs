//! Scan-engine bench: one fused [`crowd_core::ScanPass`] carrying several
//! accumulators versus the pre-refactor shape of one full-table pass per
//! analytics module. The six accumulators (see [`crowd_bench::shapes`])
//! mirror the state the analytics layer actually folds — the same shapes
//! the CI perf gate (`benches/gate.rs`) re-measures against the baseline.
//!
//! Besides the criterion timings, the run measures rows-scanned/sec for
//! both shapes directly and writes them to `BENCH_scan.json` at the
//! workspace root, next to `BENCH_parallel.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use crowd_bench::bench_study;
use crowd_bench::shapes::{measure, run_fused, run_per_module, MODULES};
use crowd_core::dataset::Dataset;

fn write_report(ds: &Dataset) {
    let (fused_s, fused_rows) = measure(5, || run_fused(ds));
    let (seq_s, seq_rows) = measure(5, || run_per_module(ds));
    let json = format!(
        r#"{{
  "benchmark": "crates/bench/benches/scan.rs",
  "command": "cargo bench -p crowd-bench --bench scan",
  "workload": "SimConfig::tiny(BENCH_SEED), {n} instances, {modules} analytics-shaped accumulators",
  "results": {{
    "fused_one_pass": {{ "median_ms": {fused_ms:.1}, "rows_scanned": {fused_rows}, "rows_per_sec": {fused_rps:.0} }},
    "per_module_passes": {{ "median_ms": {seq_ms:.1}, "rows_scanned": {seq_rows}, "rows_per_sec": {seq_rps:.0} }}
  }},
  "speedup_to_same_outputs": {speedup:.2},
  "note": "rows_per_sec is raw scan throughput; the fused pass reaches the same {modules} outputs having scanned {modules}x fewer rows. repro/export fuse all instance-level analytics into one such pass (tests/scan_fusion.rs)."
}}
"#,
        n = ds.instances.len(),
        modules = MODULES,
        fused_ms = fused_s * 1e3,
        fused_rps = fused_rows as f64 / fused_s,
        seq_ms = seq_s * 1e3,
        seq_rows = seq_rows,
        seq_rps = seq_rows as f64 / seq_s,
        speedup = seq_s / fused_s,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("[scan] wrote {path}"),
        Err(e) => eprintln!("[scan] could not write {path}: {e}"),
    }
}

fn bench_scan(c: &mut Criterion) {
    let ds = bench_study().dataset();
    let n = ds.instances.len() as u64;
    let mut g = c.benchmark_group("scan");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));
    g.bench_function("fused_one_pass", |b| b.iter(|| run_fused(ds)));
    g.throughput(Throughput::Elements(MODULES * n));
    g.bench_function("per_module_passes", |b| b.iter(|| run_per_module(ds)));
    g.finish();
    write_report(ds);
}

criterion_group!(scan, bench_scan);
criterion_main!(scan);
