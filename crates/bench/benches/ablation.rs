//! Ablation benches for the design choices DESIGN.md calls out:
//! clustering threshold and signature size, decision-tree depth, and the
//! disagreement computation strategy. Criterion measures the cost of each
//! configuration; the accompanying eprintln!s report the quality trade-off
//! once per run, so `cargo bench` doubles as the ablation study.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use crowd_bench::bench_study;
use crowd_classify::tree::{DecisionTree, TreeParams};
use crowd_cluster::{ClusterParams, Clusterer};

fn corpus() -> (Vec<Arc<str>>, Vec<u32>) {
    let study = bench_study();
    let ds = study.dataset();
    let mut docs = Vec::new();
    let mut truth = Vec::new();
    for b in ds.batches.iter().filter(|b| b.sampled) {
        if let Some(h) = &b.html {
            docs.push(h.clone());
            truth.push(b.task_type.raw());
        }
    }
    (docs, truth)
}

fn purity(labels: &[u32], truth: &[u32]) -> f64 {
    use std::collections::HashMap;
    let mut clusters: HashMap<u32, HashMap<u32, usize>> = HashMap::new();
    for (&l, &t) in labels.iter().zip(truth) {
        *clusters.entry(l).or_default().entry(t).or_insert(0) += 1;
    }
    let pure: usize = clusters.values().map(|c| c.values().max().copied().unwrap_or(0)).sum();
    pure as f64 / truth.len() as f64
}

fn ablate_cluster_threshold(c: &mut Criterion) {
    let (docs, truth) = corpus();
    let mut g = c.benchmark_group("ablation_cluster_threshold");
    g.sample_size(10);
    for &threshold in &[0.3, 0.5, 0.6, 0.8, 0.95] {
        let params = ClusterParams { threshold, ..ClusterParams::default() };
        let clusterer = Clusterer::new(params);
        let clustering = clusterer.cluster(&docs);
        eprintln!(
            "[ablation] threshold {threshold}: {} clusters, purity {:.4}",
            clustering.n_clusters(),
            purity(clustering.labels(), &truth)
        );
        g.bench_with_input(BenchmarkId::from_parameter(threshold), &threshold, |b, _| {
            b.iter(|| black_box(clusterer.cluster(&docs)))
        });
    }
    g.finish();
}

fn ablate_signature_size(c: &mut Criterion) {
    let (docs, truth) = corpus();
    let mut g = c.benchmark_group("ablation_signature_size");
    g.sample_size(10);
    for &n_hashes in &[32usize, 64, 128, 256] {
        let params = ClusterParams { n_hashes, bands: n_hashes / 4, ..ClusterParams::default() };
        let clusterer = Clusterer::new(params);
        let clustering = clusterer.cluster(&docs);
        eprintln!(
            "[ablation] {n_hashes} hashes: {} clusters, purity {:.4}",
            clustering.n_clusters(),
            purity(clustering.labels(), &truth)
        );
        g.bench_with_input(BenchmarkId::from_parameter(n_hashes), &n_hashes, |b, _| {
            b.iter(|| black_box(clusterer.cluster(&docs)))
        });
    }
    g.finish();
}

fn ablate_tree_depth(c: &mut Criterion) {
    // §4.9-shaped data: clusters × features → metric bucket.
    let study = bench_study();
    use crowd_analytics::design::metrics::Metric;
    use crowd_analytics::design::prediction::feature_vector;
    use crowd_classify::Bucketization;
    let clusters: Vec<_> = study.clusters().iter().filter(|cl| cl.pickup_time.is_some()).collect();
    let values: Vec<f64> = clusters.iter().map(|cl| cl.pickup_time.unwrap()).collect();
    let buckets = Bucketization::by_percentiles(&values, 10).expect("non-constant");
    let y: Vec<usize> = values.iter().map(|&v| buckets.bucket_of(v)).collect();
    let x: Vec<Vec<f64>> =
        clusters.iter().map(|cl| feature_vector(Metric::PickupTime, cl)).collect();

    let mut g = c.benchmark_group("ablation_tree_depth");
    for &depth in &[2usize, 4, 8, 16] {
        let params = TreeParams { max_depth: depth, ..TreeParams::default() };
        let tree = DecisionTree::fit(&x, &y, 10, &params);
        let train_acc = x.iter().zip(&y).filter(|(row, &label)| tree.predict(row) == label).count()
            as f64
            / x.len() as f64;
        eprintln!(
            "[ablation] depth {depth}: {} nodes, train accuracy {:.3}",
            tree.node_count(),
            train_acc
        );
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| black_box(DecisionTree::fit(&x, &y, 10, &params)))
        });
    }
    g.finish();
}

criterion_group!(ablation, ablate_cluster_threshold, ablate_signature_size, ablate_tree_depth);
criterion_main!(ablation);
