//! Sharded-store memory and wall-clock profile (DESIGN.md §15, §16): cold
//! build (streaming when shards > 1), repro-shaped cold build + fused
//! scan, warm start, streamed fused scan, and single-shard load, across
//! scale × shard-count combinations. Numbers land in `BENCH_shard.json`
//! by hand.
//!
//! Peak RSS cannot be measured in-process after the fact — the high-water
//! mark of the parent would be contaminated by earlier configurations —
//! so every measured operation runs in a fresh child process (this same
//! binary re-executed with `--child`) and reports its own `VmHWM` from
//! `/proc/self/status` plus its wall-clock time on stdout.
//!
//! Scales 0.05 and 0.2 run by default; the paper-scale 1.0 point only
//! runs when `CROWD_BENCH_FULL` is set (it simulates ~27M instances).

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use crowd_sim::SimConfig;
use crowd_snapshot::{warm, SnapshotStore};

const SEED: u64 = 2017;
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

fn cfg(scale: f64) -> SimConfig {
    SimConfig::new(SEED, scale)
}

/// Peak resident set size of this process so far, in kilobytes.
fn vmhwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .expect("VmHWM line in /proc/self/status")
}

/// One measured operation, executed inside a fresh child process.
fn run_child(mode: &str, scale: f64, shards: usize, dir: &Path) {
    let store = SnapshotStore::new(dir).with_shards(shards);
    let c = cfg(scale);
    let t0 = Instant::now();
    match mode {
        // Simulate + enrich + write the sharded snapshot (cache priming).
        // With shards > 1 this is the *streaming* build (DESIGN.md §16):
        // entities plus ~one shard resident, sections flushed to disk as
        // they finish. At shards = 1 it is the monolithic pipeline.
        "cold_build" => {
            let study = warm::study_from_config(&c, Some(&store));
            black_box(study.n_instances());
        }
        // Cold build *plus* a forced fused scan — the full `repro`-shaped
        // cold run. Separated from `cold_build` because the fused
        // accumulators (per-worker interval lists above all) dominate peak
        // RSS at large scales regardless of how the rows streamed.
        "cold_fused" => {
            let study = warm::study_from_config(&c, Some(&store));
            black_box(study.fused().n_instances());
        }
        // Warm start, as `repro`/`export` do it. With shards > 1 this
        // loads entities + enrichment only (columns-optional Study); at
        // shards = 1 it materializes the whole table.
        "warm_study" => {
            let study = warm::study_from_config(&c, Some(&store));
            black_box(study.n_instances());
        }
        // Full materializing load: every shard verified and appended into
        // one table (`store.load`) — what shards = 1 warm starts and
        // derived-parameter rewrites pay. Kept separate from `warm_study`,
        // which no longer materializes rows when shards > 1.
        "warm_full_load" => {
            let snap = store.load(&c).expect("snapshot must exist and verify");
            black_box(snap.dataset.instances.len());
        }
        // Streamed fused scan: every shard is read, scanned, and dropped
        // in turn — the full instance-level aggregate at a peak RSS of
        // roughly one shard plus accumulator state.
        "warm_fused_stream" => {
            let mut reader = store.open_reader(&c).expect("snapshot must exist and verify");
            let fused = reader.fused().expect("streamed fused scan");
            black_box(format!("{fused:?}").len());
        }
        // Partial load: verify the header and meta, then read exactly one
        // shard — the "touch only what the query needs" path.
        "warm_one_shard" => {
            let mut reader = store.open_reader(&c).expect("snapshot must exist and verify");
            let shard = reader.read_shard(0).expect("shard 0 must verify");
            black_box(shard.len());
        }
        other => panic!("unknown child mode `{other}`"),
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("CHILD_RESULT mode={mode} wall_ms={wall_ms:.1} vmhwm_kb={}", vmhwm_kb());
}

/// Spawns this binary as a measurement child and parses its report.
fn measure(mode: &str, scale: f64, shards: usize, dir: &Path) -> (f64, u64) {
    let out = Command::new(std::env::current_exe().expect("current exe"))
        .args(["--child", mode])
        .arg(scale.to_string())
        .arg(shards.to_string())
        .arg(dir)
        .output()
        .expect("spawn measurement child");
    assert!(
        out.status.success(),
        "child {mode} scale={scale} shards={shards} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("CHILD_RESULT"))
        .unwrap_or_else(|| panic!("no CHILD_RESULT in child output:\n{stdout}"));
    let field = |key: &str| {
        line.split_whitespace()
            .find_map(|w| w.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key} in `{line}`"))
            .to_string()
    };
    (field("wall_ms").parse().expect("wall_ms"), field("vmhwm_kb").parse().expect("vmhwm_kb"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--child") {
        let mode = &args[i + 1];
        let scale: f64 = args[i + 2].parse().expect("scale");
        let shards: usize = args[i + 3].parse().expect("shards");
        run_child(mode, scale, shards, Path::new(&args[i + 4]));
        return;
    }

    let mut scales = vec![0.05, 0.2];
    if std::env::var_os("CROWD_BENCH_FULL").is_some() {
        scales.push(1.0);
    } else {
        eprintln!("note: scale 1.0 skipped — set CROWD_BENCH_FULL to include it");
    }

    let base: PathBuf =
        std::env::temp_dir().join(format!("crowd-bench-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    println!("{:>5} {:>6} {:>18} {:>12} {:>12}", "scale", "shards", "mode", "wall_ms", "vmhwm_kb");
    for &scale in &scales {
        for shards in SHARD_COUNTS {
            let dir = base.join(format!("s{scale}-n{shards}"));
            // Cold primes the store; the warm modes then reuse it. Each
            // warm mode runs twice and keeps the faster run (page cache
            // warm, same policy as taking a median with tiny samples).
            let (wall, rss) = measure("cold_build", scale, shards, &dir);
            println!("{scale:>5} {shards:>6} {:>18} {wall:>12.1} {rss:>12}", "cold_build");
            for mode in ["warm_study", "warm_full_load", "warm_fused_stream", "warm_one_shard"] {
                let (w1, r1) = measure(mode, scale, shards, &dir);
                let (w2, r2) = measure(mode, scale, shards, &dir);
                let (wall, rss) = (w1.min(w2), r1.max(r2));
                println!("{scale:>5} {shards:>6} {mode:>18} {wall:>12.1} {rss:>12}");
            }
            let _ = std::fs::remove_dir_all(&dir);
            // The repro-shaped cold run needs its own empty store.
            let fused_dir = base.join(format!("s{scale}-n{shards}-fused"));
            let (wall, rss) = measure("cold_fused", scale, shards, &fused_dir);
            println!("{scale:>5} {shards:>6} {:>18} {wall:>12.1} {rss:>12}", "cold_fused");
            let _ = std::fs::remove_dir_all(&fused_dir);
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}
