//! One criterion bench per table/figure family of the paper. Each bench
//! runs the exact analysis that regenerates the figure's series, over the
//! shared fixture dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use crowd_analytics::design::{drilldown, methodology, metrics, prediction, summary};
use crowd_analytics::marketplace::{arrivals, availability, labels, load, trends};
use crowd_analytics::workers::{geography, lifetimes, sources, workload};
use crowd_bench::bench_study;
use crowd_core::time::Timestamp;

fn bench_marketplace(c: &mut Criterion) {
    let study = bench_study();
    let mut g = c.benchmark_group("marketplace");
    g.sample_size(20);
    // Fig 1, 2a, 2b: weekly arrivals with pickup overlay.
    g.bench_function("fig01_02_arrivals_weekly", |b| b.iter(|| black_box(arrivals::weekly(study))));
    // Fig 3: day-of-week distribution.
    g.bench_function("fig03_weekday", |b| b.iter(|| black_box(arrivals::by_weekday(study))));
    // §3.1 takeaway: daily load statistics.
    g.bench_function("sec3_1_daily_load", |b| {
        b.iter(|| black_box(arrivals::daily_load(study, Timestamp::from_ymd(2015, 1, 1))))
    });
    // Fig 4: weekly active workers.
    g.bench_function("fig04_weekly_workers", |b| {
        b.iter(|| black_box(availability::weekly_workers(study)))
    });
    // Fig 5b: engagement split.
    g.bench_function("fig05_engagement_split", |b| {
        b.iter(|| black_box(availability::engagement_split(study)))
    });
    // Figs 6, 7: cluster size/instance distributions.
    g.bench_function("fig06_07_cluster_load", |b| b.iter(|| black_box(load::cluster_load(study))));
    // Fig 8: heavy hitters.
    g.bench_function("fig08_heavy_hitters", |b| {
        b.iter(|| black_box(load::heavy_hitters(study, 10)))
    });
    // Fig 9: label distributions.
    g.bench_function("fig09_label_distributions", |b| {
        b.iter(|| {
            black_box((
                labels::goal_distribution(study),
                labels::data_distribution(study),
                labels::operator_distribution(study),
            ))
        })
    });
    // Figs 10, 11: cross matrices (+ transposes).
    g.bench_function("fig10_11_cross_matrices", |b| {
        b.iter(|| {
            let dg = labels::data_given_goal(study);
            let og = labels::operator_given_goal(study);
            let od = labels::operator_given_data(study);
            black_box((dg.transposed(), og.transposed(), od.transposed()))
        })
    });
    // Fig 12: complexity trends.
    g.bench_function("fig12_complexity_trends", |b| {
        b.iter(|| {
            black_box((
                trends::goal_trend(study),
                trends::operator_trend(study),
                trends::data_trend(study),
            ))
        })
    });
    g.finish();
}

fn bench_design(c: &mut Criterion) {
    let study = bench_study();
    let mut g = c.benchmark_group("design");
    g.sample_size(20);
    // Fig 13: latency decomposition.
    g.bench_function("fig13_latency_decomposition", |b| {
        b.iter(|| black_box(metrics::latency_decomposition(study)))
    });
    // Fig 14: the full feature × metric grid of CDF experiments.
    g.bench_function("fig14_feature_metric_grid", |b| {
        b.iter(|| black_box(methodology::full_grid(study)))
    });
    // Tables 1–3.
    g.bench_function("tables_1_2_3_summaries", |b| {
        b.iter(|| {
            black_box((
                summary::disagreement_table(study),
                summary::task_time_table(study),
                summary::pickup_time_table(study),
            ))
        })
    });
    // Fig 25: drill-down panels.
    g.bench_function("fig25_drilldowns", |b| b.iter(|| black_box(drilldown::fig25_panels(study))));
    // §4.9: prediction, both bucketizations, all metrics.
    g.bench_function("sec4_9_prediction", |b| {
        b.iter(|| black_box(prediction::predict_all(study, 7)))
    });
    g.finish();
}

fn bench_workers(c: &mut Criterion) {
    let study = bench_study();
    let mut g = c.benchmark_group("workers");
    g.sample_size(20);
    // Figs 26, 27 + Table 4 stats: per-source aggregates.
    g.bench_function("fig26_27_sources", |b| {
        b.iter(|| {
            let stats = sources::per_source(study);
            let act = sources::active_sources_weekly(study);
            black_box((sources::quality_stats(study, &stats), act))
        })
    });
    // Fig 28: geography.
    g.bench_function("fig28_geography", |b| b.iter(|| black_box(geography::distribution(study))));
    // Fig 29: workload distribution.
    g.bench_function("fig29_workload", |b| b.iter(|| black_box(workload::distribution(study))));
    // Fig 30 + §5.4: lifetimes and active trust.
    g.bench_function("fig30_lifetimes", |b| {
        b.iter(|| black_box((lifetimes::lifetime_stats(study), lifetimes::active_trust(study))))
    });
    g.finish();
}

criterion_group!(figures, bench_marketplace, bench_design, bench_workers);
criterion_main!(figures);
