//! Hot-kernel bench: the allocation-free shingler and the blocked MinHash
//! kernel against the frozen naive oracles in `crowd-testkit`, plus the
//! fused-scan row throughput and a per-document allocation count measured
//! with a counting global allocator.
//!
//! Writes `BENCH_kernel.json` at the workspace root. The two
//! `*_speedup_vs_oracle` ratios are hardware-independent (kernel and
//! oracle share the host) and are re-measured by the CI perf gate
//! (`benches/gate.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use crowd_bench::bench_study;
use crowd_bench::shapes::measure;
use crowd_cluster::shingle::DEFAULT_K;
use crowd_cluster::ShingleScratch;

#[path = "kernel_workload.rs"]
mod kernel_workload;
use kernel_workload::{docs, measure_shingle, measure_sign};

/// Counts allocator calls so the bench can report allocations per
/// shingled document (steady state: zero).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations per document of a warmed [`ShingleScratch`] pass.
fn allocs_per_doc(docs: &[String]) -> f64 {
    let mut scratch = ShingleScratch::new();
    for d in docs {
        scratch.shingle(d, DEFAULT_K); // warm to the high-water shape
    }
    const PASSES: u64 = 20;
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..PASSES {
        for d in docs {
            std::hint::black_box(scratch.shingle(d, DEFAULT_K));
        }
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    allocs as f64 / (PASSES * docs.len() as u64) as f64
}

/// Fused-scan throughput: the full `FusedAcc` pass (the workload behind
/// every analytics figure) in rows per second.
fn fused_rows_per_sec() -> f64 {
    let study = bench_study();
    let rows = study.dataset().instances.len() as u64;
    let (secs, _) = measure(5, || {
        std::hint::black_box(crowd_analytics::fused::compute(study));
        rows
    });
    rows as f64 / secs
}

fn write_report() {
    let docs = docs();
    let (shingle_speedup, shingles_per_sec) = measure_shingle(&docs);
    let (sign_speedup, signatures_per_sec) = measure_sign(&docs);
    let fused_rps = fused_rows_per_sec();
    let apd = allocs_per_doc(&docs);
    let json = format!(
        r#"{{
  "benchmark": "crates/bench/benches/kernel.rs",
  "command": "cargo bench -p crowd-bench --bench kernel",
  "workload": "{n_docs} sampled batch HTML documents from SimConfig::tiny(BENCH_SEED); oracles are the frozen naive implementations in crowd-testkit",
  "results": {{
    "shingle": {{ "shingles_per_sec": {shingles_per_sec:.0}, "speedup_vs_oracle": {shingle_speedup:.2}, "allocs_per_doc_steady_state": {apd:.3} }},
    "minhash": {{ "signatures_per_sec": {signatures_per_sec:.0}, "speedup_vs_oracle": {sign_speedup:.2}, "n_hashes": 128 }},
    "fused_scan": {{ "rows_per_sec": {fused_rps:.0} }}
  }},
  "shingle_speedup_vs_oracle": {shingle_speedup:.2},
  "sign_speedup_vs_oracle": {sign_speedup:.2},
  "note": "speedups are same-host kernel/oracle ratios (hardware-independent); the CI perf gate re-measures both and fails on >30% regression (wider band than the 15% macro ratios: the allocation-heavy oracle side is load-sensitive). Signatures are bit-identical between kernel and oracle (crates/testkit/tests/kernel_differential.rs)."
}}
"#,
        n_docs = docs.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("[kernel] wrote {path}"),
        Err(e) => eprintln!("[kernel] could not write {path}: {e}"),
    }
}

fn bench_kernels(c: &mut Criterion) {
    let docs = docs();
    let mut g = c.benchmark_group("kernel");
    g.sample_size(10);
    g.bench_function("shingle_all_docs", |b| {
        let mut scratch = ShingleScratch::new();
        b.iter(|| {
            let mut total = 0u64;
            for d in &docs {
                total += scratch.shingle(d, DEFAULT_K).len() as u64;
            }
            total
        })
    });
    g.finish();
    write_report();
}

criterion_group!(kernel, bench_kernels);
criterion_main!(kernel);
