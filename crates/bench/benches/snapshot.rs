//! Snapshot warm-start speedup: `Study::new`-equivalent construction cold
//! (simulate + shingle + LSH + enrich, writing the snapshot) vs warm
//! (read + verify + rebuild from persisted enrichment) at the conformance
//! scale. Both paths are bit-identical by construction — see
//! `tests/snapshot_golden.rs` — so this measures pure work avoided.
//! Numbers land in `BENCH_snapshot.json` by hand.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use crowd_sim::SimConfig;
use crowd_snapshot::{warm, SnapshotStore};

fn cfg() -> SimConfig {
    SimConfig::new(2017, 0.05)
}

fn bench_snapshot(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("crowd-bench-snapshot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SnapshotStore::new(&dir);

    let mut g = c.benchmark_group("snapshot");
    g.sample_size(10);

    // Cold: no store at all — the pre-snapshot baseline every run paid.
    g.bench_function("study_cold", |b| b.iter(|| black_box(warm::study_from_config(&cfg(), None))));

    // Miss: cold build plus encoding and writing the snapshot (the one-time
    // cost of priming the cache).
    g.bench_function("study_miss_write", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            black_box(warm::study_from_config(&cfg(), Some(&store)))
        })
    });

    // Warm: the file exists and verifies — simulation, shingling, LSH, and
    // enrichment are all skipped.
    let _ = warm::study_from_config(&cfg(), Some(&store));
    g.bench_function("study_warm_read", |b| {
        b.iter(|| black_box(warm::study_from_config(&cfg(), Some(&store))))
    });

    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
