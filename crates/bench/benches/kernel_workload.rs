//! Shared kernel workload + measurements for `benches/kernel.rs` and the
//! perf gate (`benches/gate.rs`): both must measure the *same* thing so
//! the checked-in `BENCH_kernel.json` ratios are comparable when the gate
//! re-measures them on another host.
//!
//! The ratios are hardware-independent by construction — optimized kernel
//! and naive oracle run on the identical document set in the same
//! process, so host speed cancels out of the quotient.

use std::collections::HashSet;

use crowd_bench::shapes::measure;
use crowd_bench::{bench_study, BENCH_SEED};
use crowd_cluster::shingle::DEFAULT_K;
use crowd_cluster::{MinHasher, ShingleScratch};
use crowd_testkit::{naive_minhash_params, naive_shingles, naive_signature};

/// Inner repetitions per measured run, so the tiny-scale doc set yields
/// stable medians on a noisy shared host.
const REPS: usize = 12;

/// Timed runs per side; the median is reported.
const RUNS: usize = 7;

/// The real clustering inputs: every sampled batch's HTML document from
/// the process-wide bench study (missing pages as empty strings, exactly
/// like the clusterer sees them).
pub fn docs() -> Vec<String> {
    let ds = bench_study().dataset();
    let (_, docs) = crowd_analytics::study::sampled_docs(ds);
    docs.into_iter().map(str::to_owned).collect()
}

/// `(speedup_vs_oracle, kernel_shingles_per_sec)` for the shingling
/// kernel over `docs`, at the clusterer's production `k`.
pub fn measure_shingle(docs: &[String]) -> (f64, f64) {
    let mut scratch = ShingleScratch::new();
    let (kernel_s, shingles) = measure(RUNS, || {
        let mut total = 0u64;
        for _ in 0..REPS {
            for d in docs {
                total += scratch.shingle(d, DEFAULT_K).len() as u64;
            }
        }
        total
    });
    let (oracle_s, oracle_shingles) = measure(RUNS, || {
        let mut total = 0u64;
        for _ in 0..REPS {
            for d in docs {
                total += naive_shingles(d, DEFAULT_K).len() as u64;
            }
        }
        total
    });
    assert_eq!(shingles, oracle_shingles, "kernel and oracle must emit the same shingles");
    (oracle_s / kernel_s, shingles as f64 / kernel_s)
}

/// `(speedup_vs_oracle, kernel_signatures_per_sec)` for the MinHash
/// kernel at the clusterer's production width (128 hash functions).
///
/// The kernel side is the production path (sorted shingle slice →
/// `sign_into` with a reused buffer); the oracle side is the frozen
/// pre-refactor path (`HashSet` iteration, per-element scalar lanes).
/// Both consume the same shingle sets.
pub fn measure_sign(docs: &[String]) -> (f64, f64) {
    const N_HASHES: usize = 128;
    let mut scratch = ShingleScratch::new();
    let slices: Vec<Vec<u64>> =
        docs.iter().map(|d| scratch.shingle(d, DEFAULT_K).to_vec()).collect();
    let sets: Vec<HashSet<u64>> = slices.iter().map(|s| s.iter().copied().collect()).collect();

    let hasher = MinHasher::new(N_HASHES, BENCH_SEED);
    let mut sig = Vec::new();
    let (kernel_s, signatures) = measure(RUNS, || {
        let mut n = 0u64;
        for _ in 0..REPS {
            for s in &slices {
                hasher.sign_into(s, &mut sig);
                std::hint::black_box(&sig);
                n += 1;
            }
        }
        n
    });
    let params = naive_minhash_params(N_HASHES, BENCH_SEED);
    let (oracle_s, _) = measure(RUNS, || {
        let mut n = 0u64;
        for _ in 0..REPS {
            for s in &sets {
                std::hint::black_box(naive_signature(&params, s));
                n += 1;
            }
        }
        n
    });
    (oracle_s / kernel_s, signatures as f64 / kernel_s)
}
