//! Live-service benchmark: sustained event-apply throughput through the
//! full `crowd-serve` path (wire parse already done; deltas converted,
//! gauges bumped, snapshot published per batch), dashboard query latency
//! against published snapshots, checkpoint write + restore cost, and the
//! hardware-independent `delta_apply_speedup_vs_batch_rebuild` ratio the
//! CI gate re-measures. Numbers land in `BENCH_serve.json` by hand — the
//! run prints a ready-to-paste skeleton.

use std::sync::Arc;
use std::time::Instant;

use crowd_bench::bench_sim_config;
use crowd_bench::shapes::{measure, view_rebuild_ratio};
use crowd_ingest::{load_events_str, WalOptions};
use crowd_serve::query::dashboard;
use crowd_serve::{CheckpointStore, EventFeed, LiveService};

/// Events per applied delta — one fused chunk of completed rows.
const DELTA_EVENTS: usize = 8192;
/// Dashboard queries sampled for the latency percentiles.
const QUERIES: usize = 512;

fn percentile(sorted_us: &[f64], p: usize) -> f64 {
    sorted_us[(sorted_us.len() * p / 100).min(sorted_us.len() - 1)]
}

fn main() {
    let feed = EventFeed::from_config(&bench_sim_config());
    let wire = feed.to_csv();
    let log = load_events_str(&wire, &feed.entities).expect("clean bench feed");
    let n_events = log.events.len();
    let rows = log.completed_rows();
    println!(
        "serve bench workload: {} events, {} completed rows, deltas of {} events",
        n_events,
        rows.len(),
        DELTA_EVENTS
    );

    // ---- sustained apply throughput -----------------------------------
    let (apply_s, applied_rows) = measure(5, || {
        let mut svc = LiveService::new(Arc::clone(&feed.entities));
        for chunk in log.events.chunks(DELTA_EVENTS) {
            svc.apply_events(chunk).expect("apply");
        }
        svc.rows().len() as u64
    });
    assert_eq!(applied_rows as usize, rows.len());
    let events_per_s = n_events as f64 / apply_s;
    println!(
        "apply_stream: median {:.1} ms ({:.0} events/s, {} versions)",
        apply_s * 1e3,
        events_per_s,
        n_events.div_ceil(DELTA_EVENTS)
    );

    // ---- the same stream with the write-ahead log in front ------------
    // fsync every 8 appends: the batched-durability configuration the
    // serve binary documents for throughput; every batch is still written
    // (and page-cached) before it is applied, so a SIGKILL loses nothing.
    let wal_dir =
        std::env::temp_dir().join(format!("crowd-bench-serve-wal-{}", std::process::id()));
    let wal_opts = WalOptions { fsync_every: 8, ..WalOptions::default() };
    let (wal_s, wal_rows) = measure(5, || {
        let _ = std::fs::remove_dir_all(&wal_dir);
        let mut svc = LiveService::new(Arc::clone(&feed.entities))
            .with_wal(&wal_dir, 2017, wal_opts)
            .expect("wal open");
        for chunk in log.events.chunks(DELTA_EVENTS) {
            svc.apply_events(chunk).expect("apply");
        }
        svc.wal_sync().expect("wal sync");
        svc.rows().len() as u64
    });
    assert_eq!(wal_rows as usize, rows.len());
    let wal_events_per_s = n_events as f64 / wal_s;
    let wal_overhead = wal_events_per_s / events_per_s;
    println!(
        "wal_append: median {:.1} ms ({:.0} events/s, fsync every 8 appends) — {:.2}x of no-WAL throughput",
        wal_s * 1e3,
        wal_events_per_s,
        wal_overhead
    );

    // ---- crash recovery: newest checkpoint + WAL tail -----------------
    // Prime a durable run whose last cadence checkpoint leaves a real WAL
    // tail behind, then measure restore_durable (checkpoint load + tail
    // replay + fused rebuild). Cadence u64::MAX during the measured
    // restores keeps every iteration recovering the identical state.
    let rec_dir =
        std::env::temp_dir().join(format!("crowd-bench-serve-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&rec_dir);
    let _ = std::fs::remove_dir_all(&wal_dir);
    {
        let store = CheckpointStore::new(&rec_dir, 2017);
        let mut svc = LiveService::new(Arc::clone(&feed.entities))
            .with_checkpoints(store, 16_384)
            .with_wal(&wal_dir, 2017, wal_opts)
            .expect("wal open");
        for chunk in log.events.chunks(DELTA_EVENTS) {
            svc.apply_events(chunk).expect("apply");
        }
        svc.wal_sync().expect("wal sync");
    }
    let (recovery_s, recovered_at) = measure(5, || {
        let store = CheckpointStore::new(&rec_dir, 2017);
        let (svc, report) = LiveService::restore_durable(
            store,
            u64::MAX,
            Arc::clone(&feed.entities),
            &wal_dir,
            wal_opts,
        )
        .expect("restore");
        assert!(report.wal_events_replayed > 0, "recovery must exercise WAL replay");
        svc.events_applied()
    });
    assert_eq!(recovered_at as usize, n_events);
    println!(
        "recovery: median {:.1} ms to checkpoint-restore + WAL-replay back to {} events",
        recovery_s * 1e3,
        recovered_at
    );
    let _ = std::fs::remove_dir_all(&rec_dir);
    let _ = std::fs::remove_dir_all(&wal_dir);

    // ---- dashboard latency against published snapshots ----------------
    let ckpt_dir = std::env::temp_dir().join(format!("crowd-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let store = CheckpointStore::new(&ckpt_dir, 2017);
    let mut svc =
        LiveService::new(Arc::clone(&feed.entities)).with_checkpoints(store.clone(), u64::MAX);
    for chunk in log.events.chunks(DELTA_EVENTS) {
        svc.apply_events(chunk).expect("apply");
    }
    let handle = svc.handle();
    let mut lat_us: Vec<f64> = (0..QUERIES)
        .map(|_| {
            let t = Instant::now();
            let snap = handle.snapshot();
            let dash = dashboard(&snap.view.fused, svc.entities());
            std::hint::black_box(dash.n_instances);
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    lat_us.sort_by(f64::total_cmp);
    let (p50, p99) = (percentile(&lat_us, 50), percentile(&lat_us, 99));
    println!("dashboard_query: p50 {p50:.0} us, p99 {p99:.0} us over {QUERIES} queries");

    // ---- checkpoint write + restore -----------------------------------
    let (ckpt_s, _) = measure(5, || {
        svc.checkpoint_now().expect("checkpoint");
        svc.events_applied()
    });
    let (restore_s, restored_at) = measure(5, || {
        let (restored, faults) = LiveService::restore(store.clone(), u64::MAX).expect("restore");
        assert!(faults.is_empty());
        restored.events_applied()
    });
    assert_eq!(restored_at, svc.events_applied());
    println!(
        "checkpoint: write median {:.1} ms, restore median {:.1} ms ({} events of state)",
        ckpt_s * 1e3,
        restore_s * 1e3,
        restored_at
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    // ---- the gated ratio ----------------------------------------------
    let ratio = view_rebuild_ratio(&feed.entities, &rows, DELTA_EVENTS);
    println!("delta_apply_speedup_vs_batch_rebuild: {ratio:.2}");

    println!("\npaste into BENCH_serve.json:");
    println!(
        "  \"results\": {{\n    \"apply_stream\": {{ \"median_ms\": {:.1}, \"events_per_s\": {:.0} }},\n    \"wal_append\": {{ \"median_ms\": {:.1}, \"events_per_s\": {:.0} }},\n    \"recovery_ms\": {:.1},\n    \"dashboard_query\": {{ \"p50_us\": {:.1}, \"p99_us\": {:.1} }},\n    \"checkpoint_write\": {{ \"median_ms\": {:.1} }},\n    \"checkpoint_restore\": {{ \"median_ms\": {:.1} }}\n  }},\n  \"delta_apply_speedup_vs_batch_rebuild\": {:.2},\n  \"wal_append_overhead\": {:.2}",
        apply_s * 1e3,
        events_per_s,
        wal_s * 1e3,
        wal_events_per_s,
        recovery_s * 1e3,
        p50,
        p99,
        ckpt_s * 1e3,
        restore_s * 1e3,
        ratio,
        wal_overhead
    );
}
