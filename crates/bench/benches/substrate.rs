//! Performance benches for the substrates: simulation throughput,
//! enrichment (clustering + metrics), HTML parsing/extraction, the
//! columnar group-by, statistics, and the decision tree.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use crowd_agg::{dawid_skene, majority_vote, DawidSkeneParams, Judgment};
use crowd_analytics::Study;
use crowd_bench::{bench_sim_config, bench_study};
use crowd_classify::tree::{DecisionTree, TreeParams};
use crowd_cluster::{ClusterParams, Clusterer};
use crowd_core::answer::{item_disagreement, Answer};
use crowd_html::extract_features;
use crowd_sim::simulate;
use crowd_stats::{welch_t_test, EmpiricalCdf};
use crowd_table::{Agg, Table};

fn bench_simulator(c: &mut Criterion) {
    let cfg = bench_sim_config();
    let n = simulate(&cfg).instances.len() as u64;
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));
    g.bench_function("simulate_tiny", |b| b.iter(|| black_box(simulate(&cfg))));
    g.finish();
}

fn bench_enrichment(c: &mut Criterion) {
    let mut g = c.benchmark_group("enrichment");
    g.sample_size(10);
    g.bench_function("study_build", |b| {
        b.iter_batched(
            || simulate(&bench_sim_config()),
            |ds| black_box(Study::new(ds)),
            criterion::BatchSize::LargeInput,
        )
    });
    // Clustering alone.
    let study = bench_study();
    let docs: Vec<std::sync::Arc<str>> =
        study.dataset().batches.iter().filter_map(|b| b.html.clone()).collect();
    g.throughput(Throughput::Elements(docs.len() as u64));
    g.bench_function("cluster_batches", |b| {
        let clusterer = Clusterer::new(ClusterParams::default());
        b.iter(|| black_box(clusterer.cluster(&docs)))
    });
    g.bench_function("extract_features", |b| {
        b.iter(|| {
            for d in docs.iter().take(100) {
                black_box(extract_features(d).unwrap());
            }
        })
    });
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    // Disagreement over a typical item answer set.
    let answers: Vec<Answer> = (0..5).map(|i| Answer::Choice(i % 3)).collect();
    g.bench_function("item_disagreement_k5", |b| b.iter(|| black_box(item_disagreement(&answers))));
    // Welch t-test on bin-sized samples.
    let a: Vec<f64> = (0..1_000).map(|i| (i % 97) as f64).collect();
    let bvals: Vec<f64> = (0..1_200).map(|i| (i % 89) as f64 + 3.0).collect();
    g.bench_function("welch_t_test_1k", |b| b.iter(|| black_box(welch_t_test(&a, &bvals))));
    // CDF construction.
    g.bench_function("cdf_build_1k", |b| b.iter(|| black_box(EmpiricalCdf::new(&a))));
    // Columnar group-by over 100k rows.
    let mut t = Table::new();
    t.push_int_column("week", (0..100_000).map(|i| i % 200).collect()).unwrap();
    t.push_float_column("v", (0..100_000).map(|i| i as f64).collect()).unwrap();
    g.bench_function("groupby_100k", |b| {
        b.iter(|| black_box(t.group_by("week").unwrap().agg("v", Agg::Median).unwrap().finish()))
    });
    // Decision tree fit on §4.9-sized data.
    let x: Vec<Vec<f64>> = (0..3_000)
        .map(|i| vec![(i % 311) as f64, ((i * 7) % 101) as f64, f64::from(i % 2 == 0)])
        .collect();
    let y: Vec<usize> = (0..3_000).map(|i| (i % 311) / 32).collect();
    g.bench_function("tree_fit_3k", |b| {
        b.iter(|| black_box(DecisionTree::fit(&x, &y, 10, &TreeParams::default())))
    });
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    // A realistic batch: 500 items × 4 judgments, 40 workers, 3 classes.
    let judgments: Vec<Judgment> = (0..500u32)
        .flat_map(|item| {
            (0..4u32).map(move |r| Judgment {
                item,
                worker: (item * 7 + r * 13) % 40,
                label: (((item % 3) + u32::from(r == 3 && item % 5 == 0)) % 3) as u16,
            })
        })
        .collect();
    let mut g = c.benchmark_group("aggregation");
    g.bench_function("majority_2k_judgments", |b| {
        b.iter(|| black_box(majority_vote(&judgments, 3)))
    });
    g.bench_function("dawid_skene_2k_judgments", |b| {
        b.iter(|| black_box(dawid_skene(&judgments, 3, &DawidSkeneParams::default())))
    });
    g.finish();
}

criterion_group!(substrate, bench_simulator, bench_enrichment, bench_primitives, bench_aggregation);
criterion_main!(substrate);
