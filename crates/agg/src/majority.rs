//! Plain majority vote.

use std::collections::BTreeMap;

use crate::Judgment;

/// Outcome of an aggregation: one label per item plus a confidence (the
/// winning label's vote share).
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationResult {
    /// Winning label per item.
    pub labels: BTreeMap<u32, u16>,
    /// Vote share of the winning label per item, in `[0, 1]`.
    pub confidence: BTreeMap<u32, f64>,
}

impl AggregationResult {
    /// Number of items aggregated.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no items were aggregated.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Fraction of items where this result and `other` agree (over items
    /// present in both).
    pub fn agreement_with(&self, other: &AggregationResult) -> f64 {
        let mut same = 0usize;
        let mut total = 0usize;
        for (item, label) in &self.labels {
            if let Some(o) = other.labels.get(item) {
                total += 1;
                if o == label {
                    same += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            same as f64 / total as f64
        }
    }

    /// Mean winning-vote share across items.
    pub fn mean_confidence(&self) -> f64 {
        if self.confidence.is_empty() {
            return 0.0;
        }
        self.confidence.values().sum::<f64>() / self.confidence.len() as f64
    }
}

/// Majority vote per item. Ties break toward the smaller label, making the
/// result deterministic.
pub fn majority_vote(judgments: &[Judgment], n_classes: u16) -> AggregationResult {
    let mut votes: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for j in judgments {
        assert!(j.label < n_classes, "label {} out of range {n_classes}", j.label);
        let counts = votes.entry(j.item).or_insert_with(|| vec![0; n_classes as usize]);
        counts[j.label as usize] += 1;
    }
    let mut labels = BTreeMap::new();
    let mut confidence = BTreeMap::new();
    for (item, counts) in votes {
        let total: u32 = counts.iter().sum();
        let (best, &count) =
            counts.iter().enumerate().max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i))).unwrap();
        labels.insert(item, best as u16);
        confidence.insert(item, f64::from(count) / f64::from(total));
    }
    AggregationResult { labels, confidence }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(item: u32, worker: u32, label: u16) -> Judgment {
        Judgment { item, worker, label }
    }

    #[test]
    fn simple_majority() {
        let r = majority_vote(&[j(0, 0, 1), j(0, 1, 1), j(0, 2, 0)], 2);
        assert_eq!(r.labels[&0], 1);
        assert!((r.confidence[&0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ties_break_to_smaller_label() {
        let r = majority_vote(&[j(0, 0, 2), j(0, 1, 1)], 3);
        assert_eq!(r.labels[&0], 1, "deterministic tie-break");
        assert_eq!(r.confidence[&0], 0.5);
    }

    #[test]
    fn multiple_items() {
        let r = majority_vote(&[j(0, 0, 0), j(1, 0, 1), j(1, 1, 1), j(2, 0, 2)], 3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.labels[&0], 0);
        assert_eq!(r.labels[&1], 1);
        assert_eq!(r.labels[&2], 2);
    }

    #[test]
    fn unanimous_confidence_is_one() {
        let r = majority_vote(&[j(5, 0, 1), j(5, 1, 1), j(5, 2, 1)], 2);
        assert_eq!(r.confidence[&5], 1.0);
        assert_eq!(r.mean_confidence(), 1.0);
    }

    #[test]
    fn agreement_between_results() {
        let a = majority_vote(&[j(0, 0, 1), j(1, 0, 0)], 2);
        let b = majority_vote(&[j(0, 0, 1), j(1, 0, 1), j(2, 0, 0)], 2);
        assert_eq!(a.agreement_with(&b), 0.5, "items 0 agree, 1 disagree, 2 absent");
    }

    #[test]
    fn empty_input() {
        let r = majority_vote(&[], 4);
        assert!(r.is_empty());
        assert_eq!(r.mean_confidence(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_bounds_checked() {
        let _ = majority_vote(&[j(0, 0, 5)], 2);
    }
}
