//! Trust-weighted voting: each judgment carries the marketplace-assigned
//! trust score of its instance (§2.3), and votes are weighted by it.

use std::collections::BTreeMap;

use crate::majority::AggregationResult;
use crate::Judgment;

/// Weighted vote: judgment `i` contributes `weights[i]` to its label.
/// Weights must be non-negative and aligned with `judgments`. Ties break
/// toward the smaller label.
pub fn weighted_vote(judgments: &[Judgment], weights: &[f64], n_classes: u16) -> AggregationResult {
    assert_eq!(judgments.len(), weights.len(), "weights must align with judgments");
    let mut votes: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for (j, &w) in judgments.iter().zip(weights) {
        assert!(j.label < n_classes, "label {} out of range {n_classes}", j.label);
        assert!(w >= 0.0 && w.is_finite(), "weights must be finite and ≥ 0");
        let counts = votes.entry(j.item).or_insert_with(|| vec![0.0; n_classes as usize]);
        counts[j.label as usize] += w;
    }
    let mut labels = BTreeMap::new();
    let mut confidence = BTreeMap::new();
    for (item, counts) in votes {
        let total: f64 = counts.iter().sum();
        let mut best = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            if c > counts[best] {
                best = i;
            }
        }
        labels.insert(item, best as u16);
        confidence.insert(item, if total > 0.0 { counts[best] / total } else { 0.0 });
    }
    AggregationResult { labels, confidence }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(item: u32, worker: u32, label: u16) -> Judgment {
        Judgment { item, worker, label }
    }

    #[test]
    fn high_trust_minority_can_win() {
        // Two low-trust workers say 0; one high-trust worker says 1.
        let judgments = [j(0, 0, 0), j(0, 1, 0), j(0, 2, 1)];
        let weights = [0.3, 0.3, 0.9];
        let r = weighted_vote(&judgments, &weights, 2);
        assert_eq!(r.labels[&0], 1, "0.9 beats 0.6");
        assert!((r.confidence[&0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn uniform_weights_match_majority() {
        let judgments = [j(0, 0, 1), j(0, 1, 1), j(0, 2, 0), j(1, 0, 2)];
        let w = vec![1.0; judgments.len()];
        let weighted = weighted_vote(&judgments, &w, 3);
        let plain = crate::majority::majority_vote(&judgments, 3);
        assert_eq!(weighted.labels, plain.labels);
    }

    #[test]
    fn zero_weight_votes_are_ignored() {
        let judgments = [j(0, 0, 0), j(0, 1, 1)];
        let r = weighted_vote(&judgments, &[0.0, 0.5], 2);
        assert_eq!(r.labels[&0], 1);
        assert_eq!(r.confidence[&0], 1.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_weights_panic() {
        let _ = weighted_vote(&[j(0, 0, 0)], &[1.0, 2.0], 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weights_panic() {
        let _ = weighted_vote(&[j(0, 0, 0)], &[-1.0], 2);
    }
}
