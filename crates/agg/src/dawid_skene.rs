//! The Dawid–Skene estimator (EM over per-worker confusion matrices).
//!
//! Dawid & Skene, *Maximum Likelihood Estimation of Observer Error-Rates
//! Using the EM Algorithm*, JRSS-C 1979 — the canonical model behind much
//! of the crowd-powered data processing literature the paper cites (§6).
//!
//! E-step: posterior over each item's true class given current confusion
//! matrices and priors. M-step: re-estimate class priors and per-worker
//! confusion matrices from the posteriors. Laplace smoothing keeps
//! matrices proper for workers with few judgments.

use std::collections::BTreeMap;

use crate::majority::{majority_vote, AggregationResult};
use crate::Judgment;

/// EM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DawidSkeneParams {
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Convergence threshold on the max absolute posterior change.
    pub tol: f64,
    /// Laplace smoothing added to confusion-matrix counts.
    pub smoothing: f64,
}

impl Default for DawidSkeneParams {
    fn default() -> Self {
        DawidSkeneParams { max_iter: 60, tol: 1e-6, smoothing: 0.01 }
    }
}

/// Fitted model plus the aggregated labels.
#[derive(Debug, Clone)]
pub struct DawidSkeneResult {
    /// Aggregation outcome (MAP label + posterior confidence per item).
    pub aggregation: AggregationResult,
    /// Posterior class distribution per item.
    pub posteriors: BTreeMap<u32, Vec<f64>>,
    /// Per-worker confusion matrices: `confusion[w][true][observed]`.
    pub confusion: BTreeMap<u32, Vec<Vec<f64>>>,
    /// Estimated class priors.
    pub priors: Vec<f64>,
    /// EM iterations actually run.
    pub iterations: usize,
    /// Whether the run converged before `max_iter`.
    pub converged: bool,
}

impl DawidSkeneResult {
    /// Estimated accuracy of a worker: the prior-weighted diagonal of
    /// their confusion matrix. `None` for unseen workers.
    pub fn worker_accuracy(&self, worker: u32) -> Option<f64> {
        let m = self.confusion.get(&worker)?;
        Some(self.priors.iter().enumerate().map(|(k, &p)| p * m[k][k]).sum())
    }
}

/// Runs Dawid–Skene. Initializes posteriors from majority vote (the
/// standard warm start). Returns `None` for empty input.
pub fn dawid_skene(
    judgments: &[Judgment],
    n_classes: u16,
    params: &DawidSkeneParams,
) -> Option<DawidSkeneResult> {
    if judgments.is_empty() || n_classes < 2 {
        return None;
    }
    let k = n_classes as usize;
    for j in judgments {
        assert!(j.label < n_classes, "label {} out of range {n_classes}", j.label);
    }

    // Dense per-item judgment lists.
    let mut items: BTreeMap<u32, Vec<(u32, u16)>> = BTreeMap::new();
    let mut workers: BTreeMap<u32, Vec<(u32, u16)>> = BTreeMap::new();
    for j in judgments {
        items.entry(j.item).or_default().push((j.worker, j.label));
        workers.entry(j.worker).or_default().push((j.item, j.label));
    }

    // Initialize posteriors from vote shares.
    let mv = majority_vote(judgments, n_classes);
    let mut posteriors: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for (&item, js) in &items {
        let mut p = vec![params.smoothing; k];
        for &(_, label) in js {
            p[label as usize] += 1.0;
        }
        let total: f64 = p.iter().sum();
        for v in p.iter_mut() {
            *v /= total;
        }
        posteriors.insert(item, p);
    }
    let _ = mv;

    let mut priors = vec![1.0 / k as f64; k];
    let mut confusion: BTreeMap<u32, Vec<Vec<f64>>> = BTreeMap::new();
    let mut iterations = 0;
    let mut converged = false;

    for iter in 0..params.max_iter {
        iterations = iter + 1;

        // ---- M-step ----------------------------------------------------
        // Priors.
        let mut prior_counts = vec![params.smoothing; k];
        for p in posteriors.values() {
            for (c, &v) in p.iter().enumerate() {
                prior_counts[c] += v;
            }
        }
        let total: f64 = prior_counts.iter().sum();
        for (c, v) in prior_counts.iter().enumerate() {
            priors[c] = v / total;
        }
        // Confusion matrices.
        confusion.clear();
        for (&worker, js) in &workers {
            let mut m = vec![vec![params.smoothing; k]; k];
            for &(item, label) in js {
                let post = &posteriors[&item];
                for (t, &p) in post.iter().enumerate() {
                    m[t][label as usize] += p;
                }
            }
            for row in m.iter_mut() {
                let s: f64 = row.iter().sum();
                for v in row.iter_mut() {
                    *v /= s;
                }
            }
            confusion.insert(worker, m);
        }

        // ---- E-step ----------------------------------------------------
        let mut max_delta = 0.0f64;
        for (&item, js) in &items {
            let mut log_p: Vec<f64> = priors.iter().map(|&p| p.max(1e-300).ln()).collect();
            for &(worker, label) in js {
                let m = &confusion[&worker];
                for (t, lp) in log_p.iter_mut().enumerate() {
                    *lp += m[t][label as usize].max(1e-300).ln();
                }
            }
            // Normalize in log space.
            let max_lp = log_p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut p: Vec<f64> = log_p.iter().map(|&lp| (lp - max_lp).exp()).collect();
            let s: f64 = p.iter().sum();
            for v in p.iter_mut() {
                *v /= s;
            }
            let old = posteriors.get_mut(&item).expect("initialized");
            for (a, b) in old.iter().zip(&p) {
                max_delta = max_delta.max((a - b).abs());
            }
            *old = p;
        }
        if max_delta < params.tol {
            converged = true;
            break;
        }
    }

    // MAP labels + confidences.
    let mut labels = BTreeMap::new();
    let mut confidence = BTreeMap::new();
    for (&item, p) in &posteriors {
        let mut best = 0usize;
        for (c, &v) in p.iter().enumerate() {
            if v > p[best] {
                best = c;
            }
        }
        labels.insert(item, best as u16);
        confidence.insert(item, p[best]);
    }

    Some(DawidSkeneResult {
        aggregation: AggregationResult { labels, confidence },
        posteriors,
        confusion,
        priors,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(item: u32, worker: u32, label: u16) -> Judgment {
        Judgment { item, worker, label }
    }

    /// 3 good workers + 2 systematic flippers over binary items. Majority
    /// is right only when the good workers outvote; DS should learn the
    /// flippers' confusion and beat majority.
    fn adversarial_setup() -> (Vec<Judgment>, Vec<u16>) {
        let truth: Vec<u16> = (0..40).map(|i| (i % 2) as u16).collect();
        let mut judgments = Vec::new();
        for (item, &t) in truth.iter().enumerate() {
            let item = item as u32;
            // Good workers 0-1: always right. Worker 2: right 75% (every
            // 4th item wrong). Flippers 3-4: always wrong.
            judgments.push(j(item, 0, t));
            judgments.push(j(item, 1, t));
            judgments.push(j(item, 2, if item.is_multiple_of(4) { 1 - t } else { t }));
            judgments.push(j(item, 3, 1 - t));
            judgments.push(j(item, 4, 1 - t));
        }
        (judgments, truth)
    }

    fn accuracy(result: &AggregationResult, truth: &[u16]) -> f64 {
        let correct = truth
            .iter()
            .enumerate()
            .filter(|&(i, &t)| result.labels.get(&(i as u32)) == Some(&t))
            .count();
        correct as f64 / truth.len() as f64
    }

    #[test]
    fn recovers_truth_with_adversaries() {
        let (judgments, truth) = adversarial_setup();
        let ds = dawid_skene(&judgments, 2, &DawidSkeneParams::default()).unwrap();
        let acc = accuracy(&ds.aggregation, &truth);
        assert!(acc > 0.95, "DS accuracy {acc}");
        let mv = majority_vote(&judgments, 2);
        let mv_acc = accuracy(&mv, &truth);
        assert!(acc >= mv_acc, "DS ({acc}) ≥ majority ({mv_acc})");
    }

    #[test]
    fn learns_worker_confusion() {
        let (judgments, _) = adversarial_setup();
        let ds = dawid_skene(&judgments, 2, &DawidSkeneParams::default()).unwrap();
        let good = ds.worker_accuracy(0).unwrap();
        let flipper = ds.worker_accuracy(3).unwrap();
        assert!(good > 0.9, "good worker accuracy {good}");
        assert!(flipper < 0.2, "flipper accuracy {flipper}");
        let mediocre = ds.worker_accuracy(2).unwrap();
        assert!(mediocre > flipper && mediocre < good);
    }

    #[test]
    fn converges_on_clean_data() {
        let judgments: Vec<Judgment> =
            (0..30).flat_map(|i| (0..3).map(move |w| j(i, w, (i % 3) as u16))).collect();
        let ds = dawid_skene(&judgments, 3, &DawidSkeneParams::default()).unwrap();
        assert!(ds.converged, "after {} iterations", ds.iterations);
        for i in 0..30u32 {
            assert_eq!(ds.aggregation.labels[&i], (i % 3) as u16);
            assert!(ds.aggregation.confidence[&i] > 0.9);
        }
    }

    #[test]
    fn priors_reflect_class_balance() {
        // 80% of items are class 0.
        let judgments: Vec<Judgment> = (0..50u32)
            .flat_map(|i| {
                let t = u16::from(i.is_multiple_of(5));
                (0..3).map(move |w| j(i, w, t))
            })
            .collect();
        let ds = dawid_skene(&judgments, 2, &DawidSkeneParams::default()).unwrap();
        assert!(ds.priors[0] > 0.7, "priors {:?}", ds.priors);
    }

    #[test]
    fn posteriors_are_distributions() {
        let (judgments, _) = adversarial_setup();
        let ds = dawid_skene(&judgments, 2, &DawidSkeneParams::default()).unwrap();
        for p in ds.posteriors.values() {
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        for m in ds.confusion.values() {
            for row in m {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(dawid_skene(&[], 2, &DawidSkeneParams::default()).is_none());
        assert!(dawid_skene(&[j(0, 0, 0)], 1, &DawidSkeneParams::default()).is_none());
        // Single judgment: still works, follows the vote.
        let ds = dawid_skene(&[j(0, 0, 1)], 2, &DawidSkeneParams::default()).unwrap();
        assert_eq!(ds.aggregation.labels[&0], 1);
    }

    #[test]
    fn deterministic() {
        let (judgments, _) = adversarial_setup();
        let a = dawid_skene(&judgments, 2, &DawidSkeneParams::default()).unwrap();
        let b = dawid_skene(&judgments, 2, &DawidSkeneParams::default()).unwrap();
        assert_eq!(a.aggregation.labels, b.aggregation.labels);
        assert_eq!(a.priors, b.priors);
    }
}
