//! # crowd-agg
//!
//! Answer aggregation for crowdsourced judgments.
//!
//! The paper's §4.1 observes that "crowdsourcing requesters require high
//! exact agreement … so that the answers can be easily aggregated via
//! conventional majority vote type schemes", and its §6 situates the study
//! within the crowd-powered data-processing literature. This crate
//! provides the aggregation side of that ecosystem over the
//! [`crowd_core`] data model:
//!
//! * [`majority`] — plain majority vote per item;
//! * [`weighted`] — trust-weighted vote, using the marketplace trust
//!   scores the dataset carries per instance (§2.3);
//! * [`dawid_skene`](crate::dawid_skene::dawid_skene) — the classic
//!   Dawid–Skene EM estimator of per-worker confusion matrices and
//!   posterior truth.
//!
//! ```
//! use crowd_agg::{Judgment, majority::majority_vote};
//!
//! let judgments = vec![
//!     Judgment { item: 0, worker: 0, label: 1 },
//!     Judgment { item: 0, worker: 1, label: 1 },
//!     Judgment { item: 0, worker: 2, label: 0 },
//! ];
//! let result = majority_vote(&judgments, 2);
//! assert_eq!(result.labels[&0], 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod dawid_skene;
pub mod majority;
pub mod weighted;

pub use adapter::{batch_judgments, BatchJudgments};
pub use dawid_skene::{dawid_skene, DawidSkeneParams, DawidSkeneResult};
pub use majority::{majority_vote, AggregationResult};
pub use weighted::weighted_vote;

/// One categorical judgment: `worker` labeled `item` with `label`.
///
/// Items, workers, and labels are dense indices scoped to the aggregation
/// call (use [`adapter::batch_judgments`] to build them from a dataset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Judgment {
    /// Dense item index.
    pub item: u32,
    /// Dense worker index.
    pub worker: u32,
    /// Class label in `0..n_classes`.
    pub label: u16,
}
