//! Adapters from the [`crowd_core`] data model to dense judgment triples.

use std::collections::HashMap;

use crowd_core::answer::Answer;
use crowd_core::dataset::{Dataset, DatasetIndex};
use crowd_core::id::{BatchId, ItemId, WorkerId};

use crate::Judgment;

/// Judgments of one batch in dense index space, with the label and worker
/// dictionaries needed to translate results back.
#[derive(Debug, Clone, Default)]
pub struct BatchJudgments {
    /// Dense judgments.
    pub judgments: Vec<Judgment>,
    /// Per-judgment marketplace trust scores (aligned with `judgments`),
    /// ready for [`crate::weighted::weighted_vote`].
    pub trust: Vec<f64>,
    /// Dense item index → dataset item id.
    pub items: Vec<ItemId>,
    /// Dense worker index → dataset worker id.
    pub workers: Vec<WorkerId>,
    /// Dense label → answer. Choice answers map per distinct value; text
    /// answers per distinct string; skips are excluded (they carry no
    /// signal, §4.1).
    pub labels: Vec<Answer>,
}

impl BatchJudgments {
    /// Number of label classes.
    pub fn n_classes(&self) -> u16 {
        self.labels.len() as u16
    }

    /// Translates a dense label back to the answer it stands for.
    pub fn answer_of(&self, label: u16) -> &Answer {
        &self.labels[label as usize]
    }
}

/// Extracts the dense judgments of `batch`. Skipped answers are dropped.
/// Returns an empty set when the batch has no non-skip answers.
pub fn batch_judgments(ds: &Dataset, index: &DatasetIndex, batch: BatchId) -> BatchJudgments {
    let mut out = BatchJudgments::default();
    let mut item_ids: HashMap<u32, u32> = HashMap::new();
    let mut worker_ids: HashMap<u32, u32> = HashMap::new();
    let mut label_ids: HashMap<Answer, u16> = HashMap::new();

    for inst_id in index.instances_of_batch(batch) {
        let inst = ds.instance(inst_id);
        if matches!(inst.answer, Answer::Skipped) {
            continue;
        }
        let item = *item_ids.entry(inst.item.raw()).or_insert_with(|| {
            out.items.push(inst.item);
            out.items.len() as u32 - 1
        });
        let worker = *worker_ids.entry(inst.worker.raw()).or_insert_with(|| {
            out.workers.push(inst.worker);
            out.workers.len() as u32 - 1
        });
        let label = *label_ids.entry(inst.answer.clone()).or_insert_with(|| {
            out.labels.push(inst.answer.clone());
            (out.labels.len() - 1) as u16
        });
        out.judgments.push(Judgment { item, worker, label });
        out.trust.push(f64::from(inst.trust));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::prelude::*;

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s = b.add_source(Source::new("s", SourceKind::Dedicated));
        let c = b.add_country("X");
        let w1 = b.add_worker(Worker::new(s, c));
        let w2 = b.add_worker(Worker::new(s, c));
        let tt = b.add_task_type(TaskType::new("t"));
        let t0 = Timestamp::from_ymd(2015, 1, 5);
        let batch = b.add_batch(Batch::new(tt, t0).with_html("<p>x</p>"));
        let answers = [
            (0u32, w1, Answer::Choice(0), 0.9),
            (0, w2, Answer::Choice(1), 0.5),
            (1, w1, Answer::Text("yes".into()), 0.9),
            (1, w2, Answer::Skipped, 0.4),
        ];
        for (item, worker, answer, trust) in answers {
            b.add_instance(TaskInstance {
                batch,
                item: ItemId::new(item),
                worker,
                start: t0 + Duration::from_secs(60),
                end: t0 + Duration::from_secs(90),
                trust,
                answer,
            });
        }
        b.finish().unwrap()
    }

    #[test]
    fn extracts_dense_judgments() {
        let ds = dataset();
        let idx = ds.index();
        let bj = batch_judgments(&ds, &idx, BatchId::new(0));
        assert_eq!(bj.judgments.len(), 3, "skip dropped");
        assert_eq!(bj.items.len(), 2);
        assert_eq!(bj.workers.len(), 2);
        assert_eq!(bj.n_classes(), 3, "Choice(0), Choice(1), Text(yes)");
        assert_eq!(bj.trust.len(), 3);
    }

    #[test]
    fn labels_translate_back() {
        let ds = dataset();
        let idx = ds.index();
        let bj = batch_judgments(&ds, &idx, BatchId::new(0));
        let text_label =
            bj.labels.iter().position(|a| matches!(a, Answer::Text(t) if t == "yes")).unwrap()
                as u16;
        assert_eq!(bj.answer_of(text_label), &Answer::Text("yes".into()));
    }

    #[test]
    fn aggregation_roundtrip() {
        let ds = dataset();
        let idx = ds.index();
        let bj = batch_judgments(&ds, &idx, BatchId::new(0));
        let weighted = crate::weighted::weighted_vote(&bj.judgments, &bj.trust, bj.n_classes());
        // Item 0: trust 0.9 (choice 0) vs 0.5 (choice 1) → choice 0 wins.
        let dense_item0 = bj.items.iter().position(|&i| i == ItemId::new(0)).unwrap() as u32;
        let label = weighted.labels[&dense_item0];
        assert_eq!(bj.answer_of(label), &Answer::Choice(0));
    }

    #[test]
    fn empty_batch() {
        let mut b = DatasetBuilder::new();
        let tt = b.add_task_type(TaskType::new("t"));
        b.add_batch(Batch::new(tt, Timestamp::from_ymd(2015, 1, 5)).with_html("<p/>"));
        let ds = b.finish().unwrap();
        let idx = ds.index();
        let bj = batch_judgments(&ds, &idx, BatchId::new(0));
        assert!(bj.judgments.is_empty());
        assert_eq!(bj.n_classes(), 0);
    }
}
