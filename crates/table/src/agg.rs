//! Aggregate functions for group-by.

/// An aggregate over the numeric values of a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Row count.
    Count,
    /// Count of distinct values.
    CountDistinct,
    /// Sum.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Median.
    Median,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl Agg {
    /// Suffix used for the output column name (`<col>_<suffix>`).
    pub fn suffix(self) -> &'static str {
        match self {
            Agg::Count => "count",
            Agg::CountDistinct => "distinct",
            Agg::Sum => "sum",
            Agg::Mean => "mean",
            Agg::Median => "median",
            Agg::Min => "min",
            Agg::Max => "max",
        }
    }

    /// Applies the aggregate to a group's values. `values` may be reordered.
    /// Empty groups yield `NaN` for value aggregates and `0` for counts.
    pub fn apply(self, values: &mut [f64]) -> f64 {
        match self {
            Agg::Count => values.len() as f64,
            Agg::CountDistinct => {
                values.sort_by(f64::total_cmp);
                let mut n = 0usize;
                let mut prev = f64::NAN;
                for &v in values.iter() {
                    if v.total_cmp(&prev) != std::cmp::Ordering::Equal {
                        n += 1;
                        prev = v;
                    }
                }
                n as f64
            }
            Agg::Sum => values.iter().sum(),
            Agg::Mean => {
                if values.is_empty() {
                    f64::NAN
                } else {
                    values.iter().sum::<f64>() / values.len() as f64
                }
            }
            Agg::Median => {
                if values.is_empty() {
                    f64::NAN
                } else {
                    values.sort_by(f64::total_cmp);
                    let n = values.len();
                    if n % 2 == 1 {
                        values[n / 2]
                    } else {
                        0.5 * (values[n / 2 - 1] + values[n / 2])
                    }
                }
            }
            Agg::Min => values.iter().copied().fold(f64::NAN, f64::min),
            Agg::Max => values.iter().copied().fold(f64::NAN, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_sum() {
        assert_eq!(Agg::Count.apply(&mut [1.0, 2.0, 3.0]), 3.0);
        assert_eq!(Agg::Sum.apply(&mut [1.0, 2.0, 3.0]), 6.0);
        assert_eq!(Agg::Count.apply(&mut []), 0.0);
        assert_eq!(Agg::Sum.apply(&mut []), 0.0);
    }

    #[test]
    fn mean_median() {
        assert_eq!(Agg::Mean.apply(&mut [1.0, 3.0]), 2.0);
        assert_eq!(Agg::Median.apply(&mut [5.0, 1.0, 3.0]), 3.0);
        assert_eq!(Agg::Median.apply(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
        assert!(Agg::Mean.apply(&mut []).is_nan());
        assert!(Agg::Median.apply(&mut []).is_nan());
    }

    #[test]
    fn min_max() {
        assert_eq!(Agg::Min.apply(&mut [3.0, -1.0, 2.0]), -1.0);
        assert_eq!(Agg::Max.apply(&mut [3.0, -1.0, 2.0]), 3.0);
        assert!(Agg::Min.apply(&mut []).is_nan());
    }

    #[test]
    fn count_distinct() {
        assert_eq!(Agg::CountDistinct.apply(&mut [1.0, 1.0, 2.0, 2.0, 2.0, 5.0]), 3.0);
        assert_eq!(Agg::CountDistinct.apply(&mut []), 0.0);
        assert_eq!(Agg::CountDistinct.apply(&mut [7.0]), 1.0);
    }

    #[test]
    fn suffixes_unique() {
        let all =
            [Agg::Count, Agg::CountDistinct, Agg::Sum, Agg::Mean, Agg::Median, Agg::Min, Agg::Max];
        let set: std::collections::HashSet<_> = all.iter().map(|a| a.suffix()).collect();
        assert_eq!(set.len(), all.len());
    }
}
