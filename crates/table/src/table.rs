//! The table type: named typed columns of equal length.

use std::fmt;

use crate::column::{Column, ColumnType, Value};
use crate::groupby::GroupBy;

/// Errors from table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// No column with the requested name.
    ColumnNotFound(String),
    /// A column's length didn't match the table's row count.
    LengthMismatch {
        /// Column being added.
        column: String,
        /// Its length.
        got: usize,
        /// The table's row count.
        expected: usize,
    },
    /// Operation required a different column type.
    TypeMismatch {
        /// Column involved.
        column: String,
        /// Type actually stored.
        found: ColumnType,
    },
    /// A column with this name already exists.
    DuplicateColumn(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ColumnNotFound(c) => write!(f, "column `{c}` not found"),
            TableError::LengthMismatch { column, got, expected } => {
                write!(f, "column `{column}` has {got} rows, table has {expected}")
            }
            TableError::TypeMismatch { column, found } => {
                write!(f, "column `{column}` has unexpected type {found:?}")
            }
            TableError::DuplicateColumn(c) => write!(f, "column `{c}` already exists"),
        }
    }
}

impl std::error::Error for TableError {}

/// A columnar table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    names: Vec<String>,
    columns: Vec<Column>,
}

impl Table {
    /// Creates an empty table with no columns.
    pub fn new() -> Table {
        Table::default()
    }

    /// Number of rows (0 for a table with no columns).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map(Column::len).unwrap_or(0)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Adds a column; it must match the current row count (unless it is the
    /// first column).
    pub fn push_column(&mut self, name: impl Into<String>, col: Column) -> Result<(), TableError> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(TableError::DuplicateColumn(name));
        }
        if !self.columns.is_empty() && col.len() != self.n_rows() {
            return Err(TableError::LengthMismatch {
                column: name,
                got: col.len(),
                expected: self.n_rows(),
            });
        }
        self.names.push(name);
        self.columns.push(col);
        Ok(())
    }

    /// Convenience: adds an integer column.
    pub fn push_int_column(
        &mut self,
        name: impl Into<String>,
        data: Vec<i64>,
    ) -> Result<(), TableError> {
        self.push_column(name, Column::Int(data))
    }

    /// Convenience: adds a float column.
    pub fn push_float_column(
        &mut self,
        name: impl Into<String>,
        data: Vec<f64>,
    ) -> Result<(), TableError> {
        self.push_column(name, Column::Float(data))
    }

    /// Convenience: adds a string column.
    pub fn push_str_column(
        &mut self,
        name: impl Into<String>,
        data: Vec<String>,
    ) -> Result<(), TableError> {
        self.push_column(name, Column::Str(data))
    }

    /// The column with the given name.
    pub fn column(&self, name: &str) -> Result<&Column, TableError> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.columns[i])
            .ok_or_else(|| TableError::ColumnNotFound(name.into()))
    }

    /// Scalar at `(column, row)`.
    pub fn get(&self, name: &str, row: usize) -> Result<Value, TableError> {
        Ok(self.column(name)?.get(row))
    }

    /// Integer column view.
    pub fn ints(&self, name: &str) -> Result<&[i64], TableError> {
        match self.column(name)? {
            Column::Int(v) => Ok(v),
            c => Err(TableError::TypeMismatch { column: name.into(), found: c.column_type() }),
        }
    }

    /// Float column view.
    pub fn floats(&self, name: &str) -> Result<&[f64], TableError> {
        match self.column(name)? {
            Column::Float(v) => Ok(v),
            c => Err(TableError::TypeMismatch { column: name.into(), found: c.column_type() }),
        }
    }

    /// Keeps the rows whose `mask` entry is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Table, TableError> {
        if mask.len() != self.n_rows() {
            return Err(TableError::LengthMismatch {
                column: "<mask>".into(),
                got: mask.len(),
                expected: self.n_rows(),
            });
        }
        let indices: Vec<u32> =
            mask.iter().enumerate().filter(|(_, &m)| m).map(|(i, _)| i as u32).collect();
        Ok(self.gather(&indices))
    }

    /// Builds a mask from a predicate over one column, then filters.
    pub fn filter_by(
        &self,
        name: &str,
        pred: impl Fn(&Value) -> bool,
    ) -> Result<Table, TableError> {
        let col = self.column(name)?;
        let mask: Vec<bool> = (0..col.len()).map(|r| pred(&col.get(r))).collect();
        self.filter(&mask)
    }

    /// Gathers rows by index into a new table.
    pub fn gather(&self, indices: &[u32]) -> Table {
        Table {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.gather(indices)).collect(),
        }
    }

    /// Sorts rows ascending by a numeric column (stable).
    pub fn sort_by(&self, name: &str) -> Result<Table, TableError> {
        let keys = self.column(name)?.as_f64_vec().ok_or_else(|| TableError::TypeMismatch {
            column: name.into(),
            found: ColumnType::Str,
        })?;
        let mut order: Vec<u32> = (0..self.n_rows() as u32).collect();
        order.sort_by(|&a, &b| keys[a as usize].total_cmp(&keys[b as usize]));
        Ok(self.gather(&order))
    }

    /// Starts a group-by on a key column (integer or string).
    pub fn group_by(&self, key: &str) -> Result<GroupBy<'_>, TableError> {
        GroupBy::new(self, key)
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> Table {
        let take = n.min(self.n_rows()) as u32;
        self.gather(&(0..take).collect::<Vec<_>>())
    }

    /// Projection: a new table with only the named columns, in the given
    /// order.
    pub fn select(&self, names: &[&str]) -> Result<Table, TableError> {
        let mut out = Table::new();
        for &name in names {
            out.push_column(name, self.column(name)?.clone())?;
        }
        Ok(out)
    }

    /// Serializes to CSV (header row + one line per row). String cells are
    /// quoted when they contain separators.
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = self.names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in 0..self.n_rows() {
            let line = self
                .columns
                .iter()
                .map(|c| quote(&c.get(row).to_string()))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new();
        t.push_int_column("id", vec![1, 2, 3, 4]).unwrap();
        t.push_float_column("x", vec![4.0, 3.0, 2.0, 1.0]).unwrap();
        t.push_str_column("tag", vec!["a".into(), "b".into(), "a".into(), "b".into()]).unwrap();
        t
    }

    #[test]
    fn shape() {
        let t = sample();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.names(), &["id", "x", "tag"]);
    }

    #[test]
    fn rejects_misshapen_and_duplicate_columns() {
        let mut t = sample();
        assert!(matches!(
            t.push_int_column("bad", vec![1]),
            Err(TableError::LengthMismatch { .. })
        ));
        assert!(matches!(
            t.push_int_column("id", vec![1, 2, 3, 4]),
            Err(TableError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn typed_views() {
        let t = sample();
        assert_eq!(t.ints("id").unwrap(), &[1, 2, 3, 4]);
        assert_eq!(t.floats("x").unwrap(), &[4.0, 3.0, 2.0, 1.0]);
        assert!(matches!(t.ints("x"), Err(TableError::TypeMismatch { .. })));
        assert!(matches!(t.ints("nope"), Err(TableError::ColumnNotFound(_))));
    }

    #[test]
    fn filter_by_predicate() {
        let t = sample();
        let f = t.filter_by("tag", |v| *v == Value::Str("a".into())).unwrap();
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.ints("id").unwrap(), &[1, 3]);
    }

    #[test]
    fn filter_mask_length_checked() {
        let t = sample();
        assert!(t.filter(&[true, false]).is_err());
    }

    #[test]
    fn sort_by_numeric() {
        let t = sample();
        let s = t.sort_by("x").unwrap();
        assert_eq!(s.ints("id").unwrap(), &[4, 3, 2, 1]);
        assert!(t.sort_by("tag").is_err(), "cannot sort by string column numerically");
    }

    #[test]
    fn head_truncates() {
        let t = sample();
        assert_eq!(t.head(2).n_rows(), 2);
        assert_eq!(t.head(99).n_rows(), 4);
    }

    #[test]
    fn select_projects_and_reorders() {
        let t = sample();
        let p = t.select(&["tag", "id"]).unwrap();
        assert_eq!(p.names(), &["tag", "id"]);
        assert_eq!(p.n_rows(), 4);
        assert!(t.select(&["missing"]).is_err());
    }

    #[test]
    fn to_csv_quotes_when_needed() {
        let mut t = Table::new();
        t.push_str_column("name", vec!["plain".into(), "has,comma".into()]).unwrap();
        t.push_int_column("v", vec![1, 2]).unwrap();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,v");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"has,comma\",2");
    }

    #[test]
    fn empty_table() {
        let t = Table::new();
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.n_cols(), 0);
    }
}
