//! # crowd-table
//!
//! A small typed columnar table engine used as the aggregation substrate of
//! the analytics layer. It provides exactly the relational operations the
//! study's analyses are built from — filter, sort, group-by with
//! aggregates — over dense, typed columns.
//!
//! ```
//! use crowd_table::{Table, Value, Agg};
//!
//! let mut t = Table::new();
//! t.push_int_column("week", vec![1, 1, 2, 2, 2]).unwrap();
//! t.push_float_column("pickup", vec![10.0, 20.0, 5.0, 15.0, 40.0]).unwrap();
//!
//! let by_week = t.group_by("week").unwrap()
//!     .agg("pickup", Agg::Median).unwrap();
//! assert_eq!(by_week.get("week", 0).unwrap(), Value::Int(1));
//! assert_eq!(by_week.get("pickup_median", 0).unwrap(), Value::Float(15.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod column;
pub mod groupby;
pub mod table;

pub use agg::Agg;
pub use column::{Column, ColumnType, Value};
pub use groupby::GroupBy;
pub use table::{Table, TableError};
