//! Typed columns and scalar values.

use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

/// A scalar value read out of (or written into) a table.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer scalar.
    Int(i64),
    /// Float scalar.
    Float(f64),
    /// String scalar.
    Str(String),
    /// Boolean scalar.
    Bool(bool),
}

impl Value {
    /// The value's column type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Int(_) => ColumnType::Int,
            Value::Float(_) => ColumnType::Float,
            Value::Str(_) => ColumnType::Str,
            Value::Bool(_) => ColumnType::Bool,
        }
    }

    /// Numeric view: ints and floats as `f64`, bools as 0/1.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A dense typed column.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer data.
    Int(Vec<i64>),
    /// Float data.
    Float(Vec<f64>),
    /// String data.
    Str(Vec<String>),
    /// Boolean data.
    Bool(Vec<bool>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Column::Int(_) => ColumnType::Int,
            Column::Float(_) => ColumnType::Float,
            Column::Str(_) => ColumnType::Str,
            Column::Bool(_) => ColumnType::Bool,
        }
    }

    /// Value at `row` (panics out of range).
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Float(v) => Value::Float(v[row]),
            Column::Str(v) => Value::Str(v[row].clone()),
            Column::Bool(v) => Value::Bool(v[row]),
        }
    }

    /// Appends a matching-typed value; `false` on type mismatch.
    pub fn push(&mut self, value: Value) -> bool {
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(x),
            (Column::Float(v), Value::Float(x)) => v.push(x),
            (Column::Str(v), Value::Str(x)) => v.push(x),
            (Column::Bool(v), Value::Bool(x)) => v.push(x),
            _ => return false,
        }
        true
    }

    /// Gathers the rows selected by `indices` into a new column.
    pub fn gather(&self, indices: &[u32]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i as usize]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i as usize]).collect()),
            Column::Str(v) => Column::Str(indices.iter().map(|&i| v[i as usize].clone()).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i as usize]).collect()),
        }
    }

    /// Numeric view of the whole column; `None` for string columns.
    pub fn as_f64_vec(&self) -> Option<Vec<f64>> {
        match self {
            Column::Int(v) => Some(v.iter().map(|&x| x as f64).collect()),
            Column::Float(v) => Some(v.clone()),
            Column::Bool(v) => Some(v.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()),
            Column::Str(_) => None,
        }
    }

    /// Creates an empty column of the given type.
    pub fn empty(ty: ColumnType) -> Column {
        match ty {
            ColumnType::Int => Column::Int(Vec::new()),
            ColumnType::Float => Column::Float(Vec::new()),
            ColumnType::Str => Column::Str(Vec::new()),
            ColumnType::Bool => Column::Bool(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types() {
        assert_eq!(Value::Int(3).column_type(), ColumnType::Int);
        assert_eq!(Value::Str("x".into()).column_type(), ColumnType::Str);
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn column_push_type_safety() {
        let mut c = Column::Int(vec![]);
        assert!(c.push(Value::Int(1)));
        assert!(!c.push(Value::Float(1.0)), "type mismatch rejected");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn gather_reorders() {
        let c = Column::Str(vec!["a".into(), "b".into(), "c".into()]);
        let g = c.gather(&[2, 0]);
        assert_eq!(g, Column::Str(vec!["c".into(), "a".into()]));
    }

    #[test]
    fn get_and_display() {
        let c = Column::Float(vec![1.5]);
        assert_eq!(c.get(0), Value::Float(1.5));
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn as_f64_vec_conversions() {
        assert_eq!(Column::Int(vec![1, 2]).as_f64_vec(), Some(vec![1.0, 2.0]));
        assert_eq!(Column::Bool(vec![true, false]).as_f64_vec(), Some(vec![1.0, 0.0]));
        assert_eq!(Column::Str(vec![]).as_f64_vec(), None);
    }

    #[test]
    fn empty_constructor() {
        for ty in [ColumnType::Int, ColumnType::Float, ColumnType::Str, ColumnType::Bool] {
            let c = Column::empty(ty);
            assert!(c.is_empty());
            assert_eq!(c.column_type(), ty);
        }
    }
}
