//! Hash group-by with chained aggregates.

use std::collections::HashMap;

use crate::agg::Agg;
use crate::column::{Column, Value};
use crate::table::{Table, TableError};

/// A pending group-by: key column resolved, aggregates accumulate into the
/// output table.
pub struct GroupBy<'a> {
    source: &'a Table,
    key_name: String,
    /// Row indices of each group, keyed insertion-ordered.
    groups: Vec<Vec<u32>>,
    /// Output under construction: starts with the key column.
    out: Table,
}

impl<'a> GroupBy<'a> {
    pub(crate) fn new(source: &'a Table, key: &str) -> Result<GroupBy<'a>, TableError> {
        let col = source.column(key)?;
        let mut groups: Vec<Vec<u32>> = Vec::new();
        let mut out_key = Column::empty(col.column_type());

        match col {
            Column::Int(v) => {
                let mut index: HashMap<i64, usize> = HashMap::new();
                for (row, &k) in v.iter().enumerate() {
                    let g = *index.entry(k).or_insert_with(|| {
                        groups.push(Vec::new());
                        out_key.push(Value::Int(k));
                        groups.len() - 1
                    });
                    groups[g].push(row as u32);
                }
            }
            Column::Str(v) => {
                let mut index: HashMap<&str, usize> = HashMap::new();
                for (row, k) in v.iter().enumerate() {
                    let g = *index.entry(k.as_str()).or_insert_with(|| {
                        groups.push(Vec::new());
                        out_key.push(Value::Str(k.clone()));
                        groups.len() - 1
                    });
                    groups[g].push(row as u32);
                }
            }
            Column::Bool(v) => {
                let mut index: HashMap<bool, usize> = HashMap::new();
                for (row, &k) in v.iter().enumerate() {
                    let g = *index.entry(k).or_insert_with(|| {
                        groups.push(Vec::new());
                        out_key.push(Value::Bool(k));
                        groups.len() - 1
                    });
                    groups[g].push(row as u32);
                }
            }
            Column::Float(_) => {
                return Err(TableError::TypeMismatch {
                    column: key.into(),
                    found: col.column_type(),
                })
            }
        }

        let mut out = Table::new();
        out.push_column(key, out_key)?;
        Ok(GroupBy { source, key_name: key.into(), groups, out })
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Adds an aggregate column `<value_col>_<agg>` to the output.
    /// `Agg::Count` may target the key column itself.
    pub fn agg(mut self, value_col: &str, agg: Agg) -> Result<GroupBy<'a>, TableError> {
        let col = self.source.column(value_col)?;
        let numeric = col.as_f64_vec();
        if numeric.is_none() && agg != Agg::Count && agg != Agg::CountDistinct {
            return Err(TableError::TypeMismatch {
                column: value_col.into(),
                found: col.column_type(),
            });
        }
        let mut data = Vec::with_capacity(self.groups.len());
        for rows in &self.groups {
            let v = match (&numeric, agg) {
                (_, Agg::Count) => rows.len() as f64,
                (Some(vals), _) => {
                    let mut group_vals: Vec<f64> = rows.iter().map(|&r| vals[r as usize]).collect();
                    agg.apply(&mut group_vals)
                }
                (None, Agg::CountDistinct) => {
                    // Distinct over strings.
                    let mut set = std::collections::HashSet::new();
                    if let Column::Str(sv) = col {
                        for &r in rows {
                            set.insert(sv[r as usize].as_str());
                        }
                    }
                    set.len() as f64
                }
                (None, _) => unreachable!("checked above"),
            };
            data.push(v);
        }
        let name = format!("{value_col}_{}", agg.suffix());
        self.out.push_column(name, Column::Float(data))?;
        Ok(self)
    }

    /// Finishes: the output table, one row per group, in first-seen order.
    pub fn finish(self) -> Table {
        self.out
    }

    /// Name of the key column.
    pub fn key(&self) -> &str {
        &self.key_name
    }
}

// Convenience: let `group_by(..)?.agg(..)?.get(...)` read like a table.
impl GroupBy<'_> {
    /// Scalar lookup on the output under construction.
    pub fn get(&self, name: &str, row: usize) -> Result<Value, TableError> {
        self.out.get(name, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new();
        t.push_int_column("week", vec![1, 2, 1, 2, 3]).unwrap();
        t.push_float_column("v", vec![10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        t.push_str_column("src", vec!["a".into(), "a".into(), "b".into(), "b".into(), "a".into()])
            .unwrap();
        t
    }

    #[test]
    fn groups_by_int_key_in_first_seen_order() {
        let t = sample();
        let g = t.group_by("week").unwrap();
        assert_eq!(g.n_groups(), 3);
        let out = g.agg("v", Agg::Sum).unwrap().finish();
        assert_eq!(out.get("week", 0).unwrap(), Value::Int(1));
        assert_eq!(out.floats("v_sum").unwrap(), &[40.0, 60.0, 50.0]);
    }

    #[test]
    fn groups_by_string_key() {
        let t = sample();
        let out = t.group_by("src").unwrap().agg("v", Agg::Mean).unwrap().finish();
        assert_eq!(out.get("src", 0).unwrap(), Value::Str("a".into()));
        let means = out.floats("v_mean").unwrap();
        assert!((means[0] - 80.0 / 3.0).abs() < 1e-12); // a: 10,20,50
        assert_eq!(means[1], 35.0); // b: 30,40
    }

    #[test]
    fn chained_aggregates() {
        let t = sample();
        let out = t
            .group_by("week")
            .unwrap()
            .agg("v", Agg::Count)
            .unwrap()
            .agg("v", Agg::Median)
            .unwrap()
            .agg("v", Agg::Max)
            .unwrap()
            .finish();
        assert_eq!(out.n_cols(), 4);
        assert_eq!(out.floats("v_count").unwrap(), &[2.0, 2.0, 1.0]);
        assert_eq!(out.floats("v_median").unwrap(), &[20.0, 30.0, 50.0]);
        assert_eq!(out.floats("v_max").unwrap(), &[30.0, 40.0, 50.0]);
    }

    #[test]
    fn count_distinct_over_strings() {
        let t = sample();
        let out = t.group_by("week").unwrap().agg("src", Agg::CountDistinct).unwrap().finish();
        assert_eq!(out.floats("src_distinct").unwrap(), &[2.0, 2.0, 1.0]);
    }

    #[test]
    fn group_sums_equal_total() {
        let t = sample();
        let out = t.group_by("week").unwrap().agg("v", Agg::Sum).unwrap().finish();
        let total: f64 = out.floats("v_sum").unwrap().iter().sum();
        let direct: f64 = t.floats("v").unwrap().iter().sum();
        assert_eq!(total, direct);
    }

    #[test]
    fn float_key_rejected() {
        let t = sample();
        assert!(matches!(t.group_by("v"), Err(TableError::TypeMismatch { .. })));
    }

    #[test]
    fn string_value_rejected_for_numeric_agg() {
        let t = sample();
        let g = t.group_by("week").unwrap();
        assert!(matches!(g.agg("src", Agg::Sum), Err(TableError::TypeMismatch { .. })));
    }
}
