//! Crash-safe service checkpoints.
//!
//! A checkpoint file is a small fixed-width header (magic, stream id,
//! progress counters, header checksum) followed by a standard
//! `crowd-snapshot` payload carrying the entity tables plus every
//! instance row applied so far. The snapshot fingerprint field holds the
//! *stream id*, so a checkpoint from a different stream is rejected by
//! the payload decoder exactly like a snapshot for the wrong config.
//!
//! Writes are atomic (temp file + rename), so a crash mid-write leaves
//! either the previous set intact or a stray temp file — never a half
//! checkpoint under a final name. Restores scan newest-to-oldest and
//! fall back past torn or corrupt files, returning the skipped files as
//! typed [`CheckpointFault`]s so callers can report (or alert on) the
//! damage they stepped over.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crowd_core::dataset::Dataset;
use crowd_snapshot::format::checksum;
use crowd_snapshot::{decode, encode, Snapshot, SnapshotError};

/// File magic for serve checkpoints (distinct from snapshot files).
pub const CKPT_MAGIC: [u8; 8] = *b"CSRVCKP1";

/// Fixed header size: magic + 5 × u64 counters + u64 checksum.
const HEADER_LEN: usize = 8 + 6 * 8;

/// Everything needed to resume a [`crate::LiveService`].
#[derive(Debug, Clone)]
pub struct CheckpointState {
    /// Identifies the event stream this checkpoint belongs to.
    pub stream_id: u64,
    /// Events applied when the checkpoint was taken.
    pub events_applied: u64,
    /// Published service version at the checkpoint.
    pub version: u64,
    /// `Posted` events seen.
    pub posted: u64,
    /// `PickedUp` events seen.
    pub picked_up: u64,
    /// Entity tables plus all instance rows applied so far, in applied
    /// order.
    pub dataset: Dataset,
}

/// One unusable checkpoint file a restore stepped over.
#[derive(Debug)]
pub struct CheckpointFault {
    /// The damaged file.
    pub path: PathBuf,
    /// Why it was rejected.
    pub reason: String,
}

/// Typed failure of a checkpoint operation.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error reading or writing the checkpoint directory.
    Io(std::io::Error),
    /// No checkpoint file could be restored; carries one fault per file
    /// tried (empty when the directory held no checkpoints at all).
    NoValidCheckpoint {
        /// The rejected candidates, newest first.
        faults: Vec<CheckpointFault>,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::NoValidCheckpoint { faults } if faults.is_empty() => {
                write!(f, "no checkpoint files present")
            }
            CheckpointError::NoValidCheckpoint { faults } => {
                write!(
                    f,
                    "no valid checkpoint among {} candidates (newest: {})",
                    faults.len(),
                    faults[0].reason
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A directory of checkpoints for one event stream.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    stream_id: u64,
}

impl CheckpointStore {
    /// A store rooted at `dir` for stream `stream_id`. The directory is
    /// created on the first write.
    pub fn new(dir: impl Into<PathBuf>, stream_id: u64) -> CheckpointStore {
        CheckpointStore { dir: dir.into(), stream_id }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stream id checkpoints are keyed by.
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }

    /// File path for a checkpoint at `events_applied`.
    pub fn path_for(&self, events_applied: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{:016x}-{events_applied:020}.bin", self.stream_id))
    }

    /// Existing checkpoint files for this stream, oldest first.
    pub fn list(&self) -> Vec<PathBuf> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else { return out };
        let prefix = format!("ckpt-{:016x}-", self.stream_id);
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(&prefix) && name.ends_with(".bin") {
                out.push(entry.path());
            }
        }
        out.sort();
        out
    }

    /// Atomically writes a checkpoint; returns its final path.
    pub fn write(&self, state: &CheckpointState) -> Result<PathBuf, CheckpointError> {
        assert_eq!(state.stream_id, self.stream_id, "checkpoint stream id mismatch");
        fs::create_dir_all(&self.dir)?;
        let bytes = encode_checkpoint(state);
        let path = self.path_for(state.events_applied);
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Loads one checkpoint file, verifying header and payload.
    pub fn load(&self, path: &Path) -> Result<CheckpointState, String> {
        let bytes = fs::read(path).map_err(|e| format!("read: {e}"))?;
        decode_checkpoint(&bytes, self.stream_id)
    }

    /// Restores the newest valid checkpoint, stepping over torn or
    /// corrupt files. Returns the state plus one [`CheckpointFault`] per
    /// skipped file (newest first).
    pub fn load_latest(&self) -> Result<(CheckpointState, Vec<CheckpointFault>), CheckpointError> {
        let mut faults = Vec::new();
        for path in self.list().into_iter().rev() {
            match self.load(&path) {
                Ok(state) => return Ok((state, faults)),
                Err(reason) => faults.push(CheckpointFault { path, reason }),
            }
        }
        Err(CheckpointError::NoValidCheckpoint { faults })
    }
}

fn encode_checkpoint(state: &CheckpointState) -> Vec<u8> {
    let payload =
        encode(&Snapshot { dataset: state.dataset.clone(), derived: None }, state.stream_id);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&CKPT_MAGIC);
    for v in [state.stream_id, state.events_applied, state.version, state.posted, state.picked_up] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let hdr_checksum = checksum(&out);
    out.extend_from_slice(&hdr_checksum.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_checkpoint(bytes: &[u8], stream_id: u64) -> Result<CheckpointState, String> {
    if bytes.len() < HEADER_LEN {
        return Err("truncated header".into());
    }
    if bytes[..8] != CKPT_MAGIC {
        return Err("bad checkpoint magic".into());
    }
    let u64_at = |i: usize| {
        let off = 8 + i * 8;
        u64::from_le_bytes(bytes[off..off + 8].try_into().expect("fixed-width header"))
    };
    let want = checksum(&bytes[..HEADER_LEN - 8]);
    if u64_at(5) != want {
        return Err("header checksum mismatch".into());
    }
    if u64_at(0) != stream_id {
        return Err(format!("stream id {:#x}, expected {stream_id:#x}", u64_at(0)));
    }
    let snapshot = decode(&bytes[HEADER_LEN..], stream_id)
        .map_err(|e: SnapshotError| format!("payload: {e}"))?;
    Ok(CheckpointState {
        stream_id,
        events_applied: u64_at(1),
        version: u64_at(2),
        posted: u64_at(3),
        picked_up: u64_at(4),
        dataset: snapshot.dataset,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::fixture::Fixture;
    use crowd_core::Duration;

    fn state(events: u64) -> CheckpointState {
        let mut fx = Fixture::new();
        let w = fx.add_worker();
        let b = fx.add_batch(Duration::ZERO);
        fx.instance(b, 0, w, 60, 30);
        CheckpointState {
            stream_id: 0xfeed,
            events_applied: events,
            version: events / 2,
            posted: 1,
            picked_up: 1,
            dataset: fx.finish(),
        }
    }

    #[test]
    fn round_trip_restores_counters_and_rows() {
        let dir = std::env::temp_dir().join(format!("crowd-serve-ckpt-{}", std::process::id()));
        let store = CheckpointStore::new(&dir, 0xfeed);
        store.write(&state(10)).unwrap();
        store.write(&state(20)).unwrap();
        let (got, faults) = store.load_latest().unwrap();
        assert!(faults.is_empty());
        assert_eq!(got.events_applied, 20);
        assert_eq!(got.posted, 1);
        assert_eq!(got.dataset.instances.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_newest_falls_back_to_previous_with_typed_fault() {
        let dir = std::env::temp_dir().join(format!("crowd-serve-torn-{}", std::process::id()));
        let store = CheckpointStore::new(&dir, 0xfeed);
        store.write(&state(10)).unwrap();
        let newest = store.write(&state(20)).unwrap();
        // Tear the newest file mid-payload.
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let (got, faults) = store.load_latest().unwrap();
        assert_eq!(got.events_applied, 10);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].path, newest);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_torn_is_a_typed_error_listing_every_candidate() {
        let dir = std::env::temp_dir().join(format!("crowd-serve-dead-{}", std::process::id()));
        let store = CheckpointStore::new(&dir, 0xfeed);
        for ev in [10, 20] {
            let p = store.write(&state(ev)).unwrap();
            fs::write(&p, b"CSRVCKP1 garbage").unwrap();
        }
        match store.load_latest() {
            Err(CheckpointError::NoValidCheckpoint { faults }) => assert_eq!(faults.len(), 2),
            other => panic!("expected NoValidCheckpoint, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_stream_id_is_rejected() {
        let dir = std::env::temp_dir().join(format!("crowd-serve-stream-{}", std::process::id()));
        let store = CheckpointStore::new(&dir, 0xfeed);
        store.write(&state(10)).unwrap();
        let other = CheckpointStore::new(&dir, 0xbeef);
        assert!(matches!(other.load_latest(), Err(CheckpointError::NoValidCheckpoint { .. })));
        fs::remove_dir_all(&dir).ok();
    }
}
