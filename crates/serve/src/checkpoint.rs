//! Crash-safe service checkpoints.
//!
//! A checkpoint file is a small fixed-width header (magic, stream id,
//! progress counters, header checksum) followed by a standard
//! `crowd-snapshot` payload carrying the entity tables plus every
//! instance row applied so far. The snapshot fingerprint field holds the
//! *stream id*, so a checkpoint from a different stream is rejected by
//! the payload decoder exactly like a snapshot for the wrong config.
//!
//! Writes are atomic (temp file + rename), so a crash mid-write leaves
//! either the previous set intact or a stray temp file — never a half
//! checkpoint under a final name. Restores scan newest-to-oldest and
//! fall back past torn or corrupt files, returning the skipped files as
//! typed [`CheckpointFault`]s so callers can report (or alert on) the
//! damage they stepped over.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crowd_core::dataset::Dataset;
use crowd_ingest::killpoint::kill_point;
use crowd_ingest::{is_transient, Backoff, Clock, SystemClock};
use crowd_snapshot::format::checksum;
use crowd_snapshot::{decode, encode, Snapshot, SnapshotError};

/// File magic for serve checkpoints (distinct from snapshot files).
pub const CKPT_MAGIC: [u8; 8] = *b"CSRVCKP1";

/// Fixed header size: magic + 5 × u64 counters + u64 checksum.
const HEADER_LEN: usize = 8 + 6 * 8;

/// Everything needed to resume a [`crate::LiveService`].
#[derive(Debug, Clone)]
pub struct CheckpointState {
    /// Identifies the event stream this checkpoint belongs to.
    pub stream_id: u64,
    /// Events applied when the checkpoint was taken.
    pub events_applied: u64,
    /// Published service version at the checkpoint.
    pub version: u64,
    /// `Posted` events seen.
    pub posted: u64,
    /// `PickedUp` events seen.
    pub picked_up: u64,
    /// Entity tables plus all instance rows applied so far, in applied
    /// order.
    pub dataset: Dataset,
}

/// One unusable checkpoint file a restore stepped over.
#[derive(Debug)]
pub struct CheckpointFault {
    /// The damaged file.
    pub path: PathBuf,
    /// Why it was rejected.
    pub reason: String,
}

/// Typed failure of a checkpoint operation.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error reading or writing the checkpoint directory.
    Io(std::io::Error),
    /// No checkpoint file could be restored; carries one fault per file
    /// tried (empty when the directory held no checkpoints at all).
    NoValidCheckpoint {
        /// The rejected candidates, newest first.
        faults: Vec<CheckpointFault>,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::NoValidCheckpoint { faults } if faults.is_empty() => {
                write!(f, "no checkpoint files present")
            }
            CheckpointError::NoValidCheckpoint { faults } => {
                write!(
                    f,
                    "no valid checkpoint among {} candidates (newest: {})",
                    faults.len(),
                    faults[0].reason
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A directory of checkpoints for one event stream.
///
/// Writes retry transient IO errors under a bounded [`Backoff`] (parity
/// with `SnapshotStore`'s save path); clones share the retry counter, so
/// the clone-per-call patterns the service uses still account every
/// retry in one place.
#[derive(Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    stream_id: u64,
    backoff: Backoff,
    clock: Arc<dyn Clock>,
    retries: Arc<AtomicU64>,
}

impl fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .field("stream_id", &self.stream_id)
            .field("backoff", &self.backoff)
            .field("retries", &self.retries_spent())
            .finish_non_exhaustive()
    }
}

impl CheckpointStore {
    /// A store rooted at `dir` for stream `stream_id`. The directory is
    /// created on the first write. Transient save errors retry under the
    /// default backoff, jittered by the stream id so concurrent stores
    /// over a shared filesystem decorrelate.
    pub fn new(dir: impl Into<PathBuf>, stream_id: u64) -> CheckpointStore {
        CheckpointStore {
            dir: dir.into(),
            stream_id,
            backoff: Backoff::default().with_jitter(stream_id),
            clock: Arc::new(SystemClock),
            retries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Replaces the retry policy for transient save failures.
    pub fn with_backoff(mut self, backoff: Backoff) -> CheckpointStore {
        self.backoff = backoff;
        self
    }

    /// Replaces the clock backing retry delays (inject a
    /// [`crowd_ingest::ManualClock`] in tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> CheckpointStore {
        self.clock = clock;
        self
    }

    /// Transient-error retries spent by writes over this store's lifetime
    /// (shared across clones).
    pub fn retries_spent(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Runs `f`, retrying transient IO errors under the store's backoff.
    /// Every retry is counted into the shared retry gauge.
    fn retry_io(&self, mut f: impl FnMut() -> io::Result<()>) -> io::Result<()> {
        let mut retries = 0u32;
        loop {
            match f() {
                Ok(()) => return Ok(()),
                Err(e) if is_transient(&e) && retries < self.backoff.max_retries => {
                    self.clock.sleep(self.backoff.delay(retries));
                    retries += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stream id checkpoints are keyed by.
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }

    /// File path for a checkpoint at `events_applied`.
    pub fn path_for(&self, events_applied: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{:016x}-{events_applied:020}.bin", self.stream_id))
    }

    /// Existing checkpoint files for this stream, oldest first.
    pub fn list(&self) -> Vec<PathBuf> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else { return out };
        let prefix = format!("ckpt-{:016x}-", self.stream_id);
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(&prefix) && name.ends_with(".bin") {
                out.push(entry.path());
            }
        }
        out.sort();
        out
    }

    /// Atomically writes a checkpoint; returns its final path. Transient
    /// IO errors retry under the store's backoff; anything else surfaces
    /// after removing the temp file.
    pub fn write(&self, state: &CheckpointState) -> Result<PathBuf, CheckpointError> {
        assert_eq!(state.stream_id, self.stream_id, "checkpoint stream id mismatch");
        fs::create_dir_all(&self.dir)?;
        let bytes = encode_checkpoint(state);
        let path = self.path_for(state.events_applied);
        let tmp = path.with_extension("tmp");
        let result = self.retry_io(|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            // A kill here leaves a durable temp under a non-final name:
            // invisible to restore, swept by nothing, harmless.
            kill_point("ckpt.temp");
            fs::rename(&tmp, &path)?;
            Ok(())
        });
        if let Err(e) = result {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        kill_point("ckpt.rename");
        Ok(path)
    }

    /// Loads one checkpoint file, verifying header and payload.
    pub fn load(&self, path: &Path) -> Result<CheckpointState, String> {
        let bytes = fs::read(path).map_err(|e| format!("read: {e}"))?;
        decode_checkpoint(&bytes, self.stream_id)
    }

    /// Restores the newest valid checkpoint, stepping over torn or
    /// corrupt files. Returns the state plus one [`CheckpointFault`] per
    /// skipped file (newest first).
    pub fn load_latest(&self) -> Result<(CheckpointState, Vec<CheckpointFault>), CheckpointError> {
        let mut faults = Vec::new();
        for path in self.list().into_iter().rev() {
            match self.load(&path) {
                Ok(state) => return Ok((state, faults)),
                Err(reason) => faults.push(CheckpointFault { path, reason }),
            }
        }
        Err(CheckpointError::NoValidCheckpoint { faults })
    }
}

fn encode_checkpoint(state: &CheckpointState) -> Vec<u8> {
    let payload =
        encode(&Snapshot { dataset: state.dataset.clone(), derived: None }, state.stream_id);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&CKPT_MAGIC);
    for v in [state.stream_id, state.events_applied, state.version, state.posted, state.picked_up] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let hdr_checksum = checksum(&out);
    out.extend_from_slice(&hdr_checksum.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_checkpoint(bytes: &[u8], stream_id: u64) -> Result<CheckpointState, String> {
    if bytes.len() < HEADER_LEN {
        return Err("truncated header".into());
    }
    if bytes[..8] != CKPT_MAGIC {
        return Err("bad checkpoint magic".into());
    }
    let u64_at = |i: usize| {
        let off = 8 + i * 8;
        u64::from_le_bytes(bytes[off..off + 8].try_into().expect("fixed-width header"))
    };
    let want = checksum(&bytes[..HEADER_LEN - 8]);
    if u64_at(5) != want {
        return Err("header checksum mismatch".into());
    }
    if u64_at(0) != stream_id {
        return Err(format!("stream id {:#x}, expected {stream_id:#x}", u64_at(0)));
    }
    let snapshot = decode(&bytes[HEADER_LEN..], stream_id)
        .map_err(|e: SnapshotError| format!("payload: {e}"))?;
    Ok(CheckpointState {
        stream_id,
        events_applied: u64_at(1),
        version: u64_at(2),
        posted: u64_at(3),
        picked_up: u64_at(4),
        dataset: snapshot.dataset,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::fixture::Fixture;
    use crowd_core::Duration;

    fn state(events: u64) -> CheckpointState {
        let mut fx = Fixture::new();
        let w = fx.add_worker();
        let b = fx.add_batch(Duration::ZERO);
        fx.instance(b, 0, w, 60, 30);
        CheckpointState {
            stream_id: 0xfeed,
            events_applied: events,
            version: events / 2,
            posted: 1,
            picked_up: 1,
            dataset: fx.finish(),
        }
    }

    #[test]
    fn round_trip_restores_counters_and_rows() {
        let dir = std::env::temp_dir().join(format!("crowd-serve-ckpt-{}", std::process::id()));
        let store = CheckpointStore::new(&dir, 0xfeed);
        store.write(&state(10)).unwrap();
        store.write(&state(20)).unwrap();
        let (got, faults) = store.load_latest().unwrap();
        assert!(faults.is_empty());
        assert_eq!(got.events_applied, 20);
        assert_eq!(got.posted, 1);
        assert_eq!(got.dataset.instances.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_newest_falls_back_to_previous_with_typed_fault() {
        let dir = std::env::temp_dir().join(format!("crowd-serve-torn-{}", std::process::id()));
        let store = CheckpointStore::new(&dir, 0xfeed);
        store.write(&state(10)).unwrap();
        let newest = store.write(&state(20)).unwrap();
        // Tear the newest file mid-payload.
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let (got, faults) = store.load_latest().unwrap();
        assert_eq!(got.events_applied, 10);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].path, newest);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_torn_is_a_typed_error_listing_every_candidate() {
        let dir = std::env::temp_dir().join(format!("crowd-serve-dead-{}", std::process::id()));
        let store = CheckpointStore::new(&dir, 0xfeed);
        for ev in [10, 20] {
            let p = store.write(&state(ev)).unwrap();
            fs::write(&p, b"CSRVCKP1 garbage").unwrap();
        }
        match store.load_latest() {
            Err(CheckpointError::NoValidCheckpoint { faults }) => assert_eq!(faults.len(), 2),
            other => panic!("expected NoValidCheckpoint, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_write_faults_retry_on_the_seeded_jitter_schedule() {
        use crowd_ingest::ManualClock;
        let clock = Arc::new(ManualClock::new());
        let store =
            CheckpointStore::new("unused", 0xfeed).with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let mut failures = 3;
        store
            .retry_io(|| {
                if failures > 0 {
                    failures -= 1;
                    Err(io::Error::from(io::ErrorKind::Interrupted))
                } else {
                    Ok(())
                }
            })
            .expect("transient faults within budget must recover");
        assert_eq!(store.retries_spent(), 3);
        // The sleeps follow the stream-seeded jitter schedule exactly.
        let expect: Vec<_> = (0..3).map(|r| store.backoff.delay(r)).collect();
        assert_eq!(clock.slept(), expect);
        let raw = Backoff::default();
        assert!(
            (0..3).any(|r| store.backoff.delay(r) != raw.delay(r)),
            "stream-id jitter left the schedule untouched"
        );
    }

    #[test]
    fn exhausted_transient_budget_surfaces_the_error_and_clones_share_retries() {
        use crowd_ingest::ManualClock;
        let clock = Arc::new(ManualClock::new());
        let store = CheckpointStore::new("unused", 0xfeed)
            .with_backoff(Backoff { max_retries: 2, ..Backoff::default() })
            .with_clock(clock as Arc<dyn Clock>);
        let clone = store.clone();
        let err = clone
            .retry_io(|| Err(io::Error::from(io::ErrorKind::WouldBlock)))
            .expect_err("endless transience must exhaust");
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(store.retries_spent(), 2, "clones share the retry gauge");
    }

    #[test]
    fn wrong_stream_id_is_rejected() {
        let dir = std::env::temp_dir().join(format!("crowd-serve-stream-{}", std::process::id()));
        let store = CheckpointStore::new(&dir, 0xfeed);
        store.write(&state(10)).unwrap();
        let other = CheckpointStore::new(&dir, 0xbeef);
        assert!(matches!(other.load_latest(), Err(CheckpointError::NoValidCheckpoint { .. })));
        fs::remove_dir_all(&dir).ok();
    }
}
