//! Event-feed generation: replaying a simulated dataset as the live
//! stream a marketplace would have emitted.
//!
//! A [`SimConfig`] deterministically produces a finished dataset; this
//! module splits that dataset into the *entity tables* (known to the
//! service up front, like a platform's registration databases) and the
//! *event stream* (what arrives over the wire while the marketplace
//! runs). The stream goes through [`crowd_ingest::events`]' CSV format,
//! so every feed a test or benchmark replays has passed the same
//! retry/quarantine/reorder/digest discipline as a real ingest.

use std::sync::Arc;

use crowd_core::dataset::{Dataset, InstanceColumns};
use crowd_ingest::events::{event_log_to_csv, events_from_dataset};
use crowd_ingest::MarketEvent;
use crowd_sim::{simulate, SimConfig};

/// A dataset's entity tables with the instance table emptied — the
/// static context a [`crate::LiveService`] starts from.
pub fn entities_only(ds: &Dataset) -> Dataset {
    Dataset {
        sources: ds.sources.clone(),
        countries: ds.countries.clone(),
        workers: ds.workers.clone(),
        task_types: ds.task_types.clone(),
        batches: ds.batches.clone(),
        instances: InstanceColumns::default(),
    }
}

/// A replayable event feed: entity tables plus the event stream that
/// produces a known dataset when fully applied.
#[derive(Debug, Clone)]
pub struct EventFeed {
    /// Entity tables (empty instance table).
    pub entities: Arc<Dataset>,
    /// The full event stream in producer order.
    pub events: Vec<MarketEvent>,
}

impl EventFeed {
    /// Derives the feed for a simulation config: the dataset
    /// [`simulate`] produces, split into entities + events.
    pub fn from_config(cfg: &SimConfig) -> EventFeed {
        EventFeed::from_dataset(&simulate(cfg))
    }

    /// Splits an existing dataset into entities + events.
    pub fn from_dataset(ds: &Dataset) -> EventFeed {
        EventFeed { entities: Arc::new(entities_only(ds)), events: events_from_dataset(ds) }
    }

    /// Serializes the feed to the event-stream wire format (header,
    /// records, digest trailer).
    pub fn to_csv(&self) -> String {
        event_log_to_csv(&self.events)
    }

    /// Number of `Completed` events — the rows the fully-applied view
    /// will cover.
    pub fn n_completed(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, MarketEvent::Completed { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_splits_entities_from_instances() {
        let cfg = SimConfig::tiny(41);
        let ds = simulate(&cfg);
        let feed = EventFeed::from_config(&cfg);
        assert!(feed.entities.instances.is_empty());
        assert_eq!(feed.entities.batches.len(), ds.batches.len());
        assert_eq!(feed.entities.workers.len(), ds.workers.len());
        assert_eq!(feed.n_completed(), ds.instances.len());
        assert_eq!(feed.events.len(), ds.batches.len() + 2 * ds.instances.len());
    }

    #[test]
    fn feed_round_trips_through_the_wire_format() {
        let feed = EventFeed::from_config(&SimConfig::tiny(42));
        let log = crowd_ingest::load_events_str(&feed.to_csv(), &feed.entities)
            .expect("clean feed loads");
        assert_eq!(log.report.verified, Some(true));
        assert_eq!(log.events.len(), feed.events.len());
        assert_eq!(log.completed_rows().len(), feed.n_completed());
    }
}
