//! The live service: one writer applying event deltas, many readers
//! querying published snapshots.
//!
//! Concurrency contract (what `serve_concurrent.rs` stress-tests):
//!
//! - [`LiveService`] is the single writer. [`apply_events`] folds a batch
//!   of events into the delta-applied [`FusedView`], then publishes a new
//!   immutable [`ServiceSnapshot`] by swapping an `Arc` under a write
//!   lock.
//! - [`ServiceHandle`] is the cloneable reader. [`snapshot`] clones the
//!   current `Arc` under the read lock — the lock is held for one
//!   refcount bump, and all query work runs against the immutable
//!   snapshot afterwards. A reader therefore observes exactly one fully
//!   published version (never a torn mix) and versions are monotone.
//!
//! Equivalence contract: every published snapshot's fused aggregates
//! equal a cold batch [`Study`](crowd_analytics::Study) over the same
//! event prefix. [`batch_study`] rebuilds that oracle on demand.
//!
//! [`apply_events`]: LiveService::apply_events
//! [`snapshot`]: ServiceHandle::snapshot
//! [`batch_study`]: LiveService::batch_study

use std::fmt;
use std::io::Read;
use std::sync::{Arc, RwLock};

use crowd_analytics::view::ViewSnapshot;
use crowd_analytics::{FusedView, Study};
use crowd_core::dataset::{Dataset, InstanceColumns};
use crowd_core::provenance::TableReport;
use crowd_ingest::events::{load_events, EventOptions, EventStreamError};
use crowd_ingest::MarketEvent;

use crate::checkpoint::{CheckpointError, CheckpointFault, CheckpointState, CheckpointStore};
use crate::replay::entities_only;

/// Monotone event counters, published with every snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauges {
    /// `Posted` events applied.
    pub posted: u64,
    /// `PickedUp` events applied.
    pub picked_up: u64,
    /// `Completed` events applied (equals the view's row count).
    pub completed: u64,
}

/// One published, immutable service state.
#[derive(Debug)]
pub struct ServiceSnapshot {
    /// Service publish counter: 0 at start, +1 per applied batch.
    pub version: u64,
    /// Total events applied through this snapshot.
    pub events_applied: u64,
    /// Event counters at this snapshot.
    pub gauges: Gauges,
    /// The fused analytics state over exactly the completed rows applied
    /// so far.
    pub view: Arc<ViewSnapshot>,
}

/// Cloneable read handle onto the latest published [`ServiceSnapshot`].
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<RwLock<Arc<ServiceSnapshot>>>,
}

impl ServiceHandle {
    /// The latest fully published snapshot.
    pub fn snapshot(&self) -> Arc<ServiceSnapshot> {
        Arc::clone(&self.shared.read().expect("service lock poisoned"))
    }
}

/// Typed failure of a service operation.
#[derive(Debug)]
pub enum ServeError {
    /// The event stream failed to load.
    Stream(EventStreamError),
    /// A checkpoint write or restore failed.
    Checkpoint(CheckpointError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Stream(e) => write!(f, "{e}"),
            ServeError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EventStreamError> for ServeError {
    fn from(e: EventStreamError) -> Self {
        ServeError::Stream(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

/// Summary of one [`LiveService::ingest_stream`] run.
#[derive(Debug, Clone)]
pub struct IngestSummary {
    /// Accept/repair/dedup/quarantine accounting from the event loader.
    pub report: TableReport,
    /// Delta batches applied.
    pub batches: u64,
    /// Events applied by this run.
    pub events_applied: u64,
    /// Service version after the run.
    pub version: u64,
}

/// The single-writer live analytics service.
pub struct LiveService {
    entities: Arc<Dataset>,
    view: FusedView,
    rows: InstanceColumns,
    gauges: Gauges,
    events_applied: u64,
    version: u64,
    shared: Arc<RwLock<Arc<ServiceSnapshot>>>,
    checkpoints: Option<(CheckpointStore, u64)>,
}

impl LiveService {
    /// A fresh service over `entities` (instance table must be empty —
    /// rows arrive as events).
    pub fn new(entities: Arc<Dataset>) -> LiveService {
        let view = FusedView::new(Arc::clone(&entities));
        let snap = Arc::new(ServiceSnapshot {
            version: 0,
            events_applied: 0,
            gauges: Gauges::default(),
            view: view.handle().snapshot(),
        });
        LiveService {
            entities,
            view,
            rows: InstanceColumns::default(),
            gauges: Gauges::default(),
            events_applied: 0,
            version: 0,
            shared: Arc::new(RwLock::new(snap)),
            checkpoints: None,
        }
    }

    /// Enables periodic checkpoints: one is written whenever
    /// `events_applied` crosses a multiple of `every_events`.
    pub fn with_checkpoints(mut self, store: CheckpointStore, every_events: u64) -> LiveService {
        assert!(every_events > 0, "checkpoint cadence must be positive");
        self.checkpoints = Some((store, every_events));
        self
    }

    /// Restores from the newest valid checkpoint in `store`, stepping
    /// over torn files. Returns the resumed service plus the faults
    /// skipped; apply the event-stream tail from
    /// [`events_applied`](LiveService::events_applied) onward to catch
    /// up.
    pub fn restore(
        store: CheckpointStore,
        every_events: u64,
    ) -> Result<(LiveService, Vec<CheckpointFault>), ServeError> {
        let (state, faults) = store.load_latest().map_err(ServeError::Checkpoint)?;
        let entities = Arc::new(entities_only(&state.dataset));
        let rows = state.dataset.instances.clone_range(0..state.dataset.instances.len());
        let mut view = FusedView::new(Arc::clone(&entities));
        view.apply(&rows);
        let gauges = Gauges {
            posted: state.posted,
            picked_up: state.picked_up,
            completed: rows.len() as u64,
        };
        let snap = Arc::new(ServiceSnapshot {
            version: state.version,
            events_applied: state.events_applied,
            gauges,
            view: view.handle().snapshot(),
        });
        let service = LiveService {
            entities,
            view,
            rows,
            gauges,
            events_applied: state.events_applied,
            version: state.version,
            shared: Arc::new(RwLock::new(snap)),
            checkpoints: Some((store, every_events)),
        };
        Ok((service, faults))
    }

    /// The entity tables the service was started with.
    pub fn entities(&self) -> &Arc<Dataset> {
        &self.entities
    }

    /// All completed rows applied so far, in applied order.
    pub fn rows(&self) -> &InstanceColumns {
        &self.rows
    }

    /// Total events applied.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Current published version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current event counters.
    pub fn gauges(&self) -> Gauges {
        self.gauges
    }

    /// A reader handle; clone freely across threads.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle { shared: Arc::clone(&self.shared) }
    }

    /// Applies one batch of events (in the given order) and publishes the
    /// resulting snapshot. Empty batches publish too — a heartbeat
    /// version bump with unchanged aggregates.
    pub fn apply_events(
        &mut self,
        events: &[MarketEvent],
    ) -> Result<Arc<ServiceSnapshot>, ServeError> {
        let before = self.events_applied;
        let mut delta = InstanceColumns::default();
        for ev in events {
            match ev {
                MarketEvent::Posted { .. } => self.gauges.posted += 1,
                MarketEvent::PickedUp { .. } => self.gauges.picked_up += 1,
                MarketEvent::Completed { row, .. } => {
                    self.gauges.completed += 1;
                    delta.push(row.clone());
                }
            }
        }
        self.rows.extend_from(&delta, 0..delta.len());
        let view_snap = self.view.apply(&delta);
        self.events_applied += events.len() as u64;
        self.version += 1;
        let snap = Arc::new(ServiceSnapshot {
            version: self.version,
            events_applied: self.events_applied,
            gauges: self.gauges,
            view: view_snap,
        });
        *self.shared.write().expect("service lock poisoned") = Arc::clone(&snap);
        if let Some((store, every)) = &self.checkpoints {
            if self.events_applied / every > before / every {
                let state = self.checkpoint_state();
                store.write(&state).map_err(ServeError::Checkpoint)?;
            }
        }
        Ok(snap)
    }

    /// Loads an event stream through the resilient ingest path and
    /// applies it in batches of `batch_events` events (canonical order).
    pub fn ingest_stream(
        &mut self,
        reader: &mut dyn Read,
        opts: &EventOptions,
        batch_events: usize,
    ) -> Result<IngestSummary, ServeError> {
        assert!(batch_events > 0, "batch size must be positive");
        let log = load_events(reader, &self.entities, opts)?;
        let mut batches = 0u64;
        let mut applied = 0u64;
        for chunk in log.events.chunks(batch_events) {
            self.apply_events(chunk)?;
            batches += 1;
            applied += chunk.len() as u64;
        }
        Ok(IngestSummary {
            report: log.report,
            batches,
            events_applied: applied,
            version: self.version,
        })
    }

    /// Writes a checkpoint now (regardless of cadence). Panics if the
    /// service has no checkpoint store configured.
    pub fn checkpoint_now(&self) -> Result<std::path::PathBuf, ServeError> {
        let (store, _) =
            self.checkpoints.as_ref().expect("checkpoint_now requires with_checkpoints/restore");
        store.write(&self.checkpoint_state()).map_err(ServeError::Checkpoint)
    }

    fn checkpoint_state(&self) -> CheckpointState {
        let (store, _) = self.checkpoints.as_ref().expect("checked by callers");
        let mut dataset = entities_only(&self.entities);
        dataset.instances = self.rows.clone_range(0..self.rows.len());
        CheckpointState {
            stream_id: store.stream_id(),
            events_applied: self.events_applied,
            version: self.version,
            posted: self.gauges.posted,
            picked_up: self.gauges.picked_up,
            dataset,
        }
    }

    /// The cold batch oracle: a fresh [`Study`] over the entities plus
    /// every row applied so far — what the published view must equal.
    pub fn batch_study(&self) -> Study {
        let mut ds = entities_only(&self.entities);
        ds.instances = self.rows.clone_range(0..self.rows.len());
        Study::new(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::EventFeed;
    use crowd_sim::SimConfig;

    #[test]
    fn applying_the_full_feed_matches_the_batch_study() {
        let feed = EventFeed::from_config(&SimConfig::tiny(51));
        let mut svc = LiveService::new(Arc::clone(&feed.entities));
        let summary = svc
            .ingest_stream(&mut feed.to_csv().as_bytes(), &EventOptions::default(), 2000)
            .expect("clean feed");
        assert_eq!(summary.report.verified, Some(true));
        assert_eq!(svc.gauges().completed as usize, feed.n_completed());
        assert_eq!(svc.gauges().posted as usize, feed.entities.batches.len());

        let snap = svc.handle().snapshot();
        assert_eq!(snap.version, summary.version);
        assert_eq!(snap.view.rows, feed.n_completed());
        let diffs = crowd_testkit::compare_fused(
            &snap.view.fused,
            svc.batch_study().fused(),
            crowd_testkit::differential::FloatMode::OrderTolerant,
        );
        assert!(diffs.is_empty(), "live view diverged from batch study:\n{}", diffs.join("\n"));
    }

    #[test]
    fn empty_batches_publish_heartbeat_versions() {
        let feed = EventFeed::from_config(&SimConfig::tiny(52));
        let mut svc = LiveService::new(Arc::clone(&feed.entities));
        let v1 = svc.apply_events(&[]).unwrap();
        let v2 = svc.apply_events(&[]).unwrap();
        assert_eq!((v1.version, v2.version), (1, 2));
        assert_eq!(v2.view.fused.n_instances(), 0);
    }

    #[test]
    fn checkpoint_cadence_restores_to_the_same_state() {
        let dir = std::env::temp_dir().join(format!("crowd-serve-svc-{}", std::process::id()));
        let feed = EventFeed::from_config(&SimConfig::tiny(53));
        let store = CheckpointStore::new(&dir, 53);
        let mut svc =
            LiveService::new(Arc::clone(&feed.entities)).with_checkpoints(store.clone(), 500);
        let log = crowd_ingest::load_events_str(&feed.to_csv(), &feed.entities).unwrap();
        for chunk in log.events.chunks(250) {
            svc.apply_events(chunk).unwrap();
        }
        assert!(!store.list().is_empty(), "cadence must have produced checkpoints");

        let (restored, faults) = LiveService::restore(store, 500).unwrap();
        assert!(faults.is_empty());
        // The newest checkpoint may trail the live service by < cadence
        // events; replay the tail to catch up.
        let tail = &log.events[restored.events_applied() as usize..];
        let mut restored = restored;
        restored.apply_events(tail).unwrap();
        assert_eq!(restored.gauges(), svc.gauges());
        assert_eq!(restored.handle().snapshot().view.fused, svc.handle().snapshot().view.fused);
        std::fs::remove_dir_all(&dir).ok();
    }
}
