//! The live service: one writer applying event deltas, many readers
//! querying published snapshots.
//!
//! Concurrency contract (what `serve_concurrent.rs` stress-tests):
//!
//! - [`LiveService`] is the single writer. [`apply_events`] folds a batch
//!   of events into the delta-applied [`FusedView`], then publishes a new
//!   immutable [`ServiceSnapshot`] by swapping an `Arc` under a write
//!   lock.
//! - [`ServiceHandle`] is the cloneable reader. [`snapshot`] clones the
//!   current `Arc` under the read lock — the lock is held for one
//!   refcount bump, and all query work runs against the immutable
//!   snapshot afterwards. A reader therefore observes exactly one fully
//!   published version (never a torn mix) and versions are monotone.
//!
//! Equivalence contract: every published snapshot's fused aggregates
//! equal a cold batch [`Study`](crowd_analytics::Study) over the same
//! event prefix. [`batch_study`] rebuilds that oracle on demand.
//!
//! [`apply_events`]: LiveService::apply_events
//! [`snapshot`]: ServiceHandle::snapshot
//! [`batch_study`]: LiveService::batch_study

use std::fmt;
use std::io::Read;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use crowd_analytics::view::ViewSnapshot;
use crowd_analytics::{FusedView, Study};
use crowd_core::dataset::{Dataset, InstanceColumns};
use crowd_core::provenance::TableReport;
use crowd_ingest::events::{load_events, EventOptions, EventStreamError};
use crowd_ingest::killpoint::kill_point;
use crowd_ingest::wal::{replay as wal_replay, truncate_torn, WalOptions, WalWriter};
use crowd_ingest::{MarketEvent, WalError, WalFault};

use crate::checkpoint::{CheckpointError, CheckpointFault, CheckpointState, CheckpointStore};
use crate::replay::entities_only;

/// Monotone event counters plus durability/overload telemetry, published
/// with every snapshot.
///
/// The WAL and overload counters describe *this process's run*: they
/// restart at zero after a restore (the checkpoint header keeps only the
/// event counters), which is the useful reading — "what has this
/// incarnation appended/shed", not a lifetime total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauges {
    /// `Posted` events applied.
    pub posted: u64,
    /// `PickedUp` events applied.
    pub picked_up: u64,
    /// `Completed` events applied (equals the view's row count).
    pub completed: u64,
    /// WAL records appended by this process.
    pub wal_appends: u64,
    /// WAL fsyncs issued by this process.
    pub wal_fsyncs: u64,
    /// Batches dropped at admission (`ShedPolicy::ShedOldest`); shed
    /// events were never accepted and are absent from every other gauge.
    pub shed_batches: u64,
    /// Events inside those dropped batches.
    pub shed_events: u64,
    /// Events admitted but not yet applied when this snapshot published —
    /// the staleness reading under `ShedPolicy::DegradeStale`.
    pub lag_events: u64,
}

/// One published, immutable service state.
#[derive(Debug)]
pub struct ServiceSnapshot {
    /// Service publish counter: 0 at start, +1 per applied batch.
    pub version: u64,
    /// Total events applied through this snapshot.
    pub events_applied: u64,
    /// Event counters at this snapshot.
    pub gauges: Gauges,
    /// The fused analytics state over exactly the completed rows applied
    /// so far.
    pub view: Arc<ViewSnapshot>,
}

/// Publication state shared between the writer and every reader handle:
/// the snapshot slot plus a condvar-guarded version counter so readers
/// can *block* for a version instead of spinning on the `Arc`.
struct Shared {
    snap: RwLock<Arc<ServiceSnapshot>>,
    version: Mutex<u64>,
    published: Condvar,
}

impl Shared {
    fn publish(&self, snap: Arc<ServiceSnapshot>) {
        let version = snap.version;
        *self.snap.write().expect("service lock poisoned") = snap;
        *self.version.lock().expect("service lock poisoned") = version;
        self.published.notify_all();
        kill_point("serve.publish");
    }
}

/// Cloneable read handle onto the latest published [`ServiceSnapshot`].
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl ServiceHandle {
    /// The latest fully published snapshot.
    pub fn snapshot(&self) -> Arc<ServiceSnapshot> {
        Arc::clone(&self.shared.snap.read().expect("service lock poisoned"))
    }

    /// Blocks until a snapshot with `version` (or newer) publishes, then
    /// returns it; `None` on timeout. This replaces reader spin loops:
    /// the writer notifies on every publish, so a waiting reader costs
    /// nothing between versions.
    pub fn wait_for_version(
        &self,
        version: u64,
        timeout: Duration,
    ) -> Option<Arc<ServiceSnapshot>> {
        let deadline = Instant::now() + timeout;
        let mut latest = self.shared.version.lock().expect("service lock poisoned");
        while *latest < version {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .shared
                .published
                .wait_timeout(latest, deadline - now)
                .expect("service lock poisoned");
            latest = guard;
        }
        drop(latest);
        // The slot is at least as new as the version we waited for
        // (publishes are monotone and slot-before-counter).
        Some(self.snapshot())
    }
}

/// Typed failure of a service operation.
#[derive(Debug)]
pub enum ServeError {
    /// The event stream failed to load.
    Stream(EventStreamError),
    /// A checkpoint write or restore failed.
    Checkpoint(CheckpointError),
    /// A WAL file operation failed.
    Wal(WalError),
    /// The WAL holds damage no crash produces (bit flip, sequence gap);
    /// recovery refuses rather than serve past it.
    WalCorrupt(WalFault),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Stream(e) => write!(f, "{e}"),
            ServeError::Checkpoint(e) => write!(f, "{e}"),
            ServeError::Wal(e) => write!(f, "{e}"),
            ServeError::WalCorrupt(fault) => write!(f, "refusing recovery: {fault}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EventStreamError> for ServeError {
    fn from(e: EventStreamError) -> Self {
        ServeError::Stream(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        ServeError::Wal(e)
    }
}

/// Summary of one [`LiveService::ingest_stream`] run.
#[derive(Debug, Clone)]
pub struct IngestSummary {
    /// Accept/repair/dedup/quarantine accounting from the event loader.
    pub report: TableReport,
    /// Delta batches applied.
    pub batches: u64,
    /// Events applied by this run.
    pub events_applied: u64,
    /// Service version after the run.
    pub version: u64,
    /// Transient-error retries the checkpoint store spent during this
    /// run (0 when checkpoints are off).
    pub checkpoint_retries: u64,
}

/// What a [`LiveService::restore_durable`] recovery found and did.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Events restored from the newest valid checkpoint (0 when recovery
    /// started fresh — no checkpoint, or none valid).
    pub checkpoint_events: u64,
    /// Checkpoint files stepped over as torn or corrupt, newest first.
    pub checkpoint_faults: Vec<CheckpointFault>,
    /// Events replayed from the WAL tail past the checkpoint.
    pub wal_events_replayed: u64,
    /// Valid WAL records scanned during replay.
    pub wal_records: u64,
    /// Whether a torn WAL tail was truncated at its last valid record
    /// boundary (the expected artifact of a crash mid-append).
    pub torn_truncated: bool,
}

/// The single-writer live analytics service.
pub struct LiveService {
    entities: Arc<Dataset>,
    view: FusedView,
    rows: InstanceColumns,
    gauges: Gauges,
    events_applied: u64,
    version: u64,
    shared: Arc<Shared>,
    checkpoints: Option<(CheckpointStore, u64)>,
    wal: Option<WalWriter>,
}

fn new_shared(snap: ServiceSnapshot) -> Arc<Shared> {
    let version = snap.version;
    Arc::new(Shared {
        snap: RwLock::new(Arc::new(snap)),
        version: Mutex::new(version),
        published: Condvar::new(),
    })
}

impl LiveService {
    /// A fresh service over `entities` (instance table must be empty —
    /// rows arrive as events).
    pub fn new(entities: Arc<Dataset>) -> LiveService {
        let view = FusedView::new(Arc::clone(&entities));
        let snap = ServiceSnapshot {
            version: 0,
            events_applied: 0,
            gauges: Gauges::default(),
            view: view.handle().snapshot(),
        };
        LiveService {
            entities,
            view,
            rows: InstanceColumns::default(),
            gauges: Gauges::default(),
            events_applied: 0,
            version: 0,
            shared: new_shared(snap),
            checkpoints: None,
            wal: None,
        }
    }

    /// Enables periodic checkpoints: one is written whenever
    /// `events_applied` crosses a multiple of `every_events`.
    pub fn with_checkpoints(mut self, store: CheckpointStore, every_events: u64) -> LiveService {
        assert!(every_events > 0, "checkpoint cadence must be positive");
        self.checkpoints = Some((store, every_events));
        self
    }

    /// Restores from the newest valid checkpoint in `store`, stepping
    /// over torn files. Returns the resumed service plus the faults
    /// skipped; apply the event-stream tail from
    /// [`events_applied`](LiveService::events_applied) onward to catch
    /// up.
    pub fn restore(
        store: CheckpointStore,
        every_events: u64,
    ) -> Result<(LiveService, Vec<CheckpointFault>), ServeError> {
        let (state, faults) = store.load_latest().map_err(ServeError::Checkpoint)?;
        Ok((LiveService::from_state(state, store, every_events), faults))
    }

    fn from_state(
        state: CheckpointState,
        store: CheckpointStore,
        every_events: u64,
    ) -> LiveService {
        let entities = Arc::new(entities_only(&state.dataset));
        let rows = state.dataset.instances.clone_range(0..state.dataset.instances.len());
        let mut view = FusedView::new(Arc::clone(&entities));
        view.apply(&rows);
        let gauges = Gauges {
            posted: state.posted,
            picked_up: state.picked_up,
            completed: rows.len() as u64,
            ..Gauges::default()
        };
        let snap = ServiceSnapshot {
            version: state.version,
            events_applied: state.events_applied,
            gauges,
            view: view.handle().snapshot(),
        };
        LiveService {
            entities,
            view,
            rows,
            gauges,
            events_applied: state.events_applied,
            version: state.version,
            shared: new_shared(snap),
            checkpoints: Some((store, every_events)),
            wal: None,
        }
    }

    /// Enables the write-ahead log: every non-empty batch is appended
    /// (checksummed, length-prefixed) to a rotating segment file under
    /// `dir` **before** it is folded into the live view, keyed by
    /// `stream_id`. With the WAL on, an accepted event survives the
    /// process dying at any instant — recovery is
    /// [`restore_durable`](LiveService::restore_durable).
    pub fn with_wal(
        mut self,
        dir: impl Into<PathBuf>,
        stream_id: u64,
        opts: WalOptions,
    ) -> Result<LiveService, ServeError> {
        let writer = WalWriter::open(dir, stream_id, opts, self.events_applied)?;
        self.wal = Some(writer);
        Ok(self)
    }

    /// Crash recovery with the WAL: loads the newest valid checkpoint
    /// (fresh-starting over `entities` when none restores), replays the
    /// WAL tail past it, truncates a torn tail at the last valid record
    /// boundary, and re-attaches the log for new appends. Corrupt WAL
    /// records (damage no crash produces) refuse with
    /// [`ServeError::WalCorrupt`] instead of serving past them.
    pub fn restore_durable(
        store: CheckpointStore,
        every_events: u64,
        entities: Arc<Dataset>,
        wal_dir: impl Into<PathBuf>,
        wal_opts: WalOptions,
    ) -> Result<(LiveService, RecoveryReport), ServeError> {
        let wal_dir = wal_dir.into();
        let stream_id = store.stream_id();
        let (mut service, checkpoint_faults) = match store.load_latest() {
            Ok((state, faults)) => (LiveService::from_state(state, store, every_events), faults),
            Err(CheckpointError::NoValidCheckpoint { faults }) => {
                let mut svc = LiveService::new(entities);
                svc.checkpoints = Some((store, every_events));
                (svc, faults)
            }
            Err(e) => return Err(ServeError::Checkpoint(e)),
        };
        let mut report = RecoveryReport {
            checkpoint_events: service.events_applied,
            checkpoint_faults,
            wal_events_replayed: 0,
            wal_records: 0,
            torn_truncated: false,
        };
        let replayed = wal_replay(&wal_dir, stream_id, service.events_applied, &service.entities)?;
        match replayed.fault {
            Some(fault) if fault.is_torn_tail() => {
                truncate_torn(&fault)?;
                report.torn_truncated = true;
            }
            Some(fault) => return Err(ServeError::WalCorrupt(fault)),
            None => {}
        }
        report.wal_records = replayed.records;
        report.wal_events_replayed = replayed.events.len() as u64;
        if !replayed.events.is_empty() {
            // The WAL is not yet attached, so replay does not re-append.
            service.apply_events(&replayed.events)?;
        }
        debug_assert_eq!(service.events_applied, replayed.next_seq.max(report.checkpoint_events));
        let writer = WalWriter::open(wal_dir, stream_id, wal_opts, service.events_applied)?;
        service.wal = Some(writer);
        Ok((service, report))
    }

    /// The entity tables the service was started with.
    pub fn entities(&self) -> &Arc<Dataset> {
        &self.entities
    }

    /// All completed rows applied so far, in applied order.
    pub fn rows(&self) -> &InstanceColumns {
        &self.rows
    }

    /// Total events applied.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Current published version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current event counters.
    pub fn gauges(&self) -> Gauges {
        self.gauges
    }

    /// A reader handle; clone freely across threads.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle { shared: Arc::clone(&self.shared) }
    }

    /// The WAL writer's counters, when the log is enabled.
    pub fn wal_stats(&self) -> Option<crowd_ingest::WalStats> {
        self.wal.as_ref().map(WalWriter::stats)
    }

    /// Forces any batched-but-unsynced WAL appends to stable storage
    /// (call on clean shutdown when `fsync_every > 1`). No-op without a
    /// WAL.
    pub fn wal_sync(&mut self) -> Result<(), ServeError> {
        if let Some(wal) = &mut self.wal {
            wal.sync()?;
        }
        Ok(())
    }

    /// Records batches dropped at admission (the apply loop calls this
    /// when its queue sheds); surfaced in the next published snapshot's
    /// gauges.
    pub fn note_shed(&mut self, batches: u64, events: u64) {
        self.gauges.shed_batches += batches;
        self.gauges.shed_events += events;
    }

    /// Sets the staleness gauge: events admitted but not yet applied at
    /// the moment the *next* snapshot publishes.
    pub fn set_lag(&mut self, events: u64) {
        self.gauges.lag_events = events;
    }

    /// Applies one batch of events (in the given order) and publishes the
    /// resulting snapshot. Empty batches publish too — a heartbeat
    /// version bump with unchanged aggregates. With a WAL attached the
    /// batch is appended durably *first*: a failure to log admits
    /// nothing, and a crash after the append replays the batch on
    /// restart.
    pub fn apply_events(
        &mut self,
        events: &[MarketEvent],
    ) -> Result<Arc<ServiceSnapshot>, ServeError> {
        if let Some(wal) = &mut self.wal {
            wal.append(events)?;
            let stats = wal.stats();
            self.gauges.wal_appends = stats.appends;
            self.gauges.wal_fsyncs = stats.fsyncs;
        }
        let before = self.events_applied;
        let mut delta = InstanceColumns::default();
        for ev in events {
            match ev {
                MarketEvent::Posted { .. } => self.gauges.posted += 1,
                MarketEvent::PickedUp { .. } => self.gauges.picked_up += 1,
                MarketEvent::Completed { row, .. } => {
                    self.gauges.completed += 1;
                    delta.push(row.clone());
                }
            }
        }
        self.rows.extend_from(&delta, 0..delta.len());
        let view_snap = self.view.apply(&delta);
        self.events_applied += events.len() as u64;
        self.version += 1;
        let snap = Arc::new(ServiceSnapshot {
            version: self.version,
            events_applied: self.events_applied,
            gauges: self.gauges,
            view: view_snap,
        });
        self.shared.publish(Arc::clone(&snap));
        if let Some((store, every)) = &self.checkpoints {
            if self.events_applied / every > before / every {
                let state = self.checkpoint_state();
                store.write(&state).map_err(ServeError::Checkpoint)?;
                // The checkpoint now covers everything applied; WAL
                // segments wholly before it are dead weight.
                if let Some(wal) = &mut self.wal {
                    wal.retire_through(self.events_applied)?;
                }
            }
        }
        Ok(snap)
    }

    /// Loads an event stream through the resilient ingest path and
    /// applies it in batches of `batch_events` events (canonical order).
    pub fn ingest_stream(
        &mut self,
        reader: &mut dyn Read,
        opts: &EventOptions,
        batch_events: usize,
    ) -> Result<IngestSummary, ServeError> {
        assert!(batch_events > 0, "batch size must be positive");
        let retries_before =
            self.checkpoints.as_ref().map_or(0, |(store, _)| store.retries_spent());
        let log = load_events(reader, &self.entities, opts)?;
        let mut batches = 0u64;
        let mut applied = 0u64;
        for chunk in log.events.chunks(batch_events) {
            self.apply_events(chunk)?;
            batches += 1;
            applied += chunk.len() as u64;
        }
        let retries_after = self.checkpoints.as_ref().map_or(0, |(store, _)| store.retries_spent());
        Ok(IngestSummary {
            report: log.report,
            batches,
            events_applied: applied,
            version: self.version,
            checkpoint_retries: retries_after - retries_before,
        })
    }

    /// Writes a checkpoint now (regardless of cadence). Panics if the
    /// service has no checkpoint store configured.
    pub fn checkpoint_now(&self) -> Result<std::path::PathBuf, ServeError> {
        let (store, _) =
            self.checkpoints.as_ref().expect("checkpoint_now requires with_checkpoints/restore");
        store.write(&self.checkpoint_state()).map_err(ServeError::Checkpoint)
    }

    fn checkpoint_state(&self) -> CheckpointState {
        let (store, _) = self.checkpoints.as_ref().expect("checked by callers");
        let mut dataset = entities_only(&self.entities);
        dataset.instances = self.rows.clone_range(0..self.rows.len());
        CheckpointState {
            stream_id: store.stream_id(),
            events_applied: self.events_applied,
            version: self.version,
            posted: self.gauges.posted,
            picked_up: self.gauges.picked_up,
            dataset,
        }
    }

    /// The cold batch oracle: a fresh [`Study`] over the entities plus
    /// every row applied so far — what the published view must equal.
    pub fn batch_study(&self) -> Study {
        let mut ds = entities_only(&self.entities);
        ds.instances = self.rows.clone_range(0..self.rows.len());
        Study::new(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::EventFeed;
    use crowd_sim::SimConfig;

    #[test]
    fn applying_the_full_feed_matches_the_batch_study() {
        let feed = EventFeed::from_config(&SimConfig::tiny(51));
        let mut svc = LiveService::new(Arc::clone(&feed.entities));
        let summary = svc
            .ingest_stream(&mut feed.to_csv().as_bytes(), &EventOptions::default(), 2000)
            .expect("clean feed");
        assert_eq!(summary.report.verified, Some(true));
        assert_eq!(svc.gauges().completed as usize, feed.n_completed());
        assert_eq!(svc.gauges().posted as usize, feed.entities.batches.len());

        let snap = svc.handle().snapshot();
        assert_eq!(snap.version, summary.version);
        assert_eq!(snap.view.rows, feed.n_completed());
        let diffs = crowd_testkit::compare_fused(
            &snap.view.fused,
            svc.batch_study().fused(),
            crowd_testkit::differential::FloatMode::OrderTolerant,
        );
        assert!(diffs.is_empty(), "live view diverged from batch study:\n{}", diffs.join("\n"));
    }

    #[test]
    fn empty_batches_publish_heartbeat_versions() {
        let feed = EventFeed::from_config(&SimConfig::tiny(52));
        let mut svc = LiveService::new(Arc::clone(&feed.entities));
        let v1 = svc.apply_events(&[]).unwrap();
        let v2 = svc.apply_events(&[]).unwrap();
        assert_eq!((v1.version, v2.version), (1, 2));
        assert_eq!(v2.view.fused.n_instances(), 0);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("crowd-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn wait_for_version_blocks_until_publish_and_times_out_honestly() {
        let feed = EventFeed::from_config(&SimConfig::tiny(60));
        let mut svc = LiveService::new(Arc::clone(&feed.entities));
        let handle = svc.handle();

        // Already-published versions return immediately.
        svc.apply_events(&[]).unwrap();
        let snap = handle.wait_for_version(1, Duration::ZERO).expect("v1 is out");
        assert!(snap.version >= 1);

        // A future version times out without a publish...
        assert!(handle.wait_for_version(2, Duration::from_millis(40)).is_none());

        // ...and a blocked reader wakes as soon as it lands.
        let reader = {
            let handle = handle.clone();
            std::thread::spawn(move || handle.wait_for_version(2, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(30));
        svc.apply_events(&[]).unwrap();
        let snap = reader.join().unwrap().expect("publish must wake the waiter");
        assert!(snap.version >= 2);
    }

    #[test]
    fn wal_restore_after_an_uncheckpointed_tail_is_bit_identical() {
        let dir = temp_dir("wal-restore");
        let feed = EventFeed::from_config(&SimConfig::tiny(61));
        let store = CheckpointStore::new(dir.join("ckpt"), 61);
        let mut svc = LiveService::new(Arc::clone(&feed.entities))
            .with_checkpoints(store.clone(), 500)
            .with_wal(dir.join("wal"), 61, crowd_ingest::WalOptions::default())
            .unwrap();
        let log = crowd_ingest::load_events_str(&feed.to_csv(), &feed.entities).unwrap();
        for chunk in log.events.chunks(230) {
            svc.apply_events(chunk).unwrap();
        }
        let live_snap = svc.handle().snapshot();
        let (live_gauges, live_applied) = (svc.gauges(), svc.events_applied());
        drop(svc); // Simulated crash: no final checkpoint, WAL holds the tail.

        let (restored, report) = LiveService::restore_durable(
            store,
            500,
            Arc::clone(&feed.entities),
            dir.join("wal"),
            crowd_ingest::WalOptions::default(),
        )
        .unwrap();
        assert!(report.checkpoint_events > 0, "cadence must have checkpointed");
        assert!(report.wal_events_replayed > 0, "the tail lived only in the WAL");
        assert!(!report.torn_truncated);
        assert_eq!(restored.events_applied(), live_applied, "zero accepted-event loss");
        let g = restored.gauges();
        assert_eq!(
            (g.posted, g.picked_up, g.completed),
            (live_gauges.posted, live_gauges.picked_up, live_gauges.completed)
        );
        assert_eq!(
            restored.handle().snapshot().view.fused,
            live_snap.view.fused,
            "recovered fused state must be bit-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_truncated_and_the_gap_is_replayable() {
        let dir = temp_dir("wal-torn");
        let feed = EventFeed::from_config(&SimConfig::tiny(62));
        let store = CheckpointStore::new(dir.join("ckpt"), 62);
        let mut svc = LiveService::new(Arc::clone(&feed.entities))
            .with_wal(dir.join("wal"), 62, crowd_ingest::WalOptions::default())
            .unwrap();
        let log = crowd_ingest::load_events_str(&feed.to_csv(), &feed.entities).unwrap();
        for chunk in log.events.chunks(100) {
            svc.apply_events(chunk).unwrap();
        }
        drop(svc);
        // Tear the newest segment mid-record, as a crash mid-append would.
        let files = crowd_ingest::wal_segment_files(&dir.join("wal"), 62).unwrap();
        let (_, last) = files.last().expect("appends created segments");
        let bytes = std::fs::read(last).unwrap();
        std::fs::write(last, &bytes[..bytes.len() - 7]).unwrap();

        let (mut restored, report) = LiveService::restore_durable(
            store,
            500,
            Arc::clone(&feed.entities),
            dir.join("wal"),
            crowd_ingest::WalOptions::default(),
        )
        .unwrap();
        assert!(report.torn_truncated, "the torn tail must be truncated");
        let recovered = restored.events_applied();
        assert!(recovered < log.events.len() as u64, "the torn batch is lost");
        // Re-feeding the missing tail converges to the uncrashed state.
        let tail: Vec<_> = log.events[recovered as usize..].to_vec();
        restored.apply_events(&tail).unwrap();
        let mut oracle = LiveService::new(Arc::clone(&feed.entities));
        oracle.apply_events(&log.events).unwrap();
        assert_eq!(restored.handle().snapshot().view.fused, oracle.handle().snapshot().view.fused);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_wal_refuses_recovery_with_a_typed_fault() {
        let dir = temp_dir("wal-flip");
        let feed = EventFeed::from_config(&SimConfig::tiny(63));
        let store = CheckpointStore::new(dir.join("ckpt"), 63);
        let mut svc = LiveService::new(Arc::clone(&feed.entities))
            .with_wal(dir.join("wal"), 63, crowd_ingest::WalOptions::default())
            .unwrap();
        let log = crowd_ingest::load_events_str(&feed.to_csv(), &feed.entities).unwrap();
        for chunk in log.events.chunks(100) {
            svc.apply_events(chunk).unwrap();
        }
        drop(svc);
        // Flip one mid-log byte: all bytes present, checksum broken.
        let files = crowd_ingest::wal_segment_files(&dir.join("wal"), 63).unwrap();
        let (_, first) = &files[0];
        let mut bytes = std::fs::read(first).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(first, &bytes).unwrap();

        match LiveService::restore_durable(
            store,
            500,
            Arc::clone(&feed.entities),
            dir.join("wal"),
            crowd_ingest::WalOptions::default(),
        ) {
            Err(ServeError::WalCorrupt(_)) => {}
            Err(other) => panic!("expected WalCorrupt, got {other}"),
            Ok(_) => panic!("bit-flipped WAL must refuse recovery"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_cadence_restores_to_the_same_state() {
        let dir = std::env::temp_dir().join(format!("crowd-serve-svc-{}", std::process::id()));
        let feed = EventFeed::from_config(&SimConfig::tiny(53));
        let store = CheckpointStore::new(&dir, 53);
        let mut svc =
            LiveService::new(Arc::clone(&feed.entities)).with_checkpoints(store.clone(), 500);
        let log = crowd_ingest::load_events_str(&feed.to_csv(), &feed.entities).unwrap();
        for chunk in log.events.chunks(250) {
            svc.apply_events(chunk).unwrap();
        }
        assert!(!store.list().is_empty(), "cadence must have produced checkpoints");

        let (restored, faults) = LiveService::restore(store, 500).unwrap();
        assert!(faults.is_empty());
        // The newest checkpoint may trail the live service by < cadence
        // events; replay the tail to catch up.
        let tail = &log.events[restored.events_applied() as usize..];
        let mut restored = restored;
        restored.apply_events(tail).unwrap();
        assert_eq!(restored.gauges(), svc.gauges());
        assert_eq!(restored.handle().snapshot().view.fused, svc.handle().snapshot().view.fused);
        std::fs::remove_dir_all(&dir).ok();
    }
}
