//! The service's read API: shaping one published snapshot into answers.
//!
//! Every function here takes an immutable [`Fused`] (from a
//! [`ViewSnapshot`](crowd_analytics::ViewSnapshot)) and computes pure
//! derived results — no locks, no service state. A reader thread grabs a
//! snapshot once and runs any number of queries against that consistent
//! version.

use std::sync::Arc;

use crowd_analytics::fused::Fused;
use crowd_core::dataset::Dataset;
use crowd_stats::descriptive::{median_inplace, percentile};

/// Weekly task throughput (paper Fig. 1's live counterpart).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeekThroughput {
    /// Week offset from the service's first week.
    pub week: usize,
    /// Instances issued (batch-creation week).
    pub issued: u64,
    /// Instances completed (submission week).
    pub completed: u64,
}

/// Issued/completed counts per week.
pub fn throughput(f: &Fused) -> Vec<WeekThroughput> {
    (0..f.n_weeks)
        .map(|week| WeekThroughput {
            week,
            issued: f.issued.get(week).copied().unwrap_or(0),
            completed: f.completed.get(week).copied().unwrap_or(0),
        })
        .collect()
}

/// Distinct workers active per week (paper Fig. 26's live counterpart).
pub fn availability(f: &Fused) -> Vec<u64> {
    let mut active = vec![0u64; f.n_weeks];
    for agg in f.workers.values() {
        for &week in agg.weeks.keys() {
            if let Some(slot) = active.get_mut(week) {
                *slot += 1;
            }
        }
    }
    active
}

/// One labor source's share of the applied work.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceLoad {
    /// Raw source id.
    pub source: u32,
    /// Source name (from the entity tables).
    pub name: String,
    /// Instances performed by the source's workers.
    pub n_tasks: u64,
    /// Fraction of all applied instances.
    pub share: f64,
    /// Mean trust across the source's instances.
    pub mean_trust: f64,
}

/// Per-source load distribution, descending by task count.
pub fn source_load(f: &Fused, entities: &Dataset) -> Vec<SourceLoad> {
    let total: u64 = f.sources.values().map(|s| s.n_tasks).sum();
    let mut out: Vec<SourceLoad> = f
        .sources
        .iter()
        .map(|(&id, agg)| SourceLoad {
            source: id,
            name: entities.sources.get(id as usize).map(|s| s.name.clone()).unwrap_or_default(),
            n_tasks: agg.n_tasks,
            share: if total > 0 { agg.n_tasks as f64 / total as f64 } else { 0.0 },
            mean_trust: if agg.n_tasks > 0 { agg.trust_sum / agg.n_tasks as f64 } else { 0.0 },
        })
        .collect();
    out.sort_by(|a, b| b.n_tasks.cmp(&a.n_tasks).then(a.source.cmp(&b.source)));
    out
}

/// Empirical CDF over per-worker total work hours: `(hours, fraction of
/// workers with total ≤ hours)`, one point per worker.
pub fn worker_work_cdf(f: &Fused) -> Vec<(f64, f64)> {
    let mut hours: Vec<f64> = f.workers.values().map(|w| w.work_secs / 3600.0).collect();
    hours.sort_by(f64::total_cmp);
    let n = hours.len() as f64;
    hours.iter().enumerate().map(|(i, &h)| (h, (i + 1) as f64 / n)).collect()
}

/// Median of per-worker mean trust.
pub fn median_worker_trust(f: &Fused) -> Option<f64> {
    let mut means: Vec<f64> =
        f.workers.values().filter(|w| w.tasks > 0).map(|w| w.trust_sum / w.tasks as f64).collect();
    median_inplace(&mut means)
}

/// Median instances per worker.
pub fn median_worker_tasks(f: &Fused) -> Option<f64> {
    let mut tasks: Vec<f64> = f.workers.values().map(|w| w.tasks as f64).collect();
    median_inplace(&mut tasks)
}

/// The composite dashboard a reader renders per snapshot — also the unit
/// of work the `serve` benchmark times per query.
#[derive(Debug, Clone, PartialEq)]
pub struct Dashboard {
    /// Total instance rows covered.
    pub n_instances: u64,
    /// Distinct active workers.
    pub n_workers: usize,
    /// Weekly throughput series.
    pub throughput: Vec<WeekThroughput>,
    /// Active workers per week.
    pub availability: Vec<u64>,
    /// Per-source load, descending.
    pub sources: Vec<SourceLoad>,
    /// Median per-worker mean trust.
    pub median_trust: Option<f64>,
    /// Median instances per worker.
    pub median_tasks: Option<f64>,
    /// 90th percentile of per-worker work hours.
    pub p90_work_hours: Option<f64>,
}

/// Runs every query against one consistent snapshot.
pub fn dashboard(f: &Fused, entities: &Arc<Dataset>) -> Dashboard {
    let work_hours: Vec<f64> = f.workers.values().map(|w| w.work_secs / 3600.0).collect();
    Dashboard {
        n_instances: f.n_instances(),
        n_workers: f.workers.len(),
        throughput: throughput(f),
        availability: availability(f),
        sources: source_load(f, entities),
        median_trust: median_worker_trust(f),
        median_tasks: median_worker_tasks(f),
        p90_work_hours: percentile(&work_hours, 90.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::EventFeed;
    use crate::service::LiveService;
    use crowd_ingest::events::EventOptions;
    use crowd_sim::SimConfig;

    #[test]
    fn dashboard_is_consistent_with_the_snapshot() {
        let feed = EventFeed::from_config(&SimConfig::tiny(61));
        let mut svc = LiveService::new(Arc::clone(&feed.entities));
        svc.ingest_stream(&mut feed.to_csv().as_bytes(), &EventOptions::default(), 5000)
            .expect("clean feed");
        let snap = svc.handle().snapshot();
        let dash = dashboard(&snap.view.fused, svc.entities());

        assert_eq!(dash.n_instances, snap.view.rows as u64);
        let issued: u64 = dash.throughput.iter().map(|w| w.issued).sum();
        let completed: u64 = dash.throughput.iter().map(|w| w.completed).sum();
        assert_eq!(issued, dash.n_instances);
        assert_eq!(completed, dash.n_instances);
        let share: f64 = dash.sources.iter().map(|s| s.share).sum();
        assert!((share - 1.0).abs() < 1e-9, "shares must sum to 1, got {share}");
        assert!(dash.availability.iter().all(|&a| a <= dash.n_workers as u64));
        assert!(dash.sources.windows(2).all(|w| w[0].n_tasks >= w[1].n_tasks));
    }

    #[test]
    fn empty_snapshot_answers_empty_queries() {
        let feed = EventFeed::from_config(&SimConfig::tiny(62));
        let svc = LiveService::new(Arc::clone(&feed.entities));
        let snap = svc.handle().snapshot();
        let dash = dashboard(&snap.view.fused, svc.entities());
        assert_eq!(dash.n_instances, 0);
        assert_eq!(dash.n_workers, 0);
        assert_eq!(dash.median_trust, None);
        assert!(worker_work_cdf(&snap.view.fused).is_empty());
    }
}
