//! # crowd-serve
//!
//! A live incremental analytics service over the marketplace event
//! stream. Where the rest of the workspace answers "what did the
//! marketplace look like?" from a finished dataset, this crate answers it
//! *while the marketplace is running*:
//!
//! - [`replay`] turns a simulated dataset into the timestamped
//!   [`MarketEvent`](crowd_ingest::MarketEvent) feed a live platform
//!   would have emitted, serialized through the hardened `crowd-ingest`
//!   wire format (retry, quarantine, canonical reordering, digest
//!   verification);
//! - [`service`] maintains a [`LiveService`]: entity tables plus a
//!   delta-applied [`FusedView`](crowd_analytics::FusedView) that
//!   publishes immutable, versioned snapshots — concurrent readers query
//!   a consistent state while the writer keeps applying event batches;
//! - [`query`] shapes a published snapshot into the service's read API:
//!   throughput series, worker-availability curves, per-source load, and
//!   work-time CDFs/medians;
//! - [`checkpoint`] persists the service state through the
//!   `crowd-snapshot` binary format and restores after a crash, falling
//!   back past torn files with a typed fault list.
//!
//! The headline guarantee is *incremental = batch*: after every applied
//! delta the published fused aggregates equal what a cold batch
//! [`Study`](crowd_analytics::Study) computes over the same event prefix
//! — bit-identical counts and medians, order-exact float sums. The
//! `crowd-testkit` differential harness and the root `serve_*`
//! integration suites enforce this at every batch boundary, under
//! concurrency, and across kill/restore.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod query;
pub mod queue;
pub mod replay;
pub mod service;

pub use checkpoint::{CheckpointError, CheckpointFault, CheckpointState, CheckpointStore};
pub use query::{Dashboard, SourceLoad, WeekThroughput};
pub use queue::{Admission, ApplyQueue, QueueStats, ShedPolicy};
pub use replay::{entities_only, EventFeed};
pub use service::{
    Gauges, IngestSummary, LiveService, RecoveryReport, ServeError, ServiceHandle, ServiceSnapshot,
};
