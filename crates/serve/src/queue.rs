//! Bounded admission queue between event producers and the single
//! writer, with an explicit overload policy.
//!
//! The live service is single-writer by design; when producers outpace
//! `apply_events`, *something* has to give. This queue makes that
//! something a named, counted policy instead of unbounded memory growth:
//!
//! - [`ShedPolicy::Block`] — lossless backpressure: `push` blocks until
//!   the writer drains a slot. Producers slow to the apply rate.
//! - [`ShedPolicy::ShedOldest`] — bounded loss: a full queue drops its
//!   *oldest* queued batch to admit the new one, keeping the served view
//!   fresh at the cost of a gap. Shed batches are counted and are **not
//!   accepted** — they never reach the WAL, so the durability guarantee
//!   ("every accepted event survives a crash") is unaffected.
//! - [`ShedPolicy::DegradeStale`] — lossless, unbounded admission: the
//!   queue grows past its cap and the served snapshot goes stale; the
//!   writer catches up with coalesced applies ([`ApplyQueue::pop_all`])
//!   and the lag is surfaced as a staleness gauge.
//!
//! All counters live in [`QueueStats`]; the serve binary folds them into
//! the published [`Gauges`](crate::Gauges).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crowd_ingest::MarketEvent;

/// What to do when producers outpace the writer and the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Block the producer until the writer frees a slot (lossless).
    #[default]
    Block,
    /// Drop the oldest queued batch to admit the new one (bounded loss,
    /// freshest-wins; shed events are never accepted).
    ShedOldest,
    /// Admit unboundedly and let the served snapshot go stale; the lag is
    /// observable as a staleness gauge.
    DegradeStale,
}

impl ShedPolicy {
    /// Parses the `--shed-policy` CLI spelling.
    pub fn parse(s: &str) -> Option<ShedPolicy> {
        match s {
            "block" => Some(ShedPolicy::Block),
            "shed-oldest" => Some(ShedPolicy::ShedOldest),
            "degrade-stale" => Some(ShedPolicy::DegradeStale),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            ShedPolicy::Block => "block",
            ShedPolicy::ShedOldest => "shed-oldest",
            ShedPolicy::DegradeStale => "degrade-stale",
        }
    }
}

/// Outcome of one [`ApplyQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The batch was queued (possibly after blocking).
    Admitted,
    /// The batch was queued, and the *oldest* queued batch was dropped to
    /// make room (`ShedPolicy::ShedOldest` on a full queue).
    Shed {
        /// Events inside the dropped batch.
        dropped_events: u64,
    },
    /// The queue was closed; the batch was refused.
    Closed,
}

/// Monotone queue counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Batches admitted.
    pub admitted_batches: u64,
    /// Events inside admitted batches.
    pub admitted_events: u64,
    /// Batches dropped by `ShedOldest`.
    pub shed_batches: u64,
    /// Events inside dropped batches.
    pub shed_events: u64,
    /// Pushes that had to block (`Block` policy on a full queue).
    pub blocked_pushes: u64,
    /// Deepest the queue has been, in batches.
    pub peak_depth: u64,
}

struct Inner {
    queue: VecDeque<Vec<MarketEvent>>,
    pending_events: u64,
    closed: bool,
    stats: QueueStats,
}

/// A bounded multi-producer / single-consumer batch queue with a
/// [`ShedPolicy`]. See the module docs for the policy semantics.
pub struct ApplyQueue {
    cap: usize,
    policy: ShedPolicy,
    inner: Mutex<Inner>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl ApplyQueue {
    /// A queue holding at most `cap` batches (`DegradeStale` treats the
    /// cap as the staleness threshold rather than a hard bound).
    pub fn new(cap: usize, policy: ShedPolicy) -> ApplyQueue {
        assert!(cap > 0, "queue capacity must be positive");
        ApplyQueue {
            cap,
            policy,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                pending_events: 0,
                closed: false,
                stats: QueueStats::default(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// The configured capacity in batches.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The configured policy.
    pub fn policy(&self) -> ShedPolicy {
        self.policy
    }

    /// Offers one batch under the queue's policy. Only `Block` can block;
    /// the other policies return immediately.
    pub fn push(&self, batch: Vec<MarketEvent>) -> Admission {
        let n = batch.len() as u64;
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Admission::Closed;
        }
        let mut dropped = None;
        match self.policy {
            ShedPolicy::Block => {
                if inner.queue.len() >= self.cap {
                    inner.stats.blocked_pushes += 1;
                    while inner.queue.len() >= self.cap && !inner.closed {
                        inner = self.not_full.wait(inner).expect("queue lock poisoned");
                    }
                    if inner.closed {
                        return Admission::Closed;
                    }
                }
            }
            ShedPolicy::ShedOldest => {
                if inner.queue.len() >= self.cap {
                    let old = inner.queue.pop_front().expect("full queue has a front");
                    inner.pending_events -= old.len() as u64;
                    inner.stats.shed_batches += 1;
                    inner.stats.shed_events += old.len() as u64;
                    dropped = Some(old.len() as u64);
                }
            }
            ShedPolicy::DegradeStale => {}
        }
        inner.queue.push_back(batch);
        inner.pending_events += n;
        inner.stats.admitted_batches += 1;
        inner.stats.admitted_events += n;
        inner.stats.peak_depth = inner.stats.peak_depth.max(inner.queue.len() as u64);
        drop(inner);
        self.not_empty.notify_one();
        match dropped {
            Some(dropped_events) => Admission::Shed { dropped_events },
            None => Admission::Admitted,
        }
    }

    /// Takes the oldest queued batch, waiting up to `timeout` for one to
    /// arrive. `None` means timeout, or closed-and-drained.
    pub fn pop(&self, timeout: Duration) -> Option<Vec<MarketEvent>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(batch) = inner.queue.pop_front() {
                inner.pending_events -= batch.len() as u64;
                drop(inner);
                self.not_full.notify_one();
                return Some(batch);
            }
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timed_out) =
                self.not_empty.wait_timeout(inner, deadline - now).expect("queue lock poisoned");
            inner = guard;
            if timed_out.timed_out() && inner.queue.is_empty() {
                return None;
            }
        }
    }

    /// Takes *everything* queued right now, concatenated in order — the
    /// coalesced catch-up apply for `DegradeStale`. Returns the events
    /// plus how many batches were coalesced; `None` when nothing arrives
    /// within `timeout`.
    pub fn pop_all(&self, timeout: Duration) -> Option<(Vec<MarketEvent>, u64)> {
        let first = self.pop(timeout)?;
        let mut events = first;
        let mut batches = 1u64;
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        while let Some(batch) = inner.queue.pop_front() {
            inner.pending_events -= batch.len() as u64;
            events.extend(batch);
            batches += 1;
        }
        drop(inner);
        self.not_full.notify_all();
        Some((events, batches))
    }

    /// Batches and events currently queued (admitted, not yet applied) —
    /// the staleness reading under `DegradeStale`.
    pub fn pending(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("queue lock poisoned");
        (inner.queue.len() as u64, inner.pending_events)
    }

    /// Closes the queue: future pushes are refused, waiting producers and
    /// the consumer wake. Queued batches stay poppable (drain-then-exit).
    pub fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Counters so far.
    pub fn stats(&self) -> QueueStats {
        self.inner.lock().expect("queue lock poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn batch(n: usize) -> Vec<MarketEvent> {
        // Queue semantics don't inspect events; length-n posted markers
        // are enough.
        use crowd_core::id::BatchId;
        (0..n)
            .map(|i| MarketEvent::Posted { seq: i as u64, batch: BatchId::from_usize(i) })
            .collect()
    }

    #[test]
    fn block_policy_blocks_until_the_writer_drains() {
        let q = Arc::new(ApplyQueue::new(2, ShedPolicy::Block));
        assert_eq!(q.push(batch(1)), Admission::Admitted);
        assert_eq!(q.push(batch(1)), Admission::Admitted);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(batch(3)))
        };
        // The producer must be parked, not shedding.
        std::thread::sleep(Duration::from_millis(50));
        assert!(!producer.is_finished(), "full queue must block the producer");
        assert_eq!(q.pop(Duration::from_secs(1)).unwrap().len(), 1);
        assert_eq!(producer.join().unwrap(), Admission::Admitted);
        let stats = q.stats();
        assert_eq!(stats.blocked_pushes, 1);
        assert_eq!(stats.shed_batches, 0, "block policy never sheds");
        assert_eq!(stats.admitted_events, 5);
    }

    #[test]
    fn shed_oldest_drops_the_oldest_and_keeps_the_freshest() {
        let q = ApplyQueue::new(2, ShedPolicy::ShedOldest);
        q.push(batch(1));
        q.push(batch(2));
        assert_eq!(q.push(batch(3)), Admission::Shed { dropped_events: 1 });
        let stats = q.stats();
        assert_eq!((stats.shed_batches, stats.shed_events), (1, 1));
        // The survivors are the two newest, in order.
        assert_eq!(q.pop(Duration::ZERO).unwrap().len(), 2);
        assert_eq!(q.pop(Duration::ZERO).unwrap().len(), 3);
        assert!(q.pop(Duration::ZERO).is_none());
    }

    #[test]
    fn degrade_stale_admits_past_the_cap_and_reports_lag() {
        let q = ApplyQueue::new(2, ShedPolicy::DegradeStale);
        for _ in 0..5 {
            assert_eq!(q.push(batch(2)), Admission::Admitted);
        }
        assert_eq!(q.pending(), (5, 10), "lag is visible, nothing shed");
        assert_eq!(q.stats().peak_depth, 5);
        // The coalesced catch-up takes everything in order.
        let (events, batches) = q.pop_all(Duration::ZERO).unwrap();
        assert_eq!((events.len(), batches), (10, 5));
        assert_eq!(q.pending(), (0, 0));
    }

    #[test]
    fn close_wakes_blocked_producers_and_drains_cleanly() {
        let q = Arc::new(ApplyQueue::new(1, ShedPolicy::Block));
        q.push(batch(4));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(batch(1)))
        };
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(producer.join().unwrap(), Admission::Closed);
        assert_eq!(q.push(batch(1)), Admission::Closed, "closed queue refuses");
        // The queued batch is still poppable; then the drain ends.
        assert_eq!(q.pop(Duration::ZERO).unwrap().len(), 4);
        assert!(q.pop(Duration::from_secs(1)).is_none(), "closed + empty ends the drain");
    }

    #[test]
    fn pop_times_out_on_an_idle_queue() {
        let q = ApplyQueue::new(4, ShedPolicy::Block);
        let start = Instant::now();
        assert!(q.pop(Duration::from_millis(30)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }
}
