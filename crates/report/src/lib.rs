//! # crowd-report
//!
//! Terminal rendering for the study's figures and tables: multi-series
//! line plots (optionally log-scaled), horizontal bar charts, stacked
//! percentage bars, aligned text tables, and CSV series output for
//! external plotting. This replaces the paper's gnuplot figures: each
//! `repro` figure prints an ASCII rendering *and* the underlying series.
//!
//! ```
//! use crowd_report::{LinePlot, Series};
//!
//! let plot = LinePlot::new("Fig X: demo")
//!     .with_size(40, 10)
//!     .add(Series::new("squares", (0..10).map(|i| (i as f64, (i * i) as f64)).collect()));
//! let text = plot.render();
//! assert!(text.contains("Fig X: demo"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bars;
pub mod csvout;
pub mod lineplot;
pub mod table;

pub use bars::{BarChart, StackedBars};
pub use csvout::series_to_csv;
pub use lineplot::{LinePlot, Series};
pub use table::TextTable;
