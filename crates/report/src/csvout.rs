//! CSV output of plot series, so every figure's underlying data can be
//! re-plotted with external tooling.

use crate::lineplot::Series;

/// Serializes series to CSV: a shared sorted x column, one column per
/// series (empty cell where a series lacks that x).
pub fn series_to_csv(series: &[Series]) -> String {
    let mut xs: Vec<f64> = series.iter().flat_map(|s| s.points.iter().map(|&(x, _)| x)).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();

    let mut out = String::from("x");
    for s in series {
        out.push(',');
        // Commas in names would corrupt the CSV; replace conservatively.
        out.push_str(&s.name.replace(',', ";"));
    }
    out.push('\n');

    for &x in &xs {
        out.push_str(&format!("{x}"));
        for s in series {
            out.push(',');
            if let Some(&(_, y)) = s.points.iter().find(|&&(px, _)| px == x) {
                out.push_str(&format!("{y}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_x_column() {
        let a = Series::new("a", vec![(1.0, 10.0), (2.0, 20.0)]);
        let b = Series::new("b", vec![(2.0, 200.0), (3.0, 300.0)]);
        let csv = series_to_csv(&[a, b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,200");
        assert_eq!(lines[3], "3,,300");
    }

    #[test]
    fn commas_in_names_sanitized() {
        let s = Series::new("a,b", vec![(1.0, 1.0)]);
        let csv = series_to_csv(&[s]);
        assert!(csv.starts_with("x,a;b\n"));
    }

    #[test]
    fn empty_series_list() {
        assert_eq!(series_to_csv(&[]), "x\n");
    }
}
