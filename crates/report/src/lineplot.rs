//! Multi-series ASCII line plots with optional log axes.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// Data points (need not be sorted; the plot sorts by x).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series { name: name.into(), points }
    }
}

/// Marker characters assigned to series in order.
const MARKERS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

/// An ASCII line plot.
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    width: usize,
    height: usize,
    x_log: bool,
    y_log: bool,
    series: Vec<Series>,
    x_label: String,
    y_label: String,
}

impl LinePlot {
    /// Creates an empty plot.
    pub fn new(title: impl Into<String>) -> LinePlot {
        LinePlot {
            title: title.into(),
            width: 72,
            height: 16,
            x_log: false,
            y_log: false,
            series: Vec::new(),
            x_label: String::new(),
            y_label: String::new(),
        }
    }

    /// Sets the grid size in characters (builder style).
    #[must_use]
    pub fn with_size(mut self, width: usize, height: usize) -> LinePlot {
        self.width = width.max(8);
        self.height = height.max(4);
        self
    }

    /// Log-scales the x axis (builder style). Non-positive x are dropped.
    #[must_use]
    pub fn log_x(mut self) -> LinePlot {
        self.x_log = true;
        self
    }

    /// Log-scales the y axis (builder style). Non-positive y are dropped.
    #[must_use]
    pub fn log_y(mut self) -> LinePlot {
        self.y_log = true;
        self
    }

    /// Sets axis labels (builder style).
    #[must_use]
    pub fn with_labels(mut self, x: impl Into<String>, y: impl Into<String>) -> LinePlot {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Adds a series (builder style).
    #[must_use]
    #[allow(clippy::should_implement_trait)] // builder chaining, not arithmetic
    pub fn add(mut self, series: Series) -> LinePlot {
        self.series.push(series);
        self
    }

    fn transform(&self, p: (f64, f64)) -> Option<(f64, f64)> {
        let x = if self.x_log {
            if p.0 <= 0.0 {
                return None;
            }
            p.0.log10()
        } else {
            p.0
        };
        let y = if self.y_log {
            if p.1 <= 0.0 {
                return None;
            }
            p.1.log10()
        } else {
            p.1
        };
        (x.is_finite() && y.is_finite()).then_some((x, y))
    }

    /// Renders the plot to a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');

        let pts: Vec<Vec<(f64, f64)>> = self
            .series
            .iter()
            .map(|s| s.points.iter().filter_map(|&p| self.transform(p)).collect())
            .collect();
        let all: Vec<(f64, f64)> = pts.iter().flatten().copied().collect();
        if all.is_empty() {
            out.push_str("  (no data)\n");
            return out;
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if x1 == x0 {
            x1 = x0 + 1.0;
        }
        if y1 == y0 {
            y1 = y0 + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, series_pts) in pts.iter().enumerate() {
            let marker = MARKERS[si % MARKERS.len()];
            let mut sorted = series_pts.clone();
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            for &(x, y) in &sorted {
                let col = (((x - x0) / (x1 - x0)) * (self.width - 1) as f64).round() as usize;
                let row = (((y - y0) / (y1 - y0)) * (self.height - 1) as f64).round() as usize;
                let r = self.height - 1 - row;
                // Later series overwrite; shared cells show the last marker.
                grid[r][col.min(self.width - 1)] = marker;
            }
        }

        let fmt = |v: f64, log: bool| {
            let raw = if log { 10f64.powf(v) } else { v };
            format_number(raw)
        };
        let y_top = fmt(y1, self.y_log);
        let y_bot = fmt(y0, self.y_log);
        let label_w = y_top.len().max(y_bot.len());
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                format!("{y_top:>label_w$}")
            } else if r == self.height - 1 {
                format!("{y_bot:>label_w$}")
            } else {
                " ".repeat(label_w)
            };
            out.push_str(&label);
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(label_w));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        let x_lo = fmt(x0, self.x_log);
        let x_hi = fmt(x1, self.x_log);
        let pad = self.width.saturating_sub(x_lo.len() + x_hi.len());
        out.push_str(&" ".repeat(label_w + 1));
        out.push_str(&x_lo);
        out.push_str(&" ".repeat(pad));
        out.push_str(&x_hi);
        if !self.x_label.is_empty() {
            out.push_str("  (");
            out.push_str(&self.x_label);
            out.push(')');
        }
        out.push('\n');
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", MARKERS[si % MARKERS.len()], s.name));
        }
        if !self.y_label.is_empty() {
            out.push_str(&format!("  y: {}\n", self.y_label));
        }
        out
    }
}

/// Compact human-readable number formatting (`1.2M`, `34k`, `0.004`).
pub fn format_number(v: f64) -> String {
    let a = v.abs();
    if a >= 1.0e9 {
        format!("{:.1}G", v / 1.0e9)
    } else if a >= 1.0e6 {
        format!("{:.1}M", v / 1.0e6)
    } else if a >= 10_000.0 {
        format!("{:.0}k", v / 1.0e3)
    } else if a >= 100.0 || (v.fract() == 0.0 && a >= 1.0) {
        format!("{v:.0}")
    } else if a >= 0.01 {
        format!("{v:.2}")
    } else if a == 0.0 {
        "0".to_owned()
    } else {
        format!("{v:.1e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_and_legend() {
        let p = LinePlot::new("Fig 4: workers")
            .add(Series::new("workers", vec![(0.0, 1.0), (1.0, 3.0)]));
        let s = p.render();
        assert!(s.contains("Fig 4: workers"));
        assert!(s.contains("* workers"));
    }

    #[test]
    fn empty_plot_says_no_data() {
        let p = LinePlot::new("empty");
        assert!(p.render().contains("(no data)"));
    }

    #[test]
    fn log_axes_drop_nonpositive() {
        let p = LinePlot::new("log")
            .log_x()
            .log_y()
            .add(Series::new("s", vec![(0.0, 5.0), (-1.0, 2.0), (10.0, 100.0), (100.0, 1.0)]));
        let s = p.render();
        assert!(s.contains('*'), "positive points survive");
    }

    #[test]
    fn marker_positions_reflect_values() {
        let p = LinePlot::new("t")
            .with_size(11, 5)
            .add(Series::new("s", vec![(0.0, 0.0), (10.0, 10.0)]));
        let rendered = p.render();
        let lines: Vec<&str> = rendered.lines().collect();
        // Row 1 (top grid row) should have the high point at the right.
        assert!(lines[1].ends_with('*'), "top-right marker: {:?}", lines[1]);
        // Bottom grid row has the low point at the left.
        assert!(lines[5].contains('|'), "{:?}", lines[5]);
        let after_axis = &lines[5][lines[5].find('|').unwrap() + 1..];
        assert!(after_axis.starts_with('*'), "bottom-left marker: {after_axis:?}");
    }

    #[test]
    fn multiple_series_use_distinct_markers() {
        let p = LinePlot::new("two")
            .add(Series::new("a", vec![(0.0, 0.0)]))
            .add(Series::new("b", vec![(1.0, 1.0)]));
        let s = p.render();
        assert!(s.contains("* a"));
        assert!(s.contains("+ b"));
    }

    #[test]
    fn constant_series_does_not_panic() {
        let p = LinePlot::new("flat").add(Series::new("s", vec![(1.0, 5.0), (2.0, 5.0)]));
        let _ = p.render();
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(27_000_000.0), "27.0M");
        assert_eq!(format_number(30_000.0), "30k");
        assert_eq!(format_number(466.0), "466");
        assert_eq!(format_number(0.147), "0.15");
        assert_eq!(format_number(0.0004), "4.0e-4");
        assert_eq!(format_number(0.0), "0");
    }
}
