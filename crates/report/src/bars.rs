//! Horizontal bar charts and stacked percentage bars (for the Fig 9–11
//! label distributions and correlation breakdowns).

use crate::lineplot::format_number;

/// A horizontal bar chart.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    width: usize,
    log: bool,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>) -> BarChart {
        BarChart { title: title.into(), width: 50, log: false, bars: Vec::new() }
    }

    /// Sets the maximum bar width in characters (builder style).
    #[must_use]
    pub fn with_width(mut self, width: usize) -> BarChart {
        self.width = width.max(4);
        self
    }

    /// Log-scales bar lengths (builder style) — for the heavy-tailed
    /// distributions of Figs 6/7/29.
    #[must_use]
    pub fn log_scale(mut self) -> BarChart {
        self.log = true;
        self
    }

    /// Adds one bar (builder style).
    #[must_use]
    pub fn bar(mut self, label: impl Into<String>, value: f64) -> BarChart {
        self.bars.push((label.into(), value));
        self
    }

    /// Adds many bars (builder style).
    #[must_use]
    pub fn bars<I: IntoIterator<Item = (String, f64)>>(mut self, iter: I) -> BarChart {
        self.bars.extend(iter);
        self
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        if self.bars.is_empty() {
            out.push_str("  (no data)\n");
            return out;
        }
        let scale = |v: f64| {
            if self.log {
                if v <= 0.0 {
                    0.0
                } else {
                    (v.log10() + 1.0).max(0.0)
                }
            } else {
                v.max(0.0)
            }
        };
        let max = self.bars.iter().map(|&(_, v)| scale(v)).fold(0.0, f64::max);
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in &self.bars {
            let len = if max > 0.0 {
                ((scale(*value) / max) * self.width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!(
                "  {label:<label_w$} |{} {}\n",
                "█".repeat(len),
                format_number(*value)
            ));
        }
        out
    }
}

/// Stacked percentage bars: each row is broken into named segments summing
/// to 100% (the Figs 10/11 breakdowns).
#[derive(Debug, Clone)]
pub struct StackedBars {
    title: String,
    width: usize,
    segment_names: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

/// Characters used for consecutive stack segments.
const SEGMENT_CHARS: [char; 10] = ['█', '▓', '▒', '░', '#', '=', '+', '-', ':', '.'];

impl StackedBars {
    /// Creates a stacked chart with segment (column) names.
    pub fn new(title: impl Into<String>, segment_names: Vec<String>) -> StackedBars {
        StackedBars { title: title.into(), width: 60, segment_names, rows: Vec::new() }
    }

    /// Adds a row of segment percentages (builder style). Lengths must
    /// match the segment names.
    #[must_use]
    pub fn row(mut self, label: impl Into<String>, percentages: Vec<f64>) -> StackedBars {
        assert_eq!(percentages.len(), self.segment_names.len(), "segment arity");
        self.rows.push((label.into(), percentages));
        self
    }

    /// Renders the chart with a legend.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, percentages) in &self.rows {
            let total: f64 = percentages.iter().sum();
            out.push_str(&format!("  {label:<label_w$} |"));
            if total > 0.0 {
                for (i, &p) in percentages.iter().enumerate() {
                    let chars = ((p / 100.0) * self.width as f64).round() as usize;
                    out.extend(std::iter::repeat_n(SEGMENT_CHARS[i % SEGMENT_CHARS.len()], chars));
                }
            }
            out.push('\n');
        }
        out.push_str("  legend:");
        for (i, name) in self.segment_names.iter().enumerate() {
            out.push_str(&format!(" {}={}", SEGMENT_CHARS[i % SEGMENT_CHARS.len()], name));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_lengths_are_proportional() {
        let c = BarChart::new("t").with_width(10).bar("a", 10.0).bar("b", 5.0);
        let s = c.render();
        let a_len = s.lines().nth(1).unwrap().matches('█').count();
        let b_len = s.lines().nth(2).unwrap().matches('█').count();
        assert_eq!(a_len, 10);
        assert_eq!(b_len, 5);
    }

    #[test]
    fn log_scale_compresses() {
        let c = BarChart::new("t").with_width(30).log_scale().bar("big", 1.0e6).bar("small", 10.0);
        let s = c.render();
        let big = s.lines().nth(1).unwrap().matches('█').count();
        let small = s.lines().nth(2).unwrap().matches('█').count();
        assert!(small > big / 10, "log keeps small bars visible: {small} vs {big}");
    }

    #[test]
    fn empty_chart() {
        assert!(BarChart::new("x").render().contains("(no data)"));
    }

    #[test]
    fn values_printed() {
        let s = BarChart::new("t").bar("tasks", 27_000_000.0).render();
        assert!(s.contains("27.0M"));
    }

    #[test]
    fn stacked_rows_render_segments() {
        let c = StackedBars::new("mix", vec!["x".into(), "y".into()])
            .row("row1", vec![50.0, 50.0])
            .row("row2", vec![100.0, 0.0]);
        let s = c.render();
        assert!(s.contains("legend: █=x ▓=y"));
        let row1 = s.lines().nth(1).unwrap();
        assert!(row1.contains('█') && row1.contains('▓'));
        let row2 = s.lines().nth(2).unwrap();
        assert!(row2.contains('█') && !row2.contains('▓'));
    }

    #[test]
    #[should_panic(expected = "segment arity")]
    fn stacked_arity_checked() {
        let _ = StackedBars::new("t", vec!["a".into()]).row("r", vec![1.0, 2.0]);
    }
}
