//! Aligned text tables (for Tables 1–4 and the §4.9 reports).

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row; must match the header arity.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "cell arity");
        self.rows.push(cells);
    }

    /// Builder-style [`TextTable::add_row`].
    #[must_use]
    pub fn row(mut self, cells: Vec<String>) -> TextTable {
        self.add_row(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with column alignment and a separator under the headers.
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str("  ");
                out.push_str(cell);
                let pad = widths[i].saturating_sub(cell.chars().count());
                out.push_str(&" ".repeat(pad));
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * n;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = TextTable::new("Table 1", &["feature", "bin1", "bin2"])
            .row(vec!["#words".into(), "0.147".into(), "0.108".into()])
            .row(vec!["#items".into(), "0.169".into(), "0.086".into()]);
        let s = t.render();
        assert!(s.starts_with("Table 1\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Columns align: "0.147" and "0.169" start at the same offset.
        let c1 = lines[3].find("0.147").unwrap();
        let c2 = lines[4].find("0.169").unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn unicode_width_handled_by_char_count() {
        let t = TextTable::new("", &["h"]).row(vec!["≤ 466".into()]);
        let _ = t.render();
    }

    #[test]
    #[should_panic(expected = "cell arity")]
    fn arity_checked() {
        let mut t = TextTable::new("", &["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn row_count() {
        let t = TextTable::new("", &["a"]).row(vec!["1".into()]).row(vec!["2".into()]);
        assert_eq!(t.n_rows(), 2);
    }
}
