//! Straight-line oracles for every fused accumulator family.
//!
//! Each function here re-derives one family of aggregates with a plain
//! single-threaded loop over [`Dataset::instances`] in row order — no
//! [`crowd_core::ScanPass`] chunking, no fusion, no merge step, no shared
//! state. The code is deliberately naive: its only job is to be obviously
//! correct so the differential harness ([`crate::differential`]) can hold
//! the optimized engine to it.
//!
//! Family → engine map (all in [`crowd_analytics::fused`] unless noted):
//!
//! | oracle function              | fused field(s)                  | figures |
//! |------------------------------|---------------------------------|---------|
//! | [`batch_task_time_medians`]  | `FusedAcc::batch_median` input  | §4.1    |
//! | [`arrivals`]                 | `issued`/`completed`/`median_pickup` | Figs 1–2 |
//! | [`weekday_load`]             | `weekday`                       | Fig 4   |
//! | [`daily_load`]               | `per_day`                       | Fig 3   |
//! | [`worker_aggregates`]        | `workers` (lifetimes, sessions, workload, availability, cohorts) | Figs 26–30 |
//! | [`source_aggregates`]        | `sources` (trust/relative speed per labor source) | Table 4 |
//! | [`latency_splices`]          | `instance_latency`              | Fig 13b |
//! | [`redundancy_counts`]        | `per_item`                      | §4.1    |
//!
//! [`oracle_fused`] composes the families into a full [`Fused`] value for
//! field-by-field comparison.

use std::collections::{BTreeMap, BTreeSet};

use crowd_analytics::design::metrics::LatencyPoint;
use crowd_analytics::fused::{month_index, Fused, SourceAgg, WeekCell, WorkerAgg};
use crowd_core::prelude::*;
use crowd_stats::descriptive::median;

/// First week index and week count of the dataset's time span, exactly as
/// the engine derives them (`(0, 0)` for a dataset with no timestamps).
pub fn week_span(ds: &Dataset) -> (i32, usize) {
    match (ds.time_min(), ds.time_max()) {
        (Some(t0), Some(t1)) => (t0.week().0, (t1.week().0 - t0.week().0 + 1).max(0) as usize),
        _ => (0, 0),
    }
}

/// Week index of `t`, clamped into `[0, n_weeks)` like the engine's
/// arrival/availability binning. Callers must ensure `n_weeks > 0`.
fn clamped_week(w0: i32, n_weeks: usize, t: Timestamp) -> usize {
    ((t.week().0 - w0).max(0) as usize).min(n_weeks - 1)
}

/// Median task time per batch: `Some(median work-seconds)` for sampled
/// batches with instances, `None` otherwise.
///
/// The engine takes these from the enrichment pipeline
/// (`Study::enriched_batches`, which only covers sampled batches); the
/// oracle recomputes them from the raw rows. Both paths feed the same
/// value multiset into the same `median`, so the results agree bit for
/// bit.
pub fn batch_task_time_medians(ds: &Dataset) -> Vec<Option<f64>> {
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); ds.batches.len()];
    for row in ds.instances.iter() {
        if ds.batch(row.batch).sampled {
            times[row.batch.index()].push(row.work_time().as_secs() as f64);
        }
    }
    times.iter().map(|pile| median(pile)).collect()
}

/// Weekly arrival series: instances issued per week (by batch-creation
/// week), completed per week (by instance end week), and the median pickup
/// seconds of the instances issued each week (Figs 1–2).
pub fn arrivals(ds: &Dataset) -> (Vec<u64>, Vec<u64>, Vec<Option<f64>>) {
    let (w0, n_weeks) = week_span(ds);
    let mut issued = vec![0u64; n_weeks];
    let mut completed = vec![0u64; n_weeks];
    let mut pickups: Vec<Vec<f64>> = vec![Vec::new(); n_weeks];
    if n_weeks > 0 {
        for row in ds.instances.iter() {
            let created = ds.batch(row.batch).created_at;
            issued[clamped_week(w0, n_weeks, created)] += 1;
            completed[clamped_week(w0, n_weeks, row.end)] += 1;
            pickups[clamped_week(w0, n_weeks, created)]
                .push((row.start - created).as_secs() as f64);
        }
    }
    let median_pickup = pickups.iter().map(|pile| median(pile)).collect();
    (issued, completed, median_pickup)
}

/// Instances issued per day of week, by batch-creation time (Fig 4).
pub fn weekday_load(ds: &Dataset) -> [u64; 7] {
    let mut out = [0u64; 7];
    for row in ds.instances.iter() {
        out[ds.batch(row.batch).created_at.weekday().index()] += 1;
    }
    out
}

/// Instances issued per day number, by batch-creation time (Fig 3).
pub fn daily_load(ds: &Dataset) -> BTreeMap<i64, u64> {
    let mut out = BTreeMap::new();
    for row in ds.instances.iter() {
        *out.entry(ds.batch(row.batch).created_at.day_number()).or_insert(0) += 1;
    }
    out
}

/// Per-worker aggregates: task counts and work time (workload, Fig 27),
/// trust sums (source quality), first/last day and distinct active
/// days/months (lifetimes and cohorts, Figs 29–30), instance intervals
/// (sessions), and per-week task/hour cells (availability, Fig 26).
pub fn worker_aggregates(ds: &Dataset) -> BTreeMap<u32, WorkerAgg> {
    let (w0, n_weeks) = week_span(ds);
    let mut out: BTreeMap<u32, WorkerAgg> = BTreeMap::new();
    for row in ds.instances.iter() {
        let day = row.start.day_number();
        let w = out.entry(row.worker.raw()).or_insert_with(|| WorkerAgg {
            tasks: 0,
            work_secs: 0.0,
            trust_sum: 0.0,
            first_day: i64::MAX,
            last_day: i64::MIN,
            days: BTreeSet::new(),
            months: BTreeSet::new(),
            intervals: Vec::new(),
            weeks: BTreeMap::new(),
        });
        w.tasks += 1;
        w.work_secs += row.work_time().as_secs() as f64;
        w.trust_sum += f64::from(row.trust);
        w.first_day = w.first_day.min(day);
        w.last_day = w.last_day.max(day);
        w.days.insert(day);
        w.months.insert(month_index(row.start));
        w.intervals.push((row.start, row.end));
        if n_weeks > 0 {
            let cell: &mut WeekCell =
                w.weeks.entry(clamped_week(w0, n_weeks, row.start)).or_default();
            cell.tasks += 1;
            cell.hours += row.work_time().as_hours_f64();
        }
    }
    out
}

/// Per-source aggregates: task counts, trust sums, and relative-speed
/// sums (work time divided by the batch's median task time, Table 4).
/// `batch_median` is the [`batch_task_time_medians`] vector.
pub fn source_aggregates(ds: &Dataset, batch_median: &[Option<f64>]) -> BTreeMap<u32, SourceAgg> {
    let mut out: BTreeMap<u32, SourceAgg> = BTreeMap::new();
    for row in ds.instances.iter() {
        let s = out.entry(ds.worker(row.worker).source.raw()).or_default();
        s.n_tasks += 1;
        s.trust_sum += f64::from(row.trust);
        if let Some(med) = batch_median[row.batch.index()] {
            if med > 0.0 {
                s.rel_time_sum += row.work_time().as_secs() as f64 / med;
                s.rel_time_n += 1;
            }
        }
    }
    out
}

/// Instance-level latency decomposition (Fig 13b): instances bucketed into
/// half-decade log splices of end-to-end time, with the median pickup and
/// task components per splice.
pub fn latency_splices(ds: &Dataset) -> Vec<LatencyPoint> {
    let mut buckets: BTreeMap<i32, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for row in ds.instances.iter() {
        let created = ds.batch(row.batch).created_at;
        let p = ((row.start - created).as_secs() as f64).max(1.0);
        let task = row.work_time().as_secs().max(1) as f64;
        let splice = (2.0 * (p + task).log10()).floor() as i32;
        let bucket = buckets.entry(splice).or_default();
        bucket.0.push(p);
        bucket.1.push(task);
    }
    buckets
        .into_iter()
        .filter_map(|(splice, (pickups, tasks))| {
            Some(LatencyPoint {
                end_to_end: 10f64.powf(f64::from(splice) / 2.0 + 0.25),
                pickup: median(&pickups)?,
                task: median(&tasks)?,
            })
        })
        .collect()
}

/// Judgments per `(batch, item)` pair — the redundancy distribution §4.1
/// draws agreement curves from.
pub fn redundancy_counts(ds: &Dataset) -> BTreeMap<(u32, u32), u32> {
    let mut out = BTreeMap::new();
    for row in ds.instances.iter() {
        *out.entry((row.batch.raw(), row.item.raw())).or_insert(0) += 1;
    }
    out
}

/// The full oracle: every family composed into a [`Fused`] value for
/// field-by-field comparison against `Study::fused()`.
pub fn oracle_fused(ds: &Dataset) -> Fused {
    let (w0, n_weeks) = week_span(ds);
    let batch_median = batch_task_time_medians(ds);
    let (issued, completed, median_pickup) = arrivals(ds);
    Fused {
        w0,
        n_weeks,
        workers: worker_aggregates(ds),
        sources: source_aggregates(ds, &batch_median),
        issued,
        completed,
        median_pickup,
        weekday: weekday_load(ds),
        per_day: daily_load(ds),
        instance_latency: latency_splices(ds),
        per_item: redundancy_counts(ds),
    }
}
