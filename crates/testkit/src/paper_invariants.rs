//! Conformance suite: does the simulator + analytics stack still
//! reproduce the paper's qualitative findings?
//!
//! Each invariant is named after the section of Jain et al. (VLDB 2017)
//! whose finding it pins down, and checks a *direction* or *shape* (an
//! effect sign, a dominance relation, a saturation curve) rather than a
//! point value — directions are what survive the reproduction's reduced
//! scale, and what a regression in either the simulator or the analytics
//! layer would silently flip.

use std::collections::BTreeMap;

use crowd_agg::adapter::batch_judgments;
use crowd_agg::majority::majority_vote;
use crowd_agg::Judgment;
use crowd_analytics::design::methodology::{run_experiment, Feature};
use crowd_analytics::design::metrics::{latency_decomposition, Metric};
use crowd_analytics::Study;
use crowd_core::prelude::*;

/// One checked paper finding.
#[derive(Debug, Clone)]
pub struct Invariant {
    /// Stable machine-readable name (also the test-failure key).
    pub name: &'static str,
    /// The paper section the finding comes from.
    pub section: &'static str,
    /// Whether the finding held on this study.
    pub passed: bool,
    /// Human-readable evidence (the numbers behind the verdict).
    pub detail: String,
}

impl Invariant {
    fn new(name: &'static str, section: &'static str, passed: bool, detail: String) -> Invariant {
        Invariant { name, section, passed, detail }
    }
}

/// Runs every invariant against one study and returns the verdicts.
/// Callers decide which subset must pass (the conformance suite requires
/// all of them at scale ≥ 0.05).
pub fn check_all(study: &Study) -> Vec<Invariant> {
    vec![
        regime_shift(study),
        weekday_over_weekend(study),
        pickup_dominates_task_time(study),
        effect_sign(
            study,
            "s4_6_examples_cut_pickup",
            "§4.6",
            Feature::Examples,
            Metric::PickupTime,
            -1.0,
        ),
        effect_sign(
            study,
            "s4_4_text_boxes_raise_task_time",
            "§4.4",
            Feature::TextBoxes,
            Metric::TaskTime,
            1.0,
        ),
        effect_sign(
            study,
            "s4_4_text_boxes_raise_disagreement",
            "§4.4",
            Feature::TextBoxes,
            Metric::Disagreement,
            1.0,
        ),
        effect_sign(
            study,
            "s4_3_words_cut_disagreement",
            "§4.3",
            Feature::Words,
            Metric::Disagreement,
            -1.0,
        ),
        redundancy_saturation(study),
    ]
}

/// §3.1: "the task arrival plot is relatively sparse until Jan 2015" —
/// mean weekly issue volume after the regime change dwarfs the volume
/// before it.
fn regime_shift(study: &Study) -> Invariant {
    let fused = study.fused();
    let issued = &fused.issued;
    let boundary = (Timestamp::from_ymd(2015, 1, 1).week().0 - fused.w0).max(0) as usize;
    if boundary == 0 || boundary >= issued.len() {
        return Invariant::new(
            "s3_1_regime_shift",
            "§3.1",
            false,
            format!("timeline does not straddle Jan 2015 (weeks = {})", issued.len()),
        );
    }
    let mean = |xs: &[u64]| xs.iter().sum::<u64>() as f64 / xs.len().max(1) as f64;
    let before = mean(&issued[..boundary]);
    let after = mean(&issued[boundary..]);
    Invariant::new(
        "s3_1_regime_shift",
        "§3.1",
        after > before * 2.0,
        format!("mean weekly issued: {before:.1} before Jan 2015 vs {after:.1} after"),
    )
}

/// §3.1 (Fig 4): tasks are issued on weekdays far more than on weekends.
fn weekday_over_weekend(study: &Study) -> Invariant {
    let wd = study.fused().weekday;
    let week: u64 = wd[..5].iter().sum();
    let weekend: u64 = wd[5..].iter().sum();
    let (avg_week, avg_weekend) = (week as f64 / 5.0, weekend as f64 / 2.0);
    Invariant::new(
        "s3_1_weekday_over_weekend",
        "§3.1",
        avg_week > avg_weekend * 1.2,
        format!("avg daily issue volume: {avg_week:.1} weekday vs {avg_weekend:.1} weekend"),
    )
}

/// §4.1 (Fig 13): pickup-time dominates task-time by a large factor,
/// which is what justifies treating pickup as *the* latency metric.
fn pickup_dominates_task_time(study: &Study) -> Invariant {
    let ratio = latency_decomposition(study).median_pickup_to_task_ratio;
    Invariant::new(
        "s4_1_pickup_dominates_task_time",
        "§4.1",
        ratio > 5.0,
        format!("median batch pickup/task ratio = {ratio:.1}"),
    )
}

/// One §4.x effect-direction finding: the sign of the bin-2 − bin-1
/// median difference for a `{feature, metric}` experiment must match the
/// paper's. `want` is +1.0 (feature raises the metric) or −1.0 (cuts it).
fn effect_sign(
    study: &Study,
    name: &'static str,
    section: &'static str,
    feature: Feature,
    metric: Metric,
    want: f64,
) -> Invariant {
    match run_experiment(study, feature, metric, None) {
        Some(e) => {
            let effect = e.effect();
            Invariant::new(
                name,
                section,
                effect * want > 0.0,
                format!(
                    "{} on {}: bin1 median {:.3}, bin2 median {:.3}, effect {:+.3} (want sign {:+})",
                    feature.name(),
                    metric.name(),
                    e.bin1.median,
                    e.bin2.median,
                    effect,
                    want as i32,
                ),
            )
        }
        None => Invariant::new(
            name,
            section,
            false,
            format!(
                "{} on {}: population too small to run the experiment",
                feature.name(),
                metric.name()
            ),
        ),
    }
}

/// §4.1 (Fig 15): agreement with the full consensus grows with
/// redundancy but saturates — the jump from 1 to 3 judgments buys more
/// than the jump from 3 to 5.
///
/// This is checked observationally (no latent truth needed): over items
/// with ≥ 5 judgments, majority-vote the first k judgments per item and
/// measure agreement with the item's full-vote consensus.
fn redundancy_saturation(study: &Study) -> Invariant {
    const KS: [usize; 3] = [1, 3, 5];
    let ds = study.dataset();
    let index = study.index();
    let mut same = [0u64; 3];
    let mut total = 0u64;

    for (bi, batch) in ds.batches.iter().enumerate() {
        if !batch.sampled {
            continue;
        }
        let bj = batch_judgments(ds, index, BatchId::from_usize(bi));
        if bj.judgments.is_empty() {
            continue;
        }
        let full = majority_vote(&bj.judgments, bj.n_classes());
        // Judgments arrive in instance-row order; keep that order per item
        // so "first k" means the first k judgments the item received.
        let mut per_item: BTreeMap<u32, Vec<Judgment>> = BTreeMap::new();
        for j in &bj.judgments {
            per_item.entry(j.item).or_default().push(*j);
        }
        for (item, js) in &per_item {
            if js.len() < *KS.last().expect("KS non-empty") {
                continue;
            }
            total += 1;
            for (slot, &k) in KS.iter().enumerate() {
                let partial = majority_vote(&js[..k], bj.n_classes());
                if partial.labels.get(item) == full.labels.get(item) {
                    same[slot] += 1;
                }
            }
        }
    }

    if total < 50 {
        return Invariant::new(
            "s4_1_redundancy_saturation",
            "§4.1",
            false,
            format!("only {total} items with ≥ 5 judgments — not enough to measure"),
        );
    }
    let a: Vec<f64> = same.iter().map(|&s| s as f64 / total as f64).collect();
    let (gain13, gain35) = (a[1] - a[0], a[2] - a[1]);
    Invariant::new(
        "s4_1_redundancy_saturation",
        "§4.1",
        a[0] < a[1] && gain13 > gain35,
        format!(
            "consensus agreement over {total} items: k=1 → {:.3}, k=3 → {:.3}, k=5 → {:.3}",
            a[0], a[1], a[2]
        ),
    )
}

/// Convenience for tests: panics listing every failed invariant.
pub fn assert_all_hold(study: &Study) {
    let failed: Vec<String> = check_all(study)
        .into_iter()
        .filter(|inv| !inv.passed)
        .map(|inv| format!("{} ({}): {}", inv.name, inv.section, inv.detail))
        .collect();
    assert!(failed.is_empty(), "paper invariants failed:\n{}", failed.join("\n"));
}
