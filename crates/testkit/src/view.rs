//! Live-view differential harness: incremental [`FusedView`] vs cold
//! batch [`Study`], at every delta boundary.
//!
//! The `crowd-serve` pipeline's headline guarantee is *incremental =
//! batch*: after every applied delta the view's published aggregates
//! equal what a fresh batch scan over the same event prefix computes.
//! [`assert_view_matches_batch`] enforces that guarantee the hard way:
//!
//! 1. the dataset is replayed as a marketplace event stream, then
//!    *damaged in transit* — records reversed (every completion arrives
//!    out of order) and a subset replayed (duplicates) — and recovered
//!    through the `crowd-ingest` event loader's canonical reordering,
//!    dedup, and digest verification;
//! 2. the recovered completion rows are applied to a [`FusedView`] in
//!    delta batches (including an empty heartbeat delta);
//! 3. at **every** batch boundary the published snapshot is compared
//!    field-by-field ([`compare_fused`]) against a cold [`Study`] over
//!    exactly the rows applied so far — counts, order statistics, and
//!    integer-valued sums bitwise, order-sensitive float sums within the
//!    term-scaled ULP bound;
//! 4. the final state is additionally checked against the batch engine
//!    at 1 and 4 worker threads, tying the live path into the same
//!    thread-invariance contract as the rest of the engine.

use std::sync::Arc;

use crowd_analytics::{FusedView, Study};
use crowd_core::dataset::{Dataset, InstanceColumns};
use crowd_ingest::events::{event_log_to_csv, events_from_dataset, load_events_str};

use crate::differential::{compare_fused, fused_with_threads, FloatMode};

/// Entity tables of `ds` with the instance table emptied.
fn entities_of(ds: &Dataset) -> Dataset {
    Dataset {
        sources: ds.sources.clone(),
        countries: ds.countries.clone(),
        workers: ds.workers.clone(),
        task_types: ds.task_types.clone(),
        batches: ds.batches.clone(),
        instances: InstanceColumns::default(),
    }
}

/// Delta boundaries for `n` rows split into `deltas` batches, with a
/// deliberate duplicate boundary in the middle (an empty delta) and the
/// final boundary always at `n`.
pub fn delta_cuts(n: usize, deltas: usize) -> Vec<usize> {
    let deltas = deltas.max(1);
    let mut cuts: Vec<usize> = (1..=deltas).map(|i| n * i / deltas).collect();
    // Repeat the middle boundary: the view must publish a version with
    // unchanged aggregates on an empty delta.
    let mid = cuts[cuts.len() / 2];
    cuts.insert(cuts.len() / 2, mid);
    if *cuts.last().unwrap() != n {
        cuts.push(n);
    }
    cuts
}

/// Routes `ds` through a damaged-in-transit event stream, applies the
/// recovered rows to a [`FusedView`] in `deltas` batches, and asserts
/// batch equivalence at every boundary (plus thread invariance at the
/// end). Panics with the field-level diff on any divergence.
pub fn assert_view_matches_batch(ds: &Dataset, deltas: usize) {
    let entities = Arc::new(entities_of(ds));

    // Producer-side serialization, then transit damage: reverse every
    // record (worst-case out-of-order arrival) and replay every 7th.
    let clean = event_log_to_csv(&events_from_dataset(ds));
    let mut lines: Vec<&str> = clean.lines().collect();
    let header = lines.remove(0);
    let trailer = lines.pop().expect("stream always has a trailer");
    lines.reverse();
    let replays: Vec<&str> = lines.iter().copied().step_by(7).collect();
    let mut wire = String::with_capacity(clean.len() * 2);
    for chunk in [&[header][..], &lines, &replays, &[trailer][..]] {
        for line in chunk {
            wire.push_str(line);
            wire.push('\n');
        }
    }

    let log = load_events_str(&wire, &entities).expect("damaged stream must recover");
    assert_eq!(
        log.report.verified,
        Some(true),
        "recovered stream must verify against the producer digest"
    );
    if !ds.instances.is_empty() {
        assert!(log.report.repaired > 0, "reversal must register as repaired inversions");
        assert!(log.report.deduped > 0, "replays must register as deduped");
    }
    let rows = log.completed_rows();
    assert_eq!(rows.len(), ds.instances.len(), "every completion must survive transit");

    // Apply in deltas; compare at every published boundary.
    let mut view = FusedView::new(Arc::clone(&entities));
    let mut prev = 0usize;
    for (i, &cut) in delta_cuts(rows.len(), deltas).iter().enumerate() {
        let delta = rows.clone_range(prev..cut);
        let snap = view.apply(&delta);
        prev = cut;

        assert_eq!(snap.rows, cut, "snapshot row count tracks the applied prefix");
        assert_eq!(snap.version, i as u64 + 1, "one version per published delta");

        let mut prefix = entities_of(ds);
        prefix.instances = rows.clone_range(0..cut);
        let batch = Study::new(prefix);
        let diffs = compare_fused(&snap.fused, batch.fused(), FloatMode::OrderTolerant);
        assert!(
            diffs.is_empty(),
            "view diverged from batch study at boundary {cut}/{} rows:\n{}",
            rows.len(),
            diffs.join("\n")
        );
    }

    // Final state vs the batch engine at 1 and 4 threads: the live path
    // obeys the same thread-invariance contract as the batch scan.
    let mut full = entities_of(ds);
    full.instances = rows.clone_range(0..rows.len());
    let final_snap = view.handle().snapshot();
    for threads in [1usize, 4] {
        let engine = fused_with_threads(&full, threads);
        let diffs = compare_fused(&final_snap.fused, &engine, FloatMode::OrderTolerant);
        assert!(
            diffs.is_empty(),
            "drained view diverged from the {threads}-thread batch engine:\n{}",
            diffs.join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::fixture::Fixture;
    use crowd_core::Duration;

    #[test]
    fn cuts_cover_the_row_range_and_repeat_one_boundary() {
        let cuts = delta_cuts(100, 4);
        assert_eq!(*cuts.last().unwrap(), 100);
        assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "monotone boundaries");
        assert!(cuts.windows(2).any(|w| w[0] == w[1]), "one empty delta");
        assert_eq!(delta_cuts(0, 3).last(), Some(&0));
    }

    #[test]
    fn harness_accepts_a_small_fixture() {
        let mut f = Fixture::new();
        let ws = f.add_workers(2);
        let b0 = f.add_batch(Duration::ZERO);
        let b1 = f.add_batch(Duration::from_days(8));
        for i in 0..20 {
            f.instance(b0, i % 5, ws[i as usize % 2], 60 * i64::from(i), 30 + i64::from(i));
        }
        f.instance(b1, 0, ws[0], -600, 45);
        assert_view_matches_batch(&f.finish(), 3);
    }

    #[test]
    fn harness_accepts_the_empty_dataset() {
        assert_view_matches_batch(&crowd_core::dataset::DatasetBuilder::new().finish().unwrap(), 2);
    }
}
