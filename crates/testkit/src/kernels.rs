//! Frozen reference implementations of the clustering hot-path kernels.
//!
//! These are the original, straight-line `tokenize`/`shingles`/MinHash
//! implementations from `crowd-cluster`, copied here verbatim *before*
//! that crate's kernels were rewritten for speed (streaming tokenizer,
//! blocked MinHash — DESIGN.md §18). They are deliberately naive: per-token
//! `String` allocations, window re-joins, per-shingle × per-function scalar
//! loops. The optimized kernels must produce **identical** shingle values
//! and signatures; `tests/kernel_differential.rs` proves it over the edge
//! catalog and proptest documents (including non-ASCII, empty, and
//! fewer-than-`k`-token inputs).
//!
//! This module intentionally does not depend on `crowd-cluster` (which is
//! a dev-dependency of this crate only), so the oracle cannot drift by
//! accidentally calling the code under test.

use std::collections::HashSet;

/// FNV-1a 64-bit hash — the shingle hash family.
#[inline]
pub fn naive_fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Lower-cased alphanumeric tokens of a document (allocating reference).
pub fn naive_tokenize(doc: &str) -> Vec<String> {
    doc.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// The set of hashed `k`-token shingles of a document, via per-window
/// string joins. Documents shorter than `k` tokens contribute a single
/// shingle over all their tokens; an empty document yields the empty set.
///
/// # Panics
/// If `k` is zero.
pub fn naive_shingles(doc: &str, k: usize) -> HashSet<u64> {
    assert!(k > 0, "shingle width must be positive");
    let tokens = naive_tokenize(doc);
    let mut out = HashSet::new();
    if tokens.is_empty() {
        return out;
    }
    if tokens.len() < k {
        let joined = tokens.join("\u{1f}");
        out.insert(naive_fnv1a(joined.as_bytes()));
        return out;
    }
    let mut buf = String::new();
    for window in tokens.windows(k) {
        buf.clear();
        for (i, t) in window.iter().enumerate() {
            if i > 0 {
                buf.push('\u{1f}');
            }
            buf.push_str(t);
        }
        out.insert(naive_fnv1a(buf.as_bytes()));
    }
    out
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `(a, b)` parameters of the `h_i(x) = a·x + b (mod 2^64, odd a)`
/// MinHash family, derived from `seed` exactly as `MinHasher::new` does.
///
/// # Panics
/// If `n_hashes` is zero.
pub fn naive_minhash_params(n_hashes: usize, seed: u64) -> Vec<(u64, u64)> {
    assert!(n_hashes > 0, "need at least one hash function");
    let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
    (0..n_hashes)
        .map(|_| {
            let a = splitmix64(&mut state) | 1; // odd multiplier
            let b = splitmix64(&mut state);
            (a, b)
        })
        .collect()
}

/// The MinHash signature of a shingle set via the original per-shingle ×
/// per-function scalar loop. An empty set yields the all-`u64::MAX`
/// signature.
pub fn naive_signature(params: &[(u64, u64)], shingles: &HashSet<u64>) -> Vec<u64> {
    let mut sig = vec![u64::MAX; params.len()];
    for &s in shingles {
        // Pre-mix the shingle so linear hashes act on spread bits.
        let mut x = s;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        for (i, &(a, b)) in params.iter().enumerate() {
            let h = a.wrapping_mul(x).wrapping_add(b);
            if h < sig[i] {
                sig[i] = h;
            }
        }
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(naive_fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(naive_fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn oracle_shingles_edge_shapes() {
        assert!(naive_shingles("", 3).is_empty());
        assert_eq!(naive_shingles("one two", 5).len(), 1, "short doc: one joined shingle");
        assert_eq!(naive_shingles("a b c d e", 3).len(), 3);
    }

    #[test]
    fn oracle_signature_of_empty_set_is_max() {
        let params = naive_minhash_params(8, 1);
        assert!(naive_signature(&params, &HashSet::new()).iter().all(|&v| v == u64::MAX));
    }
}
