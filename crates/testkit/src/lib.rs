//! # crowd-testkit
//!
//! Correctness infrastructure for the fused analytics engine, in three
//! pillars (see `DESIGN.md` §12):
//!
//! * [`oracle`] — straight-line, single-threaded scalar re-implementations
//!   of every accumulator family the fused [`crowd_analytics::fused`] pass
//!   computes, written directly against [`crowd_core::InstanceRef`] rows
//!   with none of the engine's chunking, fusion, or parallelism;
//! * [`differential`] — a harness comparing the fused engine's output
//!   against the oracle field-by-field (exact equality for counts, order
//!   statistics, and integer-valued sums; ULP-bounded equality for float
//!   accumulations whose rounding legitimately depends on merge order),
//!   at 1 and 4 worker threads;
//! * [`generators`] — seeded adversarial [`proptest::Strategy`]s and
//!   deterministic edge-case datasets (empty tables, single instances,
//!   duplicate timestamps, median ties, chunk-boundary sizes) that explore
//!   corners the simulator never emits;
//! * [`kernels`] — frozen copies of the original naive shingling and
//!   MinHash implementations, the reference oracles the rewritten
//!   hot-path kernels in `crowd-cluster` are differentially tested
//!   against (`tests/kernel_differential.rs`);
//! * [`view`] — the live-path differential: a delta-applied
//!   [`FusedView`](crowd_analytics::FusedView) fed through the
//!   damaged-in-transit event-stream loader and checked against cold
//!   batch studies at every delta boundary;
//! * [`paper_invariants`] — a conformance suite asserting the simulator
//!   and analytics jointly reproduce the paper's qualitative findings
//!   (effect directions, dominance relations, saturation shapes), each
//!   invariant named after the section of Jain et al. (VLDB 2017) it
//!   reproduces.
//!
//! The north-star rationale: every number the reproduction emits flows
//! through one highly-optimized scan path. Refactoring that path freely
//! requires oracles to refactor against; this crate is those oracles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod differential;
pub mod generators;
pub mod kernels;
pub mod oracle;
pub mod paper_invariants;
pub mod view;

pub use differential::{assert_study_matches_oracle, compare_fused, fused_with_shards};
pub use kernels::{naive_minhash_params, naive_shingles, naive_signature, naive_tokenize};
pub use oracle::oracle_fused;
pub use paper_invariants::{check_all, Invariant};
pub use view::{assert_view_matches_batch, delta_cuts};
