//! Field-by-field comparison of the fused engine against the oracles.
//!
//! Two comparison modes exist because two different claims are checked:
//!
//! * [`FloatMode::Bitwise`] — the engine against itself at different
//!   thread counts. The `ScanPass` contract promises bit-identical output
//!   at any parallelism, so *every* float must match to the last ulp.
//! * [`FloatMode::OrderTolerant`] — the engine against the straight-line
//!   oracle. Counts, order statistics (medians of identical multisets),
//!   and integer-valued sums (whole seconds, exactly representable and
//!   associative below 2^53) still must match exactly; only the handful
//!   of genuinely fractional accumulations (`trust_sum`, week `hours`,
//!   `rel_time_sum`) may differ in rounding, because the engine adds them
//!   chunk-by-chunk while the oracle adds them row-by-row. Those are
//!   compared with a ulp bound scaled by the number of summed terms (all
//!   terms are non-negative, so the sums are well-conditioned and the
//!   bound is tight).

use crowd_analytics::fused::Fused;
use crowd_analytics::Study;
use crowd_core::prelude::*;

use crate::oracle::oracle_fused;

/// How floats are compared; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloatMode {
    /// Every float must match to the bit (thread-count invariance).
    Bitwise,
    /// Order-sensitive fractional sums get a term-scaled ulp bound
    /// (engine vs oracle).
    OrderTolerant,
}

/// True when `a` and `b` agree within a relative bound of
/// `(8 + terms)` ulps — the slack a sum of `terms` non-negative values
/// can legitimately accumulate when its addition order changes.
pub fn float_close(a: f64, b: f64, terms: u64) -> bool {
    a == b || (a - b).abs() <= a.abs().max(b.abs()) * f64::EPSILON * (8 + terms) as f64
}

/// Collects mismatch descriptions, capping the detail kept.
struct Reporter {
    diffs: Vec<String>,
    suppressed: usize,
}

impl Reporter {
    const CAP: usize = 64;

    fn new() -> Reporter {
        Reporter { diffs: Vec::new(), suppressed: 0 }
    }

    fn mismatch(&mut self, field: impl FnOnce() -> String) {
        if self.diffs.len() < Reporter::CAP {
            self.diffs.push(field());
        } else {
            self.suppressed += 1;
        }
    }

    fn float(&mut self, a: f64, b: f64, terms: u64, mode: FloatMode, field: impl Fn() -> String) {
        let ok = match mode {
            FloatMode::Bitwise => a.to_bits() == b.to_bits(),
            FloatMode::OrderTolerant => float_close(a, b, terms),
        };
        if !ok {
            self.mismatch(|| format!("{}: {a:?} vs {b:?}", field()));
        }
    }

    fn exact<T: PartialEq + std::fmt::Debug>(&mut self, a: &T, b: &T, field: impl Fn() -> String) {
        if a != b {
            self.mismatch(|| format!("{}: {a:?} vs {b:?}", field()));
        }
    }

    fn finish(mut self) -> Vec<String> {
        if self.suppressed > 0 {
            self.diffs.push(format!("… and {} more mismatches", self.suppressed));
        }
        self.diffs
    }
}

/// Compares two [`Fused`] values field by field; returns one message per
/// mismatching field (empty when they agree under `mode`).
pub fn compare_fused(a: &Fused, b: &Fused, mode: FloatMode) -> Vec<String> {
    let mut r = Reporter::new();

    r.exact(&a.w0, &b.w0, || "w0".into());
    r.exact(&a.n_weeks, &b.n_weeks, || "n_weeks".into());
    r.exact(&a.issued, &b.issued, || "issued".into());
    r.exact(&a.completed, &b.completed, || "completed".into());
    r.exact(&a.weekday, &b.weekday, || "weekday".into());
    r.exact(&a.per_day, &b.per_day, || "per_day".into());
    r.exact(&a.per_item, &b.per_item, || "per_item".into());

    // Medians of identical multisets are bit-identical in either mode.
    r.exact(&a.median_pickup, &b.median_pickup, || "median_pickup".into());

    r.exact(&a.instance_latency.len(), &b.instance_latency.len(), || "instance_latency.len".into());
    for (i, (pa, pb)) in a.instance_latency.iter().zip(&b.instance_latency).enumerate() {
        r.exact(pa, pb, || format!("instance_latency[{i}]"));
    }

    let wa: Vec<u32> = a.workers.keys().copied().collect();
    let wb: Vec<u32> = b.workers.keys().copied().collect();
    r.exact(&wa, &wb, || "workers.keys".into());
    if wa == wb {
        for (id, (x, y)) in a.workers.iter().map(|(k, v)| (*k, (v, &b.workers[k]))) {
            r.exact(&x.tasks, &y.tasks, || format!("workers[{id}].tasks"));
            // Whole-second sums are exactly associative: exact in both modes.
            r.float(x.work_secs, y.work_secs, 0, FloatMode::Bitwise, || {
                format!("workers[{id}].work_secs")
            });
            r.float(x.trust_sum, y.trust_sum, x.tasks, mode, || format!("workers[{id}].trust_sum"));
            r.exact(&x.first_day, &y.first_day, || format!("workers[{id}].first_day"));
            r.exact(&x.last_day, &y.last_day, || format!("workers[{id}].last_day"));
            r.exact(&x.days, &y.days, || format!("workers[{id}].days"));
            r.exact(&x.months, &y.months, || format!("workers[{id}].months"));
            r.exact(&x.intervals, &y.intervals, || format!("workers[{id}].intervals"));
            let ka: Vec<usize> = x.weeks.keys().copied().collect();
            let kb: Vec<usize> = y.weeks.keys().copied().collect();
            r.exact(&ka, &kb, || format!("workers[{id}].weeks.keys"));
            if ka == kb {
                for (wk, (ca, cb)) in x.weeks.iter().map(|(k, v)| (*k, (v, &y.weeks[k]))) {
                    r.exact(&ca.tasks, &cb.tasks, || format!("workers[{id}].weeks[{wk}].tasks"));
                    r.float(ca.hours, cb.hours, ca.tasks, mode, || {
                        format!("workers[{id}].weeks[{wk}].hours")
                    });
                }
            }
        }
    }

    let sa: Vec<u32> = a.sources.keys().copied().collect();
    let sb: Vec<u32> = b.sources.keys().copied().collect();
    r.exact(&sa, &sb, || "sources.keys".into());
    if sa == sb {
        for (id, (x, y)) in a.sources.iter().map(|(k, v)| (*k, (v, &b.sources[k]))) {
            r.exact(&x.n_tasks, &y.n_tasks, || format!("sources[{id}].n_tasks"));
            r.exact(&x.rel_time_n, &y.rel_time_n, || format!("sources[{id}].rel_time_n"));
            r.float(x.trust_sum, y.trust_sum, x.n_tasks, mode, || {
                format!("sources[{id}].trust_sum")
            });
            r.float(x.rel_time_sum, y.rel_time_sum, x.rel_time_n, mode, || {
                format!("sources[{id}].rel_time_sum")
            });
        }
    }

    r.finish()
}

/// Runs the fused engine on a clone of `ds` inside a rayon pool of
/// `threads` workers and returns the raw aggregates.
pub fn fused_with_threads(ds: &Dataset, threads: usize) -> Fused {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("building a local rayon pool");
    pool.install(|| Study::new(ds.clone()).fused().clone())
}

/// Runs the fused engine on a clone of `ds` with its instance table
/// partitioned into (at most) `shards` shards, inside a rayon pool of
/// `threads` workers. The shard count is a layout knob only: the result
/// must be bit-identical to [`fused_with_threads`] for any combination.
pub fn fused_with_shards(ds: &Dataset, threads: usize, shards: usize) -> Fused {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("building a local rayon pool");
    pool.install(|| Study::new(ds.clone()).with_shards(shards).fused().clone())
}

/// The differential test proper: the fused engine at 1 and 4 threads must
/// be bit-identical, and both must match the straight-line oracle on every
/// field (with the order-tolerant bound on fractional sums).
///
/// Panics with the list of mismatching field names otherwise.
pub fn assert_study_matches_oracle(ds: &Dataset) {
    let oracle = oracle_fused(ds);
    let engine1 = fused_with_threads(ds, 1);
    let engine4 = fused_with_threads(ds, 4);

    let threading = compare_fused(&engine1, &engine4, FloatMode::Bitwise);
    assert!(
        threading.is_empty(),
        "fused engine differs between 1 and 4 threads:\n{}",
        threading.join("\n")
    );

    let diffs = compare_fused(&engine1, &oracle, FloatMode::OrderTolerant);
    assert!(diffs.is_empty(), "fused engine differs from oracle:\n{}", diffs.join("\n"));
}
