//! Adversarial dataset generation: deterministic edge cases plus seeded
//! random [`Strategy`]s.
//!
//! The simulator only emits "plausible marketplace" shapes; the corners
//! where aggregate code breaks (empty tables, one-row tables, ties at
//! medians, duplicate timestamps, zero durations, chunk-boundary sizes)
//! never occur there. This module manufactures those corners on purpose,
//! so the differential suite exercises the fused engine where it is most
//! likely to disagree with a straight-line re-implementation.

use crowd_core::fixture::{order_sensitive, Fixture};
use crowd_core::prelude::*;
use proptest::{Strategy, TestRng};

/// One row of [`crowd_core::query::ScanPass`]'s chunking: 8192 instances.
const CHUNK: usize = 8192;

/// Named deterministic edge-case datasets, each targeting one failure
/// class. All are valid per [`Dataset::validate`].
pub fn edge_case_datasets() -> Vec<(&'static str, Dataset)> {
    let mut out: Vec<(&'static str, Dataset)> = Vec::new();

    // No entities at all: every aggregate must come out empty, not panic.
    out.push(("empty", DatasetBuilder::new().finish().expect("empty dataset is valid")));

    // Entities but zero instances: batches/workers exist with no activity.
    let mut f = Fixture::new();
    f.add_workers(3);
    f.add_batch(Duration::ZERO);
    f.add_batch(Duration::from_days(10));
    f.add_unsampled_batch(Duration::from_days(2));
    out.push(("entities-no-instances", f.finish()));

    // The minimal non-trivial dataset.
    let mut f = Fixture::new();
    let w = f.add_worker();
    let b = f.add_batch(Duration::ZERO);
    f.instance(b, 0, w, 60, 30);
    out.push(("single-instance", f.finish()));

    // Zero pickup and zero work time: batch creation, start and end all
    // coincide (exercises `max(1)` floors in the latency splices).
    let mut f = Fixture::new();
    let w = f.add_worker();
    let b = f.add_batch(Duration::ZERO);
    for item in 0..4 {
        f.instance(b, item, w, 0, 0);
    }
    out.push(("zero-durations", f.finish()));

    // Many instances with byte-identical timestamps.
    let mut f = Fixture::new();
    let ws = f.add_workers(3);
    let b = f.add_batch(Duration::ZERO);
    for i in 0..30 {
        f.instance(b, i % 5, ws[i as usize % 3], 3600, 45);
    }
    out.push(("duplicate-timestamps", f.finish()));

    // A single worker owning every instance across several weeks.
    let mut f = Fixture::new();
    let w = f.add_worker();
    for week in 0..4 {
        let b = f.add_batch(Duration::from_days(7 * week));
        for item in 0..6 {
            f.instance(b, item, w, 60 * (i64::from(item) + 1), 20 + week);
        }
    }
    out.push(("all-same-worker", f.finish()));

    // Work times tied exactly at the batch median, so `rel_time` ratios
    // are exactly 1 and the median sits on repeated values.
    let mut f = Fixture::new();
    let ws = f.add_workers(2);
    let b = f.add_batch(Duration::ZERO);
    for i in 0..9 {
        f.instance(b, i, ws[i as usize % 2], 120, 30);
    }
    f.instance(b, 9, ws[0], 120, 29);
    f.instance(b, 10, ws[1], 120, 31);
    out.push(("tie-at-median", f.finish()));

    // An unsampled batch carrying instances: no HTML, no enrichment, so
    // its rows must take the `batch_median = None` path.
    let mut f = Fixture::new();
    let w = f.add_worker();
    let sampled = f.add_batch(Duration::ZERO);
    let shadow = f.add_unsampled_batch(Duration::from_days(1));
    f.instance(sampled, 0, w, 60, 30);
    f.instance(shadow, 0, w, 60, 30);
    f.instance(shadow, 1, w, 90, 10);
    out.push(("unsampled-with-activity", f.finish()));

    // Instance started *before* its batch was created (the marketplace
    // data can contain this; `validate` allows it). Pickup is negative.
    let mut f = Fixture::new();
    let w = f.add_worker();
    let b = f.add_batch(Duration::from_days(3));
    f.instance(b, 0, w, -7200, 40);
    f.instance(b, 1, w, 600, 40);
    out.push(("negative-pickup", f.finish()));

    // Trust pinned to the closed interval's endpoints.
    let mut f = Fixture::new();
    let w = f.add_worker();
    let b = f.add_batch(Duration::ZERO);
    f.instance_full(b, 0, w, 60, 30, 0.0, Answer::Choice(0));
    f.instance_full(b, 1, w, 60, 30, 1.0, Answer::Choice(1));
    f.instance_full(b, 2, w, 60, 30, 1.0, Answer::Skipped);
    out.push(("trust-extremes", f.finish()));

    // Chunk-boundary sizes around the ScanPass chunk width, built from
    // the order-sensitive fixture so any merge-order bug shows up in the
    // float sums.
    out.push(("chunk-minus-one", order_sensitive(CHUNK - 1)));
    out.push(("chunk-exact", order_sensitive(CHUNK)));
    out.push(("chunk-plus-one", order_sensitive(CHUNK + 1)));
    out.push(("two-chunks-plus-one", order_sensitive(2 * CHUNK + 1)));

    out
}

/// A seeded random-dataset strategy for the vendored `proptest` engine.
///
/// The knobs skew generation toward degenerate shapes: duplicate
/// timestamps, tied work times, zero durations, negative pickups, skipped
/// answers, unsampled batches with activity.
#[derive(Debug, Clone)]
pub struct DatasetStrategy {
    max_workers: u64,
    max_batches: u64,
    max_instances: u64,
    /// Days the batch creation times spread over (0 = all simultaneous).
    spread_days: u64,
    /// Probability that an instance reuses a degenerate "tied" time pair
    /// instead of a random one.
    tie_bias: f64,
}

/// General small adversarial datasets: a handful of entities, up to ~120
/// instances, a multi-week timeline.
pub fn small_adversarial() -> DatasetStrategy {
    DatasetStrategy {
        max_workers: 6,
        max_batches: 5,
        max_instances: 120,
        spread_days: 45,
        tie_bias: 0.35,
    }
}

/// Heavily tied datasets: one creation instant, most instances sharing
/// identical pickup/work times — medians land on repeated values and
/// every week bin collapses to one.
pub fn ties_and_duplicates() -> DatasetStrategy {
    DatasetStrategy {
        max_workers: 3,
        max_batches: 2,
        max_instances: 80,
        spread_days: 0,
        tie_bias: 0.9,
    }
}

/// Sparse long timelines: few instances scattered over a year, so most
/// week bins are empty and clamping at both ends is exercised.
pub fn sparse_timeline() -> DatasetStrategy {
    DatasetStrategy {
        max_workers: 4,
        max_batches: 6,
        max_instances: 12,
        spread_days: 365,
        tie_bias: 0.1,
    }
}

impl Strategy for DatasetStrategy {
    type Value = Dataset;

    fn sample(&self, rng: &mut TestRng) -> Dataset {
        let mut f = Fixture::new();
        let extra_source = f.add_source("adversarial", SourceKind::OnDemand);
        let extra_country = f.add_country("Elsewhere");

        let n_workers = 1 + rng.below(self.max_workers) as usize;
        let workers: Vec<WorkerId> = (0..n_workers)
            .map(|i| {
                if i % 2 == 0 {
                    f.add_worker()
                } else {
                    f.add_worker_from(extra_source, extra_country)
                }
            })
            .collect();

        let n_batches = 1 + rng.below(self.max_batches) as usize;
        let batches: Vec<BatchId> = (0..n_batches)
            .map(|_| {
                let offset = Duration::from_days(rng.below(self.spread_days + 1) as i64)
                    + Duration::from_secs(rng.below(86_400) as i64);
                if rng.unit() < 0.2 {
                    f.add_unsampled_batch(offset)
                } else {
                    f.add_batch(offset)
                }
            })
            .collect();

        let n_instances = rng.below(self.max_instances + 1) as usize;
        for _ in 0..n_instances {
            let batch = batches[rng.below(batches.len() as u64) as usize];
            let worker = workers[rng.below(workers.len() as u64) as usize];
            let item = rng.below(7) as u32;
            let (pickup, work) = if rng.unit() < self.tie_bias {
                // Degenerate pool: duplicates, zeros, negative pickups.
                let pool: [(i64, i64); 5] =
                    [(3_600, 30), (3_600, 30), (0, 0), (-1_800, 30), (86_400, 1)];
                pool[rng.below(pool.len() as u64) as usize]
            } else {
                (rng.below(14 * 86_400) as i64 - 3_600, rng.below(600) as i64)
            };
            let trust = match rng.below(4) {
                0 => 0.0,
                1 => 1.0,
                _ => (rng.below(1_000) as f32) / 1_000.0,
            };
            let answer = match rng.below(6) {
                0 => Answer::Skipped,
                1 => Answer::Text(format!("t{}", rng.below(3))),
                _ => Answer::Choice(rng.below(3) as u16),
            };
            f.instance_full(batch, item, worker, pickup, work, trust, answer);
        }
        f.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_cases_are_valid_and_distinctly_named() {
        let cases = edge_case_datasets();
        let names: std::collections::HashSet<&str> = cases.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), cases.len(), "names are unique");
        for (name, ds) in &cases {
            ds.validate().unwrap_or_else(|e| panic!("{name}: {e:?}"));
        }
    }

    #[test]
    fn strategies_generate_valid_datasets() {
        for (i, strat) in
            [small_adversarial(), ties_and_duplicates(), sparse_timeline()].iter().enumerate()
        {
            let mut rng = TestRng::new(0xD1FF ^ i as u64, 0);
            for case in 0..8 {
                let ds = strat.sample(&mut rng);
                ds.validate().unwrap_or_else(|e| panic!("strategy {i} case {case}: {e:?}"));
            }
        }
    }

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let strat = small_adversarial();
        let a = strat.sample(&mut TestRng::new(7, 3));
        let b = strat.sample(&mut TestRng::new(7, 3));
        assert_eq!(a.instances, b.instances);
        assert_eq!(a.batches.len(), b.batches.len());
    }
}
