//! Shard-merge differential: partitioning the instance table is a layout
//! knob, never a semantics knob. Every sharded entry point of the scan
//! engine — [`ScanPass::run_plan`], [`ScanPass::run_sharded`],
//! [`ScanPass::run_stream`] — and the analytics-level `--shards` study
//! must agree bit-for-bit with the monolithic scan, over the adversarial
//! edge-case catalog and over simulated marketplaces large enough to
//! split into several real shards.

use crowd_core::dataset::{Dataset, InstanceRef};
use crowd_core::id::InstanceId;
use crowd_core::{Accumulator, ScanPass, ShardPlan, ShardedColumns};
use crowd_sim::{simulate, SimConfig};
use crowd_testkit::differential::{
    compare_fused, fused_with_shards, fused_with_threads, FloatMode,
};
use crowd_testkit::generators::edge_case_datasets;
use crowd_testkit::oracle_fused;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// A deliberately order- and identity-sensitive probe: the float sum
/// detects any change in merge pairing, the position hash detects any
/// change in which global row id a physical row is scanned under.
#[derive(Clone)]
struct Probe {
    n: u64,
    trust_sum: f64,
    pos_hash: u64,
}

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Accumulator for Probe {
    type Output = (u64, u64, u64);

    fn init(&self) -> Self {
        Probe { n: 0, trust_sum: 0.0, pos_hash: 0 }
    }

    fn accept(&mut self, _ds: &Dataset, id: InstanceId, row: InstanceRef<'_>) {
        self.n += 1;
        self.trust_sum += f64::from(row.trust);
        self.pos_hash ^= mix((id.index() as u64) << 20 | row.worker.index() as u64);
    }

    fn merge(&mut self, other: Self) {
        self.n += other.n;
        self.trust_sum += other.trust_sum;
        self.pos_hash ^= other.pos_hash;
    }

    fn finish(self, _ds: &Dataset) -> (u64, u64, u64) {
        (self.n, self.trust_sum.to_bits(), self.pos_hash)
    }
}

/// Runs the probe through all four scan entry points at `shards` shards
/// and asserts each matches the monolithic reference bitwise.
fn assert_scan_paths_agree(name: &str, ds: &Dataset, shards: usize) {
    let proto = Probe { n: 0, trust_sum: 0.0, pos_hash: 0 };
    let reference = ScanPass::run(ds, &proto);

    let plan = ShardPlan::new(ds.instances.len(), shards);
    assert_eq!(
        reference,
        ScanPass::run_plan(ds, &plan, &proto),
        "{name}: run_plan diverges at {shards} shards"
    );

    let sharded = ShardedColumns::split(ds.instances.clone(), shards);
    assert_eq!(
        reference,
        ScanPass::run_sharded(ds, &sharded, &proto),
        "{name}: run_sharded diverges at {shards} shards"
    );

    let stream = sharded
        .iter_shards()
        .map(|(base, cols)| Ok::<_, std::convert::Infallible>((base, cols.clone())))
        .collect::<Vec<_>>();
    let streamed = ScanPass::run_stream(ds, &proto, stream.into_iter())
        .expect("infallible stream cannot fail");
    assert_eq!(reference, streamed, "{name}: run_stream diverges at {shards} shards");
}

#[test]
fn scan_entry_points_agree_on_edge_cases() {
    for (name, ds) in edge_case_datasets() {
        for shards in SHARD_COUNTS {
            assert_scan_paths_agree(name, &ds, shards);
        }
    }
}

#[test]
fn scan_entry_points_agree_on_a_multi_shard_marketplace() {
    let ds = simulate(&SimConfig::tiny(7));
    assert!(
        ShardPlan::new(ds.instances.len(), 8).n_shards() > 1,
        "dataset must be large enough to split into several real shards"
    );
    for shards in SHARD_COUNTS {
        assert_scan_paths_agree("tiny marketplace", &ds, shards);
    }
}

/// The analytics-level differential: a sharded study must be bit-identical
/// to the single-shard engine at any thread count, and both must match
/// the straight-line oracle on the edge-case catalog.
#[test]
fn sharded_fused_matches_engine_and_oracle_on_edge_cases() {
    for (name, ds) in edge_case_datasets() {
        let reference = fused_with_threads(&ds, 1);
        let oracle = oracle_fused(&ds);
        for shards in SHARD_COUNTS {
            for threads in [1, 4] {
                let sharded = fused_with_shards(&ds, threads, shards);
                let engine = compare_fused(&reference, &sharded, FloatMode::Bitwise);
                assert!(
                    engine.is_empty(),
                    "`{name}` at {shards} shards × {threads} threads differs from the \
                     single-shard engine:\n{}",
                    engine.join("\n")
                );
                let vs_oracle = compare_fused(&sharded, &oracle, FloatMode::OrderTolerant);
                assert!(
                    vs_oracle.is_empty(),
                    "`{name}` at {shards} shards × {threads} threads differs from the \
                     oracle:\n{}",
                    vs_oracle.join("\n")
                );
            }
        }
    }
}
