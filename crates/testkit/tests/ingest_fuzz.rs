//! Ingest fuzzing: an arbitrary single-byte mutation of a valid exported
//! dataset directory — any table file or the manifest, any offset, any
//! replacement byte — must come back as `Ok` (possibly quarantining) or
//! as a typed `CoreError`. Never a panic, never a hang.
//!
//! With manifest verification on, the oracle is stronger still: any
//! mutation the loader *accepts* must have been content-neutral, because
//! every accepted table re-verifies against the exporter's row counts
//! and content digests.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use crowd_core::csv::{export_dir, Table, MANIFEST_FILE};
use crowd_core::fixture::Fixture;
use crowd_core::prelude::*;
use crowd_ingest::{ingest_dir, IngestOptions, ManualClock};
use proptest::prelude::*;

/// A small but table-complete dataset: several workers, a quoted
/// multi-line task title, sampled and unsampled batches, and all three
/// answer shapes — so mutations can land in every syntactic feature of
/// the format.
fn fixture_files() -> &'static Vec<(String, Vec<u8>)> {
    static FILES: OnceLock<Vec<(String, Vec<u8>)>> = OnceLock::new();
    FILES.get_or_init(|| {
        let mut f = Fixture::new();
        let ws = f.add_workers(4);
        let tt = f.add_task_type("judge, \"quoted\"\nand multi-line", 3);
        let b0 = f.add_batch_of(tt, Duration::ZERO, "<p>compare the results</p>");
        let b1 = f.add_batch(Duration::from_days(3));
        let b2 = f.add_unsampled_batch(Duration::from_days(9));
        for (i, &b) in [b0, b1, b2].iter().enumerate() {
            for item in 0..6u32 {
                let w = ws[(item as usize + i) % ws.len()];
                f.instance_full(
                    b,
                    item,
                    w,
                    3600 + 60 * i64::from(item),
                    30 + i64::from(item),
                    0.85,
                    match item % 3 {
                        0 => Answer::Choice(item as u16 % 3),
                        1 => Answer::Text(format!("free text, \"{item}\"\nline two")),
                        _ => Answer::Skipped,
                    },
                );
            }
        }
        let dir =
            std::env::temp_dir().join(format!("crowd_ingest_fuzz_base_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        export_dir(&f.finish(), &dir).expect("export fixture");
        let mut files: Vec<(String, Vec<u8>)> = Table::ALL
            .iter()
            .map(|t| (t.file_name().to_string(), std::fs::read(dir.join(t.file_name())).unwrap()))
            .collect();
        files.push((MANIFEST_FILE.to_string(), std::fs::read(dir.join(MANIFEST_FILE)).unwrap()));
        let _ = std::fs::remove_dir_all(&dir);
        files
    })
}

/// Writes the fixture with one byte of one file replaced; returns the
/// case directory and whether the mutation actually changed anything.
fn write_mutated(tag: &str, file_idx: usize, offset: usize, byte: u8) -> (PathBuf, bool) {
    let files = fixture_files();
    let dir = std::env::temp_dir().join(format!("crowd_ingest_fuzz_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let target = file_idx % files.len();
    let mut changed = false;
    for (i, (name, bytes)) in files.iter().enumerate() {
        if i == target {
            let mut mutated = bytes.clone();
            let at = offset % mutated.len().max(1);
            changed = mutated[at] != byte;
            mutated[at] = byte;
            std::fs::write(dir.join(name), mutated).unwrap();
        } else {
            std::fs::write(dir.join(name), bytes).unwrap();
        }
    }
    (dir, changed)
}

fn opts(verify_manifest: bool) -> IngestOptions {
    IngestOptions {
        clock: Arc::new(ManualClock::new()),
        verify_manifest,
        ..IngestOptions::default()
    }
}

proptest! {
    #[test]
    fn single_byte_mutations_never_panic(
        file_idx in 0usize..7,
        offset in 0usize..1 << 20,
        byte in 0u32..256,
    ) {
        let (dir, changed) = write_mutated("verified", file_idx, offset, byte as u8);

        // Strict pass: the manifest is the ground truth, so an accepted
        // load must be provably equal to the clean export.
        match ingest_dir(&dir, &opts(true)) {
            Ok(got) => {
                prop_assert!(got.report.manifest_present);
                for t in Table::ALL {
                    let tr = got.report.table(t.name()).expect("per-table report");
                    prop_assert_eq!(
                        tr.verified, Some(true),
                        "accepted `{}` must verify against the manifest", t.name()
                    );
                }
                if !changed {
                    prop_assert!(got.report.is_clean(), "identity mutation must be clean");
                }
            }
            // A typed refusal is the other legal verdict; reaching here
            // at all means no panic and no hang.
            Err(failure) => {
                prop_assert!(changed, "unmutated input must ingest");
                prop_assert!(!failure.error.to_string().is_empty());
            }
        }

        // Lenient pass: without the manifest oracle the loader leans on
        // quarantine + budget instead; still no panic, and coverage stays
        // a sane fraction.
        match ingest_dir(&dir, &opts(false)) {
            Ok(got) => {
                let cov = got.report.coverage();
                prop_assert!((0.0..=1.0).contains(&cov), "coverage {cov} out of range");
            }
            Err(failure) => {
                prop_assert!(!failure.error.to_string().is_empty());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
