//! Conformance tests: the paper-invariant suite over simulated studies.

use crowd_analytics::Study;
use crowd_sim::{simulate, SimConfig};
use crowd_testkit::paper_invariants::{assert_all_hold, check_all};

#[test]
fn invariant_catalog_is_stable() {
    let study = Study::new(simulate(&SimConfig::tiny(3)));
    let invs = check_all(&study);
    assert_eq!(invs.len(), 8, "one entry per documented paper finding");
    let names: std::collections::HashSet<&str> = invs.iter().map(|i| i.name).collect();
    assert_eq!(names.len(), invs.len(), "names are unique");
    for inv in &invs {
        assert!(inv.section.starts_with('§'), "{}: section `{}`", inv.name, inv.section);
        assert!(!inv.detail.is_empty(), "{}: detail must carry evidence", inv.name);
    }
}

#[test]
fn robust_invariants_hold_even_at_tiny_scale() {
    // The coarse marketplace-shape findings survive even a ~30k-instance
    // simulation; the §4 effect-sign findings need the conformance scale
    // (see the ignored test below) for stable experiment populations.
    let study = Study::new(simulate(&SimConfig::tiny(3)));
    let invs = check_all(&study);
    for name in
        ["s3_1_regime_shift", "s3_1_weekday_over_weekend", "s4_1_pickup_dominates_task_time"]
    {
        let inv = invs.iter().find(|i| i.name == name).expect("known invariant");
        assert!(inv.passed, "{name}: {}", inv.detail);
    }
}

#[test]
#[ignore = "heavy: the CI conformance job runs this in release with --ignored"]
fn paper_invariants_hold_across_seeds_at_conformance_scale() {
    for seed in [11_u64, 23, 47] {
        let study = Study::new(simulate(&SimConfig::conformance(seed)));
        assert_all_hold(&study);
    }
}
