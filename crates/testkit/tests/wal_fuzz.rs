//! WAL fuzzing: an arbitrary single-byte mutation or truncation of a
//! valid write-ahead log must recover the longest valid prefix or return
//! a typed `WalFault` — never a panic, never a corrupt record replayed
//! (mirrors `ingest_fuzz.rs` for the on-disk event-log format).
//!
//! The checksum discipline makes the oracle sharp: every content byte of
//! a segment is covered by either the header checksum or a record
//! checksum, so *any* effective mutation must surface as a fault, and
//! the replayed events must always be an exact prefix of the clean log.

use std::path::PathBuf;
use std::sync::OnceLock;

use crowd_core::dataset::Dataset;
use crowd_core::fixture::Fixture;
use crowd_core::prelude::*;
use crowd_ingest::events_from_dataset;
use crowd_ingest::wal::{replay, segment_files, truncate_torn, WalFault, WalOptions, WalWriter};
use proptest::prelude::*;

const STREAM: u64 = 0x57a1;

/// One canonical line per clean event, for prefix comparison.
fn canon(events: &[crowd_ingest::MarketEvent]) -> Vec<String> {
    events
        .iter()
        .map(|e| {
            let mut s = String::new();
            e.serialize(&mut s);
            s
        })
        .collect()
}

/// The pristine segment files of the fixture WAL: `(file name, bytes)`.
type SegmentFiles = Vec<(String, Vec<u8>)>;

/// The clean fixture: entity tables, the canonical event list, and the
/// pristine segment files of a WAL holding every event across several
/// rotated segments.
fn fixture() -> &'static (Dataset, Vec<String>, SegmentFiles) {
    static FIX: OnceLock<(Dataset, Vec<String>, SegmentFiles)> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut f = Fixture::new();
        let ws = f.add_workers(4);
        let b0 = f.add_batch(Duration::ZERO);
        let b1 = f.add_batch(Duration::from_days(2));
        let b2 = f.add_batch(Duration::from_days(5));
        for (i, &b) in [b0, b1, b2].iter().enumerate() {
            for item in 0..5u32 {
                f.instance(
                    b,
                    item,
                    ws[(item as usize + i) % ws.len()],
                    900 + 45 * i64::from(item),
                    40,
                );
            }
        }
        let ds = f.finish();
        let events = events_from_dataset(&ds);
        let dir = std::env::temp_dir().join(format!("crowd_wal_fuzz_base_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Small segments force several rotations; batches of 4 leave
        // record boundaries at many offsets.
        let mut w =
            WalWriter::open(&dir, STREAM, WalOptions { fsync_every: 1, segment_bytes: 384 }, 0)
                .expect("open wal");
        for chunk in events.chunks(4) {
            w.append(chunk).expect("append");
        }
        w.sync().expect("sync");
        let files = segment_files(&dir, STREAM)
            .expect("list")
            .into_iter()
            .map(|(_, p)| {
                let name = p.file_name().unwrap().to_string_lossy().into_owned();
                let bytes = std::fs::read(&p).unwrap();
                (name, bytes)
            })
            .collect::<Vec<_>>();
        assert!(files.len() >= 3, "fixture must span several segments");
        let _ = std::fs::remove_dir_all(&dir);
        (ds, canon(&events), files)
    })
}

/// Writes the pristine segments into a fresh case directory, applying
/// `mutate` to the chosen file's bytes. Returns the directory and
/// whether the bytes actually changed.
fn write_case(tag: &str, target: usize, mutate: impl Fn(&mut Vec<u8>) -> bool) -> (PathBuf, bool) {
    let (_, _, files) = fixture();
    let dir = std::env::temp_dir().join(format!("crowd_wal_fuzz_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let target = target % files.len();
    let mut changed = false;
    for (i, (name, bytes)) in files.iter().enumerate() {
        let mut out = bytes.clone();
        if i == target {
            changed = mutate(&mut out);
        }
        std::fs::write(dir.join(name), out).unwrap();
    }
    (dir, changed)
}

proptest! {
    #[test]
    fn single_byte_mutations_recover_a_prefix_or_a_typed_fault(
        file_idx in 0usize..8,
        offset in 0usize..1 << 16,
        byte in 0u32..256,
    ) {
        let (ds, clean, _) = fixture();
        let (dir, changed) = write_case("flip", file_idx, |bytes| {
            let at = offset % bytes.len().max(1);
            let old = bytes[at];
            bytes[at] = byte as u8;
            old != byte as u8
        });

        // Reaching any assertion at all means no panic and no hang.
        let got = replay(&dir, STREAM, 0, ds).expect("replay IO must succeed");
        let lines = canon(&got.events);
        prop_assert_eq!(
            &lines[..],
            &clean[..lines.len()],
            "replayed events must be an exact prefix of the clean log"
        );
        if changed {
            // Every content byte is checksummed, so an effective mutation
            // can never replay silently clean and complete.
            prop_assert!(
                got.fault.is_some(),
                "a changed byte must surface as a typed fault, got clean replay of {} events",
                lines.len()
            );
        } else {
            prop_assert!(got.fault.is_none(), "identity mutation must replay clean");
            prop_assert_eq!(lines.len(), clean.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncations_recover_the_longest_valid_prefix(
        file_idx in 0usize..8,
        keep in 0usize..1 << 16,
    ) {
        let (ds, clean, files) = fixture();
        let target = file_idx % files.len();
        let is_final = target == files.len() - 1;
        let (dir, changed) = write_case("cut", target, |bytes| {
            let keep = keep % (bytes.len() + 1);
            let cut = keep < bytes.len();
            bytes.truncate(keep);
            cut
        });

        let got = replay(&dir, STREAM, 0, ds).expect("replay IO must succeed");
        let lines = canon(&got.events);
        prop_assert_eq!(&lines[..], &clean[..lines.len()], "prefix property");
        if !changed {
            prop_assert!(got.fault.is_none());
            prop_assert_eq!(lines.len(), clean.len());
        } else if is_final {
            // A shortened final segment is exactly what a crash leaves:
            // the fault is a truncatable torn tail (or, if the cut landed
            // on a record boundary, a clean-but-shorter log).
            match got.fault {
                None => prop_assert!(lines.len() <= clean.len()),
                Some(ref fault) => {
                    prop_assert!(
                        fault.is_torn_tail(),
                        "final-segment truncation must classify as torn, got {}", fault
                    );
                    // Truncating the tear and replaying again is clean and
                    // keeps the same prefix.
                    truncate_torn(fault).expect("truncate");
                    let again = replay(&dir, STREAM, 0, ds).expect("replay after truncate");
                    prop_assert!(again.fault.is_none(), "truncated log must replay clean");
                    prop_assert_eq!(canon(&again.events), lines);
                }
            }
        } else {
            // A hole before later segments is damage no crash produces:
            // replay must refuse with a non-torn fault and never serve
            // anything past the damaged segment.
            let fault = got.fault.as_ref().expect("mid-log truncation must fault");
            prop_assert!(
                !fault.is_torn_tail() || matches!(fault, WalFault::SeqGap { .. }),
                "non-final truncation must not classify as a truncatable tail, got {}", fault
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
