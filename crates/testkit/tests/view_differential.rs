//! Live-view differential suite: the incremental `FusedView` must equal
//! a cold batch `Study` at every delta boundary — over the deterministic
//! edge catalog, seeded adversarial event streams, and a simulated
//! marketplace — with the stream itself damaged in transit (reversed +
//! replayed records) and recovered through the event loader.

use crowd_sim::{simulate, SimConfig};
use crowd_testkit::assert_view_matches_batch;
use crowd_testkit::generators::{
    edge_case_datasets, small_adversarial, sparse_timeline, ties_and_duplicates,
};
use proptest::prelude::*;

#[test]
fn edge_catalog_views_match_batch() {
    for (name, ds) in edge_case_datasets() {
        eprintln!("view differential: edge case `{name}` ({} instances)", ds.instances.len());
        // Chunk-boundary cases get cuts that straddle the chunk width;
        // everything else gets a handful of uneven deltas.
        let deltas = if ds.instances.len() >= 8192 { 5 } else { 3 };
        assert_view_matches_batch(&ds, deltas);
    }
}

proptest! {
    #[test]
    fn small_adversarial_views_match_batch(ds in small_adversarial()) {
        assert_view_matches_batch(&ds, 4);
    }

    #[test]
    fn tied_and_duplicated_views_match_batch(ds in ties_and_duplicates()) {
        assert_view_matches_batch(&ds, 3);
    }

    #[test]
    fn sparse_timeline_views_match_batch(ds in sparse_timeline()) {
        assert_view_matches_batch(&ds, 2);
    }
}

#[test]
fn simulated_tiny_scale_view_matches_batch() {
    assert_view_matches_batch(&simulate(&SimConfig::tiny(9)), 3);
}
