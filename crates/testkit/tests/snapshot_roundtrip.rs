//! Snapshot round-trip differential: `Dataset` → encode → decode must be
//! bitwise invisible. For every edge-case dataset and a generated
//! adversarial family, the decoded dataset's `Fused` totals must be
//! bit-identical to the never-persisted original's, the persisted derived
//! artifacts must survive unchanged, and re-deriving from the decoded
//! dataset must reproduce them exactly — persistence can never shift a
//! published number by even one ulp.

use crowd_cluster::ClusterParams;
use crowd_core::dataset::Dataset;
use crowd_snapshot::{decode, encode, warm, Snapshot};
use crowd_testkit::differential::{compare_fused, fused_with_threads, FloatMode};
use crowd_testkit::generators::{edge_case_datasets, small_adversarial};
use proptest::{Strategy, TestRng};

/// An arbitrary cache key: round-tripping is fingerprint-agnostic.
const FP: u64 = 0xF1F0_C0DE;

fn assert_roundtrip_is_invisible(name: &str, ds: Dataset) {
    let params = ClusterParams::default();
    let derived = warm::compute_derived(&ds, params);
    let snap = Snapshot { dataset: ds, derived: Some(derived) };

    let bytes = encode(&snap, FP);
    let back = decode(&bytes, FP).unwrap_or_else(|e| panic!("{name}: decode failed: {e}"));

    // The dataset itself round-trips field-for-field.
    let (a, b) = (&snap.dataset, &back.dataset);
    assert_eq!(a.sources, b.sources, "{name}");
    assert_eq!(a.countries, b.countries, "{name}");
    assert_eq!(a.workers, b.workers, "{name}");
    assert_eq!(a.task_types, b.task_types, "{name}");
    assert_eq!(a.batches, b.batches, "{name}");
    assert_eq!(a.instances, b.instances, "{name}");

    // Derived artifacts survive verbatim…
    let (da, db) = (snap.derived.as_ref().unwrap(), back.derived.as_ref().unwrap());
    assert_eq!(da.labels, db.labels, "{name}");
    assert_eq!(da.n_clusters, db.n_clusters, "{name}");
    assert_eq!(da.signatures, db.signatures, "{name}");
    assert_eq!(da.metrics.len(), db.metrics.len(), "{name}");

    // …and re-deriving from the decoded dataset reproduces them exactly:
    // the decoded bytes are as good as the original allocation.
    let rederived = warm::compute_derived(b, params);
    assert_eq!(da.labels, rederived.labels, "{name}: labels drifted");
    assert_eq!(da.signatures, rederived.signatures, "{name}: signatures drifted");

    // The fused scan over the decoded dataset is bit-identical.
    let fused_a = fused_with_threads(a, 2);
    let fused_b = fused_with_threads(b, 2);
    let diffs = compare_fused(&fused_a, &fused_b, FloatMode::Bitwise);
    assert!(diffs.is_empty(), "{name}: fused diverged:\n{}", diffs.join("\n"));
}

#[test]
fn edge_cases_round_trip_bitwise() {
    for (name, ds) in edge_case_datasets() {
        eprintln!("snapshot round-trip: edge case `{name}` ({} instances)", ds.instances.len());
        assert_roundtrip_is_invisible(name, ds);
    }
}

#[test]
fn generated_adversarial_datasets_round_trip_bitwise() {
    let strat = small_adversarial();
    for case in 0..8u64 {
        let ds = strat.sample(&mut TestRng::new(0x5AAD, case));
        assert_roundtrip_is_invisible(&format!("small_adversarial[{case}]"), ds);
    }
}
