//! Differential tests pinning the optimized clustering kernels to the
//! frozen naive oracles in [`crowd_testkit::kernels`].
//!
//! The tentpole contract: the allocation-free shingler and the blocked
//! MinHash kernel must emit **bit-identical** values to the straight-line
//! reference implementations — same FNV-1a shingle set, same `a·x + b`
//! signature lanes — on every document, including non-ASCII, empty, and
//! shorter-than-`k` ones.

use std::collections::HashSet;

use crowd_cluster::{MinHasher, ShingleScratch};
use crowd_testkit::{naive_minhash_params, naive_shingles, naive_signature};
use proptest::prelude::*;

/// Documents that exercise every tokenizer path: ASCII fast path,
/// multi-byte lowercasing, Greek final sigma (context-sensitive in
/// `str::to_lowercase`), expanding mappings (İ, ligatures), combining
/// marks, CJK (no case), punctuation-only, and the empty string.
const EDGE_DOCS: &[&str] = &[
    "",
    "   \t\n  ",
    "one",
    "ONE two THREE",
    "a-b_c d,e.f",
    "<div class=\"task\"><h1>Flag IMAGES</h1><input type=\"radio\"></div>",
    "ΟΔΥΣΣΕΥΣ was here; ΣΊΣΥΦΟΣ too",
    "İstanbul DİYARBAKIR ffi ﬁ",
    "e\u{301}cole E\u{301}COLE \u{e9}cole",
    "日本語のテキスト と English mixed",
    "ß STRASSE straße",
    "1234 5678 1234 5678 1234",
];

fn scratch_shingles(doc: &str, k: usize) -> HashSet<u64> {
    let mut scratch = ShingleScratch::new();
    scratch.shingle(doc, k).iter().copied().collect()
}

#[test]
fn shingle_kernel_matches_oracle_on_edge_docs() {
    for &doc in EDGE_DOCS {
        for k in [1, 2, 3, 5, 9] {
            assert_eq!(scratch_shingles(doc, k), naive_shingles(doc, k), "doc {doc:?} k {k}");
        }
    }
}

#[test]
fn public_shingles_wrapper_matches_oracle() {
    for &doc in EDGE_DOCS {
        assert_eq!(crowd_cluster::shingles(doc, 3), naive_shingles(doc, 3), "doc {doc:?}");
    }
}

#[test]
fn minhash_kernel_matches_oracle_on_edge_docs() {
    // Lane counts straddling the blocked kernel's LANES=8 / BATCH=64
    // boundaries, plus the clusterer's production shape.
    for &(n_hashes, seed) in &[(1usize, 7u64), (8, 7), (13, 42), (64, 42), (128, 99), (200, 1)] {
        let hasher = MinHasher::new(n_hashes, seed);
        let params = naive_minhash_params(n_hashes, seed);
        for &doc in EDGE_DOCS {
            let set = naive_shingles(doc, 3);
            let expected = naive_signature(&params, &set);
            let got = hasher.signature(&set);
            assert_eq!(got.0, expected, "doc {doc:?} n {n_hashes}");
        }
    }
}

proptest! {
    #[test]
    fn shingle_kernel_matches_oracle_on_arbitrary_strings(
        doc in "\\PC{0,120}",
        k in 1usize..8,
    ) {
        prop_assert_eq!(scratch_shingles(&doc, k), naive_shingles(&doc, k));
    }

    #[test]
    fn shingle_kernel_matches_oracle_on_wordy_docs(
        words in prop::collection::vec("[a-zA-Z0-9ΣσςİIıßÀ-ÿ]{1,12}", 0..40),
        k in 1usize..6,
    ) {
        let doc = words.join(" ");
        prop_assert_eq!(scratch_shingles(&doc, k), naive_shingles(&doc, k));
    }

    #[test]
    fn minhash_kernel_matches_oracle_on_arbitrary_sets(
        shingles in prop::collection::hash_set(0u64..u64::MAX, 0..300),
        n_hashes in 1usize..96,
        seed in 0u64..1_000,
    ) {
        let hasher = MinHasher::new(n_hashes, seed);
        let params = naive_minhash_params(n_hashes, seed);
        let expected = naive_signature(&params, &shingles);
        prop_assert_eq!(hasher.signature(&shingles).0, expected);
    }

    #[test]
    fn end_to_end_doc_to_signature_matches_oracle(
        doc in "\\PC{0,200}",
        seed in 0u64..100,
    ) {
        let hasher = MinHasher::new(64, seed);
        let mut scratch = ShingleScratch::new();
        let got = hasher.sign(scratch.shingle(&doc, 3));
        let params = naive_minhash_params(64, seed);
        let expected = naive_signature(&params, &naive_shingles(&doc, 3));
        prop_assert_eq!(got.0, expected);
    }
}
