//! Differential tests: the fused engine vs the straight-line oracles,
//! over deterministic edge cases, generated adversarial datasets, and
//! simulated marketplaces.

use crowd_sim::{simulate, SimConfig};
use crowd_testkit::assert_study_matches_oracle;
use crowd_testkit::generators::{
    edge_case_datasets, small_adversarial, sparse_timeline, ties_and_duplicates,
};
use proptest::prelude::*;

#[test]
fn edge_cases_match_oracle() {
    for (name, ds) in edge_case_datasets() {
        eprintln!("differential: edge case `{name}` ({} instances)", ds.instances.len());
        assert_study_matches_oracle(&ds);
    }
}

proptest! {
    #[test]
    fn small_adversarial_datasets_match_oracle(ds in small_adversarial()) {
        assert_study_matches_oracle(&ds);
    }

    #[test]
    fn tied_and_duplicated_datasets_match_oracle(ds in ties_and_duplicates()) {
        assert_study_matches_oracle(&ds);
    }

    #[test]
    fn sparse_timeline_datasets_match_oracle(ds in sparse_timeline()) {
        assert_study_matches_oracle(&ds);
    }
}

#[test]
fn simulated_tiny_scale_matches_oracle() {
    assert_study_matches_oracle(&simulate(&SimConfig::tiny(5)));
}

#[test]
#[ignore = "heavy: the CI conformance job runs this in release with --ignored"]
fn simulated_conformance_scale_matches_oracle() {
    assert_study_matches_oracle(&simulate(&SimConfig::conformance(11)));
}
