//! Directory-backed snapshot storage, keyed by config fingerprint.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crowd_ingest::{is_transient, Backoff, Clock, SystemClock};
use crowd_sim::SimConfig;

use crate::{
    encode_sharded, fingerprint, ShardedSnapshotReader, Snapshot, SnapshotError, SnapshotWriter,
};

/// Environment variable naming the default snapshot directory (the CLI's
/// `--snapshot-dir` flag overrides it, `--no-snapshot` ignores it).
pub const ENV_DIR: &str = "CROWD_SNAPSHOT_DIR";

/// A directory of snapshot files, one per config fingerprint.
///
/// Files are named `snap-<fingerprint:016x>.bin`, so distinct configs
/// never collide and re-running a config overwrites its own entry. Writes
/// go to a temporary sibling first and land via rename, so a crashed or
/// concurrent writer can leave at worst a stale temp file, never a torn
/// snapshot under the final name. Each save sweeps those stale temps
/// first, transient IO errors are retried under a bounded backoff, and
/// saves that callers swallow (warm start treats a read-only cache as
/// cold-every-time) are counted for observability.
///
/// Clones share the swallowed-save counter, so the count survives the
/// clone-per-call patterns the warm-start paths use.
#[derive(Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    backoff: Backoff,
    clock: Arc<dyn Clock>,
    swallowed: Arc<AtomicU64>,
    shards: usize,
}

impl std::fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotStore")
            .field("dir", &self.dir)
            .field("backoff", &self.backoff)
            .field("shards", &self.shards)
            .field("swallowed", &self.swallowed_saves())
            .finish_non_exhaustive()
    }
}

impl SnapshotStore {
    /// A store rooted at `dir` (created lazily on first save).
    pub fn new(dir: impl Into<PathBuf>) -> SnapshotStore {
        SnapshotStore {
            dir: dir.into(),
            backoff: Backoff::default(),
            clock: Arc::new(SystemClock),
            swallowed: Arc::new(AtomicU64::new(0)),
            shards: 1,
        }
    }

    /// A store rooted at `$CROWD_SNAPSHOT_DIR`, when set and non-empty.
    pub fn from_env() -> Option<SnapshotStore> {
        std::env::var(ENV_DIR).ok().filter(|v| !v.is_empty()).map(SnapshotStore::new)
    }

    /// Replaces the retry policy for transient save failures.
    pub fn with_backoff(mut self, backoff: Backoff) -> SnapshotStore {
        self.backoff = backoff;
        self
    }

    /// Replaces the clock backing retry delays (inject a
    /// [`crowd_ingest::ManualClock`] in tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> SnapshotStore {
        self.clock = clock;
        self
    }

    /// Sets how many instance shards [`save`](Self::save) partitions a
    /// snapshot into (the `--shards` knob). A pure write-*layout* choice:
    /// the fingerprint, the decoded contents, and every scan result are
    /// bit-identical at any shard count — only the granularity of partial
    /// reads and corruption isolation changes. Readers stream whatever
    /// layout is on disk.
    pub fn with_shards(mut self, shards: usize) -> SnapshotStore {
        self.shards = shards.max(1);
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured shard count (see [`with_shards`](Self::with_shards)).
    /// The warm-start paths branch on `shards() > 1` to pick the streaming
    /// build over the monolithic one.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The file a config maps to.
    pub fn path_for(&self, cfg: &SimConfig) -> PathBuf {
        self.dir.join(format!("snap-{:016x}.bin", fingerprint(cfg)))
    }

    /// Loads and fully verifies the snapshot for `cfg`.
    ///
    /// Every failure — missing file, bad magic, version skew, fingerprint
    /// mismatch, truncation, checksum or shape corruption — comes back as
    /// an error the caller treats as a cache miss. Loading streams shard
    /// sections through one reusable buffer instead of reading the whole
    /// file first, so peak memory is the dataset plus a single shard.
    pub fn load(&self, cfg: &SimConfig) -> Result<Snapshot, SnapshotError> {
        self.open_reader(cfg)?.into_snapshot()
    }

    /// Opens a shard-granular reader over the snapshot for `cfg` — the
    /// bounded-memory path: header and meta verify up front, instance
    /// sections load (and verify) only when asked for.
    pub fn open_reader(&self, cfg: &SimConfig) -> Result<ShardedSnapshotReader, SnapshotError> {
        ShardedSnapshotReader::open(self.path_for(cfg), fingerprint(cfg))
    }

    /// Opens an incremental [`SnapshotWriter`] for `cfg` — the streaming
    /// dual of [`save`](Self::save): shard sections land on disk as the
    /// producer flushes them, the meta payload and directory are written
    /// last, and the file publishes atomically on
    /// [`finish`](SnapshotWriter::finish).
    ///
    /// `planned_rows` sizes the shard layout up front (the store's shard
    /// count divides it into chunk-aligned pieces); an estimate is fine —
    /// the directory records actual flush counts.
    pub fn open_writer(
        &self,
        cfg: &SimConfig,
        planned_rows: usize,
    ) -> Result<SnapshotWriter, SnapshotError> {
        std::fs::create_dir_all(&self.dir)?;
        self.sweep_stale();
        let shard_rows = crowd_core::ShardPlan::new(planned_rows, self.shards).shard_rows();
        SnapshotWriter::create(self.path_for(cfg), fingerprint(cfg), shard_rows)
    }

    /// Removes stale temp files (`snap-*.tmp.<pid>`) left behind by
    /// crashed writers, skipping this process's own. Returns how many were
    /// removed. Best-effort: an unreadable directory sweeps nothing.
    pub fn sweep_stale(&self) -> usize {
        let own_suffix = format!(".tmp.{}", std::process::id());
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return 0 };
        let mut swept = 0;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("snap-")
                && name.contains(".tmp.")
                && !name.ends_with(&own_suffix)
                && std::fs::remove_file(entry.path()).is_ok()
            {
                swept += 1;
            }
        }
        swept
    }

    /// Writes the snapshot for `cfg`, returning the final path.
    ///
    /// Stale temp files are swept first; transient IO errors
    /// (`Interrupted`, `WouldBlock`) are retried under the store's
    /// backoff; anything else is surfaced after cleaning up the temp.
    pub fn save(&self, cfg: &SimConfig, snapshot: &Snapshot) -> Result<PathBuf, SnapshotError> {
        std::fs::create_dir_all(&self.dir)?;
        self.sweep_stale();
        let path = self.path_for(cfg);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let bytes = encode_sharded(snapshot, fingerprint(cfg), self.shards);
        let mut retries = 0u32;
        loop {
            match std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &path)) {
                Ok(()) => return Ok(path),
                Err(e) if is_transient(&e) && retries < self.backoff.max_retries => {
                    self.clock.sleep(self.backoff.delay(retries));
                    retries += 1;
                }
                Err(e) => {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(e.into());
                }
            }
        }
    }

    /// Records a save failure the caller swallowed (fell back to running
    /// cold). The warm-start paths call this so degraded caches are
    /// observable instead of silent.
    pub fn note_swallowed_save(&self) {
        self.swallowed.fetch_add(1, Ordering::Relaxed);
    }

    /// How many save failures were swallowed over this store's lifetime
    /// (shared across clones).
    pub fn swallowed_saves(&self) -> u64 {
        self.swallowed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("crowd-snapshot-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::new(dir)
    }

    #[test]
    fn save_then_load_hits() {
        let store = temp_store("hit");
        let cfg = SimConfig::tiny(11);
        assert!(matches!(store.load(&cfg), Err(SnapshotError::Io(_))), "cold miss");
        let snap = Snapshot { dataset: crowd_sim::simulate(&cfg), derived: None };
        let path = store.save(&cfg, &snap).expect("save");
        assert!(path.exists());
        let back = store.load(&cfg).expect("warm hit");
        assert_eq!(back.dataset.instances, snap.dataset.instances);
        // A different config is a different key: still a miss.
        assert!(store.load(&SimConfig::tiny(12)).is_err());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn distinct_configs_map_to_distinct_files() {
        let store = SnapshotStore::new("snapshots");
        let a = store.path_for(&SimConfig::tiny(1));
        let b = store.path_for(&SimConfig::tiny(2));
        let c = store.path_for(&SimConfig::new(1, 0.002));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, store.path_for(&SimConfig::tiny(1)));
    }

    #[test]
    fn save_sweeps_stale_temps_but_not_live_snapshots() {
        let store = temp_store("sweep");
        std::fs::create_dir_all(store.dir()).unwrap();
        let stale = store.dir().join("snap-00000000deadbeef.tmp.99999999");
        let own = store.dir().join(format!("snap-cafe.tmp.{}", std::process::id()));
        std::fs::write(&stale, b"torn").unwrap();
        std::fs::write(&own, b"in flight").unwrap();

        let cfg = SimConfig::tiny(13);
        let snap = Snapshot { dataset: crowd_sim::simulate(&cfg), derived: None };
        store.save(&cfg, &snap).expect("save");

        assert!(!stale.exists(), "stale foreign temp removed");
        assert!(own.exists(), "this process's temp is never swept");
        assert!(store.path_for(&cfg).exists(), "real snapshot landed");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn sweep_is_a_noop_on_a_missing_directory() {
        let store = temp_store("sweep-missing");
        assert_eq!(store.sweep_stale(), 0);
    }

    #[test]
    fn swallowed_saves_are_counted_across_clones() {
        let store = temp_store("counter");
        assert_eq!(store.swallowed_saves(), 0);
        let clone = store.clone();
        clone.note_swallowed_save();
        store.note_swallowed_save();
        assert_eq!(store.swallowed_saves(), 2, "clones share the counter");
        assert_eq!(clone.swallowed_saves(), 2);
    }

    #[test]
    fn unwritable_destination_is_an_error_not_a_hang() {
        // Root the store *under a file*, so create_dir_all must fail —
        // works regardless of process privileges (unlike chmod).
        let blocker =
            std::env::temp_dir().join(format!("crowd-snapshot-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let store = SnapshotStore::new(blocker.join("store"));
        let cfg = SimConfig::tiny(14);
        let snap = Snapshot { dataset: crowd_sim::simulate(&cfg), derived: None };
        assert!(matches!(store.save(&cfg, &snap), Err(SnapshotError::Io(_))));
        let _ = std::fs::remove_file(&blocker);
    }
}
