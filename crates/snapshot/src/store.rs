//! Directory-backed snapshot storage, keyed by config fingerprint.

use std::path::{Path, PathBuf};

use crowd_sim::SimConfig;

use crate::{decode, encode, fingerprint, Snapshot, SnapshotError};

/// Environment variable naming the default snapshot directory (the CLI's
/// `--snapshot-dir` flag overrides it, `--no-snapshot` ignores it).
pub const ENV_DIR: &str = "CROWD_SNAPSHOT_DIR";

/// A directory of snapshot files, one per config fingerprint.
///
/// Files are named `snap-<fingerprint:016x>.bin`, so distinct configs
/// never collide and re-running a config overwrites its own entry. Writes
/// go to a temporary sibling first and land via rename, so a crashed or
/// concurrent writer can leave at worst a stale temp file, never a torn
/// snapshot under the final name.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// A store rooted at `dir` (created lazily on first save).
    pub fn new(dir: impl Into<PathBuf>) -> SnapshotStore {
        SnapshotStore { dir: dir.into() }
    }

    /// A store rooted at `$CROWD_SNAPSHOT_DIR`, when set and non-empty.
    pub fn from_env() -> Option<SnapshotStore> {
        std::env::var(ENV_DIR).ok().filter(|v| !v.is_empty()).map(SnapshotStore::new)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a config maps to.
    pub fn path_for(&self, cfg: &SimConfig) -> PathBuf {
        self.dir.join(format!("snap-{:016x}.bin", fingerprint(cfg)))
    }

    /// Loads and fully verifies the snapshot for `cfg`.
    ///
    /// Every failure — missing file, bad magic, version skew, fingerprint
    /// mismatch, truncation, checksum or shape corruption — comes back as
    /// an error the caller treats as a cache miss.
    pub fn load(&self, cfg: &SimConfig) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(self.path_for(cfg))?;
        decode(&bytes, fingerprint(cfg))
    }

    /// Writes the snapshot for `cfg`, returning the final path.
    pub fn save(&self, cfg: &SimConfig, snapshot: &Snapshot) -> Result<PathBuf, SnapshotError> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_for(cfg);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, encode(snapshot, fingerprint(cfg)))?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(path),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("crowd-snapshot-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::new(dir)
    }

    #[test]
    fn save_then_load_hits() {
        let store = temp_store("hit");
        let cfg = SimConfig::tiny(11);
        assert!(matches!(store.load(&cfg), Err(SnapshotError::Io(_))), "cold miss");
        let snap = Snapshot { dataset: crowd_sim::simulate(&cfg), derived: None };
        let path = store.save(&cfg, &snap).expect("save");
        assert!(path.exists());
        let back = store.load(&cfg).expect("warm hit");
        assert_eq!(back.dataset.instances, snap.dataset.instances);
        // A different config is a different key: still a miss.
        assert!(store.load(&SimConfig::tiny(12)).is_err());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn distinct_configs_map_to_distinct_files() {
        let store = SnapshotStore::new("snapshots");
        let a = store.path_for(&SimConfig::tiny(1));
        let b = store.path_for(&SimConfig::tiny(2));
        let c = store.path_for(&SimConfig::new(1, 0.002));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, store.path_for(&SimConfig::tiny(1)));
    }
}
