//! Incremental snapshot writing: shard sections land on disk as they are
//! flushed, so the snapshot is produced *during* simulation instead of
//! after it.
//!
//! [`SnapshotWriter`] is the persistence end of the streaming build
//! pipeline (DESIGN.md §16). It implements
//! [`ShardSink`](crowd_core::shard::ShardSink): each completed shard is
//! encoded, checksummed, and appended to a *sections* temp file
//! immediately, and only its 20-byte directory entry stays in memory.
//! [`finish`](SnapshotWriter::finish) then assembles the final file —
//! header, meta payload (entities, derived artifacts, shard directory,
//! `time_max`) and the streamed sections — in a second temp and publishes
//! it with a single rename. Peak writer memory is one encoded section,
//! regardless of table size.
//!
//! ## Crash safety
//!
//! The same discipline as `crowd-ingest` exports and
//! [`SnapshotStore::save`](crate::SnapshotStore::save): nothing ever
//! appears under the final `snap-<fp>.bin` name except via `rename` of a
//! fully written temp. A writer killed at *any* point — between shard
//! flushes, between the sections and the meta/directory assembly, or
//! mid-rename — leaves only `snap-…tmp.<pid>` temps behind, which the
//! store's [`sweep_stale`](crate::SnapshotStore::sweep_stale) removes on
//! the next run; the loader never sees a torn file under the final name.
//! Torn bytes that reach the loader anyway (truncated by the filesystem,
//! copied mid-write) are refused with the usual typed errors
//! ([`SnapshotError::Truncated`], checksum and shard-section failures).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crowd_core::dataset::{Dataset, InstanceColumns};
use crowd_core::query::ScanPass;
use crowd_core::shard::ShardSink;
use crowd_core::time::Timestamp;

use crate::sharded::{ShardDirectory, ShardSectionInfo};
use crate::{codec, format, Derived, SnapshotError, FORMAT_VERSION, MAGIC};

/// Streams per-shard instance sections to disk as they complete, then
/// writes the meta payload + shard directory last and publishes the file
/// atomically. See the module docs for the full protocol.
pub struct SnapshotWriter {
    final_path: PathBuf,
    sections_path: PathBuf,
    sections: BufWriter<File>,
    infos: Vec<ShardSectionInfo>,
    fingerprint: u64,
    shard_rows: usize,
    n_rows: usize,
    time_max: Option<Timestamp>,
}

impl std::fmt::Debug for SnapshotWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotWriter")
            .field("final_path", &self.final_path)
            .field("shard_rows", &self.shard_rows)
            .field("n_rows", &self.n_rows)
            .field("n_shards", &self.infos.len())
            .finish_non_exhaustive()
    }
}

impl SnapshotWriter {
    /// A writer that will publish to `final_path` once finished. Sections
    /// stream into a `…sections.tmp.<pid>` sibling created now.
    ///
    /// `shard_rows` fixes the layout up front (every flushed shard but the
    /// last must hold exactly this many rows); take it from a
    /// [`ShardPlan`](crowd_core::ShardPlan) over the *planned* row count —
    /// the directory is written last, from actual flush records, so an
    /// estimate that is off by a shard is still encoded exactly.
    ///
    /// # Panics
    /// When `shard_rows` is zero or not a [`ScanPass::CHUNK`] multiple
    /// (misaligned shard boundaries would change float-merge order for
    /// every future streamed scan of the file).
    pub fn create(
        final_path: impl Into<PathBuf>,
        fingerprint: u64,
        shard_rows: usize,
    ) -> Result<SnapshotWriter, SnapshotError> {
        assert!(
            shard_rows > 0 && shard_rows.is_multiple_of(ScanPass::CHUNK),
            "shard_rows must be a non-zero CHUNK multiple to keep merge order fixed"
        );
        let final_path = final_path.into();
        let sections_path = sibling_temp(&final_path, "sections");
        let sections = BufWriter::new(File::create(&sections_path)?);
        Ok(SnapshotWriter {
            final_path,
            sections_path,
            sections,
            infos: Vec::new(),
            fingerprint,
            shard_rows,
            n_rows: 0,
            time_max: None,
        })
    }

    /// Rows flushed so far (= the base the next shard must start at).
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// The layout's rows-per-shard (fixed at creation, CHUNK-aligned).
    /// Producers size their flush buffer from this so shard boundaries on
    /// disk match the layout the writer promised.
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Shard sections written so far.
    pub fn n_shards(&self) -> usize {
        self.infos.len()
    }

    /// Writes the meta payload (entities, optional derived artifacts, the
    /// shard directory built from the actual flush records, and the
    /// running `time_max` joined with the entity tables') plus the
    /// streamed sections into a temp, publishes it under the final name
    /// with one rename, and removes the sections temp. Returns the final
    /// path.
    pub fn finish(
        mut self,
        entities: &Dataset,
        derived: Option<&Derived>,
    ) -> Result<PathBuf, SnapshotError> {
        self.sections.flush()?;
        drop(self.sections); // close before re-opening to copy

        let directory =
            ShardDirectory::from_parts(self.n_rows as u64, self.shard_rows as u64, self.infos)
                .expect("flush keeps every shard full except the last");
        let time_max = [self.time_max, entities.time_max()].into_iter().flatten().max();
        let meta = codec::encode_meta(entities, derived, &directory, time_max);

        let tmp = sibling_temp(&self.final_path, "assemble");
        let result = (|| -> Result<(), SnapshotError> {
            let mut out = BufWriter::new(File::create(&tmp)?);
            out.write_all(&MAGIC)?;
            out.write_all(&FORMAT_VERSION.to_le_bytes())?;
            out.write_all(&0u32.to_le_bytes())?; // flags, reserved
            out.write_all(&self.fingerprint.to_le_bytes())?;
            out.write_all(&(meta.len() as u64).to_le_bytes())?;
            out.write_all(&format::checksum(&meta).to_le_bytes())?;
            out.write_all(&meta)?;
            std::io::copy(&mut File::open(&self.sections_path)?, &mut out)?;
            out.flush()?;
            drop(out);
            std::fs::rename(&tmp, &self.final_path)?;
            Ok(())
        })();
        let _ = std::fs::remove_file(&self.sections_path);
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result.map(|()| self.final_path)
    }

    /// Abandons the write, removing the sections temp. The final path is
    /// untouched (an older valid snapshot there stays valid).
    pub fn abort(self) {
        drop(self.sections);
        let _ = std::fs::remove_file(&self.sections_path);
    }
}

impl ShardSink for SnapshotWriter {
    type Error = SnapshotError;

    /// Encodes, checksums, and appends one completed shard.
    ///
    /// # Panics
    /// When `base` is not exactly [`rows`](Self::rows) (shards must arrive
    /// contiguously in ascending order), when the previous shard was short
    /// (only the final shard may be), or when the shard exceeds the
    /// layout's `shard_rows`.
    fn flush(&mut self, base: usize, shard: &InstanceColumns) -> Result<(), SnapshotError> {
        assert_eq!(base, self.n_rows, "shards must arrive contiguously in ascending order");
        assert_eq!(base % self.shard_rows, 0, "a short shard can only be the last one flushed");
        assert!(shard.len() <= self.shard_rows, "shard exceeds the planned shard_rows");
        let bytes = codec::encode_instances(shard, 0, shard.len());
        self.infos.push(ShardSectionInfo {
            rows: shard.len() as u32,
            byte_len: bytes.len() as u64,
            checksum: format::checksum(&bytes),
        });
        self.sections.write_all(&bytes)?;
        self.n_rows += shard.len();
        self.time_max =
            [self.time_max, shard.end_col().iter().copied().max()].into_iter().flatten().max();
        Ok(())
    }
}

/// A temp sibling of `final_path` that [`SnapshotStore::sweep_stale`]
/// recognizes: keeps the `snap-` prefix, contains `.tmp.`, and ends with
/// this process's pid so the store never sweeps its own live temps.
///
/// [`SnapshotStore::sweep_stale`]: crate::SnapshotStore::sweep_stale
fn sibling_temp(final_path: &Path, tag: &str) -> PathBuf {
    final_path.with_extension(format!("{tag}.tmp.{}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_sharded, fingerprint, Snapshot, SnapshotStore};
    use crowd_core::shard::ShardedColumns;
    use crowd_sim::SimConfig;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("crowd-snapshot-writer-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The load-bearing equivalence: streaming shards through the writer
    /// produces the same bytes as the monolithic `encode_sharded`.
    #[test]
    fn streamed_file_is_byte_identical_to_monolithic_encoding() {
        let cfg = SimConfig::new(31, 0.002);
        let ds = crowd_sim::simulate(&cfg);
        let derived = crate::warm::compute_derived(&ds, crowd_cluster::ClusterParams::default());
        let fp = fingerprint(&cfg);
        for shards in [1usize, 3, 100] {
            let monolithic = encode_sharded(
                &Snapshot { dataset: ds.clone(), derived: Some(derived.clone()) },
                fp,
                shards,
            );

            let dir = temp_dir(&format!("bytes-{shards}"));
            let sharded = ShardedColumns::split(ds.instances.clone(), shards);
            let mut writer =
                SnapshotWriter::create(dir.join("snap-test.bin"), fp, sharded.shard_rows())
                    .unwrap();
            for (base, shard) in sharded.iter_shards() {
                writer.flush(base, shard).unwrap();
            }
            let mut entities = ds.clone();
            entities.instances = crowd_core::dataset::InstanceColumns::new();
            let path = writer.finish(&entities, Some(&derived)).unwrap();

            let streamed = std::fs::read(&path).unwrap();
            assert_eq!(streamed, monolithic, "shards={shards}");
            assert_eq!(
                std::fs::read_dir(&dir).unwrap().count(),
                1,
                "no temps survive a finished write"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn empty_table_writes_a_valid_zero_shard_file() {
        let dir = temp_dir("empty");
        let entities = Dataset::default();
        let writer =
            SnapshotWriter::create(dir.join("snap-empty.bin"), 7, ScanPass::CHUNK).unwrap();
        let path = writer.finish(&entities, None).unwrap();
        let snap = crate::decode(&std::fs::read(&path).unwrap(), 7).unwrap();
        assert!(snap.dataset.instances.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abandoned_writer_leaves_only_sweepable_temps() {
        let dir = temp_dir("abandon");
        let cfg = SimConfig::tiny(3);
        let ds = crowd_sim::simulate(&cfg);
        let store = SnapshotStore::new(&dir);
        let final_path = store.path_for(&cfg);
        let shard_rows = crowd_core::ShardPlan::single(ds.instances.len()).shard_rows();
        let mut writer =
            SnapshotWriter::create(&final_path, fingerprint(&cfg), shard_rows).unwrap();
        writer.flush(0, &ds.instances).unwrap();
        // Simulate a crash between shard sections: drop without finish.
        drop(writer);
        assert!(!final_path.exists(), "no torn file under the final name");
        assert!(store.load(&cfg).is_err(), "loader treats the crash as a miss");
        // The only debris is a sweepable temp (matched by `sweep_stale`'s
        // pattern; it survives here only because this pid is still alive).
        let leftover: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(leftover.len(), 1);
        assert!(leftover[0].contains(".tmp."), "leftover is a temp: {leftover:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "ascending order")]
    fn gap_in_flushed_bases_is_rejected() {
        let dir = temp_dir("gap");
        let ds = crowd_sim::simulate(&SimConfig::tiny(3));
        let mut writer =
            SnapshotWriter::create(dir.join("snap-gap.bin"), 1, ScanPass::CHUNK).unwrap();
        let _ = writer.flush(ScanPass::CHUNK, &ds.instances);
    }
}
