//! Persistent binary snapshot cache: zero-resimulate warm starts.
//!
//! The `Dataset`, its clustering, and its per-batch enrichment are pure
//! functions of the [`SimConfig`] — yet every repro/export/bench run used
//! to re-pay the full generative pipeline (simulation, shingling, LSH,
//! feature extraction). This crate dumps all of that, once, into a
//! versioned, checksummed, little-endian binary columnar file, keyed by a
//! config fingerprint; subsequent runs with the same config load the file
//! and go straight to the fused scan.
//!
//! ## File layout (version [`FORMAT_VERSION`])
//!
//! ```text
//! header   magic "CROWDSNP" · version u32 · flags u32 (reserved, 0)
//!          · fingerprint u64 · payload_len u64 · checksum u64
//! payload  entity sections   sources · countries · workers · task types
//!          batch section     per-batch columns + HTML dictionary blob
//!          derived section   cluster params · labels · minhash signatures
//!                            · per-batch enrichment metrics (optional)
//!          shard directory   n_rows u64 · shard_rows u64 · n_shards u32
//!                            · per shard: rows u32 · byte_len u64
//!                              · checksum u64
//!          time_max          dataset-wide max instance end (optional)
//! shards   n_shards × instance section, each a self-contained slice of
//!          the InstanceColumns arrays, verbatim, independently
//!          checksummed via the directory
//! ```
//!
//! The header's `payload_len`/`checksum` cover only the meta payload; each
//! shard's instance section carries its own checksum in the directory.
//! Shard boundaries are [`crowd_core::ShardPlan`] boundaries — multiples
//! of the scan chunk — so a scan streamed shard-by-shard off the file
//! ([`sharded::ShardedSnapshotReader::fused`]) merges partial aggregates
//! in exactly the monolithic chunk order: the on-disk shard count is
//! bit-invisible, it only bounds how much of the table must be resident
//! at once. A warm start that only needs some shards reads (and pays
//! checksum verification for) only those sections.
//!
//! All integers are little-endian; floats are stored as raw bit patterns,
//! so every `f32`/`f64` round-trips bit-exactly. Batch HTML is dictionary
//! encoded: each *distinct* page is stored once in a length-prefixed blob
//! table and batches reference it by index, which both shrinks the file
//! and rebuilds the [`crowd_core::dataset::HtmlArena`] sharing on load
//! (all batches referencing one dictionary slot share one `Arc<str>`).
//!
//! ## Integrity and fallback
//!
//! The cache must never be able to make a result wrong. [`decode`]
//! verifies, in order: magic, format version, config fingerprint, payload
//! length, payload checksum, and section-level shape (lengths, enum tags,
//! label bits, dangling ids via [`Dataset::validate`]). Any failure is
//! reported as a typed [`SnapshotError`]; the warm-start entry points in
//! [`warm`] treat *every* error identically — silently fall back to a
//! fresh simulation and overwrite the snapshot with a valid one.
//!
//! The fingerprint ([`fingerprint`]) hashes every [`SimConfig`] knob plus
//! the format version, and nothing else: thread count, host, and wall
//! clock cannot influence it, matching the pipeline's determinism
//! contract (equal configs ⇒ bit-identical datasets at any parallelism).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crowd_analytics::BatchMetrics;
use crowd_cluster::{ClusterParams, Signature};
use crowd_core::dataset::{Dataset, InstanceColumns};
use crowd_core::rng::stream_seed;
use crowd_core::shard::ShardPlan;
use crowd_sim::SimConfig;

mod codec;
pub mod format;
pub mod sharded;
mod store;
pub mod warm;
pub mod writer;

pub use sharded::{ShardDirectory, ShardSectionInfo, ShardedSnapshotReader};
pub use store::SnapshotStore;
pub use writer::SnapshotWriter;

/// Bumped on any change to the serialized layout; files written by other
/// versions are rejected (and silently regenerated) rather than
/// misinterpreted. Version 2 introduced the sharded instance sections.
pub const FORMAT_VERSION: u32 = 2;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"CROWDSNP";

/// Everything a warm start needs: the dataset plus (optionally) the
/// artifacts derived from it.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The simulated dataset, bit-identical to a fresh [`crowd_sim::simulate`].
    pub dataset: Dataset,
    /// Derived artifacts; `None` when only the dataset was persisted.
    pub derived: Option<Derived>,
}

/// Artifacts derived from the dataset, persisted so a warm run skips
/// shingling, LSH, and per-batch enrichment entirely.
#[derive(Debug, Clone)]
pub struct Derived {
    /// Parameters the clustering was computed with; a warm start only
    /// reuses the artifacts when these match the requested parameters.
    pub params: ClusterParams,
    /// Cluster label per sampled batch, in dataset order (dense ids).
    pub labels: Vec<u32>,
    /// Number of clusters.
    pub n_clusters: usize,
    /// MinHash signature per sampled batch, in dataset order.
    pub signatures: Vec<Signature>,
    /// Per-batch enrichment (§2.4 features + §4.1 metrics), in sampled
    /// order — the warm path rebuilds the `Study` from these directly.
    pub metrics: Vec<BatchMetrics>,
}

/// Errors a snapshot read can produce.
///
/// Callers on the warm path do not branch on the variant — every one of
/// these means "treat as cache miss" — but the distinctions are kept for
/// diagnostics and for the corruption-matrix tests, which assert that each
/// failure class is detected as itself.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem error (missing file is the ordinary cold-start case).
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file was written by a different format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
    },
    /// The file was written for a different simulation config.
    FingerprintMismatch {
        /// Fingerprint found in the header.
        found: u64,
        /// Fingerprint of the requested config.
        expected: u64,
    },
    /// The payload checksum did not match the header.
    ChecksumMismatch,
    /// One shard's instance section failed its checksum. Shard-granular:
    /// every other shard of the same file remains readable, so callers can
    /// re-derive just the damaged slice.
    ShardCorrupt {
        /// Index of the damaged shard section.
        shard: usize,
    },
    /// The file ended before a read completed (or a length prefix promised
    /// more bytes than present).
    Truncated,
    /// A section decoded to an invalid shape (bad enum tag, label bits,
    /// referential integrity, UTF-8, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::VersionMismatch { found } => {
                write!(f, "snapshot format v{found}, this build reads v{FORMAT_VERSION}")
            }
            SnapshotError::FingerprintMismatch { found, expected } => {
                write!(f, "snapshot fingerprint {found:#018x}, expected {expected:#018x}")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            SnapshotError::ShardCorrupt { shard } => {
                write!(f, "snapshot shard {shard} failed its section checksum")
            }
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot payload is corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// The cache key: every [`SimConfig`] knob folded together with the format
/// version.
///
/// Explicitly *independent of thread count* (and of anything else outside
/// the config): the simulation pipeline guarantees bit-identical output at
/// any parallelism, so one snapshot serves `--threads 1` and `--threads N`
/// runs alike. Folding in [`FORMAT_VERSION`] gives each format generation
/// its own key space, so an upgraded binary regenerates rather than
/// deleting old files another binary may still read.
pub fn fingerprint(cfg: &SimConfig) -> u64 {
    stream_seed(cfg.fingerprint(), u64::from(FORMAT_VERSION))
}

/// Serializes a snapshot into the on-disk byte format, keyed by
/// `fingerprint`, with a single instance shard. Equivalent to
/// [`encode_sharded`] with `shards == 1`.
pub fn encode(snapshot: &Snapshot, fingerprint: u64) -> Vec<u8> {
    encode_sharded(snapshot, fingerprint, 1)
}

/// Serializes a snapshot with its instance table partitioned into (up to)
/// `shards` independently checksummed sections.
///
/// The shard count is a *layout* knob, not part of the cache key: readers
/// stream whatever partitioning is on disk, decoded contents are
/// bit-identical at any shard count, and the fingerprint is unchanged.
/// Fewer shards than requested may be written — [`ShardPlan`] keeps every
/// boundary scan-chunk-aligned so shard count stays bit-invisible to
/// streamed scans.
pub fn encode_sharded(snapshot: &Snapshot, fingerprint: u64, shards: usize) -> Vec<u8> {
    let cols = &snapshot.dataset.instances;
    let plan = ShardPlan::new(cols.len(), shards);
    let mut sections: Vec<Vec<u8>> = Vec::with_capacity(plan.n_shards());
    let mut infos = Vec::with_capacity(plan.n_shards());
    for range in plan.ranges() {
        let bytes = codec::encode_instances(cols, range.start, range.end);
        infos.push(ShardSectionInfo {
            rows: (range.end - range.start) as u32,
            byte_len: bytes.len() as u64,
            checksum: format::checksum(&bytes),
        });
        sections.push(bytes);
    }
    let directory = ShardDirectory::from_parts(cols.len() as u64, plan.shard_rows() as u64, infos)
        .expect("encoder builds a consistent directory");
    let meta = codec::encode_meta(
        &snapshot.dataset,
        snapshot.derived.as_ref(),
        &directory,
        snapshot.dataset.time_max(),
    );
    let total: usize = sections.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(40 + meta.len() + total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // flags, reserved
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(meta.len() as u64).to_le_bytes());
    out.extend_from_slice(&format::checksum(&meta).to_le_bytes());
    out.extend_from_slice(&meta);
    for s in &sections {
        out.extend_from_slice(s);
    }
    out
}

/// Deserializes a snapshot, verifying (in order) magic, version,
/// fingerprint, meta payload length, meta checksum and shape, and every
/// shard section's checksum and shape.
///
/// For shard-granular or bounded-memory access to a snapshot *file*, use
/// [`ShardedSnapshotReader`] instead — this entry point requires the whole
/// file in memory and materializes every shard.
pub fn decode(bytes: &[u8], expected_fingerprint: u64) -> Result<Snapshot, SnapshotError> {
    let mut r = format::ByteReader::new(bytes);
    if r.take(8).map_err(|_| SnapshotError::Truncated)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::VersionMismatch { found: version });
    }
    let _flags = r.u32()?;
    let found = r.u64()?;
    if found != expected_fingerprint {
        return Err(SnapshotError::FingerprintMismatch { found, expected: expected_fingerprint });
    }
    let payload_len = r.u64()? as usize;
    let stored_sum = r.u64()?;
    if r.remaining() < payload_len {
        return Err(SnapshotError::Truncated);
    }
    let meta_bytes = r.take(payload_len)?;
    if format::checksum(meta_bytes) != stored_sum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let codec::DecodedMeta { mut entities, derived, directory, time_max: _ } =
        codec::decode_meta(meta_bytes)?;
    let mut cols = InstanceColumns::new();
    cols.reserve(directory.n_rows() as usize);
    let (n_batches, n_workers) = (entities.batches.len(), entities.workers.len());
    for (shard, sec) in directory.sections().iter().enumerate() {
        let bytes = r.take(sec.byte_len as usize)?;
        if format::checksum(bytes) != sec.checksum {
            return Err(SnapshotError::ShardCorrupt { shard });
        }
        codec::decode_instances_into(bytes, sec.rows as usize, n_batches, n_workers, &mut cols)?;
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::Corrupt("trailing bytes"));
    }
    entities.instances = cols;
    entities.validate().map_err(|_| SnapshotError::Corrupt("dataset integrity"))?;
    Ok(Snapshot { dataset: entities, derived })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> Snapshot {
        Snapshot { dataset: crowd_sim::simulate(&SimConfig::tiny(5)), derived: None }
    }

    #[test]
    fn fingerprint_differs_by_config_and_version_domain() {
        let a = fingerprint(&SimConfig::tiny(1));
        let b = fingerprint(&SimConfig::tiny(2));
        let c = fingerprint(&SimConfig::new(1, 0.002));
        assert_ne!(a, b);
        assert_ne!(a, c);
        // The version fold keeps the snapshot key distinct from the raw
        // config digest.
        assert_ne!(a, SimConfig::tiny(1).fingerprint());
    }

    #[test]
    fn header_failures_are_detected_in_order() {
        let snap = tiny_snapshot();
        let fp = fingerprint(&SimConfig::tiny(5));
        let good = encode(&snap, fp);
        assert!(decode(&good, fp).is_ok());

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode(&bad, fp), Err(SnapshotError::BadMagic)));

        let mut bad = good.clone();
        bad[8] = 99; // version field
        assert!(matches!(decode(&bad, fp), Err(SnapshotError::VersionMismatch { found: 99 })));

        assert!(matches!(decode(&good, fp ^ 1), Err(SnapshotError::FingerprintMismatch { .. })));

        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x10; // last shard section byte
        assert!(matches!(decode(&bad, fp), Err(SnapshotError::ShardCorrupt { shard: 0 })));

        let mut bad = good.clone();
        bad[41] ^= 0x10; // meta payload byte
        assert!(matches!(decode(&bad, fp), Err(SnapshotError::ChecksumMismatch)));

        assert!(matches!(decode(&good[..good.len() - 3], fp), Err(SnapshotError::Truncated)));
        assert!(matches!(decode(&good[..20], fp), Err(SnapshotError::Truncated)));
    }
}
