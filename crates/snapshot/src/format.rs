//! Little-endian byte-level primitives shared by the encoder and decoder.
//!
//! Everything in the snapshot file reduces to four shapes: fixed-width
//! scalars, length-prefixed byte strings, length-prefixed homogeneous
//! arrays of scalars, and the payload checksum. [`ByteWriter`] and
//! [`ByteReader`] implement those shapes symmetrically; the section codecs
//! in [`crate::codec`] never touch raw bytes directly.
//!
//! The reader is written for the hostile-input case: every read is
//! bounds-checked and returns [`SnapshotError::Truncated`] instead of
//! panicking, because a corrupt or short file must fall back to a fresh
//! simulation, never abort the process.

use crate::SnapshotError;

/// Appends little-endian values to a growing byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> ByteWriter {
        ByteWriter { buf: Vec::with_capacity(capacity) }
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16` little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64` little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` as its little-endian bit pattern (exact round-trip).
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Writes an `f64` as its little-endian bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed (u32) byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes a length-prefixed array of `u32`s.
    pub fn u32_slice(&mut self, vs: &[u32]) {
        self.u32(vs.len() as u32);
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a length-prefixed array of `u64`s.
    pub fn u64_slice(&mut self, vs: &[u64]) {
        self.u32(vs.len() as u32);
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Bounds-checked cursor over an immutable byte slice.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f32` bit pattern.
    pub fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length prefix that promises `width`-byte elements, rejecting
    /// lengths the remaining input cannot possibly hold (so corrupt huge
    /// lengths fail fast instead of attempting a giant allocation).
    pub fn len_prefix(&mut self, width: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(width) > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.len_prefix(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| SnapshotError::Corrupt("invalid utf-8"))
    }

    /// Reads a length-prefixed array of `u32`s.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.len_prefix(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed array of `u64`s.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.len_prefix(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }
}

/// One step of the splitmix64 output function: a bijective `u64` finalizer
/// with full avalanche (same construction as `crowd_core::rng`).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// 64-bit payload checksum: splitmix64-mixed 8-byte blocks, seeded with the
/// payload length.
///
/// Not cryptographic — it guards against torn writes, truncation, and
/// bit rot, where any flipped bit avalanches through the mix. Processing
/// whole words keeps it ~8× faster than a byte-at-a-time FNV over the
/// tens-of-megabytes instance section, which matters because the checksum
/// is verified on every warm start.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = mix(0xC0FF_EE00_5EED ^ bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h = mix(h ^ u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = mix(h ^ u64::from_le_bytes(last));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = ByteWriter::default();
        w.u8(7);
        w.u16(65_535);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-12345);
        w.f32(0.25);
        w.f64(-0.0);
        w.str("héllo");
        w.u32_slice(&[1, 2, 3]);
        w.u64_slice(&[]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65_535);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -12345);
        assert_eq!(r.f32().unwrap(), 0.25);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u64_vec().unwrap(), Vec::<u64>::new());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn short_reads_are_truncation_errors() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(matches!(r.u64(), Err(SnapshotError::Truncated)));
        // A length prefix promising more than the buffer holds is rejected
        // before any allocation.
        let mut w = ByteWriter::default();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(ByteReader::new(&bytes).u64_vec(), Err(SnapshotError::Truncated)));
    }

    #[test]
    fn checksum_sees_every_bit() {
        let payload: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        let base = checksum(&payload);
        for flip in [0usize, 7, 512, 1023] {
            let mut corrupt = payload.clone();
            corrupt[flip] ^= 0x01;
            assert_ne!(checksum(&corrupt), base, "flip at byte {flip}");
        }
        assert_ne!(checksum(&payload[..1023]), base, "truncation changes the sum");
        assert_eq!(checksum(&payload), base, "deterministic");
    }
}
