//! Payload section codecs: entity tables, batch columns + HTML dictionary,
//! per-shard verbatim instance columns, and the derived-artifact section.
//!
//! The codec is split along the file's two-tier layout: [`encode_meta`] /
//! [`decode_meta`] handle everything the header checksum covers (entities,
//! batches, derived artifacts, shard directory), while [`encode_instances`]
//! / [`decode_instances_into`] handle one shard's slice of the instance
//! table — each shard section is self-contained so it can be read,
//! verified, and decoded independently of every other shard.
//!
//! Encoding is column-oriented to mirror [`InstanceColumns`]: each fixed
//! width field of the instance table is dumped as one contiguous array, so
//! the hot sections are straight `memcpy`-shaped loops in both directions.
//! Every decoder validates shape as it goes (enum tags, label bits,
//! dictionary references, column lengths, entity references), so a
//! snapshot that decodes successfully is as trustworthy as a freshly
//! simulated dataset.

use std::collections::HashMap;
// Shadow the `crowd_core::prelude` single-argument `Result` alias: this
// module's fallible paths return `SnapshotError`, not `CoreError`.
use std::result::Result;
use std::sync::Arc;

use crowd_analytics::BatchMetrics;
use crowd_cluster::{ClusterParams, Signature};
use crowd_core::dataset::{Dataset, InstanceColumns};
use crowd_core::prelude::*;
use crowd_html::ExtractedFeatures;

use crate::format::{ByteReader, ByteWriter};
use crate::sharded::{ShardDirectory, ShardSectionInfo};
#[cfg(test)]
use crate::Snapshot;
use crate::{Derived, SnapshotError};

/// Everything the meta payload carries: the dataset minus its instance
/// rows, plus the directory locating those rows' shard sections.
pub(crate) struct DecodedMeta {
    /// Entity tables and batches, with an empty instance table.
    pub entities: Dataset,
    /// Derived artifacts, when persisted.
    pub derived: Option<Derived>,
    /// Shard directory for the instance sections that follow the payload.
    pub directory: ShardDirectory,
    /// The dataset's `time_max` at encode time (instance end times are not
    /// recoverable from the entity tables alone).
    pub time_max: Option<Timestamp>,
}

/// Serializes the meta payload: entities, batches + HTML dictionary,
/// derived artifacts, and the shard directory.
///
/// `time_max` is persisted explicitly rather than derived from `ds`: the
/// streaming writer encodes the meta against an entities-only dataset
/// (instance rows already live in flushed shard sections), whose own
/// `time_max()` would miss every instance end time.
pub(crate) fn encode_meta(
    ds: &Dataset,
    derived: Option<&Derived>,
    directory: &ShardDirectory,
    time_max: Option<Timestamp>,
) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(4096 + ds.batches.len() * 24);

    // ---- entity tables --------------------------------------------------
    w.u32(ds.sources.len() as u32);
    for s in &ds.sources {
        w.str(&s.name);
        w.u8(kind_tag(s.kind));
    }
    w.u32(ds.countries.len() as u32);
    for c in &ds.countries {
        w.str(&c.name);
    }
    w.u32(ds.workers.len() as u32);
    for worker in &ds.workers {
        w.u32(worker.source.raw());
    }
    for worker in &ds.workers {
        w.u32(worker.country.raw());
    }
    w.u32(ds.task_types.len() as u32);
    for tt in &ds.task_types {
        w.str(&tt.title);
        w.u16(tt.goals.bits());
        w.u16(tt.operators.bits());
        w.u16(tt.data_types.bits());
        w.u16(tt.choice_arity);
    }

    // ---- batches + HTML dictionary --------------------------------------
    // Dictionary-encode pages by pointer first, value second: batches
    // sharing one interned `Arc<str>` hit the pointer key without a string
    // compare, and distinct allocations holding equal text still collapse
    // to one dictionary slot.
    let mut dict: Vec<&str> = Vec::new();
    let mut slot_by_ptr: HashMap<*const u8, u32> = HashMap::new();
    let mut slot_by_text: HashMap<&str, u32> = HashMap::new();
    let mut html_refs: Vec<u32> = Vec::with_capacity(ds.batches.len());
    for b in &ds.batches {
        html_refs.push(match &b.html {
            None => u32::MAX,
            Some(html) => {
                let ptr = html.as_ptr();
                *slot_by_ptr.entry(ptr).or_insert_with(|| {
                    *slot_by_text.entry(html.as_ref()).or_insert_with(|| {
                        dict.push(html.as_ref());
                        dict.len() as u32 - 1
                    })
                })
            }
        });
    }
    w.u32(ds.batches.len() as u32);
    for b in &ds.batches {
        w.u32(b.task_type.raw());
    }
    for b in &ds.batches {
        w.i64(b.created_at.as_secs());
    }
    w.u32_slice(&html_refs);
    let mut sampled_bits = vec![0u8; ds.batches.len().div_ceil(8)];
    for (i, b) in ds.batches.iter().enumerate() {
        if b.sampled {
            sampled_bits[i / 8] |= 1 << (i % 8);
        }
    }
    w.bytes(&sampled_bits);
    w.u32(dict.len() as u32);
    for page in &dict {
        w.str(page);
    }

    // ---- derived artifacts ----------------------------------------------
    match derived {
        None => w.u8(0),
        Some(d) => {
            w.u8(1);
            w.u64(d.params.shingle_k as u64);
            w.u64(d.params.n_hashes as u64);
            w.u64(d.params.bands as u64);
            w.f64(d.params.threshold);
            w.u64(d.params.seed);
            w.u32_slice(&d.labels);
            w.u32(d.n_clusters as u32);
            w.u32(d.signatures.len() as u32);
            for sig in &d.signatures {
                w.u64_slice(&sig.0);
            }
            w.u32(d.metrics.len() as u32);
            for m in &d.metrics {
                w.u32(m.cluster);
                w.u32(m.n_instances);
                w.u32(m.n_items);
                opt_f64(&mut w, m.disagreement);
                opt_f64(&mut w, m.task_time);
                opt_f64(&mut w, m.pickup_time);
                w.u32(m.features.words);
                w.u32(m.features.text_boxes);
                w.u32(m.features.examples);
                w.u32(m.features.images);
                w.u32(m.features.input_fields);
                w.u8(u8::from(m.features.has_instructions));
            }
        }
    }

    // ---- shard directory -------------------------------------------------
    w.u64(directory.n_rows());
    w.u64(directory.shard_rows());
    w.u32(directory.n_shards() as u32);
    for s in directory.sections() {
        w.u32(s.rows);
        w.u64(s.byte_len);
        w.u64(s.checksum);
    }
    // Dataset-wide time_max, so streamed scans see the same week window as
    // a scan over the materialized table.
    match time_max {
        None => w.u8(0),
        Some(t) => {
            w.u8(1);
            w.i64(t.as_secs());
        }
    }

    w.into_bytes()
}

/// Deserializes and validates the meta payload.
pub(crate) fn decode_meta(payload: &[u8]) -> Result<DecodedMeta, SnapshotError> {
    let mut r = ByteReader::new(payload);

    // ---- entity tables --------------------------------------------------
    let n_sources = r.len_prefix(2)?;
    let mut sources = Vec::with_capacity(n_sources);
    for _ in 0..n_sources {
        let name = r.str()?;
        sources.push(Source::new(name, kind_from_tag(r.u8()?)?));
    }
    let n_countries = r.len_prefix(1)?;
    let mut countries = Vec::with_capacity(n_countries);
    for _ in 0..n_countries {
        countries.push(Country::new(r.str()?));
    }
    let n_workers = r.len_prefix(8)?;
    let mut workers = Vec::with_capacity(n_workers);
    for _ in 0..n_workers {
        workers.push(Worker::new(SourceId::new(r.u32()?), CountryId::new(0)));
    }
    for worker in &mut workers {
        worker.country = CountryId::new(r.u32()?);
    }
    let n_types = r.len_prefix(8)?;
    let mut task_types = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        let title = r.str()?;
        let bad_bits = |_| SnapshotError::Corrupt("label bits");
        let mut tt = TaskType::new(title);
        tt.goals = LabelSet::from_bits(r.u16()?).map_err(bad_bits)?;
        tt.operators = LabelSet::from_bits(r.u16()?).map_err(bad_bits)?;
        tt.data_types = LabelSet::from_bits(r.u16()?).map_err(bad_bits)?;
        task_types.push(tt.with_choice_arity(r.u16()?));
    }

    // ---- batches + HTML dictionary --------------------------------------
    let n_batches = r.len_prefix(4)?;
    let mut type_col = Vec::with_capacity(n_batches);
    for _ in 0..n_batches {
        type_col.push(TaskTypeId::new(r.u32()?));
    }
    let mut created_col = Vec::with_capacity(n_batches);
    for _ in 0..n_batches {
        created_col.push(Timestamp::from_secs(r.i64()?));
    }
    let html_refs = r.u32_vec()?;
    let sampled_bits = r.bytes()?;
    if html_refs.len() != n_batches || sampled_bits.len() != n_batches.div_ceil(8) {
        return Err(SnapshotError::Corrupt("batch column lengths"));
    }
    let n_dict = r.len_prefix(4)?;
    // One `Arc<str>` per distinct page, cloned into every referencing
    // batch: this rebuilds exactly the sharing the builder's `HtmlArena`
    // established at simulation time.
    let mut dict: Vec<Arc<str>> = Vec::with_capacity(n_dict);
    for _ in 0..n_dict {
        dict.push(Arc::from(r.str()?));
    }
    let mut batches = Vec::with_capacity(n_batches);
    for i in 0..n_batches {
        let mut b = Batch::new(type_col[i], created_col[i]);
        b.sampled = sampled_bits[i / 8] & (1 << (i % 8)) != 0;
        b.html = match html_refs[i] {
            u32::MAX => None,
            slot => Some(
                dict.get(slot as usize)
                    .ok_or(SnapshotError::Corrupt("html dictionary reference"))?
                    .clone(),
            ),
        };
        batches.push(b);
    }

    let entities = Dataset {
        sources,
        countries,
        workers,
        task_types,
        batches,
        instances: InstanceColumns::new(),
    };
    // Validate the entity graph now: the derived section and every shard
    // decode check their references against these tables.
    entities.validate().map_err(|_| SnapshotError::Corrupt("dataset integrity"))?;

    // ---- derived artifacts ----------------------------------------------
    let derived = match r.u8()? {
        0 => None,
        1 => Some(decode_derived(&mut r, &entities)?),
        _ => return Err(SnapshotError::Corrupt("derived flag")),
    };

    // ---- shard directory -------------------------------------------------
    let n_rows = r.u64()?;
    let shard_rows = r.u64()?;
    let n_shards = r.len_prefix(20)?; // 20 bytes per directory entry
    let mut sections = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        sections.push(ShardSectionInfo { rows: r.u32()?, byte_len: r.u64()?, checksum: r.u64()? });
    }
    let directory = ShardDirectory::from_parts(n_rows, shard_rows, sections)
        .ok_or(SnapshotError::Corrupt("shard directory"))?;
    let time_max = match r.u8()? {
        0 => None,
        1 => Some(Timestamp::from_secs(r.i64()?)),
        _ => return Err(SnapshotError::Corrupt("time_max tag")),
    };
    if r.remaining() != 0 {
        return Err(SnapshotError::Corrupt("trailing bytes"));
    }
    Ok(DecodedMeta { entities, derived, directory, time_max })
}

/// Serializes rows `lo..hi` of the instance table as one self-contained
/// shard section.
pub(crate) fn encode_instances(cols: &InstanceColumns, lo: usize, hi: usize) -> Vec<u8> {
    // Instance rows dominate the file; ~42 bytes each is a close upper
    // bound for choice/skip answers and avoids most buffer regrowth.
    let mut w = ByteWriter::with_capacity(8 + (hi - lo) * 42);
    w.u32((hi - lo) as u32);
    for &b in &cols.batch_col()[lo..hi] {
        w.u32(b.raw());
    }
    for &i in &cols.item_col()[lo..hi] {
        w.u32(i.raw());
    }
    for &wk in &cols.worker_col()[lo..hi] {
        w.u32(wk.raw());
    }
    for &t in &cols.start_col()[lo..hi] {
        w.i64(t.as_secs());
    }
    for &t in &cols.end_col()[lo..hi] {
        w.i64(t.as_secs());
    }
    for &t in &cols.trust_col()[lo..hi] {
        w.f32(t);
    }
    for a in &cols.answer_col()[lo..hi] {
        match a {
            Answer::Choice(c) => {
                w.u8(0);
                w.u16(*c);
            }
            Answer::Text(t) => {
                w.u8(1);
                w.str(t);
            }
            Answer::Skipped => w.u8(2),
        }
    }
    w.into_bytes()
}

/// Decodes one shard section, appending its rows onto `out`. Entity
/// references are bounds-checked against the meta counts so even the
/// streamed-scan path (which never runs [`Dataset::validate`] over a
/// materialized table) can trust every id it hands to an accumulator.
pub(crate) fn decode_instances_into(
    bytes: &[u8],
    expected_rows: usize,
    n_batches: usize,
    n_workers: usize,
    out: &mut InstanceColumns,
) -> Result<(), SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let n = r.len_prefix(33)?; // ≥ 33 bytes/row: 3×u32 + 2×i64 + f32 + tag
    if n != expected_rows {
        return Err(SnapshotError::Corrupt("shard row count"));
    }
    let mut batch_col = Vec::with_capacity(n);
    for _ in 0..n {
        let b = r.u32()?;
        if b as usize >= n_batches {
            return Err(SnapshotError::Corrupt("instance batch reference"));
        }
        batch_col.push(BatchId::new(b));
    }
    let mut item_col = Vec::with_capacity(n);
    for _ in 0..n {
        item_col.push(ItemId::new(r.u32()?));
    }
    let mut worker_col = Vec::with_capacity(n);
    for _ in 0..n {
        let wk = r.u32()?;
        if wk as usize >= n_workers {
            return Err(SnapshotError::Corrupt("instance worker reference"));
        }
        worker_col.push(WorkerId::new(wk));
    }
    let mut start_col = Vec::with_capacity(n);
    for _ in 0..n {
        start_col.push(Timestamp::from_secs(r.i64()?));
    }
    let mut end_col = Vec::with_capacity(n);
    for _ in 0..n {
        end_col.push(Timestamp::from_secs(r.i64()?));
    }
    let mut trust_col = Vec::with_capacity(n);
    for _ in 0..n {
        trust_col.push(r.f32()?);
    }
    let mut answer_col = Vec::with_capacity(n);
    for _ in 0..n {
        answer_col.push(match r.u8()? {
            0 => Answer::Choice(r.u16()?),
            1 => Answer::Text(r.str()?.to_string()),
            2 => Answer::Skipped,
            _ => return Err(SnapshotError::Corrupt("answer tag")),
        });
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::Corrupt("shard trailing bytes"));
    }
    let mut shard = InstanceColumns::from_parts(
        batch_col, item_col, worker_col, start_col, end_col, trust_col, answer_col,
    )
    .map_err(|_| SnapshotError::Corrupt("instance column lengths"))?;
    out.append(&mut shard);
    Ok(())
}

fn decode_derived(r: &mut ByteReader<'_>, ds: &Dataset) -> Result<Derived, SnapshotError> {
    let params = ClusterParams {
        shingle_k: r.u64()? as usize,
        n_hashes: r.u64()? as usize,
        bands: r.u64()? as usize,
        threshold: r.f64()?,
        seed: r.u64()?,
    };
    let labels = r.u32_vec()?;
    let n_clusters = r.u32()? as usize;
    let n_sampled = ds.batches.iter().filter(|b| b.sampled).count();
    if labels.len() != n_sampled {
        return Err(SnapshotError::Corrupt("label count vs sampled batches"));
    }
    // Dense-shape check (every id used, first occurrences increasing):
    // downstream scatter indexes arrays of size `n_clusters` by label.
    if crowd_cluster::Clustering::from_parts(labels.clone(), n_clusters).is_none() {
        return Err(SnapshotError::Corrupt("cluster labels not dense"));
    }
    let n_sigs = r.len_prefix(4)?;
    if n_sigs != n_sampled {
        return Err(SnapshotError::Corrupt("signature count"));
    }
    let mut signatures = Vec::with_capacity(n_sigs);
    for _ in 0..n_sigs {
        let sig = r.u64_vec()?;
        if sig.len() != params.n_hashes {
            return Err(SnapshotError::Corrupt("signature length"));
        }
        signatures.push(Signature(sig));
    }
    let n_metrics = r.len_prefix(34)?;
    if n_metrics != n_sampled {
        return Err(SnapshotError::Corrupt("metric count"));
    }
    let sampled_ids = ds
        .batches
        .iter()
        .enumerate()
        .filter(|(_, b)| b.sampled)
        .map(|(i, _)| BatchId::from_usize(i));
    let mut metrics = Vec::with_capacity(n_metrics);
    for (pos, batch) in sampled_ids.enumerate() {
        let cluster = r.u32()?;
        if cluster != labels[pos] {
            return Err(SnapshotError::Corrupt("metric cluster vs label"));
        }
        metrics.push(BatchMetrics {
            batch,
            cluster,
            n_instances: r.u32()?,
            n_items: r.u32()?,
            disagreement: opt_f64_read(r)?,
            task_time: opt_f64_read(r)?,
            pickup_time: opt_f64_read(r)?,
            features: ExtractedFeatures {
                words: r.u32()?,
                text_boxes: r.u32()?,
                examples: r.u32()?,
                images: r.u32()?,
                input_fields: r.u32()?,
                has_instructions: r.u8()? != 0,
            },
        });
    }
    Ok(Derived { params, labels, n_clusters, signatures, metrics })
}

fn opt_f64(w: &mut ByteWriter, v: Option<f64>) {
    match v {
        Some(v) => {
            w.u8(1);
            w.f64(v);
        }
        None => w.u8(0),
    }
}

fn opt_f64_read(r: &mut ByteReader<'_>) -> Result<Option<f64>, SnapshotError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.f64()?)),
        _ => Err(SnapshotError::Corrupt("option tag")),
    }
}

/// [`SourceKind`] on-disk tag: the variant's index in [`SourceKind::ALL`],
/// which is append-only.
fn kind_tag(kind: SourceKind) -> u8 {
    SourceKind::ALL.iter().position(|&k| k == kind).expect("ALL covers every variant") as u8
}

fn kind_from_tag(tag: u8) -> Result<SourceKind, SnapshotError> {
    SourceKind::ALL.get(tag as usize).copied().ok_or(SnapshotError::Corrupt("source kind tag"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_sim::SimConfig;

    fn roundtrip(snapshot: &Snapshot) -> Snapshot {
        let bytes = crate::encode(snapshot, 0xFEED);
        crate::decode(&bytes, 0xFEED).expect("valid snapshot decodes")
    }

    #[test]
    fn empty_dataset_round_trips() {
        let snap = Snapshot { dataset: Dataset::default(), derived: None };
        let back = roundtrip(&snap);
        assert_eq!(back.dataset.summary(), snap.dataset.summary());
        assert!(back.derived.is_none());
    }

    #[test]
    fn simulated_dataset_round_trips_bitwise() {
        let ds = crowd_sim::simulate(&SimConfig::tiny(42));
        let back = roundtrip(&Snapshot { dataset: ds.clone(), derived: None }).dataset;
        assert_eq!(back.sources, ds.sources);
        assert_eq!(back.countries, ds.countries);
        assert_eq!(back.workers, ds.workers);
        assert_eq!(back.task_types, ds.task_types);
        assert_eq!(back.batches, ds.batches);
        assert_eq!(back.instances, ds.instances);
    }

    #[test]
    fn sharded_encoding_round_trips_bitwise_at_any_shard_count() {
        let ds = crowd_sim::simulate(&SimConfig::tiny(42));
        let snap = Snapshot { dataset: ds.clone(), derived: None };
        for shards in [1usize, 2, 3, 8, 100] {
            let bytes = crate::encode_sharded(&snap, 0xFEED, shards);
            let back = crate::decode(&bytes, 0xFEED).expect("valid snapshot decodes");
            assert_eq!(back.dataset.instances, ds.instances, "{shards} shards");
            assert_eq!(back.dataset.batches, ds.batches, "{shards} shards");
        }
    }

    #[test]
    fn html_sharing_is_rebuilt() {
        let ds = crowd_sim::simulate(&SimConfig::tiny(7));
        let back = roundtrip(&Snapshot { dataset: ds.clone(), derived: None }).dataset;
        // Count distinct allocations among sampled pages: must not exceed
        // the number of distinct page texts (i.e. sharing survived).
        let distinct_text: std::collections::HashSet<&str> =
            ds.batches.iter().filter_map(|b| b.html.as_deref()).collect();
        let distinct_ptr: std::collections::HashSet<*const u8> =
            back.batches.iter().filter_map(|b| b.html.as_ref().map(|h| h.as_ptr())).collect();
        assert_eq!(distinct_ptr.len(), distinct_text.len());
    }

    #[test]
    fn derived_section_round_trips() {
        let ds = crowd_sim::simulate(&SimConfig::tiny(9));
        let derived = crate::warm::compute_derived(&ds, ClusterParams::default());
        let snap = Snapshot { dataset: ds, derived: Some(derived) };
        let back = roundtrip(&snap);
        let (a, b) = (snap.derived.as_ref().unwrap(), back.derived.as_ref().unwrap());
        assert_eq!(a.params, b.params);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.n_clusters, b.n_clusters);
        assert_eq!(a.signatures, b.signatures);
        assert_eq!(a.metrics.len(), b.metrics.len());
        for (ma, mb) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(ma.batch, mb.batch);
            assert_eq!(ma.cluster, mb.cluster);
            assert_eq!(ma.n_instances, mb.n_instances);
            assert_eq!(ma.n_items, mb.n_items);
            assert_eq!(ma.disagreement.map(f64::to_bits), mb.disagreement.map(f64::to_bits));
            assert_eq!(ma.task_time.map(f64::to_bits), mb.task_time.map(f64::to_bits));
            assert_eq!(ma.pickup_time.map(f64::to_bits), mb.pickup_time.map(f64::to_bits));
            assert_eq!(ma.features, mb.features);
        }
    }

    #[test]
    fn file_corruption_is_detected() {
        let ds = crowd_sim::simulate(&SimConfig::tiny(3));
        let bytes = crate::encode(&Snapshot { dataset: ds, derived: None }, 0xFEED);
        // Chopping the file anywhere must surface as an error, never a
        // panic or a silently different dataset.
        for cut in [0, 1, 10, 41, bytes.len() / 2, bytes.len() - 1] {
            assert!(crate::decode(&bytes[..cut], 0xFEED).is_err(), "cut at {cut}");
        }
    }
}
