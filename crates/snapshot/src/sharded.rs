//! Streaming, shard-granular access to snapshot files.
//!
//! A version-2 snapshot stores the instance table as independently
//! checksummed per-shard sections after the meta payload (see the layout
//! diagram in the crate docs). [`ShardedSnapshotReader`] opens a file,
//! verifies the header and meta payload once, and then reads shard
//! sections on demand with plain aligned `seek` + `read_exact` calls
//! straight into the section buffer — no intermediate whole-file read, so
//! peak memory for a scan is the entity tables plus **one** shard.
//!
//! Corruption is shard-granular: a damaged section surfaces as
//! [`SnapshotError::ShardCorrupt`] naming the shard, while every other
//! shard remains readable — callers can re-derive just the damaged slice
//! instead of discarding the whole cache entry.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use crowd_core::dataset::{Dataset, InstanceColumns};
use crowd_core::query::ScanPass;
use crowd_core::time::Timestamp;

use crate::format::{checksum, ByteReader};
use crate::{codec, Derived, Snapshot, SnapshotError, FORMAT_VERSION, MAGIC};

/// Location and integrity record of one shard's instance section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSectionInfo {
    /// Rows stored in this shard.
    pub rows: u32,
    /// Encoded section length in bytes.
    pub byte_len: u64,
    /// Checksum of the section bytes, verified independently per shard.
    pub checksum: u64,
}

/// The shard directory: how the instance table is partitioned on disk.
///
/// Shard boundaries are multiples of [`ScanPass::CHUNK`] — the same
/// alignment [`crowd_core::ShardPlan`] guarantees — so a streamed scan
/// merges partials in exactly the monolithic chunk order and shard count
/// stays bit-invisible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDirectory {
    n_rows: u64,
    shard_rows: u64,
    sections: Vec<ShardSectionInfo>,
}

impl ShardDirectory {
    /// Validates and assembles a directory; `None` when the shape is
    /// inconsistent (misaligned shard size, wrong section count, row
    /// totals that do not add up).
    pub(crate) fn from_parts(
        n_rows: u64,
        shard_rows: u64,
        sections: Vec<ShardSectionInfo>,
    ) -> Option<ShardDirectory> {
        if shard_rows == 0 || !shard_rows.is_multiple_of(ScanPass::CHUNK as u64) {
            return None;
        }
        let n_shards = n_rows.div_ceil(shard_rows);
        if sections.len() as u64 != n_shards {
            return None;
        }
        for (k, s) in sections.iter().enumerate() {
            let expect = if (k as u64) + 1 == n_shards {
                n_rows - shard_rows * (n_shards - 1)
            } else {
                shard_rows
            };
            if u64::from(s.rows) != expect {
                return None;
            }
        }
        Some(ShardDirectory { n_rows, shard_rows, sections })
    }

    /// Total instance rows across all shards.
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// Rows per shard (every shard but the last holds exactly this many).
    pub fn shard_rows(&self) -> u64 {
        self.shard_rows
    }

    /// Number of shard sections.
    pub fn n_shards(&self) -> usize {
        self.sections.len()
    }

    /// The per-shard section records, in shard order.
    pub fn sections(&self) -> &[ShardSectionInfo] {
        &self.sections
    }

    /// Global row index of the first row in `shard`.
    pub fn base_row(&self, shard: usize) -> u64 {
        self.shard_rows * shard as u64
    }

    /// Byte offset of `shard`'s section relative to the first section.
    fn section_offset(&self, shard: usize) -> u64 {
        self.sections[..shard].iter().map(|s| s.byte_len).sum()
    }

    /// Total bytes of all shard sections.
    fn sections_len(&self) -> u64 {
        self.sections.iter().map(|s| s.byte_len).sum()
    }
}

/// Maps `read_exact`'s EOF onto the snapshot truncation class; everything
/// else stays an IO error.
fn read_exact_or_truncated(file: &mut File, buf: &mut [u8]) -> Result<(), SnapshotError> {
    file.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated
        } else {
            SnapshotError::Io(e)
        }
    })
}

/// Seeks to, reads, verifies, and decodes one shard section.
fn read_section(
    file: &mut File,
    sections_start: u64,
    directory: &ShardDirectory,
    shard: usize,
    n_batches: usize,
    n_workers: usize,
    out: &mut InstanceColumns,
) -> Result<(), SnapshotError> {
    let sec = directory.sections()[shard];
    file.seek(SeekFrom::Start(sections_start + directory.section_offset(shard)))?;
    let mut buf = vec![0u8; sec.byte_len as usize];
    read_exact_or_truncated(file, &mut buf)?;
    if checksum(&buf) != sec.checksum {
        return Err(SnapshotError::ShardCorrupt { shard });
    }
    codec::decode_instances_into(&buf, sec.rows as usize, n_batches, n_workers, out)
}

/// Lazily reads a snapshot file shard by shard.
///
/// `open` verifies the header and the (checksummed) meta payload — entity
/// tables, batches, derived artifacts, shard directory — and stops there;
/// instance sections stay on disk until a `read_shard*` call or a
/// streamed [`fused`](ShardedSnapshotReader::fused) scan asks for them.
pub struct ShardedSnapshotReader {
    file: File,
    sections_start: u64,
    entities: Dataset,
    derived: Option<Derived>,
    directory: ShardDirectory,
    time_max: Option<Timestamp>,
}

impl std::fmt::Debug for ShardedSnapshotReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSnapshotReader")
            .field("n_shards", &self.directory.n_shards())
            .field("n_rows", &self.directory.n_rows())
            .field("derived", &self.derived.is_some())
            .finish_non_exhaustive()
    }
}

impl ShardedSnapshotReader {
    /// Opens `path`, verifying magic, version, fingerprint, and the meta
    /// payload checksum; shard sections are *not* read (their checksums
    /// verify lazily, per shard).
    pub fn open(
        path: impl AsRef<Path>,
        expected_fingerprint: u64,
    ) -> Result<ShardedSnapshotReader, SnapshotError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut header = [0u8; 40];
        read_exact_or_truncated(&mut file, &mut header)?;
        let mut r = ByteReader::new(&header);
        if r.take(8).expect("header buffered") != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32().expect("header buffered");
        if version != FORMAT_VERSION {
            return Err(SnapshotError::VersionMismatch { found: version });
        }
        let _flags = r.u32().expect("header buffered");
        let found = r.u64().expect("header buffered");
        if found != expected_fingerprint {
            return Err(SnapshotError::FingerprintMismatch {
                found,
                expected: expected_fingerprint,
            });
        }
        let payload_len = r.u64().expect("header buffered");
        let stored_sum = r.u64().expect("header buffered");
        // Bound the meta allocation by the actual file size before trusting
        // the header's length field.
        if 40 + payload_len > file_len {
            return Err(SnapshotError::Truncated);
        }
        let mut meta = vec![0u8; payload_len as usize];
        read_exact_or_truncated(&mut file, &mut meta)?;
        if checksum(&meta) != stored_sum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let decoded = codec::decode_meta(&meta)?;
        let sections_start = 40 + payload_len;
        match (sections_start + decoded.directory.sections_len()).cmp(&file_len) {
            std::cmp::Ordering::Greater => return Err(SnapshotError::Truncated),
            std::cmp::Ordering::Less => return Err(SnapshotError::Corrupt("trailing bytes")),
            std::cmp::Ordering::Equal => {}
        }
        Ok(ShardedSnapshotReader {
            file,
            sections_start,
            entities: decoded.entities,
            derived: decoded.derived,
            directory: decoded.directory,
            time_max: decoded.time_max,
        })
    }

    /// The shard directory.
    pub fn directory(&self) -> &ShardDirectory {
        &self.directory
    }

    /// The entity context (sources, countries, workers, task types,
    /// batches) with an **empty** instance table.
    pub fn entities(&self) -> &Dataset {
        &self.entities
    }

    /// The persisted derived artifacts, when present.
    pub fn derived(&self) -> Option<&Derived> {
        self.derived.as_ref()
    }

    /// The dataset's `time_max` as persisted at encode time (covers
    /// instance end times the entity tables alone cannot reproduce).
    pub fn time_max(&self) -> Option<Timestamp> {
        self.time_max
    }

    /// Reads, verifies, and decodes one shard's instance rows.
    pub fn read_shard(&mut self, shard: usize) -> Result<InstanceColumns, SnapshotError> {
        let mut out = InstanceColumns::new();
        self.read_shard_into(shard, &mut out)?;
        Ok(out)
    }

    /// [`read_shard`](Self::read_shard), appending into an existing column
    /// set — the full-load path reserves once and appends every shard, so
    /// peak memory is the final table plus a single section buffer.
    pub fn read_shard_into(
        &mut self,
        shard: usize,
        out: &mut InstanceColumns,
    ) -> Result<(), SnapshotError> {
        if shard >= self.directory.n_shards() {
            return Err(SnapshotError::Corrupt("shard index out of range"));
        }
        read_section(
            &mut self.file,
            self.sections_start,
            &self.directory,
            shard,
            self.entities.batches.len(),
            self.entities.workers.len(),
            out,
        )
    }

    /// Runs the fused analytics pass over the shards *without ever
    /// materializing the full instance table*: sections stream through
    /// [`ScanPass::run_stream`] one at a time, and partial aggregates
    /// merge in global chunk order — bit-identical to scanning the loaded
    /// dataset. Requires the derived section (its per-batch enrichment
    /// feeds the source aggregates).
    pub fn fused(&mut self) -> Result<crowd_analytics::fused::Fused, SnapshotError> {
        let ShardedSnapshotReader { file, sections_start, entities, derived, directory, time_max } =
            self;
        let Some(d) = derived.as_ref() else {
            return Err(SnapshotError::Corrupt("no derived section to stream a scan from"));
        };
        let (n_batches, n_workers) = (entities.batches.len(), entities.workers.len());
        let stream = (0..directory.n_shards()).map(|k| {
            let mut cols = InstanceColumns::new();
            read_section(file, *sections_start, directory, k, n_batches, n_workers, &mut cols)
                .map(|()| (directory.base_row(k) as usize, cols))
        });
        crowd_analytics::fused::compute_streamed(entities, &d.metrics, *time_max, stream)
    }

    /// Consumes the reader into its meta parts — entity tables, derived
    /// artifacts, persisted `time_max` — **without reading any shard
    /// section**. The columns-optional warm path uses this: a full hit
    /// needs only the entities and the persisted enrichment, and row-level
    /// consumers re-open the file and pull shards on demand.
    pub fn into_meta(mut self) -> (Dataset, Option<Derived>, Option<Timestamp>) {
        (std::mem::take(&mut self.entities), self.derived.take(), self.time_max)
    }

    /// Loads every shard into a fully validated [`Snapshot`], consuming
    /// the reader. Equivalent to [`crate::decode`] on the whole file but
    /// never holds more than the dataset plus one section buffer.
    pub fn into_snapshot(mut self) -> Result<Snapshot, SnapshotError> {
        let mut dataset = std::mem::take(&mut self.entities);
        dataset.instances.reserve(self.directory.n_rows() as usize);
        for shard in 0..self.directory.n_shards() {
            read_section(
                &mut self.file,
                self.sections_start,
                &self.directory,
                shard,
                dataset.batches.len(),
                dataset.workers.len(),
                &mut dataset.instances,
            )?;
        }
        dataset.validate().map_err(|_| SnapshotError::Corrupt("dataset integrity"))?;
        Ok(Snapshot { dataset, derived: self.derived.take() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_sharded, Snapshot};
    use crowd_sim::SimConfig;
    use std::path::PathBuf;

    const FP: u64 = 0xABCD;

    fn write_tmp(tag: &str, bytes: &[u8]) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("crowd-sharded-{tag}-{}.bin", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    /// A snapshot big enough (> 2 × scan chunk rows) to span ≥ 3 shards.
    fn multi_shard_snapshot() -> (Snapshot, Vec<u8>) {
        let cfg = SimConfig::new(31, 0.002);
        let ds = crowd_sim::simulate(&cfg);
        let derived = crate::warm::compute_derived(&ds, crowd_cluster::ClusterParams::default());
        let snap = Snapshot { dataset: ds, derived: Some(derived) };
        let bytes = encode_sharded(&snap, FP, 100);
        (snap, bytes)
    }

    #[test]
    fn reader_round_trips_and_streamed_fused_matches_materialized() {
        let (snap, bytes) = multi_shard_snapshot();
        let path = write_tmp("roundtrip", &bytes);

        let mut reader = ShardedSnapshotReader::open(&path, FP).expect("opens");
        assert!(reader.directory().n_shards() >= 3, "dataset spans several shards");
        assert_eq!(reader.directory().n_rows() as usize, snap.dataset.instances.len());
        assert!(reader.entities().instances.is_empty(), "open reads no shard");

        // Shard-by-shard reads reproduce the exact table slices.
        let plan =
            crowd_core::ShardPlan::new(snap.dataset.instances.len(), reader.directory().n_shards());
        for (k, range) in plan.ranges().enumerate() {
            let shard = reader.read_shard(k).expect("shard reads");
            assert_eq!(shard.len(), range.len());
            assert_eq!(shard.row(0).to_owned(), snap.dataset.instances.row(range.start).to_owned());
        }

        // The streamed fused scan is bit-identical to the fused scan over
        // the materialized study (Debug output covers every float).
        let streamed = reader.fused().expect("streamed scan");
        let metrics = snap.derived.as_ref().unwrap().metrics.clone();
        let study = crowd_analytics::Study::from_enrichment(snap.dataset.clone(), metrics);
        assert_eq!(format!("{streamed:?}"), format!("{:?}", study.fused()));

        // Full load through the reader equals the byte-level decode.
        let reader = ShardedSnapshotReader::open(&path, FP).expect("reopens");
        let back = reader.into_snapshot().expect("full load");
        assert_eq!(back.dataset.instances, snap.dataset.instances);
        assert_eq!(back.dataset.batches, snap.dataset.batches);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn damaged_shard_fails_alone_and_names_itself() {
        let (_, mut bytes) = multi_shard_snapshot();
        // Locate shard 1's section through a pristine reader.
        let path = write_tmp("pristine", &bytes);
        let reader = ShardedSnapshotReader::open(&path, FP).expect("opens");
        let payload_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let shard1_at = 40 + payload_len + reader.directory().sections()[0].byte_len;
        drop(reader);
        let _ = std::fs::remove_file(&path);

        bytes[shard1_at as usize + 10] ^= 0x40;
        let path = write_tmp("damaged", &bytes);
        let mut reader = ShardedSnapshotReader::open(&path, FP).expect("meta still verifies");
        assert!(reader.read_shard(0).is_ok(), "undamaged shard 0 reads");
        assert!(
            matches!(reader.read_shard(1), Err(SnapshotError::ShardCorrupt { shard: 1 })),
            "damaged shard is reported by index"
        );
        assert!(reader.read_shard(2).is_ok(), "undamaged shard 2 reads");
        assert!(matches!(reader.fused(), Err(SnapshotError::ShardCorrupt { shard: 1 })));
        let reader = ShardedSnapshotReader::open(&path, FP).expect("reopens");
        assert!(matches!(reader.into_snapshot(), Err(SnapshotError::ShardCorrupt { shard: 1 })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_rejects_fingerprint_truncation_and_trailing_junk() {
        let (_, bytes) = multi_shard_snapshot();

        let path = write_tmp("fp", &bytes);
        assert!(matches!(
            ShardedSnapshotReader::open(&path, FP ^ 1),
            Err(SnapshotError::FingerprintMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);

        let path = write_tmp("trunc", &bytes[..bytes.len() - 9]);
        assert!(matches!(ShardedSnapshotReader::open(&path, FP), Err(SnapshotError::Truncated)));
        let _ = std::fs::remove_file(&path);

        let mut long = bytes.clone();
        long.extend_from_slice(b"junk");
        let path = write_tmp("junk", &long);
        assert!(matches!(
            ShardedSnapshotReader::open(&path, FP),
            Err(SnapshotError::Corrupt("trailing bytes"))
        ));
        let _ = std::fs::remove_file(&path);
    }
}
