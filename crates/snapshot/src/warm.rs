//! Warm-start entry points: `Study` construction with read-on-hit /
//! write-on-miss snapshot caching.
//!
//! The decision tree, in full:
//!
//! * no store → plain cold build (simulate + cluster + enrich), nothing
//!   touched on disk;
//! * snapshot loads and its derived artifacts match the requested cluster
//!   parameters → rebuild the `Study` from the persisted enrichment and go
//!   straight to the fused scan: no simulation, no shingling, no LSH, no
//!   feature extraction;
//! * snapshot loads but was derived with *different* cluster parameters →
//!   reuse the dataset (simulation still skipped), recompute clustering and
//!   enrichment, rewrite the snapshot with the new artifacts;
//! * snapshot missing or fails **any** integrity check → silently fall
//!   back to a fresh simulation and overwrite the snapshot with a valid
//!   one. Correctness never depends on the cache; a corrupt file costs one
//!   cold run, not a wrong answer.
//!
//! Save errors are deliberately swallowed too (a read-only cache directory
//! degrades to cold-every-time, it does not break the run).
//!
//! ## Streaming mode (`shards > 1`)
//!
//! When the store is configured with more than one shard
//! ([`SnapshotStore::with_shards`]), both halves of the tree switch to the
//! bounded-memory pipeline (DESIGN.md §16) with the **same** decision
//! structure and bit-identical results:
//!
//! * cold → [`crowd_sim::prepare_streamed`] builds entities first, then
//!   the instance stream is forked shard-by-shard into a
//!   [`SnapshotWriter`](crate::SnapshotWriter) and a
//!   [`StreamingEnricher`], so the full instance table never exists in
//!   memory at once;
//! * warm full hit → only the meta payload (entities + enrichment) loads;
//!   the instance shards stay on disk, and the `Study` is *columns
//!   optional* — its fused aggregates stream back through a
//!   [`ShardedSnapshotReader`](crate::ShardedSnapshotReader) on first use;
//! * every failure (unwritable store, mid-build IO error, corrupt or
//!   mismatched snapshot) falls back to the monolithic path and counts a
//!   swallowed save where one was skipped.

use crowd_analytics::study::{enrich_batches, sampled_docs, StreamingEnricher};
use crowd_analytics::Study;
use crowd_cluster::{ClusterParams, Clusterer, Clustering};
use crowd_core::dataset::{Dataset, InstanceColumns};
use crowd_core::shard::ShardSink;
use crowd_sim::{simulate, SimConfig};

use crate::{Derived, Snapshot, SnapshotError, SnapshotStore};

/// [`Study::new`] with snapshot caching: read-on-hit, write-on-miss.
///
/// With `store == None` this is exactly `Study::new(simulate(cfg))`; with a
/// store, the result is bit-identical but a warm hit skips the entire
/// generative pipeline.
pub fn study_from_config(cfg: &SimConfig, store: Option<&SnapshotStore>) -> Study {
    study_with_params(cfg, ClusterParams::default(), store)
}

/// [`study_from_config`] with explicit clustering parameters.
pub fn study_with_params(
    cfg: &SimConfig,
    params: ClusterParams,
    store: Option<&SnapshotStore>,
) -> Study {
    let Some(store) = store else {
        return Study::with_cluster_params(simulate(cfg), params);
    };
    if store.shards() > 1 {
        return study_streamed(cfg, params, store);
    }
    match store.load(cfg) {
        Ok(Snapshot { dataset, derived }) => match derived {
            // Full hit: dataset + artifacts for exactly these parameters.
            Some(d) if d.params == params => Study::from_enrichment(dataset, d.metrics),
            // Dataset hit, derived mismatch (other params, or absent):
            // skip simulation, recompute the artifacts, rewrite.
            _ => build_and_persist(cfg, params, store, dataset),
        },
        // Miss or integrity failure: fresh simulate, rewrite.
        Err(_) => build_and_persist(cfg, params, store, simulate(cfg)),
    }
}

/// The `shards > 1` mirror of [`study_with_params`]: same decision tree,
/// but neither the warm-hit nor the cold-miss arm ever materializes the
/// full instance table.
fn study_streamed(cfg: &SimConfig, params: ClusterParams, store: &SnapshotStore) -> Study {
    if let Ok(reader) = store.open_reader(cfg) {
        let n_rows = reader.directory().n_rows() as usize;
        if reader.derived().map(|d| d.params == params) == Some(true) {
            // Full hit: entities + persisted enrichment only. The rows stay
            // on disk; the fused scan streams them back on first use.
            let (entities, derived, _) = reader.into_meta();
            let d = derived.expect("params just matched on this derived section");
            return Study::from_enrichment_streamed(
                entities,
                d.metrics,
                n_rows,
                fused_source(cfg, store),
            );
        }
        // Derived mismatch: the dataset is still good, so load it (one
        // shard buffer at a time) and rewrite with fresh artifacts. A
        // shard that fails integrity drops to the cold rebuild below.
        if let Ok(snap) = reader.into_snapshot() {
            return build_and_persist(cfg, params, store, snap.dataset);
        }
    }
    build_streamed(cfg, params, store)
}

/// Streaming cold build: entities are generated first, clustering and
/// shard layout come from them alone, and then each finished shard of
/// instance rows is flushed to the [`SnapshotWriter`](crate::SnapshotWriter)
/// *and* folded into the [`StreamingEnricher`] before the next shard is
/// produced. Peak memory is the entity tables plus ~one shard of rows.
fn build_streamed(cfg: &SimConfig, params: ClusterParams, store: &SnapshotStore) -> Study {
    let sim = crowd_sim::prepare_streamed(cfg);
    let mut writer = match store.open_writer(cfg, sim.planned_rows()) {
        Ok(w) => w,
        Err(_) => {
            // Nowhere to stream shards to: degrade to the monolithic cold
            // build, counted like every other swallowed save.
            store.note_swallowed_save();
            return Study::with_cluster_params(simulate(cfg), params);
        }
    };

    // Clustering needs only the batch HTML, which lives in the entity
    // tables — it runs before a single instance row exists.
    let clusterer = Clusterer::new(params);
    let (_ids, docs) = sampled_docs(sim.entities());
    let signatures = clusterer.signatures(&docs);
    let clustering = clusterer.cluster_signatures(&signatures);

    let mut enricher = StreamingEnricher::new(sim.entities());
    let shard_rows = writer.shard_rows();
    let mut sink = BuildSink { writer: &mut writer, enricher: &mut enricher };
    let entities = match sim.run(cfg, shard_rows, &mut sink) {
        Ok(entities) => entities,
        Err(_) => {
            // Disk died mid-build. The writer's temps are cleaned up and
            // the run completes monolithically — correctness never depends
            // on the cache.
            writer.abort();
            store.note_swallowed_save();
            return Study::with_clustering(simulate(cfg), clustering);
        }
    };

    let n_rows = writer.rows();
    let metrics = enricher.finish(&entities, &clustering);
    let derived = Derived {
        params,
        labels: clustering.labels().to_vec(),
        n_clusters: clustering.n_clusters(),
        signatures,
        metrics,
    };
    match writer.finish(&entities, Some(&derived)) {
        Ok(_) => Study::from_enrichment_streamed(
            entities,
            derived.metrics,
            n_rows,
            fused_source(cfg, store),
        ),
        Err(_) => {
            // The shards never published, so the columns-optional study
            // would have nothing to stream from: re-simulate the rows (the
            // enrichment is already computed and bit-identical).
            store.note_swallowed_save();
            Study::from_enrichment(simulate(cfg), derived.metrics)
        }
    }
}

/// Forks each finished shard to the snapshot writer and the streaming
/// enricher without cloning it — both sinks see the same borrow.
struct BuildSink<'a> {
    writer: &'a mut crate::SnapshotWriter,
    enricher: &'a mut StreamingEnricher,
}

impl ShardSink for BuildSink<'_> {
    type Error = SnapshotError;

    fn flush(&mut self, base: usize, shard: &InstanceColumns) -> Result<(), SnapshotError> {
        self.writer.flush(base, shard)?;
        match self.enricher.flush(base, shard) {
            Ok(()) => Ok(()),
            Err(never) => match never {},
        }
    }
}

/// The fused provider a columns-optional `Study` defers to: re-open the
/// snapshot and stream the shard sections through the scan. If the file
/// has been damaged or removed since the study was built, fall back to a
/// full re-simulation — one slow (but correct) answer, never a wrong one.
fn fused_source(
    cfg: &SimConfig,
    store: &SnapshotStore,
) -> impl Fn(&Study) -> crowd_analytics::fused::Fused + Send + Sync + 'static {
    let (cfg, store) = (cfg.clone(), store.clone());
    move |study| match store.open_reader(&cfg).and_then(|mut r| r.fused()) {
        Ok(fused) => fused,
        Err(_) => {
            let metrics: Vec<_> = study.enriched_batches().cloned().collect();
            let full = Study::from_enrichment(simulate(&cfg), metrics);
            crowd_analytics::fused::compute(&full)
        }
    }
}

/// Clusters and enriches `ds`, persists dataset + artifacts, and returns
/// the built `Study`. The snapshot is encoded *before* the dataset moves
/// into the `Study`, so nothing is cloned on the way to disk.
fn build_and_persist(
    cfg: &SimConfig,
    params: ClusterParams,
    store: &SnapshotStore,
    ds: Dataset,
) -> Study {
    let derived = compute_derived(&ds, params);
    let snapshot = Snapshot { dataset: ds, derived: Some(derived) };
    // Swallow save failures (a read-only cache degrades to cold-every-time,
    // it does not break the run) — but count them so the degradation is
    // observable through `SnapshotStore::swallowed_saves`.
    if store.save(cfg, &snapshot).is_err() {
        store.note_swallowed_save();
    }
    let Snapshot { dataset, derived } = snapshot;
    let d = derived.expect("derived was just computed");
    Study::from_enrichment(dataset, d.metrics)
}

/// Computes every derived artifact the snapshot persists: minhash
/// signatures, the clustering, and the per-batch enrichment, all in
/// sampled-batch dataset order.
pub fn compute_derived(ds: &Dataset, params: ClusterParams) -> Derived {
    let clusterer = Clusterer::new(params);
    let (_ids, docs) = sampled_docs(ds);
    let signatures = clusterer.signatures(&docs);
    let clustering = clusterer.cluster_signatures(&signatures);
    let index = ds.index();
    let metrics = enrich_batches(ds, &index, &clustering);
    Derived {
        params,
        labels: clustering.labels().to_vec(),
        n_clusters: clustering.n_clusters(),
        signatures,
        metrics,
    }
}

/// Rebuilds the [`Clustering`] a snapshot's derived section describes.
pub fn clustering_from_derived(derived: &Derived) -> Option<Clustering> {
    Clustering::from_parts(derived.labels.clone(), derived.n_clusters)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("crowd-snapshot-warm-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::new(dir)
    }

    #[test]
    fn warm_equals_cold_bitwise() {
        let cfg = SimConfig::tiny(21);
        let baseline = Study::new(simulate(&cfg));

        let store = temp_store("eq");
        let cold = study_from_config(&cfg, Some(&store)); // miss: writes
        assert!(store.path_for(&cfg).exists(), "miss wrote a snapshot");
        let warm = study_from_config(&cfg, Some(&store)); // hit: reads

        for s in [&cold, &warm] {
            assert_eq!(s.dataset().instances, baseline.dataset().instances);
            assert_eq!(s.clusters().len(), baseline.clusters().len());
            let labels =
                |st: &Study| -> Vec<u32> { st.enriched_batches().map(|m| m.cluster).collect() };
            assert_eq!(labels(s), labels(&baseline));
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn param_change_reuses_dataset_and_rewrites() {
        let cfg = SimConfig::tiny(22);
        let store = temp_store("params");
        let _ = study_from_config(&cfg, Some(&store));

        // Different clustering parameters: the dataset is reused, the
        // derived section is recomputed and rewritten.
        let loose = ClusterParams { threshold: 0.3, ..ClusterParams::default() };
        let relaxed = study_with_params(&cfg, loose, Some(&store));
        let reloaded = store.load(&cfg).expect("rewritten snapshot loads");
        let d = reloaded.derived.expect("derived present");
        assert_eq!(d.params, loose);
        assert_eq!(d.n_clusters, relaxed.clusters().len());
        // And it must match a cold run at those parameters.
        let cold = Study::with_cluster_params(simulate(&cfg), loose);
        assert_eq!(relaxed.clusters().len(), cold.clusters().len());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn unwritable_store_degrades_to_cold_and_counts_the_swallow() {
        let blocker = std::env::temp_dir()
            .join(format!("crowd-snapshot-warm-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let store = SnapshotStore::new(blocker.join("store"));
        let cfg = SimConfig::tiny(24);
        let study = study_from_config(&cfg, Some(&store));
        // Correctness never depends on the cache …
        assert_eq!(study.dataset().instances, simulate(&cfg).instances);
        // … but the degradation is counted, not silent.
        assert_eq!(store.swallowed_saves(), 1);
        let _ = std::fs::remove_file(&blocker);
    }

    /// Streamed cold build, streamed warm hit, and the monolithic cold
    /// build agree bitwise on every derived quantity, and neither streamed
    /// study ever held the instance table.
    #[test]
    fn streamed_cold_and_warm_match_monolithic_bitwise() {
        let cfg = SimConfig::tiny(25);
        let baseline = Study::new(simulate(&cfg));
        let metrics = |s: &Study| -> Vec<_> { s.enriched_batches().cloned().collect() };

        let store = temp_store("streamed-eq").with_shards(4);
        let cold = study_from_config(&cfg, Some(&store)); // miss: streams build + write
        assert!(store.path_for(&cfg).exists(), "streamed miss wrote a snapshot");
        assert_eq!(store.swallowed_saves(), 0, "nothing degraded");
        let warm = study_from_config(&cfg, Some(&store)); // hit: meta-only load

        for s in [&cold, &warm] {
            assert!(!s.columns_resident(), "streamed studies are columns-optional");
            assert_eq!(s.n_instances(), baseline.n_instances());
            assert_eq!(metrics(s), metrics(&baseline));
            assert_eq!(s.fused(), baseline.fused(), "fused scan is bit-identical");
        }
        // The streamed snapshot is byte-identical to a monolithic save at
        // the same shard count.
        let streamed_bytes = std::fs::read(store.path_for(&cfg)).unwrap();
        let snap = Snapshot {
            dataset: simulate(&cfg),
            derived: Some(compute_derived(&simulate(&cfg), ClusterParams::default())),
        };
        let monolithic = crate::encode_sharded(&snap, crate::fingerprint(&cfg), 4);
        assert_eq!(streamed_bytes, monolithic);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// A corrupt snapshot under the final name is refused by the open
    /// checks and the streamed warm start rebuilds (and rewrites) cleanly.
    #[test]
    fn streamed_warm_start_survives_a_corrupt_snapshot() {
        let cfg = SimConfig::tiny(26);
        let store = temp_store("streamed-corrupt").with_shards(3);
        let _ = study_from_config(&cfg, Some(&store));
        let path = store.path_for(&cfg);
        let pristine = std::fs::read(&path).unwrap();

        // Torn final bytes: the loader refuses with a typed error, never a
        // partial dataset.
        std::fs::write(&path, &pristine[..pristine.len() - 11]).unwrap();
        assert!(matches!(
            store.open_reader(&cfg).and_then(|r| r.into_snapshot()),
            Err(crate::SnapshotError::Truncated)
        ));
        let rebuilt = study_from_config(&cfg, Some(&store));
        assert_eq!(rebuilt.n_instances(), simulate(&cfg).instances.len());
        assert_eq!(std::fs::read(&path).unwrap(), pristine, "fallback rewrote the snapshot");

        // Flipped byte inside a shard section: meta verifies, the damaged
        // shard is refused by its own checksum when the fused scan streams.
        let mut bent = pristine.clone();
        let at = bent.len() - 20;
        bent[at] ^= 0x40;
        std::fs::write(&path, &bent).unwrap();
        let warm = study_from_config(&cfg, Some(&store));
        // The warm hit loaded only meta (valid), so the corruption
        // surfaces inside `fused_source`, which re-simulates.
        assert_eq!(warm.fused(), Study::new(simulate(&cfg)).fused());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    /// `shards > 1` with nowhere to write degrades to the monolithic cold
    /// build and counts the swallow — same contract as the shards=1 path.
    #[test]
    fn streamed_unwritable_store_degrades_to_cold() {
        let blocker = std::env::temp_dir()
            .join(format!("crowd-snapshot-warm-sblocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let store = SnapshotStore::new(blocker.join("store")).with_shards(8);
        let cfg = SimConfig::tiny(27);
        let study = study_from_config(&cfg, Some(&store));
        assert!(study.columns_resident(), "fallback is the monolithic build");
        assert_eq!(study.dataset().instances, simulate(&cfg).instances);
        assert_eq!(store.swallowed_saves(), 1);
        let _ = std::fs::remove_file(&blocker);
    }

    /// Changing cluster parameters against a streamed snapshot reuses the
    /// on-disk dataset and rewrites the derived section, like shards=1.
    #[test]
    fn streamed_param_change_reuses_dataset_and_rewrites() {
        let cfg = SimConfig::tiny(28);
        let store = temp_store("streamed-params").with_shards(4);
        let _ = study_from_config(&cfg, Some(&store));

        let loose = ClusterParams { threshold: 0.3, ..ClusterParams::default() };
        let relaxed = study_with_params(&cfg, loose, Some(&store));
        let d = store.load(&cfg).expect("rewritten").derived.expect("derived present");
        assert_eq!(d.params, loose);
        assert_eq!(d.n_clusters, relaxed.clusters().len());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn clustering_round_trips_through_derived() {
        let ds = simulate(&SimConfig::tiny(23));
        let derived = compute_derived(&ds, ClusterParams::default());
        let clustering = clustering_from_derived(&derived).expect("valid labels");
        assert_eq!(clustering.labels(), &derived.labels[..]);
        assert_eq!(clustering.n_clusters(), derived.n_clusters);
    }
}
