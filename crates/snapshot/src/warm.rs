//! Warm-start entry points: `Study` construction with read-on-hit /
//! write-on-miss snapshot caching.
//!
//! The decision tree, in full:
//!
//! * no store → plain cold build (simulate + cluster + enrich), nothing
//!   touched on disk;
//! * snapshot loads and its derived artifacts match the requested cluster
//!   parameters → rebuild the `Study` from the persisted enrichment and go
//!   straight to the fused scan: no simulation, no shingling, no LSH, no
//!   feature extraction;
//! * snapshot loads but was derived with *different* cluster parameters →
//!   reuse the dataset (simulation still skipped), recompute clustering and
//!   enrichment, rewrite the snapshot with the new artifacts;
//! * snapshot missing or fails **any** integrity check → silently fall
//!   back to a fresh simulation and overwrite the snapshot with a valid
//!   one. Correctness never depends on the cache; a corrupt file costs one
//!   cold run, not a wrong answer.
//!
//! Save errors are deliberately swallowed too (a read-only cache directory
//! degrades to cold-every-time, it does not break the run).

use crowd_analytics::study::{enrich_batches, sampled_docs};
use crowd_analytics::Study;
use crowd_cluster::{ClusterParams, Clusterer, Clustering};
use crowd_core::dataset::Dataset;
use crowd_sim::{simulate, SimConfig};

use crate::{Derived, Snapshot, SnapshotStore};

/// [`Study::new`] with snapshot caching: read-on-hit, write-on-miss.
///
/// With `store == None` this is exactly `Study::new(simulate(cfg))`; with a
/// store, the result is bit-identical but a warm hit skips the entire
/// generative pipeline.
pub fn study_from_config(cfg: &SimConfig, store: Option<&SnapshotStore>) -> Study {
    study_with_params(cfg, ClusterParams::default(), store)
}

/// [`study_from_config`] with explicit clustering parameters.
pub fn study_with_params(
    cfg: &SimConfig,
    params: ClusterParams,
    store: Option<&SnapshotStore>,
) -> Study {
    let Some(store) = store else {
        return Study::with_cluster_params(simulate(cfg), params);
    };
    match store.load(cfg) {
        Ok(Snapshot { dataset, derived }) => match derived {
            // Full hit: dataset + artifacts for exactly these parameters.
            Some(d) if d.params == params => Study::from_enrichment(dataset, d.metrics),
            // Dataset hit, derived mismatch (other params, or absent):
            // skip simulation, recompute the artifacts, rewrite.
            _ => build_and_persist(cfg, params, store, dataset),
        },
        // Miss or integrity failure: fresh simulate, rewrite.
        Err(_) => build_and_persist(cfg, params, store, simulate(cfg)),
    }
}

/// Clusters and enriches `ds`, persists dataset + artifacts, and returns
/// the built `Study`. The snapshot is encoded *before* the dataset moves
/// into the `Study`, so nothing is cloned on the way to disk.
fn build_and_persist(
    cfg: &SimConfig,
    params: ClusterParams,
    store: &SnapshotStore,
    ds: Dataset,
) -> Study {
    let derived = compute_derived(&ds, params);
    let snapshot = Snapshot { dataset: ds, derived: Some(derived) };
    // Swallow save failures (a read-only cache degrades to cold-every-time,
    // it does not break the run) — but count them so the degradation is
    // observable through `SnapshotStore::swallowed_saves`.
    if store.save(cfg, &snapshot).is_err() {
        store.note_swallowed_save();
    }
    let Snapshot { dataset, derived } = snapshot;
    let d = derived.expect("derived was just computed");
    Study::from_enrichment(dataset, d.metrics)
}

/// Computes every derived artifact the snapshot persists: minhash
/// signatures, the clustering, and the per-batch enrichment, all in
/// sampled-batch dataset order.
pub fn compute_derived(ds: &Dataset, params: ClusterParams) -> Derived {
    let clusterer = Clusterer::new(params);
    let (_ids, docs) = sampled_docs(ds);
    let signatures = clusterer.signatures(&docs);
    let clustering = clusterer.cluster_signatures(&signatures);
    let index = ds.index();
    let metrics = enrich_batches(ds, &index, &clustering);
    Derived {
        params,
        labels: clustering.labels().to_vec(),
        n_clusters: clustering.n_clusters(),
        signatures,
        metrics,
    }
}

/// Rebuilds the [`Clustering`] a snapshot's derived section describes.
pub fn clustering_from_derived(derived: &Derived) -> Option<Clustering> {
    Clustering::from_parts(derived.labels.clone(), derived.n_clusters)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("crowd-snapshot-warm-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::new(dir)
    }

    #[test]
    fn warm_equals_cold_bitwise() {
        let cfg = SimConfig::tiny(21);
        let baseline = Study::new(simulate(&cfg));

        let store = temp_store("eq");
        let cold = study_from_config(&cfg, Some(&store)); // miss: writes
        assert!(store.path_for(&cfg).exists(), "miss wrote a snapshot");
        let warm = study_from_config(&cfg, Some(&store)); // hit: reads

        for s in [&cold, &warm] {
            assert_eq!(s.dataset().instances, baseline.dataset().instances);
            assert_eq!(s.clusters().len(), baseline.clusters().len());
            let labels =
                |st: &Study| -> Vec<u32> { st.enriched_batches().map(|m| m.cluster).collect() };
            assert_eq!(labels(s), labels(&baseline));
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn param_change_reuses_dataset_and_rewrites() {
        let cfg = SimConfig::tiny(22);
        let store = temp_store("params");
        let _ = study_from_config(&cfg, Some(&store));

        // Different clustering parameters: the dataset is reused, the
        // derived section is recomputed and rewritten.
        let loose = ClusterParams { threshold: 0.3, ..ClusterParams::default() };
        let relaxed = study_with_params(&cfg, loose, Some(&store));
        let reloaded = store.load(&cfg).expect("rewritten snapshot loads");
        let d = reloaded.derived.expect("derived present");
        assert_eq!(d.params, loose);
        assert_eq!(d.n_clusters, relaxed.clusters().len());
        // And it must match a cold run at those parameters.
        let cold = Study::with_cluster_params(simulate(&cfg), loose);
        assert_eq!(relaxed.clusters().len(), cold.clusters().len());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn unwritable_store_degrades_to_cold_and_counts_the_swallow() {
        let blocker = std::env::temp_dir()
            .join(format!("crowd-snapshot-warm-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let store = SnapshotStore::new(blocker.join("store"));
        let cfg = SimConfig::tiny(24);
        let study = study_from_config(&cfg, Some(&store));
        // Correctness never depends on the cache …
        assert_eq!(study.dataset().instances, simulate(&cfg).instances);
        // … but the degradation is counted, not silent.
        assert_eq!(store.swallowed_saves(), 1);
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn clustering_round_trips_through_derived() {
        let ds = simulate(&SimConfig::tiny(23));
        let derived = compute_derived(&ds, ClusterParams::default());
        let clustering = clustering_from_derived(&derived).expect("valid labels");
        assert_eq!(clustering.labels(), &derived.labels[..]);
        assert_eq!(clustering.n_clusters(), derived.n_clusters);
    }
}
