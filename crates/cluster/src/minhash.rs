//! MinHash signatures for fast Jaccard estimation.
//!
//! A signature of `n` independent min-hashes estimates Jaccard similarity
//! as the fraction of agreeing positions, with standard error
//! `O(1/√n)`. Signatures make the §3.3 clustering scale to tens of
//! thousands of batches without quadratic exact-set comparisons.
//!
//! ## Hot-path kernel (DESIGN.md §18)
//!
//! [`MinHasher::sign`] is the blocked kernel: hash parameters live in
//! struct-of-arrays layout (`a[]`/`b[]`), shingles are pre-mixed in
//! fixed-width stack batches, and the inner loop updates [`LANES`] running
//! minima at a time with straight-line `wrapping_mul`/`wrapping_add`/`min`
//! — no branches, no table lookups — which the autovectorizer lifts to
//! SIMD. The min-reduction over shingles is order-invariant, so the
//! signature is bit-identical to the original per-shingle × per-function
//! scalar loop (frozen as `crowd_testkit::kernels::naive_signature` and
//! differentially tested against it).

use std::collections::HashSet;
use std::fmt;

use rayon::prelude::*;

/// Hash functions updated together in the blocked kernel's inner loop.
const LANES: usize = 8;

/// Shingles pre-mixed per batch into a stack buffer by the blocked kernel.
const BATCH: usize = 64;

/// Two signatures of different lengths were compared — they come from
/// different hash families, so positionwise agreement is undefined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthMismatch {
    /// Length of the left (receiver) signature.
    pub left: usize,
    /// Length of the right signature.
    pub right: usize,
}

impl fmt::Display for LengthMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "signature lengths differ: {} vs {}", self.left, self.right)
    }
}

impl std::error::Error for LengthMismatch {}

/// A MinHash signature: position `i` holds the minimum of hash function
/// `h_i` over the document's shingles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature(pub Vec<u64>);

impl Signature {
    /// Number of hash functions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for a zero-function signature.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Estimated Jaccard similarity: fraction of matching positions.
    /// Zero-function signatures estimate 0.0 (no evidence of similarity).
    ///
    /// Signatures of different lengths come from different hash families;
    /// comparing them is a caller bug, reported as [`LengthMismatch`]
    /// instead of a library panic.
    pub fn estimate_jaccard(&self, other: &Signature) -> Result<f64, LengthMismatch> {
        if self.0.len() != other.0.len() {
            return Err(LengthMismatch { left: self.0.len(), right: other.0.len() });
        }
        if self.0.is_empty() {
            return Ok(0.0);
        }
        let matching = self.0.iter().zip(&other.0).filter(|(a, b)| a == b).count();
        Ok(matching as f64 / self.0.len() as f64)
    }
}

/// A family of `n` pairwise-independent hash functions
/// `h_i(x) = a_i·x + b_i (mod 2^64, odd a)` with deterministic parameters
/// derived from a seed via splitmix64. Parameters are stored
/// struct-of-arrays so the signing kernel streams them lane-blocked.
#[derive(Debug, Clone)]
pub struct MinHasher {
    a: Vec<u64>,
    b: Vec<u64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Spreads a shingle's bits so the linear hash family acts on mixed input
/// (fmix64 finalizer). Shared by the blocked kernel and the naive oracle.
#[inline]
fn premix(s: u64) -> u64 {
    let mut x = s;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^ (x >> 33)
}

impl MinHasher {
    /// Creates `n_hashes` hash functions from `seed`.
    pub fn new(n_hashes: usize, seed: u64) -> MinHasher {
        assert!(n_hashes > 0, "need at least one hash function");
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        let mut a = Vec::with_capacity(n_hashes);
        let mut b = Vec::with_capacity(n_hashes);
        for _ in 0..n_hashes {
            a.push(splitmix64(&mut state) | 1); // odd multiplier
            b.push(splitmix64(&mut state));
        }
        MinHasher { a, b }
    }

    /// Number of hash functions.
    pub fn n_hashes(&self) -> usize {
        self.a.len()
    }

    /// Signs a shingle slice into `sig` (cleared and resized), reusing its
    /// capacity. Duplicate or unsorted shingles are fine — the min fold is
    /// order- and multiplicity-invariant — so any slice with the same
    /// *set* of values yields the identical signature. An empty slice
    /// yields the all-`u64::MAX` signature.
    pub fn sign_into(&self, shingles: &[u64], sig: &mut Vec<u64>) {
        let n = self.a.len();
        sig.clear();
        sig.resize(n, u64::MAX);
        let mut mixed = [0u64; BATCH];
        for batch in shingles.chunks(BATCH) {
            for (m, &s) in mixed.iter_mut().zip(batch) {
                *m = premix(s);
            }
            let mixed = &mixed[..batch.len()];
            let mut lane = 0;
            while lane + LANES <= n {
                let mut am = [0u64; LANES];
                let mut bm = [0u64; LANES];
                let mut mins = [0u64; LANES];
                am.copy_from_slice(&self.a[lane..lane + LANES]);
                bm.copy_from_slice(&self.b[lane..lane + LANES]);
                mins.copy_from_slice(&sig[lane..lane + LANES]);
                for &x in mixed {
                    for j in 0..LANES {
                        mins[j] = mins[j].min(am[j].wrapping_mul(x).wrapping_add(bm[j]));
                    }
                }
                sig[lane..lane + LANES].copy_from_slice(&mins);
                lane += LANES;
            }
            for ((slot, &a), &b) in sig.iter_mut().zip(&self.a).zip(&self.b).skip(lane) {
                let mut min = *slot;
                for &x in mixed {
                    min = min.min(a.wrapping_mul(x).wrapping_add(b));
                }
                *slot = min;
            }
        }
    }

    /// Computes the signature of a shingle slice via the blocked kernel.
    /// See [`sign_into`](Self::sign_into) for the input contract.
    pub fn sign(&self, shingles: &[u64]) -> Signature {
        let mut sig = Vec::new();
        self.sign_into(shingles, &mut sig);
        Signature(sig)
    }

    /// Computes the signature of a shingle set. An empty set yields the
    /// all-`u64::MAX` signature (matching only other empty sets).
    ///
    /// Compatibility wrapper: collects the set and delegates to
    /// [`sign`](Self::sign) (identical output — the min fold does not see
    /// iteration order).
    pub fn signature(&self, shingles: &HashSet<u64>) -> Signature {
        let vals: Vec<u64> = shingles.iter().copied().collect();
        self.sign(&vals)
    }

    /// Computes signatures for many shingle sets at once, fanning the
    /// (embarrassingly parallel) per-document work out across threads.
    /// Output order matches input order exactly, so results are identical
    /// to mapping [`MinHasher::signature`] sequentially.
    pub fn signatures(&self, docs: &[HashSet<u64>]) -> Vec<Signature> {
        docs.par_iter().map(|s| self.signature(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shingle::{jaccard, shingles};

    fn set(vals: &[u64]) -> HashSet<u64> {
        vals.iter().copied().collect()
    }

    #[test]
    fn identical_sets_get_identical_signatures() {
        let mh = MinHasher::new(64, 1);
        let s = set(&[1, 2, 3, 4, 5]);
        assert_eq!(mh.signature(&s), mh.signature(&s));
        assert_eq!(mh.signature(&s).estimate_jaccard(&mh.signature(&s)), Ok(1.0));
    }

    #[test]
    fn deterministic_across_instances() {
        let a = MinHasher::new(32, 9).signature(&set(&[10, 20, 30]));
        let b = MinHasher::new(32, 9).signature(&set(&[10, 20, 30]));
        assert_eq!(a, b);
        let c = MinHasher::new(32, 10).signature(&set(&[10, 20, 30]));
        assert_ne!(a, c, "different seed family");
    }

    #[test]
    fn sign_ignores_order_and_duplicates() {
        let mh = MinHasher::new(96, 11); // not a LANES multiple: tail lanes covered
        let sorted = mh.sign(&[1, 2, 3, 4, 5]);
        let shuffled = mh.sign(&[5, 3, 1, 4, 2]);
        let duplicated = mh.sign(&[5, 5, 3, 1, 1, 4, 2, 3]);
        assert_eq!(sorted, shuffled);
        assert_eq!(sorted, duplicated);
    }

    #[test]
    fn sign_handles_batch_boundaries() {
        // Exactly BATCH, BATCH±1, and multi-batch inputs agree with the
        // set-based wrapper (one pass, different chunkings internally).
        let mh = MinHasher::new(40, 3);
        for n in [1u64, 63, 64, 65, 128, 200] {
            let vals: Vec<u64> = (0..n).map(|i| i * 0x9E37_79B9 + 7).collect();
            let from_slice = mh.sign(&vals);
            let from_set = mh.signature(&vals.iter().copied().collect());
            assert_eq!(from_slice, from_set, "n = {n}");
        }
    }

    #[test]
    fn estimate_tracks_exact_jaccard() {
        let mh = MinHasher::new(256, 7);
        // Build sets with known overlap: |A∩B| = 50, |A∪B| = 150 → J = 1/3.
        let a: HashSet<u64> = (0..100u64).map(|i| i * 7 + 1).collect();
        let b: HashSet<u64> = (50..150u64).map(|i| i * 7 + 1).collect();
        let exact = jaccard(&a, &b);
        assert!((exact - 1.0 / 3.0).abs() < 1e-12);
        let est = mh.signature(&a).estimate_jaccard(&mh.signature(&b)).unwrap();
        assert!((est - exact).abs() < 0.12, "est {est} vs exact {exact}");
    }

    #[test]
    fn estimate_on_real_shingles() {
        let mh = MinHasher::new(256, 3);
        let d1 = "please search for the official website of the business and copy its address";
        let d2 = "please search for the official website of the person and copy its address";
        let (s1, s2) = (shingles(d1, 3), shingles(d2, 3));
        let exact = jaccard(&s1, &s2);
        let est = mh.signature(&s1).estimate_jaccard(&mh.signature(&s2)).unwrap();
        assert!((est - exact).abs() < 0.15, "est {est} vs exact {exact}");
    }

    #[test]
    fn empty_sets() {
        let mh = MinHasher::new(16, 1);
        let empty = mh.signature(&HashSet::new());
        assert!(empty.0.iter().all(|&v| v == u64::MAX));
        assert_eq!(empty.estimate_jaccard(&empty), Ok(1.0));
        let nonempty = mh.signature(&set(&[1]));
        assert!(empty.estimate_jaccard(&nonempty).unwrap() < 1.0);
    }

    #[test]
    fn mismatched_lengths_are_an_error_not_a_panic() {
        let a = Signature(vec![1, 2]);
        let b = Signature(vec![1]);
        assert_eq!(a.estimate_jaccard(&b), Err(LengthMismatch { left: 2, right: 1 }));
        assert_eq!(b.estimate_jaccard(&a), Err(LengthMismatch { left: 1, right: 2 }));
        let msg = a.estimate_jaccard(&b).unwrap_err().to_string();
        assert!(msg.contains("2 vs 1"), "{msg}");
    }

    #[test]
    fn zero_length_signatures_estimate_zero() {
        let a = Signature(Vec::new());
        assert_eq!(a.estimate_jaccard(&a), Ok(0.0));
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let mh = MinHasher::new(256, 5);
        let a: HashSet<u64> = (0..200u64).collect();
        let b: HashSet<u64> = (1000..1200u64).collect();
        let est = mh.signature(&a).estimate_jaccard(&mh.signature(&b)).unwrap();
        assert!(est < 0.05, "disjoint sets: {est}");
    }
}
