//! MinHash signatures for fast Jaccard estimation.
//!
//! A signature of `n` independent min-hashes estimates Jaccard similarity
//! as the fraction of agreeing positions, with standard error
//! `O(1/√n)`. Signatures make the §3.3 clustering scale to tens of
//! thousands of batches without quadratic exact-set comparisons.

use std::collections::HashSet;

use rayon::prelude::*;

/// A MinHash signature: position `i` holds the minimum of hash function
/// `h_i` over the document's shingles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature(pub Vec<u64>);

impl Signature {
    /// Number of hash functions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for a zero-function signature.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Estimated Jaccard similarity: fraction of matching positions.
    ///
    /// # Panics
    /// If the signatures have different lengths.
    pub fn estimate_jaccard(&self, other: &Signature) -> f64 {
        assert_eq!(self.0.len(), other.0.len(), "signatures must be same length");
        if self.0.is_empty() {
            return 0.0;
        }
        let matching = self.0.iter().zip(&other.0).filter(|(a, b)| a == b).count();
        matching as f64 / self.0.len() as f64
    }
}

/// A family of `n` pairwise-independent hash functions
/// `h_i(x) = a_i·x + b_i (mod 2^64, odd a)` with deterministic parameters
/// derived from a seed via splitmix64.
#[derive(Debug, Clone)]
pub struct MinHasher {
    params: Vec<(u64, u64)>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl MinHasher {
    /// Creates `n_hashes` hash functions from `seed`.
    pub fn new(n_hashes: usize, seed: u64) -> MinHasher {
        assert!(n_hashes > 0, "need at least one hash function");
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        let params = (0..n_hashes)
            .map(|_| {
                let a = splitmix64(&mut state) | 1; // odd multiplier
                let b = splitmix64(&mut state);
                (a, b)
            })
            .collect();
        MinHasher { params }
    }

    /// Number of hash functions.
    pub fn n_hashes(&self) -> usize {
        self.params.len()
    }

    /// Computes the signature of a shingle set. An empty set yields the
    /// all-`u64::MAX` signature (matching only other empty sets).
    pub fn signature(&self, shingles: &HashSet<u64>) -> Signature {
        let mut sig = vec![u64::MAX; self.params.len()];
        for &s in shingles {
            // Pre-mix the shingle so linear hashes act on spread bits.
            let mut x = s;
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 33;
            for (i, &(a, b)) in self.params.iter().enumerate() {
                let h = a.wrapping_mul(x).wrapping_add(b);
                if h < sig[i] {
                    sig[i] = h;
                }
            }
        }
        Signature(sig)
    }

    /// Computes signatures for many shingle sets at once, fanning the
    /// (embarrassingly parallel) per-document work out across threads.
    /// Output order matches input order exactly, so results are identical
    /// to mapping [`MinHasher::signature`] sequentially.
    pub fn signatures(&self, docs: &[HashSet<u64>]) -> Vec<Signature> {
        docs.par_iter().map(|s| self.signature(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shingle::{jaccard, shingles};

    fn set(vals: &[u64]) -> HashSet<u64> {
        vals.iter().copied().collect()
    }

    #[test]
    fn identical_sets_get_identical_signatures() {
        let mh = MinHasher::new(64, 1);
        let s = set(&[1, 2, 3, 4, 5]);
        assert_eq!(mh.signature(&s), mh.signature(&s));
        assert_eq!(mh.signature(&s).estimate_jaccard(&mh.signature(&s)), 1.0);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = MinHasher::new(32, 9).signature(&set(&[10, 20, 30]));
        let b = MinHasher::new(32, 9).signature(&set(&[10, 20, 30]));
        assert_eq!(a, b);
        let c = MinHasher::new(32, 10).signature(&set(&[10, 20, 30]));
        assert_ne!(a, c, "different seed family");
    }

    #[test]
    fn estimate_tracks_exact_jaccard() {
        let mh = MinHasher::new(256, 7);
        // Build sets with known overlap: |A∩B| = 50, |A∪B| = 150 → J = 1/3.
        let a: HashSet<u64> = (0..100u64).map(|i| i * 7 + 1).collect();
        let b: HashSet<u64> = (50..150u64).map(|i| i * 7 + 1).collect();
        let exact = jaccard(&a, &b);
        assert!((exact - 1.0 / 3.0).abs() < 1e-12);
        let est = mh.signature(&a).estimate_jaccard(&mh.signature(&b));
        assert!((est - exact).abs() < 0.12, "est {est} vs exact {exact}");
    }

    #[test]
    fn estimate_on_real_shingles() {
        let mh = MinHasher::new(256, 3);
        let d1 = "please search for the official website of the business and copy its address";
        let d2 = "please search for the official website of the person and copy its address";
        let (s1, s2) = (shingles(d1, 3), shingles(d2, 3));
        let exact = jaccard(&s1, &s2);
        let est = mh.signature(&s1).estimate_jaccard(&mh.signature(&s2));
        assert!((est - exact).abs() < 0.15, "est {est} vs exact {exact}");
    }

    #[test]
    fn empty_sets() {
        let mh = MinHasher::new(16, 1);
        let empty = mh.signature(&HashSet::new());
        assert!(empty.0.iter().all(|&v| v == u64::MAX));
        assert_eq!(empty.estimate_jaccard(&empty), 1.0);
        let nonempty = mh.signature(&set(&[1]));
        assert!(empty.estimate_jaccard(&nonempty) < 1.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let a = Signature(vec![1, 2]);
        let b = Signature(vec![1]);
        let _ = a.estimate_jaccard(&b);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let mh = MinHasher::new(256, 5);
        let a: HashSet<u64> = (0..200u64).collect();
        let b: HashSet<u64> = (1000..1200u64).collect();
        let est = mh.signature(&a).estimate_jaccard(&mh.signature(&b));
        assert!(est < 0.05, "disjoint sets: {est}");
    }
}
