//! Token shingling and exact Jaccard similarity.
//!
//! Documents (task HTML) are tokenized on non-alphanumeric boundaries —
//! which naturally picks up tag names, attribute names, and visible words —
//! and hashed as overlapping `k`-grams into a set of 64-bit shingles.
//!
//! ## Hot-path kernel (DESIGN.md §18)
//!
//! The original pipeline allocated per document: a `Vec<String>` of
//! lowercased tokens, a join buffer per window, and a SipHash-backed
//! `HashSet<u64>`. [`ShingleScratch`] replaces all of that with a
//! streaming tokenizer that lowercases bytes in place (branchless ASCII
//! fast path; the rare non-ASCII token falls back to `str::to_lowercase`
//! so Unicode special cases like final sigma keep their exact bytes), a
//! contiguous token-byte buffer with end offsets, and a reusable
//! sorted/deduped `Vec<u64>` output — so steady-state shingling performs
//! **zero** allocations (`tests/alloc_budget.rs` pins this). Every emitted
//! value is the same FNV-1a hash over the same `\u{1f}`-separated window
//! bytes the naive path produced; `crowd-testkit`'s frozen oracles prove
//! bit-identity (`crowd-testkit/tests/kernel_differential.rs`).

use std::collections::HashSet;

/// Default shingle width: 3-token grams capture local structure without
/// being hypersensitive to single-word edits.
pub const DEFAULT_K: usize = 3;

/// The byte the naive path's `'\u{1f}'` separator encodes to in UTF-8.
const SEP: u8 = 0x1f;

/// FNV-1a 64-bit hash.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Lower-cased alphanumeric tokens of a document.
pub fn tokenize(doc: &str) -> Vec<String> {
    doc.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Reusable working memory for [`shingle`](ShingleScratch::shingle):
/// lowercased token bytes, token end offsets, and the output shingle
/// values. Thread one instance through a per-thread loop (the clusterer
/// keeps one in a `thread_local!`) and per-document shingling stops
/// touching the allocator once the buffers have grown to the corpus's
/// largest document.
#[derive(Debug, Default)]
pub struct ShingleScratch {
    /// Lowercased bytes of every token of the current document,
    /// concatenated (no separators — `ends` delimits tokens).
    bytes: Vec<u8>,
    /// End offset of each token within `bytes`.
    ends: Vec<usize>,
    /// Sorted, deduplicated shingle hashes of the current document.
    out: Vec<u64>,
}

impl ShingleScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> ShingleScratch {
        ShingleScratch::default()
    }

    /// Tokenizes `doc` into `bytes`/`ends`. ASCII bytes take the in-place
    /// fast path; a token containing any non-ASCII scalar is re-lowercased
    /// through `str::to_lowercase` over its exact source slice, because
    /// `char`-at-a-time lowercasing diverges from the naive tokenizer on
    /// context-sensitive mappings (Greek final sigma).
    fn tokenize_into(&mut self, doc: &str) {
        self.bytes.clear();
        self.ends.clear();
        let s = doc.as_bytes();
        let mut i = 0;
        let mut tok_bytes = 0usize; // start of the open token in `bytes`
        let mut tok_doc = 0usize; // start of the open token in `doc`
        let mut in_token = false;
        let mut ascii_only = true;
        // Seals the open token ending at doc offset `$end_doc`: the fast
        // path already pushed lowercased ASCII bytes; a token that saw any
        // non-ASCII scalar is redone whole through `str::to_lowercase`.
        macro_rules! close_token {
            ($end_doc:expr) => {
                if !ascii_only {
                    self.bytes.truncate(tok_bytes);
                    let lowered = doc[tok_doc..$end_doc].to_lowercase();
                    self.bytes.extend_from_slice(lowered.as_bytes());
                }
                self.ends.push(self.bytes.len());
            };
        }
        while i < s.len() {
            let b = s[i];
            if b < 0x80 {
                if b.is_ascii_alphanumeric() {
                    if !in_token {
                        in_token = true;
                        tok_bytes = self.bytes.len();
                        tok_doc = i;
                    }
                    if ascii_only {
                        self.bytes.push(b.to_ascii_lowercase());
                    }
                } else if in_token {
                    close_token!(i);
                    in_token = false;
                    ascii_only = true;
                }
                i += 1;
            } else {
                let c = doc[i..].chars().next().expect("byte ≥ 0x80 starts a char");
                if c.is_alphanumeric() {
                    if !in_token {
                        in_token = true;
                        tok_bytes = self.bytes.len();
                        tok_doc = i;
                    }
                    ascii_only = false;
                } else if in_token {
                    close_token!(i);
                    in_token = false;
                    ascii_only = true;
                }
                i += c.len_utf8();
            }
        }
        if in_token {
            close_token!(s.len());
        }
    }

    /// FNV-1a over tokens `lo..hi` joined by the `\u{1f}` separator,
    /// computed directly on the token-byte buffer (no join string).
    #[inline]
    fn window_hash(&self, lo: usize, hi: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut start = if lo == 0 { 0 } else { self.ends[lo - 1] };
        for t in lo..hi {
            if t > lo {
                h ^= u64::from(SEP);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let end = self.ends[t];
            for &b in &self.bytes[start..end] {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            start = end;
        }
        h
    }

    /// The shingle set of `doc` as a sorted, deduplicated slice, valid
    /// until the next call. Values are exactly the naive
    /// [`shingles`] set: documents shorter than `k` tokens contribute one
    /// shingle over all their tokens, an empty document yields an empty
    /// slice.
    ///
    /// # Panics
    /// If `k` is zero.
    pub fn shingle(&mut self, doc: &str, k: usize) -> &[u64] {
        assert!(k > 0, "shingle width must be positive");
        self.tokenize_into(doc);
        self.out.clear();
        let n = self.ends.len();
        if n == 0 {
            return &self.out;
        }
        if n < k {
            self.out.push(self.window_hash(0, n));
            return &self.out;
        }
        for lo in 0..=(n - k) {
            self.out.push(self.window_hash(lo, lo + k));
        }
        self.out.sort_unstable();
        self.out.dedup();
        &self.out
    }
}

/// The set of hashed `k`-token shingles of a document. Documents shorter
/// than `k` tokens contribute a single shingle over all their tokens (an
/// empty document yields the empty set).
///
/// Compatibility wrapper over [`ShingleScratch::shingle`]; per-document
/// loops should hold a scratch instead.
pub fn shingles(doc: &str, k: usize) -> HashSet<u64> {
    let mut scratch = ShingleScratch::new();
    scratch.shingle(doc, k).iter().copied().collect()
}

/// Exact Jaccard similarity of two shingle sets. Two empty sets are defined
/// as fully similar (identical empty documents).
pub fn jaccard(a: &HashSet<u64>, b: &HashSet<u64>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_markup() {
        assert_eq!(
            tokenize("<div class=\"task\">Hi there</div>"),
            vec!["div", "class", "task", "hi", "there", "div"]
        );
        assert!(tokenize("!!! ???").is_empty());
    }

    #[test]
    fn shingles_of_identical_docs_match() {
        let a = shingles("<p>one two three four</p>", 3);
        let b = shingles("<p>one two three four</p>", 3);
        assert_eq!(a, b);
        assert_eq!(jaccard(&a, &b), 1.0);
    }

    #[test]
    fn shingle_count_is_tokens_minus_k_plus_one() {
        let s = shingles("a b c d e", 3);
        assert_eq!(s.len(), 3); // abc, bcd, cde
    }

    #[test]
    fn short_documents_still_shingle() {
        let s = shingles("one two", 5);
        assert_eq!(s.len(), 1);
        assert!(shingles("", 3).is_empty());
    }

    #[test]
    fn jaccard_disjoint_and_partial() {
        let a = shingles("alpha beta gamma delta", 2);
        let b = shingles("epsilon zeta eta theta", 2);
        assert_eq!(jaccard(&a, &b), 0.0);
        let c = shingles("alpha beta gamma epsilon", 2);
        let j = jaccard(&a, &c);
        assert!(j > 0.0 && j < 1.0, "partial overlap: {j}");
    }

    #[test]
    fn jaccard_empty_sets() {
        let e = HashSet::new();
        assert_eq!(jaccard(&e, &e), 1.0);
        let a = shingles("x y z", 1);
        assert_eq!(jaccard(&a, &e), 0.0);
    }

    #[test]
    fn small_edit_keeps_high_similarity() {
        let base = "<div class=\"task\"><h1>find the url</h1><p>please search for the official \
                    website of the business and copy its address</p><input type=\"text\"></div>";
        let edited = base.replace("item_1", "item_2").replace("copy", "paste");
        let ja = jaccard(&shingles(base, 3), &shingles(&edited, 3));
        assert!(ja > 0.7, "one-word edit should stay similar: {ja}");
    }

    #[test]
    fn separator_prevents_token_gluing() {
        // Without a separator "ab c" and "a bc" would collide.
        let a = shingles("ab c x", 2);
        let b = shingles("a bc x", 2);
        assert!(jaccard(&a, &b) < 1.0);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    /// Naive re-derivation used only in this module's tests; the real
    /// differential suite lives in crowd-testkit's kernel oracles.
    fn naive(doc: &str, k: usize) -> HashSet<u64> {
        let tokens = tokenize(doc);
        let mut out = HashSet::new();
        if tokens.is_empty() {
            return out;
        }
        if tokens.len() < k {
            out.insert(fnv1a(tokens.join("\u{1f}").as_bytes()));
            return out;
        }
        for w in tokens.windows(k) {
            out.insert(fnv1a(w.join("\u{1f}").as_bytes()));
        }
        out
    }

    #[test]
    fn scratch_matches_naive_on_mixed_documents() {
        let docs = [
            "",
            "   ",
            "one",
            "one two",
            "<div class=\"task\">Hi THERE</div>",
            "Grüße aus München: ÄÖÜßmaße 42",
            "ΟΔΥΣΣΕΥΣ was here",           // capital sigma, word-final Σ
            "ΣΟΦΟΣ\u{1f}ΣΟΦΟΣ and σ vs ς", // separators inside the doc
            "日本語のテキスト mixed with ascii42",
            "İstanbul DİYARBAKIR ffi ﬁ",
            "a\u{0301}ccent e\u{0308} combining",
        ];
        for doc in docs {
            for k in [1, 2, 3, 5] {
                let mut scratch = ShingleScratch::new();
                let fast: HashSet<u64> = scratch.shingle(doc, k).iter().copied().collect();
                assert_eq!(fast, naive(doc, k), "doc {doc:?} k {k}");
            }
        }
    }

    #[test]
    fn scratch_output_is_sorted_and_deduped() {
        let mut scratch = ShingleScratch::new();
        let out = scratch.shingle("a b a b a b a b c", 2);
        assert!(out.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
    }

    #[test]
    fn scratch_is_reusable_across_documents() {
        let mut scratch = ShingleScratch::new();
        let first: Vec<u64> = scratch.shingle("alpha beta gamma delta", 2).to_vec();
        let _ = scratch.shingle("a much longer unrelated document with many more tokens", 3);
        let again: Vec<u64> = scratch.shingle("alpha beta gamma delta", 2).to_vec();
        assert_eq!(first, again, "state fully resets between documents");
    }
}
