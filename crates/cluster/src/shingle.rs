//! Token shingling and exact Jaccard similarity.
//!
//! Documents (task HTML) are tokenized on non-alphanumeric boundaries —
//! which naturally picks up tag names, attribute names, and visible words —
//! and hashed as overlapping `k`-grams into a set of 64-bit shingles.

use std::collections::HashSet;

/// Default shingle width: 3-token grams capture local structure without
/// being hypersensitive to single-word edits.
pub const DEFAULT_K: usize = 3;

/// FNV-1a 64-bit hash.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Lower-cased alphanumeric tokens of a document.
pub fn tokenize(doc: &str) -> Vec<String> {
    doc.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// The set of hashed `k`-token shingles of a document. Documents shorter
/// than `k` tokens contribute a single shingle over all their tokens (an
/// empty document yields the empty set).
pub fn shingles(doc: &str, k: usize) -> HashSet<u64> {
    assert!(k > 0, "shingle width must be positive");
    let tokens = tokenize(doc);
    let mut out = HashSet::new();
    if tokens.is_empty() {
        return out;
    }
    if tokens.len() < k {
        let joined = tokens.join("\u{1f}");
        out.insert(fnv1a(joined.as_bytes()));
        return out;
    }
    let mut buf = String::new();
    for window in tokens.windows(k) {
        buf.clear();
        for (i, t) in window.iter().enumerate() {
            if i > 0 {
                buf.push('\u{1f}');
            }
            buf.push_str(t);
        }
        out.insert(fnv1a(buf.as_bytes()));
    }
    out
}

/// Exact Jaccard similarity of two shingle sets. Two empty sets are defined
/// as fully similar (identical empty documents).
pub fn jaccard(a: &HashSet<u64>, b: &HashSet<u64>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_markup() {
        assert_eq!(
            tokenize("<div class=\"task\">Hi there</div>"),
            vec!["div", "class", "task", "hi", "there", "div"]
        );
        assert!(tokenize("!!! ???").is_empty());
    }

    #[test]
    fn shingles_of_identical_docs_match() {
        let a = shingles("<p>one two three four</p>", 3);
        let b = shingles("<p>one two three four</p>", 3);
        assert_eq!(a, b);
        assert_eq!(jaccard(&a, &b), 1.0);
    }

    #[test]
    fn shingle_count_is_tokens_minus_k_plus_one() {
        let s = shingles("a b c d e", 3);
        assert_eq!(s.len(), 3); // abc, bcd, cde
    }

    #[test]
    fn short_documents_still_shingle() {
        let s = shingles("one two", 5);
        assert_eq!(s.len(), 1);
        assert!(shingles("", 3).is_empty());
    }

    #[test]
    fn jaccard_disjoint_and_partial() {
        let a = shingles("alpha beta gamma delta", 2);
        let b = shingles("epsilon zeta eta theta", 2);
        assert_eq!(jaccard(&a, &b), 0.0);
        let c = shingles("alpha beta gamma epsilon", 2);
        let j = jaccard(&a, &c);
        assert!(j > 0.0 && j < 1.0, "partial overlap: {j}");
    }

    #[test]
    fn jaccard_empty_sets() {
        let e = HashSet::new();
        assert_eq!(jaccard(&e, &e), 1.0);
        let a = shingles("x y z", 1);
        assert_eq!(jaccard(&a, &e), 0.0);
    }

    #[test]
    fn small_edit_keeps_high_similarity() {
        let base = "<div class=\"task\"><h1>find the url</h1><p>please search for the official \
                    website of the business and copy its address</p><input type=\"text\"></div>";
        let edited = base.replace("item_1", "item_2").replace("copy", "paste");
        let ja = jaccard(&shingles(base, 3), &shingles(&edited, 3));
        assert!(ja > 0.7, "one-word edit should stay similar: {ja}");
    }

    #[test]
    fn separator_prevents_token_gluing() {
        // Without a separator "ab c" and "a bc" would collide.
        let a = shingles("ab c x", 2);
        let b = shingles("a bc x", 2);
        assert!(jaccard(&a, &b) < 1.0);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
