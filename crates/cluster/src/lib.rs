//! # crowd-cluster
//!
//! Batch clustering by task-interface similarity (paper §3.3):
//!
//! > "we first clustered the batches in our dataset based on metadata from
//! > the extracted HTML source corresponding to the tasks, and tuned the
//! > threshold of a match to ensure that the tasks that on inspection look
//! > very similar and have similar purposes are actually clustered
//! > together."
//!
//! The pipeline is the standard near-duplicate-detection stack: token
//! [`shingle`]s → [`minhash`] signatures → LSH banding for candidate pairs
//! → exact-signature Jaccard check against a tuned threshold →
//! [`unionfind`] merge. The result assigns every batch a cluster id; the
//! paper's "clusters" (≈3,200 labeled ones) are these connected components.
//!
//! ```
//! use crowd_cluster::{Clusterer, ClusterParams};
//!
//! let docs = [
//!     "<div class=\"task\"><h1>flag images</h1><input type=\"radio\"></div>",
//!     "<div class=\"task\"><h1>flag images</h1><input type=\"radio\" id=\"x\"></div>",
//!     "<p>write a caption for the audio clip and transcribe speakers</p>",
//! ];
//! let clustering = Clusterer::new(ClusterParams::default()).cluster(&docs);
//! assert_eq!(clustering.cluster_of(0), clustering.cluster_of(1));
//! assert_ne!(clustering.cluster_of(0), clustering.cluster_of(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clusterer;
pub mod minhash;
pub mod shingle;
pub mod unionfind;

pub use clusterer::{ClusterParams, Clusterer, Clustering};
pub use minhash::{LengthMismatch, MinHasher, Signature};
pub use shingle::{jaccard, shingles, ShingleScratch};
pub use unionfind::UnionFind;
