//! The end-to-end batch clusterer (paper §3.3).
//!
//! Shingle every document, MinHash it, find candidate pairs via LSH
//! banding, confirm candidates against the tuned similarity threshold, and
//! merge confirmed pairs in a union-find. Connected components are the
//! paper's "clusters of similar batches corresponding to a distinct task".

use std::cell::RefCell;
use std::collections::HashMap;

use rayon::prelude::*;

use crate::minhash::{MinHasher, Signature};
use crate::shingle::{fnv1a, ShingleScratch};
use crate::unionfind::UnionFind;

thread_local! {
    /// Per-thread shingling scratch for the parallel signature fan-out:
    /// steady-state shingling touches the allocator only while the buffers
    /// grow to the largest document a thread has seen (DESIGN.md §18).
    static SHINGLE_SCRATCH: RefCell<ShingleScratch> = RefCell::new(ShingleScratch::new());
}

/// Tuning parameters of the clusterer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// Shingle width in tokens.
    pub shingle_k: usize,
    /// Signature length (number of min-hashes); must be `bands × rows`.
    pub n_hashes: usize,
    /// Number of LSH bands.
    pub bands: usize,
    /// Estimated-Jaccard threshold above which two batches are "a match" —
    /// the knob the authors report tuning by inspection.
    pub threshold: f64,
    /// Seed for the hash family.
    pub seed: u64,
}

impl Default for ClusterParams {
    fn default() -> Self {
        // 128 hashes in 32 bands of 4 rows: the LSH S-curve crosses 50%
        // candidate probability near J ≈ (1/32)^(1/4) ≈ 0.42, comfortably
        // below the 0.6 confirmation threshold, so recall at the threshold
        // is high while candidate volume stays manageable.
        ClusterParams { shingle_k: 3, n_hashes: 128, bands: 32, threshold: 0.6, seed: 0x5eed }
    }
}

/// A clustering of `n` documents.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    labels: Vec<u32>,
    n_clusters: usize,
}

impl Clustering {
    /// Reassembles a clustering from persisted labels (the snapshot warm
    /// path). Returns `None` unless the labels form a valid dense
    /// clustering: every label below `n_clusters`, every cluster id in
    /// `0..n_clusters` used at least once, and first occurrences in
    /// increasing order — exactly the shape
    /// [`Clusterer::cluster_signatures`] emits, so a round-tripped
    /// clustering is indistinguishable from a freshly computed one.
    pub fn from_parts(labels: Vec<u32>, n_clusters: usize) -> Option<Clustering> {
        let mut next = 0u32;
        for &label in &labels {
            if label > next {
                return None;
            }
            if label == next {
                next += 1;
            }
        }
        (next as usize == n_clusters).then_some(Clustering { labels, n_clusters })
    }

    /// Cluster id of document `i` (dense, `0..n_clusters`).
    pub fn cluster_of(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// All labels, indexed by document.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no documents were clustered.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Documents per cluster, indexed by cluster id.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.n_clusters];
        for (doc, &c) in self.labels.iter().enumerate() {
            out[c as usize].push(doc as u32);
        }
        out
    }

    /// Cluster sizes, indexed by cluster id (the paper's "cluster size" is
    /// the number of batches in a cluster, Fig. 6).
    pub fn sizes(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.n_clusters];
        for &c in &self.labels {
            out[c as usize] += 1;
        }
        out
    }
}

/// The configured clustering pipeline.
#[derive(Debug, Clone)]
pub struct Clusterer {
    params: ClusterParams,
    hasher: MinHasher,
}

impl Clusterer {
    /// Creates a clusterer.
    ///
    /// # Panics
    /// If `n_hashes` is not divisible by `bands`, or a parameter is zero.
    pub fn new(params: ClusterParams) -> Clusterer {
        assert!(params.bands > 0 && params.n_hashes > 0 && params.shingle_k > 0);
        assert_eq!(params.n_hashes % params.bands, 0, "n_hashes must be a multiple of bands");
        assert!((0.0..=1.0).contains(&params.threshold));
        Clusterer { hasher: MinHasher::new(params.n_hashes, params.seed), params }
    }

    /// The active parameters.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// Computes MinHash signatures for a document set. Shingling and
    /// hashing are independent per document, so the work fans out across
    /// threads; output order matches input order exactly.
    pub fn signatures<S: AsRef<str> + Sync>(&self, docs: &[S]) -> Vec<Signature> {
        docs.par_iter()
            .map(|d| {
                SHINGLE_SCRATCH.with(|scratch| {
                    let mut scratch = scratch.borrow_mut();
                    self.hasher.sign(scratch.shingle(d.as_ref(), self.params.shingle_k))
                })
            })
            .collect()
    }

    /// Clusters documents: LSH candidates, threshold confirmation,
    /// union-find components.
    pub fn cluster<S: AsRef<str> + Sync>(&self, docs: &[S]) -> Clustering {
        let sigs = self.signatures(docs);
        self.cluster_signatures(&sigs)
    }

    /// Clusters from precomputed signatures (must come from
    /// [`Clusterer::signatures`] with the same parameters).
    ///
    /// The expensive part — LSH banding and candidate-pair emission — runs
    /// one band per task across threads. The merge phase is sequential and
    /// consumes the deduplicated pairs in sorted order, so the clustering
    /// (components *and* label numbering) is identical at any thread count;
    /// this also removes the hash-map iteration order the merge previously
    /// depended on.
    pub fn cluster_signatures(&self, sigs: &[Signature]) -> Clustering {
        let n = sigs.len();
        let mut uf = UnionFind::new(n);
        let rows = self.params.n_hashes / self.params.bands;

        // LSH banding: documents agreeing on all rows of any band become
        // candidate pairs (each member vs. the bucket's first document —
        // the cheap representative scheme that avoids O(|bucket|²) on
        // giant buckets; transitive merging covers the rest across bands).
        let bands: Vec<usize> = (0..self.params.bands).collect();
        let per_band: Vec<Vec<(u32, u32)>> = bands
            .par_iter()
            .map(|&band| {
                let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
                let mut band_key = Vec::with_capacity(rows * 8);
                for (doc, sig) in sigs.iter().enumerate() {
                    band_key.clear();
                    for r in 0..rows {
                        band_key.extend_from_slice(&sig.0[band * rows + r].to_le_bytes());
                    }
                    buckets.entry(fnv1a(&band_key)).or_default().push(doc as u32);
                }
                let mut pairs = Vec::new();
                for bucket in buckets.values() {
                    // Bucket members are in document order, so `first` is
                    // the lowest id and every pair is already normalized.
                    let first = bucket[0];
                    for &other in &bucket[1..] {
                        pairs.push((first, other));
                    }
                }
                pairs
            })
            .collect();

        let mut candidates: Vec<(u32, u32)> = per_band.into_iter().flatten().collect();
        candidates.sort_unstable();
        candidates.dedup();

        for (first, other) in candidates {
            let (first, other) = (first as usize, other as usize);
            if uf.connected(first, other) {
                continue;
            }
            // Signatures here come from one `MinHasher`, so the lengths
            // always agree; a mismatch (impossible through this entry
            // point) simply never confirms the candidate pair.
            if sigs[first].estimate_jaccard(&sigs[other]).is_ok_and(|j| j >= self.params.threshold)
            {
                uf.union(first, other);
            }
        }
        let labels = uf.labels();
        let n_clusters = uf.components();
        Clustering { labels, n_clusters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small synthetic corpus: three "task types", several near-duplicate
    /// variants each, plus one unique document.
    fn corpus() -> Vec<String> {
        let mut docs = Vec::new();
        let templates = [
            "<div class=\"task\"><h1>flag inappropriate images</h1><p>please review the image \
             shown below and select whether it is appropriate for all audiences or contains \
             content that should be flagged for removal</p><input type=\"radio\" name=\"q\">\
             <label>appropriate</label><input type=\"radio\" name=\"q\"><label>flag</label></div>",
            "<div class=\"task\"><h1>find business website</h1><p>search the web for the \
             official website of the business listed below and paste the full url into the \
             provided text box make sure the url starts with http</p><input type=\"text\" \
             name=\"url\"></div>",
            "<div class=\"task\"><h1>transcribe the receipt</h1><p>look at the scanned receipt \
             image and type the total amount and the store name into the boxes below use \
             exact spelling</p><input type=\"text\" name=\"total\"><input type=\"text\" \
             name=\"store\"></div>",
        ];
        for (t, template) in templates.iter().enumerate() {
            for v in 0..4 {
                // Near-duplicate: vary an item reference.
                docs.push(template.replace("below", &format!("below item{}{}", t, v)));
            }
        }
        docs.push("<p>completely unrelated survey about breakfast preferences and pets</p>".into());
        docs
    }

    #[test]
    fn recovers_planted_clusters() {
        let docs = corpus();
        let clustering = Clusterer::new(ClusterParams::default()).cluster(&docs);
        assert_eq!(clustering.n_clusters(), 4, "3 template groups + 1 singleton");
        // All variants of a template share a cluster.
        for t in 0..3 {
            let base = clustering.cluster_of(t * 4);
            for v in 1..4 {
                assert_eq!(clustering.cluster_of(t * 4 + v), base, "template {t} variant {v}");
            }
        }
        // Different templates land in different clusters.
        assert_ne!(clustering.cluster_of(0), clustering.cluster_of(4));
        assert_ne!(clustering.cluster_of(4), clustering.cluster_of(8));
        // Singleton stays alone.
        let sizes = clustering.sizes();
        assert_eq!(sizes[clustering.cluster_of(12) as usize], 1);
    }

    #[test]
    fn members_and_sizes_agree() {
        let docs = corpus();
        let clustering = Clusterer::new(ClusterParams::default()).cluster(&docs);
        let members = clustering.members();
        let sizes = clustering.sizes();
        assert_eq!(members.len(), sizes.len());
        for (m, &s) in members.iter().zip(&sizes) {
            assert_eq!(m.len() as u32, s);
        }
        let total: u32 = sizes.iter().sum();
        assert_eq!(total as usize, docs.len(), "every document is assigned");
    }

    #[test]
    fn threshold_one_only_merges_identical() {
        let params = ClusterParams { threshold: 1.0, ..ClusterParams::default() };
        let docs = vec!["same exact words here", "same exact words here", "same exact words there"];
        let clustering = Clusterer::new(params).cluster(&docs);
        assert_eq!(clustering.cluster_of(0), clustering.cluster_of(1));
        assert_ne!(clustering.cluster_of(0), clustering.cluster_of(2));
    }

    #[test]
    fn empty_input() {
        let clustering = Clusterer::new(ClusterParams::default()).cluster::<&str>(&[]);
        assert!(clustering.is_empty());
        assert_eq!(clustering.n_clusters(), 0);
    }

    #[test]
    fn single_document() {
        let clustering = Clusterer::new(ClusterParams::default()).cluster(&["only one"]);
        assert_eq!(clustering.n_clusters(), 1);
        assert_eq!(clustering.cluster_of(0), 0);
    }

    #[test]
    #[should_panic(expected = "multiple of bands")]
    fn bad_band_split_panics() {
        let _ =
            Clusterer::new(ClusterParams { n_hashes: 100, bands: 33, ..ClusterParams::default() });
    }

    #[test]
    fn deterministic() {
        let docs = corpus();
        let a = Clusterer::new(ClusterParams::default()).cluster(&docs);
        let b = Clusterer::new(ClusterParams::default()).cluster(&docs);
        assert_eq!(a, b);
    }
}
