//! Disjoint-set forest with union by rank and path halving.

/// Union-find over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n as u32).collect(), rank: vec![0; n], components: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[lo] = hi as u32;
        if self.rank[ra] == self.rank[rb] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// True when `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Dense labeling: maps each element to a cluster id in
    /// `0..components`, numbered by first appearance.
    pub fn labels(&mut self) -> Vec<u32> {
        let n = self.parent.len();
        let mut label_of_root = vec![u32::MAX; n];
        let mut labels = Vec::with_capacity(n);
        let mut next = 0u32;
        for i in 0..n {
            let root = self.find(i);
            if label_of_root[root] == u32::MAX {
                label_of_root[root] = next;
                next += 1;
            }
            labels.push(label_of_root[root]);
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.components(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn labels_are_dense_and_stable() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 5);
        uf.union(0, 2);
        let labels = uf.labels();
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_eq!(labels[0], 0, "first-seen numbering");
        assert_eq!(labels[1], 1);
        assert_eq!(labels[3], 3 - 1, "dense ids, no gaps");
        let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
        assert_eq!(distinct.len(), uf.components());
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn empty_and_len() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(UnionFind::new(3).len(), 3);
    }
}
