//! Serializing a [`Document`] back to HTML text.

use crate::ast::{is_void, Document, Element, Node};
use crate::escape::{escape_attr, escape_text};

/// Renders a document to HTML.
pub fn write_document(doc: &Document) -> String {
    let mut out = String::new();
    for node in &doc.nodes {
        write_node(node, &mut out);
    }
    out
}

fn write_node(node: &Node, out: &mut String) {
    match node {
        Node::Text(t) => out.push_str(&escape_text(t)),
        Node::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        Node::Element(e) => write_element(e, out),
    }
}

fn write_element(e: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&e.tag);
    for (name, value) in &e.attrs {
        out.push(' ');
        out.push_str(name);
        if !value.is_empty() {
            out.push_str("=\"");
            out.push_str(&escape_attr(value));
            out.push('"');
        }
    }
    if is_void(&e.tag) {
        out.push('>');
        return;
    }
    out.push('>');
    for child in &e.children {
        write_node(child, out);
    }
    out.push_str("</");
    out.push_str(&e.tag);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn writes_simple_tree() {
        let doc = Document {
            nodes: vec![Node::Element(Element::new("p").attr("class", "x").text("hello"))],
        };
        assert_eq!(write_document(&doc), "<p class=\"x\">hello</p>");
    }

    #[test]
    fn escapes_text_and_attrs() {
        let doc = Document {
            nodes: vec![Node::Element(
                Element::new("a").attr("title", "a \"b\" & c").text("x < y"),
            )],
        };
        let html = write_document(&doc);
        assert!(html.contains("&quot;b&quot;"));
        assert!(html.contains("x &lt; y"));
        // And it parses back to the same tree.
        assert_eq!(parse(&html).unwrap(), doc);
    }

    #[test]
    fn void_elements_have_no_close_tag() {
        let doc = Document { nodes: vec![Node::Element(Element::new("img").attr("src", "x.png"))] };
        assert_eq!(write_document(&doc), "<img src=\"x.png\">");
    }

    #[test]
    fn boolean_attributes_render_bare() {
        let doc =
            Document { nodes: vec![Node::Element(Element::new("input").attr("checked", ""))] };
        assert_eq!(write_document(&doc), "<input checked>");
    }

    #[test]
    fn comments_roundtrip() {
        let doc = Document { nodes: vec![Node::Comment(" c ".into())] };
        assert_eq!(write_document(&doc), "<!-- c -->");
    }
}
