//! HTML tokenizer.
//!
//! Produces a flat token stream — open tags (with parsed attributes),
//! close tags, text runs, and comments — which [`crate::parser`] folds
//! into a tree. The lexer is tolerant where real-world task HTML is sloppy
//! (unquoted attribute values, stray whitespace) and reports a precise byte
//! offset for every error.

use crate::escape::unescape;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<tag attr="v" …>` or `<tag … />` (`self_closing`).
    Open {
        /// Lower-cased tag name.
        name: String,
        /// Attributes in order; names lower-cased, values unescaped.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</tag>`.
    Close {
        /// Lower-cased tag name.
        name: String,
    },
    /// A text run (entities resolved).
    Text(String),
    /// `<!-- … -->`.
    Comment(String),
}

/// A lexing failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte position where the problem was detected.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes an HTML fragment.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    Lexer { input, pos: 0 }.run()
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>, LexError> {
        let mut tokens = Vec::new();
        while self.pos < self.input.len() {
            if self.rest().starts_with("<!--") {
                tokens.push(self.comment()?);
            } else if self.rest().starts_with("</") {
                tokens.push(self.close_tag()?);
            } else if self.rest().starts_with('<') {
                tokens.push(self.open_tag()?);
            } else {
                let text = self.text();
                if !text.is_empty() {
                    tokens.push(Token::Text(text));
                }
            }
        }
        Ok(tokens)
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError { offset: self.pos, message: message.into() }
    }

    fn text(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.input.len() && !self.rest().starts_with('<') {
            self.pos += self.rest().chars().next().unwrap().len_utf8();
        }
        unescape(&self.input[start..self.pos])
    }

    fn comment(&mut self) -> Result<Token, LexError> {
        let body_start = self.pos + 4;
        match self.input[body_start..].find("-->") {
            Some(end) => {
                let body = self.input[body_start..body_start + end].to_owned();
                self.pos = body_start + end + 3;
                Ok(Token::Comment(body))
            }
            None => Err(self.err("unterminated comment")),
        }
    }

    fn close_tag(&mut self) -> Result<Token, LexError> {
        self.pos += 2; // </
        let name = self.tag_name()?;
        self.skip_ws();
        if !self.rest().starts_with('>') {
            return Err(self.err(format!("malformed closing tag </{name}")));
        }
        self.pos += 1;
        Ok(Token::Close { name })
    }

    fn open_tag(&mut self) -> Result<Token, LexError> {
        self.pos += 1; // <
        let name = self.tag_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            if self.rest().starts_with("/>") {
                self.pos += 2;
                return Ok(Token::Open { name, attrs, self_closing: true });
            }
            if self.rest().starts_with('>') {
                self.pos += 1;
                return Ok(Token::Open { name, attrs, self_closing: false });
            }
            if self.rest().is_empty() {
                return Err(self.err(format!("unterminated tag <{name}")));
            }
            attrs.push(self.attribute()?);
        }
    }

    fn tag_name(&mut self) -> Result<String, LexError> {
        let start = self.pos;
        while self
            .rest()
            .chars()
            .next()
            .map(|c| c.is_ascii_alphanumeric() || c == '-')
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected tag name"));
        }
        Ok(self.input[start..self.pos].to_ascii_lowercase())
    }

    fn attribute(&mut self) -> Result<(String, String), LexError> {
        let start = self.pos;
        while self
            .rest()
            .chars()
            .next()
            .map(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == ':')
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected attribute name"));
        }
        let name = self.input[start..self.pos].to_ascii_lowercase();
        self.skip_ws();
        if !self.rest().starts_with('=') {
            // Boolean attribute (e.g. `checked`).
            return Ok((name, String::new()));
        }
        self.pos += 1;
        self.skip_ws();
        let value = match self.rest().chars().next() {
            Some(q @ ('"' | '\'')) => {
                self.pos += 1;
                let vstart = self.pos;
                match self.rest().find(q) {
                    Some(end) => {
                        let raw = &self.input[vstart..vstart + end];
                        self.pos = vstart + end + 1;
                        unescape(raw)
                    }
                    None => return Err(self.err("unterminated attribute value")),
                }
            }
            Some(_) => {
                // Unquoted value: up to whitespace or tag end.
                let vstart = self.pos;
                while self
                    .rest()
                    .chars()
                    .next()
                    .map(|c| !c.is_ascii_whitespace() && c != '>' && c != '/')
                    .unwrap_or(false)
                {
                    self.pos += self.rest().chars().next().unwrap().len_utf8();
                }
                unescape(&self.input[vstart..self.pos])
            }
            None => return Err(self.err("unterminated tag in attribute")),
        };
        Ok((name, value))
    }

    fn skip_ws(&mut self) {
        while self.rest().chars().next().map(|c| c.is_ascii_whitespace()).unwrap_or(false) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_simple_fragment() {
        let toks = lex("<p>hi</p>").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Open { name: "p".into(), attrs: vec![], self_closing: false },
                Token::Text("hi".into()),
                Token::Close { name: "p".into() },
            ]
        );
    }

    #[test]
    fn lexes_attributes_all_styles() {
        let toks = lex(r#"<input type="text" name='q' checked size=20>"#).unwrap();
        match &toks[0] {
            Token::Open { name, attrs, self_closing } => {
                assert_eq!(name, "input");
                assert!(!self_closing);
                assert_eq!(
                    attrs,
                    &vec![
                        ("type".to_string(), "text".to_string()),
                        ("name".to_string(), "q".to_string()),
                        ("checked".to_string(), String::new()),
                        ("size".to_string(), "20".to_string()),
                    ]
                );
            }
            other => panic!("unexpected token {other:?}"),
        }
    }

    #[test]
    fn lexes_self_closing_and_case_folds() {
        let toks = lex("<IMG SRC=\"x.png\"/>").unwrap();
        assert_eq!(
            toks,
            vec![Token::Open {
                name: "img".into(),
                attrs: vec![("src".into(), "x.png".into())],
                self_closing: true,
            }]
        );
    }

    #[test]
    fn lexes_comment() {
        let toks = lex("a<!-- note -->b").unwrap();
        assert_eq!(
            toks,
            vec![Token::Text("a".into()), Token::Comment(" note ".into()), Token::Text("b".into()),]
        );
    }

    #[test]
    fn resolves_entities_in_text_and_attrs() {
        let toks = lex("<a title=\"R&amp;D\">x &lt; y</a>").unwrap();
        match &toks[0] {
            Token::Open { attrs, .. } => assert_eq!(attrs[0].1, "R&D"),
            _ => panic!(),
        }
        assert_eq!(toks[1], Token::Text("x < y".into()));
    }

    #[test]
    fn error_offsets() {
        let e = lex("<p><").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(lex("<!-- open").is_err());
        assert!(lex("<a href=\"no-close>").is_err());
        assert!(lex("</p").is_err());
        assert!(lex("<>").is_err());
    }

    #[test]
    fn whitespace_tolerance_in_close_tag() {
        assert_eq!(lex("</div >").unwrap(), vec![Token::Close { name: "div".into() }]);
    }

    #[test]
    fn unicode_text_survives() {
        let toks = lex("<p>héllo ✓</p>").unwrap();
        assert_eq!(toks[1], Token::Text("héllo ✓".into()));
    }
}
