//! Task-interface generator.
//!
//! `crowd-sim` attaches HTML to every sampled batch; this module renders a
//! realistic interface from an [`InterfaceSpec`] whose knobs correspond
//! one-to-one to the paper's §4 design parameters. The text is drawn
//! deterministically from a word bank keyed by `seed`, so two batches of the
//! same task type produce *near-identical* markup (same structure, slightly
//! different item references) — which is exactly what makes the §3.3
//! HTML-similarity clustering both possible and non-trivial.

use crate::ast::{Document, Element, Node};
use crate::writer::write_document;

/// Specification of one task interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceSpec {
    /// Task title (the batch's one-sentence description, §2.3).
    pub title: String,
    /// Approximate number of words of instructions to include. The total
    /// `#words` of the page will exceed this by the title/questions/labels.
    pub instruction_words: u32,
    /// Number of questions on the page.
    pub questions: u32,
    /// Number of free-form text boxes (distributed across questions).
    pub text_boxes: u32,
    /// Number of prominently displayed examples (the paper counts the word
    /// "example" wrapped in a tag of its own, §4.6).
    pub examples: u32,
    /// Number of `<img>` tags.
    pub images: u32,
    /// Alternatives per multiple-choice question.
    pub choice_options: u16,
    /// Seed for word selection: batches of one task type share this, so
    /// their instruction text is identical.
    pub seed: u64,
    /// Per-batch variant: drives only incidental content (item references,
    /// batch markers), keeping same-type batches *near*-identical — the
    /// property the §3.3 similarity clustering relies on.
    pub variant: u64,
}

impl Default for InterfaceSpec {
    fn default() -> Self {
        InterfaceSpec {
            title: "Untitled task".into(),
            instruction_words: 60,
            questions: 1,
            text_boxes: 0,
            examples: 0,
            images: 0,
            choice_options: 2,
            seed: 0,
            variant: 0,
        }
    }
}

/// Word bank for generated instructions — vocabulary typical of microtask
/// guidelines, so generated pages tokenize like real ones.
const WORDS: &[&str] = &[
    "please",
    "read",
    "the",
    "following",
    "carefully",
    "before",
    "answering",
    "each",
    "question",
    "select",
    "option",
    "that",
    "best",
    "describes",
    "item",
    "shown",
    "below",
    "if",
    "you",
    "are",
    "unsure",
    "choose",
    "closest",
    "match",
    "do",
    "not",
    "use",
    "external",
    "tools",
    "unless",
    "instructed",
    "otherwise",
    "search",
    "for",
    "official",
    "website",
    "of",
    "business",
    "and",
    "copy",
    "its",
    "address",
    "into",
    "box",
    "provided",
    "make",
    "sure",
    "your",
    "answer",
    "is",
    "complete",
    "sentence",
    "avoid",
    "abbreviations",
    "when",
    "possible",
    "check",
    "spelling",
    "submit",
    "only",
    "after",
    "reviewing",
    "all",
    "responses",
    "work",
    "will",
    "be",
    "reviewed",
    "by",
    "other",
    "contributors",
    "accuracy",
    "matters",
    "more",
    "than",
    "speed",
    "thank",
    "this",
    "task",
    "should",
    "take",
    "about",
    "two",
    "minutes",
    "to",
    "image",
    "text",
    "page",
    "profile",
    "record",
    "listing",
    "screenshot",
    "document",
    "label",
    "category",
    "relevant",
    "irrelevant",
    "positive",
    "negative",
    "neutral",
    "same",
    "different",
    "matches",
    "contains",
];

/// Minimal xorshift64* generator — deterministic, dependency-free.
#[derive(Debug, Clone)]
pub struct WordRng(u64);

impl WordRng {
    /// Seeds the generator (zero is remapped to a fixed constant).
    pub fn new(seed: u64) -> WordRng {
        WordRng(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn sentence(&mut self, words: u32) -> String {
        let mut out = String::with_capacity(words as usize * 8);
        for i in 0..words {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(WORDS[self.below(WORDS.len() as u64) as usize]);
        }
        out
    }
}

impl InterfaceSpec {
    /// Builds the interface as an AST.
    pub fn build(&self) -> Document {
        let mut rng = WordRng::new(self.seed ^ 0xC0FF_EE00);
        let mut item_rng = WordRng::new(self.variant ^ 0x00BA_7C45_EED1);
        let mut task = Element::new("div")
            .attr("class", "task")
            .attr("data-batch", format!("{:x}", self.variant));

        task = task.child(Node::Element(Element::new("h1").text(self.title.clone())));

        if self.instruction_words > 0 {
            let mut instr = Element::new("div").attr("class", "instructions");
            instr = instr.child(Node::Element(Element::new("h2").text("Instructions")));
            // Split the instruction words across a few paragraphs.
            let mut remaining = self.instruction_words;
            while remaining > 0 {
                let take = remaining.min(40);
                instr = instr.child(Node::Element(Element::new("p").text(rng.sentence(take))));
                remaining -= take;
            }
            task = task.child(Node::Element(instr));
        }

        for i in 0..self.examples {
            let ex = Element::new("div")
                .attr("class", "example")
                .child(Node::Element(Element::new("b").text(format!("Example {}", i + 1))))
                .child(Node::Element(Element::new("p").text(rng.sentence(18))));
            task = task.child(Node::Element(ex));
        }

        // Images: attach to the first questions, overflow standalone.
        let mut images_left = self.images;
        let text_boxes_in_questions = self.text_boxes.min(self.questions);

        for q in 0..self.questions.max(1) {
            let mut qdiv =
                Element::new("div").attr("class", "question").attr("data-q", (q + 1).to_string());
            qdiv =
                qdiv.child(Node::Element(Element::new("p").text(format!("{}?", rng.sentence(9)))));
            if images_left > 0 {
                qdiv = qdiv.child(Node::Element(
                    Element::new("img")
                        .attr(
                            "src",
                            format!(
                                "https://cdn.example.org/item_{}.png",
                                item_rng.below(1_000_000)
                            ),
                        )
                        .attr("alt", "item"),
                ));
                images_left -= 1;
            }
            if q < text_boxes_in_questions {
                qdiv = qdiv.child(Node::Element(
                    Element::new("input").attr("type", "text").attr("name", format!("q{}", q + 1)),
                ));
            } else {
                for opt in 0..self.choice_options.max(2) {
                    let id = format!("q{}o{}", q + 1, opt);
                    qdiv = qdiv
                        .child(Node::Element(
                            Element::new("input")
                                .attr("type", "radio")
                                .attr("name", format!("q{}", q + 1))
                                .attr("id", id.clone())
                                .attr("value", opt.to_string()),
                        ))
                        .child(Node::Element(
                            Element::new("label")
                                .attr("for", id)
                                .text(WORDS[rng.below(WORDS.len() as u64) as usize].to_string()),
                        ));
                }
            }
            task = task.child(Node::Element(qdiv));
        }

        // Extra text boxes beyond the question count live in a comments div.
        for extra in text_boxes_in_questions..self.text_boxes {
            task = task.child(Node::Element(
                Element::new("input")
                    .attr("type", "text")
                    .attr("name", format!("extra{}", extra + 1)),
            ));
        }
        // Leftover images not attached to a question.
        for _ in 0..images_left {
            task = task.child(Node::Element(
                Element::new("img")
                    .attr(
                        "src",
                        format!("https://cdn.example.org/item_{}.png", item_rng.below(1_000_000)),
                    )
                    .attr("alt", "item"),
            ));
        }

        task =
            task.child(Node::Element(Element::new("button").attr("type", "submit").text("Submit")));

        Document { nodes: vec![Node::Element(task)] }
    }

    /// Renders the interface to an HTML string.
    pub fn render(&self) -> String {
        write_document(&self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_features;
    use crate::parser::parse;

    fn spec() -> InterfaceSpec {
        InterfaceSpec {
            title: "Classify storefront photos".into(),
            instruction_words: 100,
            questions: 4,
            text_boxes: 2,
            examples: 3,
            images: 5,
            choice_options: 3,
            seed: 42,
            variant: 7,
        }
    }

    #[test]
    fn render_is_parseable() {
        let html = spec().render();
        let doc = parse(&html).unwrap();
        assert_eq!(doc.nodes.len(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(spec().render(), spec().render());
        let mut other = spec();
        other.seed = 43;
        assert_ne!(spec().render(), other.render(), "different seed, different page");
        let variant = InterfaceSpec { variant: 8, ..spec() };
        assert_ne!(spec().render(), variant.render(), "variants differ");
    }

    #[test]
    fn variants_share_instruction_text() {
        let a = spec().render();
        let b = InterfaceSpec { variant: 999, ..spec() }.render();
        assert_ne!(a, b);
        // Strip the incidental parts; the instruction prose is identical.
        let text_a: Vec<&str> = a.split("cdn.example.org").collect();
        let text_b: Vec<&str> = b.split("cdn.example.org").collect();
        assert_eq!(text_a.len(), text_b.len());
        assert_eq!(
            text_a[0].split("data-batch").next().unwrap().len(),
            text_b[0].split("data-batch").next().unwrap().len()
        );
    }

    #[test]
    fn counts_survive_roundtrip() {
        let f = extract_features(&spec().render()).unwrap();
        assert_eq!(f.examples, 3);
        assert_eq!(f.images, 5);
        assert_eq!(f.text_boxes, 2);
        assert!(f.has_instructions);
        assert!(f.words >= 100, "instructions alone contribute 100 words, got {}", f.words);
    }

    #[test]
    fn zero_features_render_cleanly() {
        let s = InterfaceSpec {
            title: "t".into(),
            instruction_words: 0,
            questions: 1,
            text_boxes: 0,
            examples: 0,
            images: 0,
            choice_options: 2,
            seed: 1,
            variant: 0,
        };
        let f = extract_features(&s.render()).unwrap();
        assert_eq!(f.examples, 0);
        assert_eq!(f.images, 0);
        assert_eq!(f.text_boxes, 0);
        assert!(!f.has_instructions);
    }

    #[test]
    fn more_text_boxes_than_questions() {
        let s = InterfaceSpec { text_boxes: 6, questions: 2, ..spec() };
        let f = extract_features(&s.render()).unwrap();
        assert_eq!(f.text_boxes, 6);
    }

    #[test]
    fn word_rng_is_stable() {
        let mut a = WordRng::new(5);
        let mut b = WordRng::new(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Zero seed is remapped, not degenerate.
        let mut z = WordRng::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn same_type_different_seeds_share_structure() {
        let a = spec();
        let b = InterfaceSpec { seed: 777, ..spec() };
        let fa = extract_features(&a.render()).unwrap();
        let fb = extract_features(&b.render()).unwrap();
        assert_eq!(fa.examples, fb.examples);
        assert_eq!(fa.images, fb.images);
        assert_eq!(fa.text_boxes, fb.text_boxes);
    }
}
