//! Design-parameter extraction from task HTML (paper §2.4).
//!
//! "We extract and store features from the sample HTML source … For
//! example, we check whether a task contains instructions, examples,
//! text-boxes and images." The §4 analyses then correlate these features
//! with the effectiveness metrics.

use crate::ast::{Document, Node};
use crate::parser::{parse, HtmlError};

/// Design parameters recovered from a task's HTML source.
///
/// `#items` is *not* extractable from HTML — it is a property of the batch
/// (how many distinct items its instances operate on) and is computed by
/// the analytics layer from instance rows instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtractedFeatures {
    /// `#words`: whitespace-separated tokens across all text nodes (§4.3).
    pub words: u32,
    /// `#text-box`: free-form inputs — `<input type="text">` (or inputs
    /// with no `type`, which default to text) plus `<textarea>` (§4.4).
    pub text_boxes: u32,
    /// `#examples`: occurrences of the word "example" wrapped in a tag of
    /// its own, i.e. prominently displayed (§4.6).
    pub examples: u32,
    /// `#images`: `<img>` tags (§4.7).
    pub images: u32,
    /// Total input fields of any kind (`input`, `textarea`, `select`).
    pub input_fields: u32,
    /// Whether an instructions block is present (§2.4).
    pub has_instructions: bool,
}

/// Parses `html` and extracts design features.
pub fn extract_features(html: &str) -> Result<ExtractedFeatures, HtmlError> {
    Ok(extract_from_document(&parse(html)?))
}

/// Extracts design features from an already parsed document.
pub fn extract_from_document(doc: &Document) -> ExtractedFeatures {
    let mut f = ExtractedFeatures {
        words: doc.text_content().split_whitespace().count() as u32,
        ..Default::default()
    };

    for node in doc.walk() {
        let Some(e) = node.as_element() else { continue };
        match e.tag.as_str() {
            "img" => f.images += 1,
            "textarea" => {
                f.text_boxes += 1;
                f.input_fields += 1;
            }
            "select" => f.input_fields += 1,
            "input" => {
                f.input_fields += 1;
                let ty = e.get_attr("type").unwrap_or("text");
                if ty.eq_ignore_ascii_case("text") {
                    f.text_boxes += 1;
                }
            }
            _ => {}
        }
        // "The word example wrapped in a tag of its own": an element whose
        // sole child is a text node starting with "example".
        if let [Node::Text(t)] = e.children.as_slice() {
            if is_example_marker(t) {
                f.examples += 1;
            }
        }
        if !f.has_instructions && is_instructions_block(e) {
            f.has_instructions = true;
        }
    }
    f
}

/// Matches "example", optionally followed by an index and punctuation
/// ("Example", "example 2:", "EXAMPLE:").
fn is_example_marker(text: &str) -> bool {
    let t = text.trim();
    let lower = t.to_ascii_lowercase();
    let Some(rest) = lower.strip_prefix("example") else {
        return false;
    };
    rest.chars().all(|c| c.is_ascii_digit() || c.is_ascii_whitespace() || c == ':' || c == '.')
}

fn is_instructions_block(e: &crate::ast::Element) -> bool {
    if e.has_class("instructions") || e.get_attr("id") == Some("instructions") {
        return true;
    }
    if matches!(e.tag.as_str(), "h1" | "h2" | "h3" | "b" | "strong") {
        if let [Node::Text(t)] = e.children.as_slice() {
            return t.trim().eq_ignore_ascii_case("instructions");
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_words_across_nested_text() {
        let f = extract_features("<div><p>one two</p><span>three</span></div>").unwrap();
        assert_eq!(f.words, 3);
    }

    #[test]
    fn counts_text_boxes_by_type() {
        let html = r#"
            <input type="text">
            <input type="radio">
            <input>
            <textarea></textarea>
            <select></select>
        "#;
        let f = extract_features(html).unwrap();
        assert_eq!(f.text_boxes, 3, "text + default-type input + textarea");
        assert_eq!(f.input_fields, 5);
    }

    #[test]
    fn example_marker_variants() {
        assert!(is_example_marker("Example"));
        assert!(is_example_marker("example 12:"));
        assert!(is_example_marker("  EXAMPLE.  "));
        assert!(!is_example_marker("for example, do this"));
        assert!(!is_example_marker("examples are in the text"));
        assert!(!is_example_marker("counterexample"));
    }

    #[test]
    fn counts_wrapped_examples_only() {
        let html = r#"
            <b>Example 1</b>
            <p>for example you could answer yes</p>
            <div><span>Example 2:</span></div>
        "#;
        let f = extract_features(html).unwrap();
        assert_eq!(f.examples, 2, "inline mentions inside prose do not count");
    }

    #[test]
    fn counts_images() {
        let f = extract_features(r#"<img src="a"><div><img src="b"></div>"#).unwrap();
        assert_eq!(f.images, 2);
    }

    #[test]
    fn detects_instructions_by_class_and_heading() {
        assert!(extract_features(r#"<div class="instructions">x</div>"#).unwrap().has_instructions);
        assert!(extract_features("<h2>Instructions</h2>").unwrap().has_instructions);
        assert!(extract_features("<h2>INSTRUCTIONS</h2>").unwrap().has_instructions);
        assert!(
            !extract_features("<p>follow the instructions above</p>").unwrap().has_instructions
        );
    }

    #[test]
    fn empty_document() {
        let f = extract_features("").unwrap();
        assert_eq!(f, ExtractedFeatures::default());
    }

    #[test]
    fn malformed_html_is_an_error() {
        assert!(extract_features("<input type=\"text").is_err());
    }
}
