//! HTML entity escaping for the five predefined entities.

/// Escapes text-node content (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escapes attribute-value content (adds `"` and `'`).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Unescapes the predefined entities plus decimal/hex numeric references.
/// Unknown or malformed references are passed through verbatim, as browsers
/// do for legacy content.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some(semi) = s[i..].find(';').map(|p| i + p) {
                let entity = &s[i + 1..semi];
                let replacement = match entity {
                    "amp" => Some('&'),
                    "lt" => Some('<'),
                    "gt" => Some('>'),
                    "quot" => Some('"'),
                    "apos" => Some('\''),
                    _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                        u32::from_str_radix(&entity[2..], 16).ok().and_then(char::from_u32)
                    }
                    _ if entity.starts_with('#') => {
                        entity[1..].parse::<u32>().ok().and_then(char::from_u32)
                    }
                    _ => None,
                };
                if let Some(ch) = replacement {
                    out.push(ch);
                    i = semi + 1;
                    continue;
                }
            }
        }
        let ch = s[i..].chars().next().unwrap();
        out.push(ch);
        i += ch.len_utf8();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_basics() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
        assert_eq!(escape_text("\"quotes\" stay"), "\"quotes\" stay");
    }

    #[test]
    fn escape_attr_quotes() {
        assert_eq!(escape_attr(r#"say "hi" & 'bye'"#), "say &quot;hi&quot; &amp; &#39;bye&#39;");
    }

    #[test]
    fn unescape_roundtrip() {
        for s in ["a < b & c > d", r#"say "hi" & 'bye'"#, "plain", "ünïcödé ✓"] {
            assert_eq!(unescape(&escape_attr(s)), s);
            assert_eq!(unescape(&escape_text(s)), s);
        }
    }

    #[test]
    fn unescape_numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#X43;"), "ABC");
        assert_eq!(unescape("&#128075;"), "👋");
    }

    #[test]
    fn unescape_passes_through_unknown() {
        assert_eq!(unescape("&nbsp; &bogus; &"), "&nbsp; &bogus; &");
        assert_eq!(unescape("&#xZZ;"), "&#xZZ;");
        assert_eq!(unescape("a & b"), "a & b");
    }
}
