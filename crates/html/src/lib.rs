//! # crowd-html
//!
//! Task-interface HTML tooling for the crowdsourcing-marketplace study.
//!
//! The paper's dataset contains "the source HTML code to one sample task
//! instance in the batch" (§2.3), from which the authors extracted *design
//! parameters* — `#words`, `#text-box`, `#examples`, `#images` — used by the
//! entire §4 task-design analysis. This crate provides both directions:
//!
//! * [`generator`] renders a realistic task interface from an
//!   [`InterfaceSpec`] (used by `crowd-sim` to attach HTML to batches);
//! * [`lexer`]/[`parser`] parse HTML into an AST, and [`features`]
//!   re-extracts the design parameters from raw markup — so the enrichment
//!   pipeline of §2.4 runs end-to-end instead of being short-circuited.
//!
//! ```
//! use crowd_html::{generator::InterfaceSpec, features::extract_features};
//!
//! let spec = InterfaceSpec {
//!     title: "Find the official website".into(),
//!     instruction_words: 120,
//!     questions: 3,
//!     text_boxes: 1,
//!     examples: 2,
//!     images: 1,
//!     choice_options: 4,
//!     seed: 7,
//!     variant: 0,
//! };
//! let html = spec.render();
//! let feats = extract_features(&html).unwrap();
//! assert_eq!(feats.examples, 2);
//! assert_eq!(feats.images, 1);
//! assert!(feats.text_boxes >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod escape;
pub mod features;
pub mod generator;
pub mod lexer;
pub mod parser;
pub mod writer;

pub use ast::{Document, Node};
pub use features::{extract_features, ExtractedFeatures};
pub use generator::InterfaceSpec;
pub use parser::{parse, HtmlError};
pub use writer::write_document;
