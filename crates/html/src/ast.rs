//! HTML document tree.

use std::fmt;

/// Tags that never have children or closing tags (HTML void elements that
/// appear in task interfaces).
pub const VOID_ELEMENTS: &[&str] = &["img", "input", "br", "hr", "meta", "link", "source"];

/// True for void (self-contained) elements.
pub fn is_void(tag: &str) -> bool {
    VOID_ELEMENTS.contains(&tag)
}

/// A node in the parsed HTML tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with tag name, attributes, and children.
    Element(Element),
    /// A run of text.
    Text(String),
    /// A comment (`<!-- … -->`); preserved for fidelity.
    Comment(String),
}

/// An element node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Lower-cased tag name.
    pub tag: String,
    /// Attributes in source order; names lower-cased, values unescaped.
    pub attrs: Vec<(String, String)>,
    /// Child nodes.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(tag: impl Into<String>) -> Element {
        Element { tag: tag.into(), attrs: Vec::new(), children: Vec::new() }
    }

    /// Adds an attribute (builder style).
    #[must_use]
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Element {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Adds a child (builder style).
    #[must_use]
    pub fn child(mut self, node: Node) -> Element {
        self.children.push(node);
        self
    }

    /// Adds a text child (builder style).
    #[must_use]
    pub fn text(self, t: impl Into<String>) -> Element {
        self.child(Node::Text(t.into()))
    }

    /// First value of attribute `name`, if present.
    pub fn get_attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the space-separated `class` attribute contains `class_name`.
    pub fn has_class(&self, class_name: &str) -> bool {
        self.get_attr("class")
            .map(|c| c.split_ascii_whitespace().any(|p| p == class_name))
            .unwrap_or(false)
    }

    /// Concatenated text of all descendant text nodes.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        collect_text(&self.children, &mut out);
        out
    }
}

impl Node {
    /// Shorthand for an element node.
    pub fn elem(e: Element) -> Node {
        Node::Element(e)
    }

    /// The element inside, if this is an element node.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }
}

fn collect_text(nodes: &[Node], out: &mut String) {
    for n in nodes {
        match n {
            Node::Text(t) => {
                if !out.is_empty() && !out.ends_with(' ') {
                    out.push(' ');
                }
                out.push_str(t.trim());
            }
            Node::Element(e) => collect_text(&e.children, out),
            Node::Comment(_) => {}
        }
    }
}

/// A parsed document: the root-level node sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Document {
    /// Top-level nodes in source order.
    pub nodes: Vec<Node>,
}

impl Document {
    /// Depth-first traversal over every node.
    pub fn walk(&self) -> Walk<'_> {
        Walk { stack: self.nodes.iter().rev().collect() }
    }

    /// All elements with the given tag name.
    pub fn elements_by_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.walk().filter_map(Node::as_element).filter(move |e| e.tag == tag)
    }

    /// Concatenated text of the whole document.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        collect_text(&self.nodes, &mut out);
        out
    }
}

/// Depth-first iterator over all nodes of a [`Document`].
pub struct Walk<'a> {
    stack: Vec<&'a Node>,
}

impl<'a> Iterator for Walk<'a> {
    type Item = &'a Node;
    fn next(&mut self) -> Option<&'a Node> {
        let node = self.stack.pop()?;
        if let Node::Element(e) = node {
            self.stack.extend(e.children.iter().rev());
        }
        Some(node)
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::writer::write_document(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        Document {
            nodes: vec![Node::elem(
                Element::new("div")
                    .attr("class", "task main")
                    .child(Node::elem(Element::new("h1").text("Title")))
                    .child(Node::elem(Element::new("p").text("hello world")))
                    .child(Node::Comment("note".into())),
            )],
        }
    }

    #[test]
    fn builder_and_attr_lookup() {
        let e = Element::new("input").attr("type", "text").attr("name", "q1");
        assert_eq!(e.get_attr("type"), Some("text"));
        assert_eq!(e.get_attr("missing"), None);
    }

    #[test]
    fn has_class_splits_tokens() {
        let e = Element::new("div").attr("class", "example prominent");
        assert!(e.has_class("example"));
        assert!(e.has_class("prominent"));
        assert!(!e.has_class("examp"));
        assert!(!Element::new("div").has_class("x"));
    }

    #[test]
    fn text_content_joins_with_spaces() {
        let doc = sample();
        assert_eq!(doc.text_content(), "Title hello world");
    }

    #[test]
    fn walk_visits_depth_first() {
        let doc = sample();
        let tags: Vec<_> = doc.walk().filter_map(Node::as_element).map(|e| e.tag.clone()).collect();
        assert_eq!(tags, vec!["div", "h1", "p"]);
    }

    #[test]
    fn elements_by_tag() {
        let doc = sample();
        assert_eq!(doc.elements_by_tag("p").count(), 1);
        assert_eq!(doc.elements_by_tag("img").count(), 0);
    }

    #[test]
    fn void_elements() {
        assert!(is_void("img"));
        assert!(is_void("input"));
        assert!(!is_void("div"));
    }
}
