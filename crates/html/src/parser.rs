//! Tree construction from the token stream.
//!
//! Browser-style recovery for the sloppiness common in requester-authored
//! task HTML: an unmatched close tag either closes the nearest matching
//! open ancestor (implicitly closing everything inside it) or is dropped;
//! unclosed elements are closed at end of input. Lexical garbage is still a
//! hard error.

use crate::ast::{is_void, Document, Element, Node};
use crate::lexer::{lex, LexError, Token};

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmlError {
    /// The tokenizer rejected the input.
    Lex(LexError),
}

impl std::fmt::Display for HtmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HtmlError::Lex(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HtmlError {}

impl From<LexError> for HtmlError {
    fn from(e: LexError) -> Self {
        HtmlError::Lex(e)
    }
}

/// Parses an HTML fragment into a [`Document`].
pub fn parse(input: &str) -> Result<Document, HtmlError> {
    let tokens = lex(input)?;
    // Stack of open elements; index 0 is a synthetic root.
    let mut stack: Vec<Element> = vec![Element::new("#root")];
    for tok in tokens {
        match tok {
            Token::Text(t) => {
                if !t.trim().is_empty() {
                    stack.last_mut().unwrap().children.push(Node::Text(t));
                }
            }
            Token::Comment(c) => {
                stack.last_mut().unwrap().children.push(Node::Comment(c));
            }
            Token::Open { name, attrs, self_closing } => {
                let elem = Element { tag: name.clone(), attrs, children: Vec::new() };
                if self_closing || is_void(&name) {
                    stack.last_mut().unwrap().children.push(Node::Element(elem));
                } else {
                    stack.push(elem);
                }
            }
            Token::Close { name } => {
                // Find the nearest matching open element (not the root).
                if let Some(pos) = stack.iter().rposition(|e| e.tag == name) {
                    if pos == 0 {
                        continue; // stray close for a never-opened tag: drop
                    }
                    // Implicitly close everything above it, then it.
                    while stack.len() > pos {
                        let done = stack.pop().unwrap();
                        stack.last_mut().unwrap().children.push(Node::Element(done));
                    }
                }
                // No match at all: drop the stray close tag.
            }
        }
    }
    // Close any elements left open at EOF.
    while stack.len() > 1 {
        let done = stack.pop().unwrap();
        stack.last_mut().unwrap().children.push(Node::Element(done));
    }
    Ok(Document { nodes: stack.pop().unwrap().children })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let doc = parse("<div><p>a</p><p>b</p></div>").unwrap();
        assert_eq!(doc.nodes.len(), 1);
        let div = doc.nodes[0].as_element().unwrap();
        assert_eq!(div.tag, "div");
        assert_eq!(div.children.len(), 2);
        assert_eq!(doc.text_content(), "a b");
    }

    #[test]
    fn void_elements_do_not_nest() {
        let doc = parse("<p><img src=\"a.png\"><br>text</p>").unwrap();
        let p = doc.nodes[0].as_element().unwrap();
        assert_eq!(p.children.len(), 3);
        assert_eq!(p.children[0].as_element().unwrap().tag, "img");
    }

    #[test]
    fn recovers_from_unclosed_elements() {
        let doc = parse("<div><p>open forever").unwrap();
        let div = doc.nodes[0].as_element().unwrap();
        let p = div.children[0].as_element().unwrap();
        assert_eq!(p.text_content(), "open forever");
    }

    #[test]
    fn recovers_from_mismatched_close() {
        // </div> implicitly closes the <p>.
        let doc = parse("<div><p>x</div>after").unwrap();
        assert_eq!(doc.nodes.len(), 2);
        assert_eq!(doc.nodes[0].as_element().unwrap().tag, "div");
        assert_eq!(doc.nodes[1], Node::Text("after".into()));
    }

    #[test]
    fn drops_stray_close_tags() {
        let doc = parse("a</span>b").unwrap();
        assert_eq!(doc.text_content(), "a b");
    }

    #[test]
    fn whitespace_only_text_is_pruned() {
        let doc = parse("<div>  \n  <p>x</p>  </div>").unwrap();
        let div = doc.nodes[0].as_element().unwrap();
        assert_eq!(div.children.len(), 1);
    }

    #[test]
    fn comments_are_kept() {
        let doc = parse("<div><!-- hint --></div>").unwrap();
        let div = doc.nodes[0].as_element().unwrap();
        assert_eq!(div.children, vec![Node::Comment(" hint ".into())]);
    }

    #[test]
    fn lex_errors_propagate() {
        assert!(matches!(parse("<a href=\"oops>"), Err(HtmlError::Lex(_))));
    }

    #[test]
    fn roundtrip_with_writer() {
        let src = "<div class=\"task\"><h1>T</h1><p>body &amp; soul</p><img src=\"i.png\"></div>";
        let doc = parse(src).unwrap();
        let rendered = crate::writer::write_document(&doc);
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(doc, reparsed, "parse → write → parse is a fixed point");
    }
}
