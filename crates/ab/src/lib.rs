//! # crowd-ab
//!
//! A/B testing harness over the simulated marketplace — the paper's §7
//! future work realized: "with full-fledged A/B testing, we may be able to
//! solidify our correlation and predictive claims with further
//! causation-based evidence."
//!
//! An experiment runs the simulator twice with the *same seed*: a control
//! run and a run where an [`Intervention`] is applied to the targeted task
//! types (see [`crowd_sim::intervention`]). Both worlds share every random
//! draw, so the outcome difference on treated types isolates the causal
//! pathway. Inference is nonparametric: a bootstrap CI on the difference
//! of medians plus a Mann–Whitney rank-sum test — appropriate for the
//! study's heavy-tailed latency metrics.
//!
//! ```no_run
//! use crowd_ab::{AbExperiment};
//! use crowd_analytics::design::metrics::Metric;
//! use crowd_sim::{Intervention, SimConfig, TargetSelector};
//!
//! let exp = AbExperiment {
//!     config: SimConfig::new(7, 0.002),
//!     target: TargetSelector::All,
//!     intervention: Intervention::AddExamples { count: 2 },
//!     metric: Metric::PickupTime,
//! };
//! let outcome = exp.run();
//! assert!(outcome.diff_ci.estimate < 0.0, "examples cut pickup time");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crowd_analytics::design::metrics::Metric;
use crowd_analytics::Study;
use crowd_core::dataset::Dataset;
use crowd_core::id::TaskTypeId;
use crowd_sim::{simulate_with, Intervention, SimConfig, TargetSelector};
use crowd_stats::bootstrap::{bootstrap_diff_ci, BootstrapCi};
use crowd_stats::descriptive::median;
use crowd_stats::mannwhitney::{mann_whitney_u, MannWhitneyResult};

/// One A/B experiment definition.
#[derive(Debug, Clone)]
pub struct AbExperiment {
    /// Simulation configuration shared by both arms (the seed pairs them).
    pub config: SimConfig,
    /// Which task types receive the intervention.
    pub target: TargetSelector,
    /// The design change under test.
    pub intervention: Intervention,
    /// The outcome metric.
    pub metric: Metric,
}

/// Experiment outcome.
#[derive(Debug, Clone)]
pub struct AbOutcome {
    /// The metric measured.
    pub metric: Metric,
    /// Task types that actually changed under the intervention.
    pub treated_types: usize,
    /// Per-batch metric values of treated types, control arm.
    pub control: Vec<f64>,
    /// Per-batch metric values of treated types, treatment arm.
    pub treatment: Vec<f64>,
    /// Bootstrap CI on `median(treatment) − median(control)`.
    pub diff_ci: BootstrapCi,
    /// Rank-sum test between the arms.
    pub rank_sum: Option<MannWhitneyResult>,
    /// Medians of the two arms.
    pub medians: (f64, f64),
}

impl AbOutcome {
    /// Whether the experiment shows a causal effect: the bootstrap CI
    /// excludes zero.
    pub fn significant(&self) -> bool {
        self.diff_ci.excludes_zero()
    }

    /// Relative change of the treatment median vs control.
    pub fn relative_change(&self) -> f64 {
        if self.medians.0 == 0.0 {
            return f64::NAN;
        }
        (self.medians.1 - self.medians.0) / self.medians.0
    }
}

/// Errors from running an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbError {
    /// No task type matched the selector, or none changed under the
    /// intervention (e.g. adding examples where all targets already have
    /// them).
    NothingTreated,
    /// Too few metric observations in one of the arms for inference.
    TooFewObservations {
        /// Control-arm observations.
        control: usize,
        /// Treatment-arm observations.
        treatment: usize,
    },
}

impl std::fmt::Display for AbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbError::NothingTreated => write!(f, "intervention changed no task type"),
            AbError::TooFewObservations { control, treatment } => {
                write!(f, "too few observations (control {control}, treatment {treatment})")
            }
        }
    }
}

impl std::error::Error for AbError {}

impl AbExperiment {
    /// Runs both arms and performs inference. Panics never; degenerate
    /// setups return [`AbError`] through [`AbExperiment::try_run`].
    pub fn run(&self) -> AbOutcome {
        self.try_run().expect("A/B experiment had no usable observations")
    }

    /// Runs both arms, returning an error on degenerate setups.
    pub fn try_run(&self) -> Result<AbOutcome, AbError> {
        let mut treated: Vec<u32> = Vec::new();
        let control_ds = simulate_with(&self.config, |_| {});
        let treatment_ds = simulate_with(&self.config, |types| {
            for (i, t) in types.iter_mut().enumerate() {
                if self.target.matches(t) && self.intervention.apply(t) {
                    treated.push(i as u32);
                }
            }
        });
        if treated.is_empty() {
            return Err(AbError::NothingTreated);
        }

        let control = metric_values(&control_ds, &treated, self.metric);
        let treatment = metric_values(&treatment_ds, &treated, self.metric);
        if control.len() < 5 || treatment.len() < 5 {
            return Err(AbError::TooFewObservations {
                control: control.len(),
                treatment: treatment.len(),
            });
        }

        let med = |xs: &[f64]| median(xs).expect("non-empty");
        let diff_ci = bootstrap_diff_ci(
            &treatment,
            &control,
            |xs| median(xs).expect("non-empty resample"),
            800,
            0.95,
            self.config.seed ^ 0xAB,
        )
        .expect("non-empty arms");
        let rank_sum = mann_whitney_u(&treatment, &control);
        Ok(AbOutcome {
            metric: self.metric,
            treated_types: treated.len(),
            medians: (med(&control), med(&treatment)),
            control,
            treatment,
            diff_ci,
            rank_sum,
        })
    }
}

/// Per-batch metric values for the treated types, computed through the
/// standard enrichment (the analytics pipeline, not generator internals).
fn metric_values(ds: &Dataset, treated: &[u32], metric: Metric) -> Vec<f64> {
    let study = Study::new(ds.clone());
    let treated: std::collections::HashSet<TaskTypeId> =
        treated.iter().map(|&i| TaskTypeId::new(i)).collect();
    study
        .enriched_batches()
        .filter(|m| treated.contains(&ds.batch(m.batch).task_type))
        .filter_map(|m| match metric {
            Metric::Disagreement => m.disagreement,
            Metric::TaskTime => m.task_time,
            Metric::PickupTime => m.pickup_time,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> SimConfig {
        SimConfig::new(99, 0.002)
    }

    #[test]
    fn adding_examples_cuts_pickup_causally() {
        let outcome = AbExperiment {
            config: base_config(),
            target: TargetSelector::All,
            intervention: Intervention::AddExamples { count: 2 },
            metric: Metric::PickupTime,
        }
        .run();
        assert!(outcome.treated_types > 50);
        assert!(
            outcome.medians.1 < outcome.medians.0 * 0.6,
            "examples cut pickup ~4.7× (Table 3): {:?}",
            outcome.medians
        );
        assert!(outcome.significant(), "{:?}", outcome.diff_ci);
        if let Some(rs) = &outcome.rank_sum {
            assert!(rs.p_value < 0.01);
        }
    }

    #[test]
    fn removing_text_boxes_cuts_task_time() {
        let outcome = AbExperiment {
            config: base_config(),
            target: TargetSelector::All,
            intervention: Intervention::RemoveTextBoxes,
            metric: Metric::TaskTime,
        }
        .run();
        assert!(outcome.medians.1 < outcome.medians.0, "{:?}", outcome.medians);
        assert!(outcome.relative_change() < -0.2, "{}", outcome.relative_change());
    }

    #[test]
    fn null_intervention_shows_no_effect() {
        // A/A run: arms are bit-identical, difference is exactly zero.
        let outcome = AbExperiment {
            config: base_config(),
            target: TargetSelector::All,
            intervention: Intervention::ScaleWords { factor: 1.0 },
            metric: Metric::Disagreement,
        }
        .try_run();
        // factor 1.0 is a no-op → NothingTreated.
        assert_eq!(outcome.unwrap_err(), AbError::NothingTreated);
    }

    #[test]
    fn scaling_items_raises_pickup() {
        let outcome = AbExperiment {
            config: base_config(),
            target: TargetSelector::All,
            intervention: Intervention::ScaleItems { factor: 20.0 },
            metric: Metric::PickupTime,
        }
        .run();
        assert!(
            outcome.medians.1 > outcome.medians.0,
            "more items → slower pickup (Table 3): {:?}",
            outcome.medians
        );
    }

    #[test]
    fn goal_targeting_restricts_treatment() {
        use crowd_core::labels::Goal;
        let all = AbExperiment {
            config: base_config(),
            target: TargetSelector::All,
            intervention: Intervention::AddExamples { count: 1 },
            metric: Metric::PickupTime,
        }
        .run();
        let lu = AbExperiment {
            config: base_config(),
            target: TargetSelector::Goal(Goal::LanguageUnderstanding),
            intervention: Intervention::AddExamples { count: 1 },
            metric: Metric::PickupTime,
        }
        .run();
        assert!(lu.treated_types < all.treated_types);
        assert!(lu.treated_types > 0);
    }
}
