//! Batch arrival process (paper §3.1, Fig 2, Fig 3, Fig 8).

use crowd_core::time::{Duration, Timestamp};
use rand::rngs::StdRng;
use rand::Rng;

use crate::calibration as cal;
use crate::config::SimConfig;
use crate::distributions::{bernoulli, lognormal_median, Categorical};
use crate::tasktypes::{ActivityPattern, TaskTypeSpec};

/// One planned batch: when it arrives, what it instantiates, how big it is,
/// and whether it falls into the observed sample.
#[derive(Debug, Clone, Copy)]
pub struct BatchPlan {
    /// Index into the task-type population.
    pub type_idx: u32,
    /// Batch creation time.
    pub created_at: Timestamp,
    /// Number of distinct items the batch operates on.
    pub items: u32,
    /// Whether the batch is in the fully observed 12k-batch sample (§2.2).
    pub sampled: bool,
}

/// The full arrival plan plus the week-level load profile needed by the
/// assignment engine (pickup latency responds to load, Fig 5a).
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Batches sorted by creation time.
    pub batches: Vec<BatchPlan>,
    /// Relative instance load per week (arbitrary units, median ≈ 1 over
    /// the post-regime era).
    pub weekly_load: Vec<f64>,
}

/// Builds the weekly volume profile: sparse pre-2015, bursty post-2015
/// with spikes (up to ~30× median) and near-dead troughs (§3.1).
pub fn weekly_volume_profile(cfg: &SimConfig, rng: &mut StdRng) -> Vec<f64> {
    let n_weeks = cfg.n_weeks();
    let regime = cfg.regime_week();
    let mut profile = Vec::with_capacity(n_weeks);
    for w in 0..n_weeks {
        let v = if w < regime {
            if bernoulli(rng, cal::PRE2015_ACTIVE_WEEK_PROB) {
                cal::PRE2015_VOLUME_FACTOR * lognormal_median(rng, 1.0, 0.65)
            } else {
                0.0
            }
        } else {
            let mut v = lognormal_median(rng, 1.0, cal::WEEKLY_VOLUME_SIGMA);
            if bernoulli(rng, 0.05) {
                // Spike weeks: the 30×-median busiest days (§3.1).
                v *= rng.gen_range(4.0..14.0);
            }
            if bernoulli(rng, 0.04) {
                // Near-dead weeks: the 0.0004× lightest days (§3.1).
                v *= rng.gen_range(0.0005..0.01);
            }
            v
        };
        profile.push(v);
    }
    profile
}

/// Plans every batch of the run.
pub fn plan_batches(cfg: &SimConfig, types: &[TaskTypeSpec], rng: &mut StdRng) -> Schedule {
    let weekly = weekly_volume_profile(cfg, rng);
    let weekday = Categorical::new(&cal::WEEKDAY_WEIGHTS);
    let head_weekday = Categorical::new(&cal::HEAD_WEEKDAY_WEIGHTS);

    let mut batches: Vec<BatchPlan> = Vec::new();
    for (type_idx, t) in types.iter().enumerate() {
        // Week weights inside the activity window follow the global
        // profile, so type activity co-moves with market bursts.
        let window: Vec<f64> = (t.start_week..=t.end_week)
            .map(|w| weekly.get(w as usize).copied().unwrap_or(0.0).max(1e-6))
            .collect();
        let window_cat = Categorical::new(&window);

        // Bulk clusters issue enormous batches (§3.3: "close to 80k
        // tasks/batch" for the 1M+ clusters); their absolute size is set
        // by the budget split in `normalize_instance_budget`.
        let items_scale = if t.bulk { 40.0 } else { 1.0 };
        let _ = type_idx;

        for _ in 0..t.planned_batches {
            let week_offset = match t.pattern {
                ActivityPattern::OneOff => {
                    // Concentrated burst near the window start.
                    let span = (t.end_week - t.start_week + 1).min(3) as usize;
                    rng.gen_range(0..span)
                }
                ActivityPattern::Steady => window_cat.sample(rng),
            };
            let week = t.start_week as usize + week_offset;
            let day_of_week = if t.bulk || t.heavy_hitter {
                head_weekday.sample(rng)
            } else {
                weekday.sample(rng)
            };
            let day = (week * 7 + day_of_week).min(cfg.n_days().saturating_sub(1));
            // Batches post during working hours, biased toward morning.
            let hour = rng.gen_range(6..22);
            let sec_of_day = hour * 3_600 + rng.gen_range(0..3_600u32) as usize;
            let created_at = cfg.start
                + Duration::from_days(day as i64)
                + Duration::from_secs(sec_of_day as i64);

            let items = (lognormal_median(rng, t.items_median * items_scale, 0.5))
                .round()
                .clamp(1.0, 5.0e6) as u32;

            batches.push(BatchPlan {
                type_idx: type_idx as u32,
                created_at,
                items,
                sampled: false,
            });
        }
    }

    mark_sample(cfg, types, &mut batches, rng);
    normalize_instance_budget(cfg, types, &mut batches);
    batches.sort_by_key(|b| (b.created_at, b.type_idx));
    Schedule { batches, weekly_load: weekly }
}

/// Marks the observed sample: coverage-stratified so ~76% of distinct
/// tasks appear in the sample while only ~21% of batches do (§2.2).
fn mark_sample(
    cfg: &SimConfig,
    types: &[TaskTypeSpec],
    batches: &mut [BatchPlan],
    rng: &mut StdRng,
) {
    // Head (heavy/bulk) types are always in the observed sample — they
    // dominate the marketplace and the 12k-batch sample was itself chosen
    // to be representative (§2.2). The draw always happens so the RNG
    // stream does not depend on type rank.
    let covered: Vec<bool> = (0..types.len())
        .map(|i| {
            let drawn = bernoulli(rng, 0.78);
            types[i].heavy_hitter || types[i].bulk || drawn
        })
        .collect();
    // Per covered type, force one sampled batch, then fill the rest of the
    // 12k/58k budget uniformly over covered types' remaining batches.
    let mut first_of_type: Vec<Option<usize>> = vec![None; types.len()];
    let mut extra_candidates: Vec<usize> = Vec::new();
    for (i, b) in batches.iter().enumerate() {
        let t = b.type_idx as usize;
        if !covered[t] {
            continue;
        }
        if first_of_type[t].is_none() {
            first_of_type[t] = Some(i);
        } else {
            extra_candidates.push(i);
        }
    }
    let forced: Vec<usize> = first_of_type.iter().flatten().copied().collect();
    let target = (batches.len() as f64 * cfg.sample_fraction).round() as usize;
    let extra_needed = target.saturating_sub(forced.len());
    let q = if extra_candidates.is_empty() {
        0.0
    } else {
        (extra_needed as f64 / extra_candidates.len() as f64).min(1.0)
    };
    for i in forced {
        batches[i].sampled = true;
    }
    for i in extra_candidates {
        if bernoulli(rng, q) {
            batches[i].sampled = true;
        }
    }
}

/// Rescales item counts so the expected number of instances in sampled
/// batches matches the configured scale of the paper's 27M (§2.2).
///
/// The bulk heavy hitters are normalized separately to a fixed
/// [`cal::BULK_INSTANCE_SHARE`] of the budget: without the split, their
/// enormous per-batch item counts would absorb nearly the whole budget and
/// starve ordinary batches of items (destroying every per-batch metric).
/// The bulk share is further split *evenly across the bulk types* — the
/// paper reports the bulky clusters at comparable magnitudes (§3.3: each
/// over 1M instances, "close to 80k tasks/batch") — so one type's small
/// `items_median` draw cannot collapse its pinned label mass.
fn normalize_instance_budget(cfg: &SimConfig, types: &[TaskTypeSpec], batches: &mut [BatchPlan]) {
    let planned_per_type = |batches: &[BatchPlan]| -> Vec<f64> {
        let mut planned = vec![0.0; types.len()];
        for b in batches.iter().filter(|b| b.sampled) {
            planned[b.type_idx as usize] +=
                f64::from(b.items) * types[b.type_idx as usize].redundancy;
        }
        planned
    };
    let target = cal::FULL_SAMPLED_INSTANCES * cfg.scale;
    let planned = planned_per_type(batches);
    let bulk_types: Vec<usize> =
        (0..types.len()).filter(|&i| types[i].bulk && planned[i] > 0.0).collect();
    let planned_rest: f64 = (0..types.len()).filter(|&i| !types[i].bulk).map(|i| planned[i]).sum();
    let bulk_target_each = if bulk_types.is_empty() {
        0.0
    } else {
        target * cal::BULK_INSTANCE_SHARE / bulk_types.len() as f64
    };
    let k_rest = if planned_rest > 0.0 {
        target * (1.0 - cal::BULK_INSTANCE_SHARE) / planned_rest
    } else {
        1.0
    };
    for b in batches.iter_mut() {
        let t = b.type_idx as usize;
        let k = if types[t].bulk {
            if planned[t] > 0.0 {
                bulk_target_each / planned[t]
            } else {
                1.0
            }
        } else {
            k_rest
        };
        b.items = ((f64::from(b.items) * k).round() as u32).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasktypes::generate_task_types;
    use rand::SeedableRng;

    fn schedule() -> (SimConfig, Vec<TaskTypeSpec>, Schedule) {
        let cfg = SimConfig::default_scale(11);
        let mut rng = StdRng::seed_from_u64(11);
        let types = generate_task_types(&cfg, &mut rng);
        let sched = plan_batches(&cfg, &types, &mut rng);
        (cfg, types, sched)
    }

    #[test]
    fn batches_are_time_sorted_and_in_range() {
        let (cfg, _, sched) = schedule();
        assert!(!sched.batches.is_empty());
        for w in sched.batches.windows(2) {
            assert!(w[0].created_at <= w[1].created_at);
        }
        for b in &sched.batches {
            assert!(b.created_at >= cfg.start && b.created_at < cfg.end);
        }
    }

    #[test]
    fn sample_fraction_near_configured() {
        let (cfg, _, sched) = schedule();
        let sampled = sched.batches.iter().filter(|b| b.sampled).count();
        let frac = sampled as f64 / sched.batches.len() as f64;
        assert!(
            (frac - cfg.sample_fraction).abs() < 0.05,
            "sample fraction {frac} vs {}",
            cfg.sample_fraction
        );
    }

    #[test]
    fn distinct_task_coverage_near_76_percent() {
        let (_, types, sched) = schedule();
        let mut covered = vec![false; types.len()];
        let mut seen = vec![false; types.len()];
        for b in &sched.batches {
            seen[b.type_idx as usize] = true;
            if b.sampled {
                covered[b.type_idx as usize] = true;
            }
        }
        let n_seen = seen.iter().filter(|&&x| x).count();
        let n_cov = covered.iter().filter(|&&x| x).count();
        let frac = n_cov as f64 / n_seen as f64;
        assert!((0.68..=0.85).contains(&frac), "§2.2: 76% of distinct tasks, got {frac}");
    }

    #[test]
    fn instance_budget_matches_scale() {
        let (cfg, types, sched) = schedule();
        let planned: f64 = sched
            .batches
            .iter()
            .filter(|b| b.sampled)
            .map(|b| f64::from(b.items) * types[b.type_idx as usize].redundancy)
            .sum();
        let target = cal::FULL_SAMPLED_INSTANCES * cfg.scale;
        assert!((planned / target - 1.0).abs() < 0.15, "planned {planned} vs target {target}");
    }

    #[test]
    fn pre_regime_is_sparse() {
        let (cfg, _, sched) = schedule();
        let regime_day = cfg.day_of(cfg.regime_change);
        let pre = sched.batches.iter().filter(|b| cfg.day_of(b.created_at) < regime_day).count();
        let frac = pre as f64 / sched.batches.len() as f64;
        assert!(frac < 0.35, "most batches post-2015 (§3.1): pre share {frac}");
    }

    #[test]
    fn weekday_volumes_decline() {
        let (cfg, _, sched) = schedule();
        let mut by_dow = [0usize; 7];
        for b in &sched.batches {
            by_dow[b.created_at.weekday().index()] += 1;
        }
        let _ = cfg;
        assert!(by_dow[0] > by_dow[5], "Mon > Sat (Fig 3): {by_dow:?}");
        assert!(by_dow[0] > by_dow[6], "Mon > Sun (Fig 3)");
        assert!(by_dow[0] >= by_dow[4], "declines across the week");
    }

    #[test]
    fn weekly_profile_is_bursty_post_regime() {
        let cfg = SimConfig::default_scale(5);
        let mut rng = StdRng::seed_from_u64(5);
        let profile = weekly_volume_profile(&cfg, &mut rng);
        let post = &profile[cfg.regime_week()..];
        let max = post.iter().copied().fold(0.0, f64::max);
        let mut sorted: Vec<f64> = post.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        assert!(max / median > 6.0, "bursts exist: max/median = {}", max / median);
        let min_active = sorted.iter().copied().find(|&v| v > 0.0).unwrap();
        assert!(min_active / median < 0.15, "troughs exist");
    }

    #[test]
    fn bulk_heavy_hitters_have_giant_batches() {
        let (_, types, sched) = schedule();
        let bulk_items: Vec<u32> = sched
            .batches
            .iter()
            .filter(|b| types[b.type_idx as usize].bulk)
            .map(|b| b.items)
            .collect();
        let normal_median = {
            let mut all: Vec<u32> = sched
                .batches
                .iter()
                .filter(|b| !types[b.type_idx as usize].bulk)
                .map(|b| b.items)
                .collect();
            all.sort_unstable();
            all[all.len() / 2]
        };
        let bulk_median = {
            let mut v = bulk_items.clone();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(
            bulk_median > normal_median * 8,
            "bulk {bulk_median} vs normal {normal_median} (§3.3)"
        );
    }

    #[test]
    fn deterministic_planning() {
        let cfg = SimConfig::tiny(2);
        let mut r1 = StdRng::seed_from_u64(2);
        let t1 = generate_task_types(&cfg, &mut r1);
        let s1 = plan_batches(&cfg, &t1, &mut r1);
        let mut r2 = StdRng::seed_from_u64(2);
        let t2 = generate_task_types(&cfg, &mut r2);
        let s2 = plan_batches(&cfg, &t2, &mut r2);
        assert_eq!(s1.batches.len(), s2.batches.len());
        assert_eq!(s1.batches[0].created_at, s2.batches[0].created_at);
    }
}
