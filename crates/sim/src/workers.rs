//! Worker population: sources, geography, engagement classes, activity
//! schedules, latent skill (paper §5).

use rand::rngs::StdRng;
use rand::Rng;

use crate::calibration as cal;
use crate::config::SimConfig;
use crate::distributions::{bernoulli, normal, pareto, Categorical};
use crate::geography::country_specs;
use crate::sources::source_specs;

/// Engagement class of a worker (paper §5.3: 52.7% one-day; 79% lifetime
/// under 100 days; ~15% "active" repeat workers completing >80% of tasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngagementClass {
    /// Active on exactly one day.
    OneDay,
    /// A handful of working days inside a short lifetime.
    Casual,
    /// The repeat workforce: >10 working days, long lifetimes.
    Active,
}

/// Generator-side description of one worker.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Index into the source registry.
    pub source: u32,
    /// Index into the country registry.
    pub country: u32,
    /// Engagement class.
    pub class: EngagementClass,
    /// Latent skill; surfaces as per-instance trust scores (§2.3).
    pub skill: f64,
    /// Personal × source speed multiplier on work time.
    pub speed: f64,
    /// Sampling weight when the assignment engine picks a worker — the
    /// heavy tail here produces the 80%-of-tasks-by-10% skew (§5.2).
    pub activity_weight: f64,
    /// Weeks (0-based sim weeks) the worker participates in, sorted.
    pub active_weeks: Vec<u16>,
    /// Days of week the worker tends to work (bitmask, bit 0 = Monday).
    pub day_mask: u8,
}

impl WorkerSpec {
    /// The worker's working days within a given week, as day-of-week
    /// indices (0 = Monday).
    pub fn days_in_week(&self) -> impl Iterator<Item = usize> + '_ {
        (0..7).filter(move |d| self.day_mask & (1 << d) != 0)
    }
}

/// Generates the worker population. `weekly_load` guides when workers join
/// (the workforce grows as the marketplace does).
pub fn generate_workers(cfg: &SimConfig, weekly_load: &[f64], rng: &mut StdRng) -> Vec<WorkerSpec> {
    let n_workers = ((cal::FULL_WORKERS * cfg.population_scale()).round() as usize).max(300);
    let n_weeks = weekly_load.len().max(1);

    let sources = source_specs();
    let countries = country_specs();
    let source_cat = Categorical::new(&sources.iter().map(|s| s.worker_weight).collect::<Vec<_>>());
    let country_cat = Categorical::new(&countries.iter().map(|c| c.weight).collect::<Vec<_>>());
    // Join week leans toward loaded eras but keeps a floor, so the weekly
    // active-worker count stays comparatively stable (Fig 4).
    let join_weights: Vec<f64> = weekly_load.iter().map(|&v| 0.35 + v).collect();
    let join_cat = Categorical::new(&join_weights);

    let mut out = Vec::with_capacity(n_workers);
    for _ in 0..n_workers {
        let source_idx = source_cat.sample(rng);
        let source = &sources[source_idx];
        let country = country_cat.sample(rng) as u32;
        let join_week = join_cat.sample(rng);

        let class = {
            let u: f64 = rng.gen_range(0.0..1.0);
            if u < cal::ONE_DAY_WORKER_FRACTION {
                EngagementClass::OneDay
            } else if u < cal::SHORT_LIFETIME_FRACTION + 0.053 {
                // one-day (52.7%) + casual ≈ 84.3% leaves ~15.7% active —
                // the "about one-third of multi-day workers" band (§5.3).
                EngagementClass::Casual
            } else {
                EngagementClass::Active
            }
        };

        let (active_weeks, day_mask) = schedule_for(class, join_week, n_weeks, rng);

        // Skill: source mean + personal variation; active workers are the
        // seasoned pool whose mean trust sits at ~0.91 (§5.4).
        let class_shift = match class {
            // Experience lifts skill toward the active-pool mean, but only
            // within reputable sources: amt keeps its 0.75 mean trust
            // regardless of worker tenure (Fig 27b).
            EngagementClass::Active if source.trust_mean >= 0.84 => {
                (cal::ACTIVE_TRUST_MEAN - source.trust_mean) * 0.6
            }
            EngagementClass::Active => 0.01,
            EngagementClass::Casual => 0.0,
            EngagementClass::OneDay => -0.01,
        };
        let skill = (source.trust_mean + class_shift + normal(rng, 0.0, cal::WORKER_SKILL_STD))
            .clamp(0.15, 0.995);

        let speed = source.speed_factor * normal(rng, 0.0, 0.22).exp();

        // Heavy-tailed personal engagement; multiplied by the source's
        // engagement profile (dedicated vs on-demand, Fig 26a).
        let personal = match class {
            EngagementClass::OneDay => 0.05,
            EngagementClass::Casual => 0.35,
            EngagementClass::Active => pareto(rng, 1.0, cal::ACTIVITY_WEIGHT_ALPHA).min(8_000.0),
        };
        let activity_weight = personal * source.engagement;

        out.push(WorkerSpec {
            source: source_idx as u32,
            country,
            class,
            skill,
            speed,
            activity_weight,
            active_weeks,
            day_mask,
        });
    }
    out
}

/// Builds a worker's participation schedule.
fn schedule_for(
    class: EngagementClass,
    join_week: usize,
    n_weeks: usize,
    rng: &mut StdRng,
) -> (Vec<u16>, u8) {
    match class {
        EngagementClass::OneDay => {
            let day = rng.gen_range(0..7u8);
            (vec![join_week as u16], 1 << day)
        }
        EngagementClass::Casual => {
            // Lifetime under ~100 days (≤ 14 weeks), a few active weeks.
            let lifetime_weeks = 1 + rng.gen_range(0..14usize);
            let last = (join_week + lifetime_weeks).min(n_weeks - 1);
            let k = 1 + rng.gen_range(0..4usize);
            let mut weeks: Vec<u16> =
                (0..k).map(|_| rng.gen_range(join_week..=last) as u16).collect();
            weeks.sort_unstable();
            weeks.dedup();
            let n_days = 1 + rng.gen_range(0..2);
            let mask = random_day_mask(rng, n_days);
            (weeks, mask)
        }
        EngagementClass::Active => {
            // Long lifetimes, availability decaying exponentially with
            // experience (§5.3, Fig 30b), some exceeding 350 working days.
            let horizon = (n_weeks - join_week).max(2);
            // Exponential lifetime in weeks, capped by the timeline.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let lifetime_weeks = ((-u.ln() * 45.0).ceil() as usize + 4).min(horizon);
            let last = join_week + lifetime_weeks - 1;
            // Participation rate: >43% of active workers work ≥ weekly.
            let rate = if bernoulli(rng, 0.45) {
                rng.gen_range(0.75..1.0)
            } else {
                rng.gen_range(0.15..0.75)
            };
            let mut weeks = Vec::new();
            for w in join_week..=last.min(n_weeks - 1) {
                if bernoulli(rng, rate) {
                    weeks.push(w as u16);
                }
            }
            if weeks.is_empty() {
                weeks.push(join_week as u16);
            }
            let days = 1 + rng.gen_range(0..5);
            (weeks, random_day_mask(rng, days))
        }
    }
}

fn random_day_mask(rng: &mut StdRng, n_days: usize) -> u8 {
    let mut mask = 0u8;
    let mut set = 0;
    while set < n_days.min(7) {
        let d = rng.gen_range(0..7u8);
        if mask & (1 << d) == 0 {
            mask |= 1 << d;
            set += 1;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::weekly_volume_profile;
    use rand::SeedableRng;

    fn workers() -> (SimConfig, Vec<WorkerSpec>) {
        let cfg = SimConfig::default_scale(13);
        let mut rng = StdRng::seed_from_u64(13);
        let profile = weekly_volume_profile(&cfg, &mut rng);
        let ws = generate_workers(&cfg, &profile, &mut rng);
        (cfg, ws)
    }

    #[test]
    fn population_scales() {
        let (_, ws) = workers();
        // 69k × 0.1 = 6.9k.
        assert!((6_400..=7_400).contains(&ws.len()), "got {}", ws.len());
    }

    #[test]
    fn one_day_fraction_matches() {
        let (_, ws) = workers();
        let one_day = ws.iter().filter(|w| w.class == EngagementClass::OneDay).count() as f64;
        let frac = one_day / ws.len() as f64;
        assert!((frac - 0.527).abs() < 0.03, "§5.3: 52.7% one-day, got {frac}");
    }

    #[test]
    fn active_fraction_matches() {
        let (_, ws) = workers();
        let active = ws.iter().filter(|w| w.class == EngagementClass::Active).count() as f64;
        let frac = active / ws.len() as f64;
        assert!((0.12..=0.20).contains(&frac), "~15% repeat workforce, got {frac}");
    }

    #[test]
    fn one_day_workers_have_single_week_single_day() {
        let (_, ws) = workers();
        for w in ws.iter().filter(|w| w.class == EngagementClass::OneDay) {
            assert_eq!(w.active_weeks.len(), 1);
            assert_eq!(w.day_mask.count_ones(), 1);
        }
    }

    #[test]
    fn schedules_are_sorted_in_range() {
        let (cfg, ws) = workers();
        for w in &ws {
            assert!(!w.active_weeks.is_empty());
            assert!(w.active_weeks.windows(2).all(|p| p[0] < p[1]));
            assert!((*w.active_weeks.last().unwrap() as usize) < cfg.n_weeks());
            assert!(w.day_mask != 0);
        }
    }

    #[test]
    fn activity_weights_are_heavy_tailed() {
        let (_, ws) = workers();
        let mut weights: Vec<f64> = ws.iter().map(|w| w.activity_weight).collect();
        weights.sort_by(f64::total_cmp);
        let total: f64 = weights.iter().sum();
        let top10: f64 = weights[weights.len() * 9 / 10..].iter().sum();
        assert!(
            top10 / total > 0.65,
            "top-10% of weights should dominate (→ §5.2 80% of tasks): {}",
            top10 / total
        );
    }

    #[test]
    fn skill_distribution_is_high_trust() {
        let (_, ws) = workers();
        let active: Vec<f64> =
            ws.iter().filter(|w| w.class == EngagementClass::Active).map(|w| w.skill).collect();
        let mean = active.iter().sum::<f64>() / active.len() as f64;
        assert!((0.86..=0.95).contains(&mean), "§5.4: active trust ≈ 0.91, got {mean}");
    }

    #[test]
    fn source_and_country_indices_valid() {
        let (_, ws) = workers();
        let n_sources = crate::sources::source_specs().len() as u32;
        let n_countries = crate::geography::country_specs().len() as u32;
        for w in &ws {
            assert!(w.source < n_sources);
            assert!(w.country < n_countries);
        }
    }

    #[test]
    fn some_long_haul_workers_exist() {
        let (_, ws) = workers();
        let max_weeks = ws.iter().map(|w| w.active_weeks.len()).max().unwrap();
        assert!(max_weeks > 40, "Fig 30b: some workers active for hundreds of days");
    }

    #[test]
    fn neodev_dominates_recruitment() {
        let (_, ws) = workers();
        let neodev = ws.iter().filter(|w| w.source == 0).count() as f64;
        let frac = neodev / ws.len() as f64;
        assert!((0.33..=0.45).contains(&frac), "NeoDev ≈ 39% of workers, got {frac}");
    }
}
