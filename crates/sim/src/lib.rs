//! # crowd-sim
//!
//! A calibrated generative simulator of the large crowdsourcing marketplace
//! studied by Jain et al. (VLDB 2017). This crate is the substitution for
//! the paper's proprietary dataset (27M task instances, ~70k workers, 139
//! labor sources, 2012–2016): it produces a full relational
//! [`crowd_core::Dataset`] whose *statistical shapes* match the paper's
//! reported findings.
//!
//! The model is **causal**, not curve-fitted per figure: design features
//! influence pickup latency, work time, and answer ambiguity through the
//! response models in [`assignment`]; worker engagement classes drive the
//! workload skew; the arrival process drives load burstiness. The analytics
//! layer (`crowd-analytics`) then *re-derives* the paper's figures from the
//! emitted rows without ever seeing generator parameters.
//!
//! Every constant is in [`calibration`], annotated with the paper section
//! it reproduces.
//!
//! ```
//! use crowd_sim::{SimConfig, simulate};
//!
//! let ds = simulate(&SimConfig::tiny(1)); // seeded, deterministic
//! assert!(ds.instances.len() > 1_000);
//! assert_eq!(ds.sources.len(), 139);      // paper Table 4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod calibration;
pub mod config;
pub mod distributions;
pub mod geography;
pub mod intervention;
pub mod schedule;
pub mod simulate;
pub mod sources;
pub mod tasktypes;
pub mod workers;

pub use config::SimConfig;
pub use intervention::{Intervention, TargetSelector};
pub use simulate::{prepare_streamed, simulate, simulate_streamed, simulate_with, SimStream};
