//! Sampling primitives built on a raw uniform RNG.
//!
//! Only `rand`'s uniform draws are used; every distribution the simulator
//! needs — normal, lognormal, Pareto, Zipf, weighted categorical — is
//! implemented here so the generative model has no hidden dependencies.

use rand::Rng;

/// Standard normal via Box–Muller (single value; the twin is discarded for
/// simplicity — the simulator is not normal-draw-bound).
pub fn normal(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z
}

/// Lognormal parameterized by its **median** and shape σ:
/// `exp(N(ln median, σ))`. The paper's latency/time metrics are summarized
/// by medians, so this parameterization keeps calibration direct.
pub fn lognormal_median(rng: &mut impl Rng, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0);
    normal(rng, median.ln(), sigma).exp()
}

/// Pareto (Lomax-style, support `x ≥ x_min`) with tail index `alpha`.
pub fn pareto(rng: &mut impl Rng, x_min: f64, alpha: f64) -> f64 {
    assert!(x_min > 0.0 && alpha > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    x_min / u.powf(1.0 / alpha)
}

/// Draws `true` with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli(rng: &mut impl Rng, p: f64) -> bool {
    rng.gen_range(0.0..1.0) < p.clamp(0.0, 1.0)
}

/// Poisson sample. Knuth's method for small λ, normal approximation above
/// λ = 64 (error negligible at the count sizes used here).
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> u64 {
    assert!(lambda >= 0.0);
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 64.0 {
        return normal(rng, lambda, lambda.sqrt()).round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Cumulative-weight categorical sampler over `0..weights.len()`.
///
/// Built once, sampled many times in O(log n).
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Builds from non-negative weights (at least one must be positive).
    pub fn new(weights: &[f64]) -> Categorical {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(weights.iter().all(|&w| w >= 0.0 && w.is_finite()), "weights must be ≥ 0");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        Categorical { cumulative }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there are no categories (never — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a category index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
    }

    /// Probability of category `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let total = *self.cumulative.last().unwrap();
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / total
    }
}

/// Zipf-like weights `w_i = 1 / (i + 1)^s` for `n` ranks.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn lognormal_median_is_the_median() {
        let mut r = rng();
        let mut xs: Vec<f64> = (0..20_001).map(|_| lognormal_median(&mut r, 100.0, 1.5)).collect();
        xs.sort_by(f64::total_cmp);
        let med = xs[xs.len() / 2];
        assert!((med / 100.0 - 1.0).abs() < 0.1, "median {med}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pareto_bounds_and_tail() {
        let mut r = rng();
        let xs: Vec<f64> = (0..10_000).map(|_| pareto(&mut r, 2.0, 1.5)).collect();
        assert!(xs.iter().all(|&x| x >= 2.0));
        let frac_large = xs.iter().filter(|&&x| x > 20.0).count() as f64 / xs.len() as f64;
        // P(X > 20) = (2/20)^1.5 ≈ 0.0316
        assert!((frac_large - 0.0316).abs() < 0.01, "tail {frac_large}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut r = rng();
        for lambda in [3.0, 120.0] {
            let xs: Vec<u64> = (0..5_000).map(|_| poisson(&mut r, lambda)).collect();
            let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
            assert!((mean / lambda - 1.0).abs() < 0.07, "λ={lambda} mean={mean}");
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = rng();
        let hits = (0..10_000).filter(|_| bernoulli(&mut r, 0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
        assert!(!bernoulli(&mut r, 0.0));
        assert!(bernoulli(&mut r, 1.0));
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let mut r = rng();
        let cat = Categorical::new(&[1.0, 3.0, 6.0]);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[cat.sample(&mut r)] += 1;
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.1).abs() < 0.02);
        assert!((counts[1] as f64 / 30_000.0 - 0.3).abs() < 0.02);
        assert!((counts[2] as f64 / 30_000.0 - 0.6).abs() < 0.02);
        assert!((cat.probability(2) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn categorical_zero_weight_category_never_sampled() {
        let mut r = rng();
        let cat = Categorical::new(&[0.0, 1.0]);
        for _ in 0..1_000 {
            assert_eq!(cat.sample(&mut r), 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn categorical_all_zero_rejected() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_weights_decay() {
        let w = zipf_weights(5, 1.0);
        assert_eq!(w.len(), 5);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[4] - 0.2).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
    }
}
