//! Orchestrates a full simulation run into a [`Dataset`].

use std::sync::Arc;

use crowd_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::assignment::{assign_windowed, planned_instances, ASSIGN_WINDOW};
use crate::config::SimConfig;
use crate::geography::country_specs;
use crate::schedule::plan_batches;
use crate::sources::source_specs;
use crate::tasktypes::generate_task_types;
use crate::workers::generate_workers;

/// Domain tag for the per-batch HTML-variation streams.
const STREAM_HTML: u64 = 0x11B4;

/// Runs the full generative pipeline:
///
/// 1. task-type population (§2.4, §3.4–3.5);
/// 2. batch arrival schedule (§3.1, §3.3);
/// 3. worker population (§5);
/// 4. instance assignment with timing/trust/answer models (§4);
/// 5. assembly into a validated [`Dataset`].
///
/// Deterministic: equal configs yield bit-identical datasets.
pub fn simulate(cfg: &SimConfig) -> Dataset {
    simulate_with(cfg, |_| {})
}

/// [`simulate`] with a hook that may edit the task-type population before
/// scheduling — the A/B experimentation entry point (see
/// [`crate::intervention`]). The hook must not draw randomness of its own;
/// the RNG stream continues identically after it, so a control run and a
/// treated run stay paired sample-for-sample.
pub fn simulate_with(
    cfg: &SimConfig,
    hook: impl FnOnce(&mut Vec<crate::tasktypes::TaskTypeSpec>),
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut types = generate_task_types(cfg, &mut rng);
    hook(&mut types);
    let types = types;
    let schedule = plan_batches(cfg, &types, &mut rng);
    let worker_specs = generate_workers(cfg, &schedule.weekly_load, &mut rng);

    // Batch HTML: the type's interface with per-batch incidental variation
    // (what makes §3.3 clustering non-trivial). The variation seed is a
    // dedicated per-batch stream: collision-resistant in `(seed, batch)`
    // — unlike an ad-hoc xor/shift mix — and independent of every other
    // consumer of the run seed. Rendering is pure per batch, so it fans
    // out across threads with output order fixed by the schedule.
    let html_domain = stream_seed(cfg.seed, STREAM_HTML);
    let indexed: Vec<(u64, &crate::schedule::BatchPlan)> =
        schedule.batches.iter().enumerate().map(|(i, p)| (i as u64, p)).collect();
    // Render straight into `Arc<str>`: the builder's arena interns shared
    // handles, so converting here (inside the fan-out) keeps the one
    // unavoidable copy off the serial assembly loop below.
    let rendered: Vec<Option<Arc<str>>> = indexed
        .par_iter()
        .map(|&(i, plan)| {
            plan.sampled.then(|| {
                let t = &types[plan.type_idx as usize];
                Arc::from(t.interface(stream_seed(html_domain, i)).render())
            })
        })
        .collect();

    let mut b = DatasetBuilder::new();

    for spec in source_specs() {
        b.add_source(Source::new(spec.name, spec.kind));
    }
    for spec in country_specs() {
        b.add_country(spec.name);
    }
    for w in &worker_specs {
        b.add_worker(Worker::new(SourceId::new(w.source), CountryId::new(w.country)));
    }
    for t in &types {
        let mut tt = TaskType::new(t.title.clone()).with_choice_arity(t.choice_arity);
        if t.labeled {
            tt.goals = t.goals;
            tt.operators = t.operators;
            tt.data_types = t.data_types;
        }
        b.add_task_type(tt);
    }
    for (plan, html) in schedule.batches.iter().zip(rendered) {
        let mut batch = Batch::new(TaskTypeId::new(plan.type_idx), plan.created_at);
        batch = match html {
            Some(html) => batch.with_html(html),
            None => batch.unsampled(),
        };
        b.add_batch(batch);
    }
    // Assignment streams in windows of sampled batches, each window
    // pushed straight into the builder's columns: only one window of
    // drafts is ever resident, instead of the whole dataset's draft
    // vector *and* its column copy. The reserve uses the schedule's
    // planned-volume estimate so the columns never reallocate mid-stream.
    // Window size, like thread count, is bit-invisible (per-batch RNG
    // streams, schedule-order delivery — see `assign_windowed`).
    b.reserve_instances(planned_instances(&types, &schedule));
    assign_windowed(cfg, &types, &schedule, &worker_specs, ASSIGN_WINDOW, |drafts| {
        for d in drafts {
            b.add_instance(TaskInstance {
                batch: BatchId::new(d.batch),
                item: ItemId::new(d.item),
                worker: WorkerId::new(d.worker),
                start: d.start,
                end: d.end,
                trust: d.trust,
                answer: d.answer,
            });
        }
    });
    b.finish().expect("generated dataset must be internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_consistent_and_nonempty() {
        let ds = simulate(&SimConfig::tiny(1));
        assert!(ds.validate().is_ok());
        assert_eq!(ds.sources.len(), 139, "Table 4");
        assert_eq!(ds.countries.len(), 148, "Fig 28");
        assert!(ds.instances.len() > 10_000, "got {}", ds.instances.len());
        assert!(ds.batches.iter().any(|b| b.sampled));
        assert!(ds.batches.iter().any(|b| !b.sampled));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(&SimConfig::tiny(99));
        let b = simulate(&SimConfig::tiny(99));
        assert_eq!(a.instances.len(), b.instances.len());
        assert_eq!(a.instances.row(0).to_owned(), b.instances.row(0).to_owned());
        assert_eq!(a.batches[5], b.batches[5]);
        let c = simulate(&SimConfig::tiny(100));
        assert_ne!(a.instances.len(), c.instances.len());
    }

    #[test]
    fn sampled_batches_have_parseable_html() {
        let ds = simulate(&SimConfig::tiny(2));
        let mut checked = 0;
        for batch in ds.batches.iter().filter(|b| b.sampled).take(50) {
            let html = batch.html.as_ref().unwrap();
            let feats = crowd_html::extract_features(html).unwrap();
            let t = &ds.task_types[batch.task_type.index()];
            let _ = t;
            assert!(feats.words > 0);
            checked += 1;
        }
        assert_eq!(checked, 50);
    }

    #[test]
    fn batches_of_same_type_have_similar_but_distinct_html() {
        let ds = simulate(&SimConfig::tiny(3));
        // Find a type with ≥2 sampled batches.
        let mut by_type: std::collections::HashMap<u32, Vec<&str>> =
            std::collections::HashMap::new();
        for batch in ds.batches.iter().filter(|b| b.sampled) {
            if let Some(h) = &batch.html {
                by_type.entry(batch.task_type.raw()).or_default().push(h);
            }
        }
        let multi = by_type.values().find(|v| v.len() >= 2).expect("some repeated type");
        assert_ne!(multi[0], multi[1], "per-batch seeds vary the HTML");
        let a = crowd_cluster::shingles(multi[0], 3);
        let b = crowd_cluster::shingles(multi[1], 3);
        assert!(
            crowd_cluster::jaccard(&a, &b) > 0.5,
            "same-type batches stay similar for §3.3 clustering"
        );
    }

    #[test]
    fn unlabeled_types_exist() {
        let ds = simulate(&SimConfig::tiny(4));
        let labeled = ds.task_types.iter().filter(|t| t.is_labeled()).count();
        let frac = labeled as f64 / ds.task_types.len() as f64;
        assert!((0.70..=0.95).contains(&frac), "≈83% labeled (§2.4): {frac}");
    }
}
