//! Orchestrates a full simulation run into a [`Dataset`].

use std::sync::Arc;

use crowd_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::assignment::{assign_windowed, planned_instances, ASSIGN_WINDOW};
use crate::config::SimConfig;
use crate::geography::country_specs;
use crate::schedule::plan_batches;
use crate::sources::source_specs;
use crate::tasktypes::generate_task_types;
use crate::workers::generate_workers;

/// Domain tag for the per-batch HTML-variation streams.
const STREAM_HTML: u64 = 0x11B4;

/// Runs the full generative pipeline:
///
/// 1. task-type population (§2.4, §3.4–3.5);
/// 2. batch arrival schedule (§3.1, §3.3);
/// 3. worker population (§5);
/// 4. instance assignment with timing/trust/answer models (§4);
/// 5. assembly into a validated [`Dataset`].
///
/// Deterministic: equal configs yield bit-identical datasets.
pub fn simulate(cfg: &SimConfig) -> Dataset {
    simulate_with(cfg, |_| {})
}

/// [`simulate`] with a hook that may edit the task-type population before
/// scheduling — the A/B experimentation entry point (see
/// [`crate::intervention`]). The hook must not draw randomness of its own;
/// the RNG stream continues identically after it, so a control run and a
/// treated run stay paired sample-for-sample.
pub fn simulate_with(
    cfg: &SimConfig,
    hook: impl FnOnce(&mut Vec<crate::tasktypes::TaskTypeSpec>),
) -> Dataset {
    let prepared = prepare(cfg, hook);
    let mut b = entity_builder(&prepared);
    // Assignment streams in windows of sampled batches, each window
    // pushed straight into the builder's columns: only one window of
    // drafts is ever resident, instead of the whole dataset's draft
    // vector *and* its column copy. The reserve uses the schedule's
    // planned-volume estimate so the columns never reallocate mid-stream.
    // Window size, like thread count, is bit-invisible (per-batch RNG
    // streams, schedule-order delivery — see `assign_windowed`).
    b.reserve_instances(planned_instances(&prepared.types, &prepared.schedule));
    prepared.assign(cfg, |drafts| {
        for d in drafts {
            b.add_instance(draft_instance(d));
        }
    });
    b.finish().expect("generated dataset must be internally consistent")
}

/// Streams the simulation's instance rows into a [`ShardSink`] as
/// completed `shard_rows`-sized shards, returning the entity-only dataset
/// (sources, countries, workers, task types, batches — empty instance
/// table). The bounded-memory cold path: at most one shard of instances
/// is resident in the producer at any time, and the rows delivered —
/// concatenated across shards — are bit-identical to
/// [`simulate`]`(cfg).instances`.
///
/// A sink error aborts the stream (remaining windows are drained without
/// further flushes) and is returned.
///
/// # Panics
/// When `shard_rows` is zero or not a
/// [`ScanPass::CHUNK`](crowd_core::ScanPass::CHUNK) multiple — misaligned
/// shard boundaries would change the scan engine's float-merge order.
pub fn simulate_streamed<S: ShardSink>(
    cfg: &SimConfig,
    shard_rows: usize,
    sink: &mut S,
) -> std::result::Result<Dataset, S::Error> {
    prepare_streamed(cfg).run(cfg, shard_rows, sink)
}

/// The two-phase form of [`simulate_streamed`]: runs pipeline steps 1–3
/// (everything entity-scale) and stops *before* instance assignment, so a
/// caller can inspect the [`entities`](SimStream::entities) and size
/// resources off [`planned_rows`](SimStream::planned_rows) — a snapshot
/// writer's shard layout, a streaming enricher's batch context — and then
/// [`run`](SimStream::run) the assignment stage into its sink.
pub fn prepare_streamed(cfg: &SimConfig) -> SimStream {
    let prepared = prepare(cfg, |_| {});
    let entities =
        entity_builder(&prepared).finish().expect("generated entities must be consistent");
    SimStream { prepared, entities }
}

/// A simulation paused between entity generation and instance assignment
/// (see [`prepare_streamed`]).
pub struct SimStream {
    prepared: Prepared,
    entities: Dataset,
}

impl SimStream {
    /// The entity-only dataset (empty instance table) the run will emit
    /// rows against.
    pub fn entities(&self) -> &Dataset {
        &self.entities
    }

    /// The schedule's planned instance volume — an upper-bound estimate
    /// (the same one `simulate` reserves columns with), suitable for
    /// sizing a shard layout before the true row count is known.
    pub fn planned_rows(&self) -> usize {
        planned_instances(&self.prepared.types, &self.prepared.schedule)
    }

    /// Runs the assignment stage, streaming completed `shard_rows`-sized
    /// shards into `sink`, and returns the entity-only dataset. Behavior
    /// and panics are those of [`simulate_streamed`].
    pub fn run<S: ShardSink>(
        self,
        cfg: &SimConfig,
        shard_rows: usize,
        sink: &mut S,
    ) -> std::result::Result<Dataset, S::Error> {
        assert!(
            shard_rows > 0 && shard_rows.is_multiple_of(ScanPass::CHUNK),
            "shard_rows must be a non-zero CHUNK multiple to keep merge order fixed"
        );
        let SimStream { prepared, entities } = self;
        let mut buf = InstanceColumns::new();
        buf.reserve(shard_rows);
        let mut base = 0usize;
        let mut failed: Option<S::Error> = None;
        prepared.assign(cfg, |drafts| {
            if failed.is_some() {
                return; // drain remaining windows without flushing
            }
            for d in drafts {
                buf.push(draft_instance(d));
                if buf.len() == shard_rows {
                    if let Err(e) = sink.flush(base, &buf) {
                        failed = Some(e);
                        return;
                    }
                    base += buf.len();
                    // Reuse the shard buffer: truncate keeps the column
                    // capacity, so steady-state flushing reallocates only
                    // for the variable-width answers.
                    buf.truncate(0);
                }
            }
        });
        if let Some(e) = failed {
            return Err(e);
        }
        if !buf.is_empty() {
            sink.flush(base, &buf)?;
        }
        Ok(entities)
    }
}

/// Everything the generative pipeline derives before any instance exists:
/// task types, the batch schedule, worker specs, and rendered batch HTML.
/// These stay resident in both build modes — they are small (entity-scale,
/// not instance-scale).
struct Prepared {
    types: Vec<crate::tasktypes::TaskTypeSpec>,
    schedule: crate::schedule::Schedule,
    worker_specs: Vec<crate::workers::WorkerSpec>,
    rendered: Vec<Option<Arc<str>>>,
}

/// Pipeline steps 1–3 plus HTML rendering, in the fixed RNG order shared
/// by every build mode.
fn prepare(
    cfg: &SimConfig,
    hook: impl FnOnce(&mut Vec<crate::tasktypes::TaskTypeSpec>),
) -> Prepared {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut types = generate_task_types(cfg, &mut rng);
    hook(&mut types);
    let types = types;
    let schedule = plan_batches(cfg, &types, &mut rng);
    let worker_specs = generate_workers(cfg, &schedule.weekly_load, &mut rng);

    // Batch HTML: the type's interface with per-batch incidental variation
    // (what makes §3.3 clustering non-trivial). The variation seed is a
    // dedicated per-batch stream: collision-resistant in `(seed, batch)`
    // — unlike an ad-hoc xor/shift mix — and independent of every other
    // consumer of the run seed. Rendering is pure per batch, so it fans
    // out across threads with output order fixed by the schedule.
    let html_domain = stream_seed(cfg.seed, STREAM_HTML);
    let indexed: Vec<(u64, &crate::schedule::BatchPlan)> =
        schedule.batches.iter().enumerate().map(|(i, p)| (i as u64, p)).collect();
    // Render straight into `Arc<str>`: the builder's arena interns shared
    // handles, so converting here (inside the fan-out) keeps the one
    // unavoidable copy off the serial assembly loop.
    let rendered: Vec<Option<Arc<str>>> = indexed
        .par_iter()
        .map(|&(i, plan)| {
            plan.sampled.then(|| {
                let t = &types[plan.type_idx as usize];
                Arc::from(t.interface(stream_seed(html_domain, i)).render())
            })
        })
        .collect();

    Prepared { types, schedule, worker_specs, rendered }
}

impl Prepared {
    /// Runs the windowed assignment stage, delivering each window's drafts
    /// to `sink` in schedule order.
    fn assign(&self, cfg: &SimConfig, sink: impl FnMut(Vec<crate::assignment::InstanceDraft>)) {
        assign_windowed(cfg, &self.types, &self.schedule, &self.worker_specs, ASSIGN_WINDOW, sink);
    }
}

/// A [`DatasetBuilder`] loaded with every entity table and batch — no
/// instances yet. Batch HTML handles are shared with `prepared` (`Arc`
/// clones), so this does not duplicate page text.
fn entity_builder(prepared: &Prepared) -> DatasetBuilder {
    let mut b = DatasetBuilder::new();
    for spec in source_specs() {
        b.add_source(Source::new(spec.name, spec.kind));
    }
    for spec in country_specs() {
        b.add_country(spec.name);
    }
    for w in &prepared.worker_specs {
        b.add_worker(Worker::new(SourceId::new(w.source), CountryId::new(w.country)));
    }
    for t in &prepared.types {
        let mut tt = TaskType::new(t.title.clone()).with_choice_arity(t.choice_arity);
        if t.labeled {
            tt.goals = t.goals;
            tt.operators = t.operators;
            tt.data_types = t.data_types;
        }
        b.add_task_type(tt);
    }
    for (plan, html) in prepared.schedule.batches.iter().zip(&prepared.rendered) {
        let mut batch = Batch::new(TaskTypeId::new(plan.type_idx), plan.created_at);
        batch = match html {
            Some(html) => batch.with_html(html.clone()),
            None => batch.unsampled(),
        };
        b.add_batch(batch);
    }
    b
}

/// The one place a draft becomes a [`TaskInstance`], shared by both build
/// modes so their rows cannot drift.
fn draft_instance(d: crate::assignment::InstanceDraft) -> TaskInstance {
    TaskInstance {
        batch: BatchId::new(d.batch),
        item: ItemId::new(d.item),
        worker: WorkerId::new(d.worker),
        start: d.start,
        end: d.end,
        trust: d.trust,
        answer: d.answer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_consistent_and_nonempty() {
        let ds = simulate(&SimConfig::tiny(1));
        assert!(ds.validate().is_ok());
        assert_eq!(ds.sources.len(), 139, "Table 4");
        assert_eq!(ds.countries.len(), 148, "Fig 28");
        assert!(ds.instances.len() > 10_000, "got {}", ds.instances.len());
        assert!(ds.batches.iter().any(|b| b.sampled));
        assert!(ds.batches.iter().any(|b| !b.sampled));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(&SimConfig::tiny(99));
        let b = simulate(&SimConfig::tiny(99));
        assert_eq!(a.instances.len(), b.instances.len());
        assert_eq!(a.instances.row(0).to_owned(), b.instances.row(0).to_owned());
        assert_eq!(a.batches[5], b.batches[5]);
        let c = simulate(&SimConfig::tiny(100));
        assert_ne!(a.instances.len(), c.instances.len());
    }

    #[test]
    fn streamed_build_is_bit_identical_to_monolithic() {
        let cfg = SimConfig::tiny(99);
        let monolithic = simulate(&cfg);
        for shards in [1usize, 3] {
            let plan = ShardPlan::new(monolithic.instances.len(), shards);
            let mut streamed = ShardedColumns::with_plan(plan);
            // A sink that re-collects the shards (keeps the pattern honest:
            // contiguous, ascending, chunk-aligned bases).
            struct Collect<'a>(&'a mut ShardedColumns, usize);
            impl ShardSink for Collect<'_> {
                type Error = std::convert::Infallible;
                fn flush(
                    &mut self,
                    base: usize,
                    shard: &InstanceColumns,
                ) -> std::result::Result<(), Self::Error> {
                    assert_eq!(base, self.1);
                    for r in shard.iter() {
                        self.0.push(r.to_owned());
                    }
                    self.1 = base + shard.len();
                    Ok(())
                }
            }
            let mut sink = Collect(&mut streamed, 0);
            let entities =
                simulate_streamed(&cfg, plan.shard_rows(), &mut sink).expect("infallible sink");
            assert!(entities.instances.is_empty(), "entities carry no rows");
            assert_eq!(entities.batches, monolithic.batches);
            assert_eq!(entities.workers, monolithic.workers);
            assert_eq!(entities.task_types, monolithic.task_types);
            assert_eq!(streamed.concat(), monolithic.instances, "shards={shards}");
        }
    }

    #[test]
    fn prepare_streamed_sizes_the_run_before_instances_exist() {
        let cfg = SimConfig::tiny(99);
        let sim = prepare_streamed(&cfg);
        assert!(sim.entities().instances.is_empty());
        assert!(sim.entities().batches.iter().any(|b| b.sampled));
        let planned = sim.planned_rows();
        struct Count(usize);
        impl ShardSink for Count {
            type Error = std::convert::Infallible;
            fn flush(
                &mut self,
                _base: usize,
                shard: &InstanceColumns,
            ) -> std::result::Result<(), Self::Error> {
                self.0 += shard.len();
                Ok(())
            }
        }
        let mut sink = Count(0);
        let entities = sim.run(&cfg, ScanPass::CHUNK, &mut sink).expect("infallible sink");
        assert!(!entities.batches.is_empty());
        let ratio = sink.0 as f64 / planned as f64;
        assert!((0.8..=1.2).contains(&ratio), "planned {planned} vs actual {}", sink.0);
    }

    #[test]
    fn streamed_build_surfaces_sink_errors() {
        struct FailSecond(usize);
        impl ShardSink for FailSecond {
            type Error = &'static str;
            fn flush(
                &mut self,
                _base: usize,
                _shard: &InstanceColumns,
            ) -> std::result::Result<(), Self::Error> {
                self.0 += 1;
                if self.0 >= 2 {
                    Err("disk died")
                } else {
                    Ok(())
                }
            }
        }
        let got = simulate_streamed(&SimConfig::tiny(99), ScanPass::CHUNK, &mut FailSecond(0));
        assert_eq!(got.unwrap_err(), "disk died");
    }

    #[test]
    fn sampled_batches_have_parseable_html() {
        let ds = simulate(&SimConfig::tiny(2));
        let mut checked = 0;
        for batch in ds.batches.iter().filter(|b| b.sampled).take(50) {
            let html = batch.html.as_ref().unwrap();
            let feats = crowd_html::extract_features(html).unwrap();
            let t = &ds.task_types[batch.task_type.index()];
            let _ = t;
            assert!(feats.words > 0);
            checked += 1;
        }
        assert_eq!(checked, 50);
    }

    #[test]
    fn batches_of_same_type_have_similar_but_distinct_html() {
        let ds = simulate(&SimConfig::tiny(3));
        // Find a type with ≥2 sampled batches.
        let mut by_type: std::collections::HashMap<u32, Vec<&str>> =
            std::collections::HashMap::new();
        for batch in ds.batches.iter().filter(|b| b.sampled) {
            if let Some(h) = &batch.html {
                by_type.entry(batch.task_type.raw()).or_default().push(h);
            }
        }
        let multi = by_type.values().find(|v| v.len() >= 2).expect("some repeated type");
        assert_ne!(multi[0], multi[1], "per-batch seeds vary the HTML");
        let a = crowd_cluster::shingles(multi[0], 3);
        let b = crowd_cluster::shingles(multi[1], 3);
        assert!(
            crowd_cluster::jaccard(&a, &b) > 0.5,
            "same-type batches stay similar for §3.3 clustering"
        );
    }

    #[test]
    fn unlabeled_types_exist() {
        let ds = simulate(&SimConfig::tiny(4));
        let labeled = ds.task_types.iter().filter(|t| t.is_labeled()).count();
        let frac = labeled as f64 / ds.task_types.len() as f64;
        assert!((0.70..=0.95).contains(&frac), "≈83% labeled (§2.4): {frac}");
    }
}
