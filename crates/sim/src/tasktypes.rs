//! Task-type population: labels, design features, popularity, activity
//! windows (paper §2.4, §3.3–§3.5, §4).

use crowd_core::labels::{Complexity, DataType, Goal, Label, LabelSet, Operator};
use crowd_html::generator::InterfaceSpec;
use rand::rngs::StdRng;
use rand::Rng;

use crate::calibration as cal;
use crate::config::SimConfig;
use crate::distributions::{bernoulli, lognormal_median, normal, zipf_weights, Categorical};

/// How a type's batches arrive over time (Fig 8: heavy hitters ramp up,
/// run steadily, then shut down for good).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivityPattern {
    /// A burst of batches within a few weeks ("one-off" tasks, §3.3).
    OneOff,
    /// Regular batches across a multi-month window.
    Steady,
}

/// Generator-side description of one distinct task.
#[derive(Debug, Clone)]
pub struct TaskTypeSpec {
    /// Human-readable title.
    pub title: String,
    /// Goal labels (≥1).
    pub goals: LabelSet<Goal>,
    /// Operator labels (≥1).
    pub operators: LabelSet<Operator>,
    /// Data-type labels (≥1).
    pub data_types: LabelSet<DataType>,
    /// Whether the authors' manual labeling covered this cluster (§2.4).
    pub labeled: bool,
    /// `#words` of the interface.
    pub words: u32,
    /// `#text-box` of the interface.
    pub text_boxes: u32,
    /// `#examples` of the interface.
    pub examples: u32,
    /// `#images` of the interface.
    pub images: u32,
    /// Median items per batch for this type (per-batch counts jitter).
    pub items_median: f64,
    /// Mean judgments collected per item.
    pub redundancy: f64,
    /// Answer-domain size for choice questions.
    pub choice_arity: u16,
    /// Number of batches this type will issue across the timeline.
    pub planned_batches: u32,
    /// First week (relative to sim start) the type is active.
    pub start_week: u32,
    /// Last active week (inclusive).
    pub end_week: u32,
    /// Arrival pattern within the window.
    pub pattern: ActivityPattern,
    /// Whether this is a paper-§3.3 heavy hitter (spans 100+ batches).
    pub heavy_hitter: bool,
    /// Whether this is one of the three "bulk" clusters holding >1M
    /// instances via enormous batches (§3.3 / Fig 7).
    pub bulk: bool,
    /// Latent ambiguity: per-judgment deviation probability, after all
    /// design-feature effects. Drives the disagreement metric.
    pub ambiguity: f64,
    /// Subjective free-text task (disagreement > 0.5; pruned by §4.1).
    pub subjective: bool,
    /// Median work seconds for this type (before worker factors).
    pub task_time_median: f64,
    /// Median pickup seconds for this type (before load factors).
    pub pickup_median: f64,
}

impl TaskTypeSpec {
    /// True when any label category is complex (§3.5).
    pub fn is_complex_goal(&self) -> bool {
        self.goals.complexity() == Some(Complexity::Complex)
    }

    /// The HTML interface spec for a batch of this type; `batch_seed`
    /// varies only the incidental content (item references) between
    /// batches of one type — the instruction text is type-stable.
    pub fn interface(&self, batch_seed: u64) -> InterfaceSpec {
        // Type-stable text seed derived from the title.
        let mut text_seed = 0xcbf2_9ce4_8422_2325u64;
        for b in self.title.bytes() {
            text_seed ^= u64::from(b);
            text_seed = text_seed.wrapping_mul(0x100_0000_01b3);
        }
        InterfaceSpec {
            title: self.title.clone(),
            instruction_words: self.words.saturating_sub(30),
            questions: (self.text_boxes + 2).min(6),
            text_boxes: self.text_boxes,
            examples: self.examples,
            images: self.images,
            choice_options: self.choice_arity,
            seed: text_seed,
            variant: batch_seed,
        }
    }
}

/// Goal sampling weights (instance-mass-oriented; Fig 9a: LU ≈17% and
/// T ≈13% of instances lead, ER/SA trail).
const GOAL_WEIGHTS: [f64; 7] = [
    0.09, // ER
    0.11, // HB
    0.12, // SR
    0.13, // QA
    0.09, // SA
    0.27, // LU
    0.19, // T
];

/// Operator mix conditioned on primary goal (rows: Goal; cols: Operator in
/// enum order Filt, Rate, Sort, Count, Tag, Gat, Ext, Gen, Loc, Exter).
/// Encodes the Fig 10b correlations: transcription is extraction-driven;
/// HB uses external links (13%) and localization (9%); LU generates (16%).
const OP_GIVEN_GOAL: [[f64; 10]; 7] = [
    // ER
    [0.55, 0.15, 0.05, 0.02, 0.08, 0.10, 0.05, 0.00, 0.00, 0.00],
    // HB
    [0.26, 0.19, 0.05, 0.00, 0.05, 0.08, 0.05, 0.10, 0.09, 0.13],
    // SR
    [0.40, 0.35, 0.10, 0.00, 0.05, 0.05, 0.05, 0.00, 0.00, 0.00],
    // QA
    [0.55, 0.15, 0.00, 0.05, 0.12, 0.00, 0.05, 0.00, 0.08, 0.00],
    // SA
    [0.35, 0.45, 0.00, 0.00, 0.10, 0.05, 0.00, 0.05, 0.00, 0.00],
    // LU
    [0.30, 0.25, 0.00, 0.05, 0.10, 0.06, 0.08, 0.16, 0.00, 0.00],
    // T
    [0.10, 0.00, 0.00, 0.00, 0.08, 0.05, 0.60, 0.12, 0.05, 0.00],
];

/// Data-type mix conditioned on primary goal (cols in enum order Text,
/// Image, Audio, Video, Maps, Social, Web). Encodes Fig 10a: web matters
/// for ER (24%) and SR (37%); social for SA (13%) and LU (8%).
const DATA_GIVEN_GOAL: [[f64; 7]; 7] = [
    // ER
    [0.35, 0.20, 0.02, 0.03, 0.06, 0.10, 0.24],
    // HB
    [0.45, 0.20, 0.05, 0.08, 0.04, 0.08, 0.10],
    // SR
    [0.30, 0.20, 0.01, 0.02, 0.04, 0.06, 0.37],
    // QA
    [0.35, 0.35, 0.03, 0.05, 0.02, 0.08, 0.12],
    // SA
    [0.50, 0.15, 0.03, 0.05, 0.02, 0.13, 0.12],
    // LU
    [0.55, 0.20, 0.04, 0.03, 0.02, 0.08, 0.08],
    // T
    [0.35, 0.30, 0.15, 0.10, 0.03, 0.02, 0.05],
];

/// Pinned label archetypes for the head (heavy/bulk) task types:
/// `(goal index, operator indices, data-type indices)` in enum order.
/// Filter and text/image dominate, matching the paper's aggregate shares.
const HEAD_ARCHETYPES: [(usize, &[usize], &[usize]); 6] = [
    (5, &[0], &[0]),       // LU · Filter · Text
    (6, &[6], &[1, 0]),    // T  · Extract · Image+Text
    (3, &[0], &[1]),       // QA · Filter · Image
    (2, &[1, 0], &[6, 0]), // SR · Rate+Filter · Web+Text
    (5, &[0, 7], &[0, 5]), // LU · Filter+Generate · Text+Social
    (3, &[0], &[0, 1]),    // QA · Filter · Text+Image
];

/// Title fragments per goal, used to synthesize plausible batch titles.
const TITLE_TEMPLATES: [&[&str]; 7] = [
    &[
        "match duplicate business listings",
        "are these two profiles the same person",
        "deduplicate product records",
        "link store entries across sites",
    ],
    &[
        "short opinion survey",
        "answer questions about your habits",
        "political leaning of this post",
        "psychology study session",
    ],
    &[
        "rate search result relevance",
        "is this result relevant to the query",
        "judge query document match",
        "rank results for the search",
    ],
    &[
        "flag inappropriate content",
        "moderate uploaded photos",
        "spot spam comments",
        "verify data entry quality",
    ],
    &[
        "sentiment of this tweet",
        "is this review positive or negative",
        "classify customer feedback tone",
        "label emotion of message",
    ],
    &[
        "identify grammatical elements",
        "paraphrase this sentence",
        "extract entities from text",
        "judge sentence fluency",
    ],
    &[
        "transcribe the receipt",
        "type the text in this image",
        "caption this audio clip",
        "extract fields from scanned form",
    ],
];

/// Deterministic largest-remainder allocator: successive [`Self::next`]
/// calls return label indices whose running counts track `weights` at
/// every prefix (systematic/stratified sampling).
///
/// Tail-type instance mass concentrates in the first few tail ranks
/// (Zipf batch counts × lognormal batch sizes), so drawing primary
/// labels i.i.d. lets a handful of draws decide every conditional share
/// of Figs 9–10. Stratification pins those shares to the generative
/// matrices regardless of the RNG stream.
struct WeightedRoundRobin {
    weights: Vec<f64>,
    assigned: Vec<u64>,
    total: u64,
}

impl WeightedRoundRobin {
    fn new(weights: &[f64]) -> WeightedRoundRobin {
        let sum: f64 = weights.iter().sum();
        assert!(sum > 0.0, "weights must not all be zero");
        WeightedRoundRobin {
            weights: weights.iter().map(|w| w / sum).collect(),
            assigned: vec![0; weights.len()],
            total: 0,
        }
    }

    /// Index with the largest deficit vs. its target share; ties break to
    /// the lowest index, so the sequence is fully deterministic.
    fn next(&mut self) -> usize {
        self.total += 1;
        let mut best = 0;
        let mut best_deficit = f64::NEG_INFINITY;
        for (i, &w) in self.weights.iter().enumerate() {
            let deficit = self.total as f64 * w - self.assigned[i] as f64;
            if w > 0.0 && deficit > best_deficit {
                best_deficit = deficit;
                best = i;
            }
        }
        self.assigned[best] += 1;
        best
    }
}

/// Builds a label set around the stratified `primary` index, plus an
/// occasional random secondary label drawn from `cond`.
fn sample_labels<L: Label>(
    rng: &mut StdRng,
    primary: usize,
    cond: &Categorical,
    secondary_prob: f64,
) -> LabelSet<L> {
    let mut set = LabelSet::only(L::from_index(primary).expect("index aligns with enum"));
    if bernoulli(rng, secondary_prob) {
        if let Some(second) = L::from_index(cond.sample(rng)) {
            set.insert(second);
        }
    }
    set
}

/// Generates the full task-type population for a run.
pub fn generate_task_types(cfg: &SimConfig, rng: &mut StdRng) -> Vec<TaskTypeSpec> {
    let n_types = ((cal::FULL_DISTINCT_TASKS * cfg.population_scale()).round() as usize).max(60);
    let n_weeks = cfg.n_weeks() as u32;
    let regime_week = cfg.regime_week() as u32;

    let goal_cat = Categorical::new(&GOAL_WEIGHTS);
    let op_cats: Vec<Categorical> = OP_GIVEN_GOAL.iter().map(|row| Categorical::new(row)).collect();
    let data_cats: Vec<Categorical> =
        DATA_GIVEN_GOAL.iter().map(|row| Categorical::new(row)).collect();

    // Primary labels for tail types are allocated by largest remainder so
    // their proportions track the calibration matrices at every rank
    // prefix; only secondary labels stay random.
    let mut goal_rr = WeightedRoundRobin::new(&GOAL_WEIGHTS);
    let mut op_rrs: Vec<WeightedRoundRobin> =
        OP_GIVEN_GOAL.iter().map(|row| WeightedRoundRobin::new(row)).collect();
    let mut data_rrs: Vec<WeightedRoundRobin> =
        DATA_GIVEN_GOAL.iter().map(|row| WeightedRoundRobin::new(row)).collect();

    // Batches per type: Zipf over ranks, scaled to the batch budget.
    let batch_budget = (cal::FULL_BATCHES * cfg.scale.sqrt()).max(400.0);
    let mut zipf = zipf_weights(n_types, 1.05);
    let zipf_total: f64 = zipf.iter().sum();
    for w in &mut zipf {
        *w *= batch_budget / zipf_total;
    }

    let n_heavy = ((n_types as f64 * cal::HEAVY_HITTER_TYPE_FRACTION).round() as usize).max(3);

    let mut types = Vec::with_capacity(n_types);
    for rank in 0..n_types {
        let goal_idx =
            if rank < HEAD_ARCHETYPES.len() { HEAD_ARCHETYPES[rank].0 } else { goal_rr.next() };
        let (goals, operators, data_types) = if rank < HEAD_ARCHETYPES.len() {
            // The head ranks (batch-heavy + bulk) dominate instance mass,
            // so their full label profiles are pinned to the workloads the
            // paper reports as dominant (Fig 9: LU/T goals, filter/rate
            // operators, text/image data) instead of being left to a
            // handful of random draws.
            let (g, ops, ds) = HEAD_ARCHETYPES[rank];
            (
                LabelSet::only(Goal::from_index(g).unwrap()),
                ops.iter().map(|&o| Operator::from_index(o).unwrap()).collect(),
                ds.iter().map(|&d| DataType::from_index(d).unwrap()).collect(),
            )
        } else {
            let goals: LabelSet<Goal> = {
                let mut set = LabelSet::only(Goal::from_index(goal_idx).unwrap());
                if bernoulli(rng, 0.10) {
                    set.insert(Goal::from_index(goal_cat.sample(rng)).unwrap());
                }
                set
            };
            (
                goals,
                sample_labels(rng, op_rrs[goal_idx].next(), &op_cats[goal_idx], 0.25),
                sample_labels(rng, data_rrs[goal_idx].next(), &data_cats[goal_idx], 0.20),
            )
        };

        // --- design features -------------------------------------------
        let words = lognormal_median(rng, cal::WORDS_MEDIAN, cal::WORDS_SIGMA)
            .round()
            .clamp(15.0, 30_000.0) as u32;

        // Open-ended operators demand free-text inputs far more often.
        let open_ended = operators.contains(Operator::Gather)
            || operators.contains(Operator::Extract)
            || operators.contains(Operator::Generate)
            || goals.contains(Goal::Transcription);
        // Keep overall cluster-level prevalence below one half so the §4.2
        // median split lands at the "=0 vs >0" boundary, as in Table 1
        // (1283 clusters with none vs 1014 with some).
        let textbox_prob = if open_ended { 0.80 } else { 0.16 };
        let text_boxes = if bernoulli(rng, textbox_prob) { 1 + rng.gen_range(0..3) } else { 0 };

        let examples =
            if bernoulli(rng, cal::EXAMPLES_PREVALENCE) { 1 + rng.gen_range(0..3) } else { 0 };

        let image_prob = if data_types.contains(DataType::Image) {
            0.58
        } else {
            cal::IMAGES_BASE_PREVALENCE * 0.45
        };
        let images = if bernoulli(rng, image_prob) { 1 + rng.gen_range(0..5) } else { 0 };

        let items_median = lognormal_median(rng, cal::ITEMS_MEDIAN, 1.5).clamp(1.0, 120_000.0);
        let redundancy = (cal::REDUNDANCY_MEAN + normal(rng, 0.0, 0.7)).clamp(2.0, 7.0);
        let choice_arity = 2 + rng.gen_range(0..4) as u16;

        // --- popularity & schedule --------------------------------------
        // Ranks [0, n_heavy) are the batch-count heavy hitters (Fig 8);
        // the next three ranks are the bulk-instance clusters (Fig 7),
        // which issue few but enormous batches ("close to 80k
        // tasks/batch", §3.3).
        let heavy_hitter = rank < n_heavy;
        let bulk = (n_heavy..n_heavy + 3).contains(&rank);
        let planned_batches = if heavy_hitter {
            // §3.3: heavy hitters span well over 100 batches at full scale.
            (zipf[rank].max(120.0 * cfg.scale.sqrt().max(0.3))).round() as u32
        } else if bulk {
            // Enough batches that no single one dominates a weekday or a
            // week at reduced scale, few enough to stay "bulky" per batch.
            ((300.0 * cfg.scale.sqrt()).round() as u32).clamp(30, 90)
        } else {
            (zipf[rank].round() as u32).max(1)
        };

        // Activity window: most types post-2015 (§3.1), pre-2015 era sparse.
        let post_2015 = bernoulli(rng, 0.78);
        let start_week = if post_2015 {
            regime_week + rng.gen_range(0..(n_weeks - regime_week).max(1))
        } else {
            rng.gen_range(0..regime_week.max(1))
        };
        let (pattern, duration) = if planned_batches <= 6 {
            (ActivityPattern::OneOff, 1 + rng.gen_range(0..4))
        } else {
            // Fig 8: sustained streams run for months (up to ~11 months).
            (ActivityPattern::Steady, 6 + rng.gen_range(0..42))
        };
        let end_week = (start_week + duration).min(n_weeks.saturating_sub(1));

        // --- quality model ----------------------------------------------
        let subjective = text_boxes > 0 && bernoulli(rng, cal::SUBJECTIVE_TASK_FRACTION);
        let complex_goal = goals.complexity() == Some(Complexity::Complex);
        let mut ambiguity = cal::AMBIGUITY_BASE
            * if complex_goal { cal::AMBIGUITY_COMPLEX_FACTOR } else { 1.0 }
            * if f64::from(words) > cal::WORDS_MEDIAN { cal::AMBIGUITY_WORDS_FACTOR } else { 1.0 }
            * if text_boxes > 0 { cal::AMBIGUITY_TEXTBOX_FACTOR } else { 1.0 }
            * if examples > 0 { cal::AMBIGUITY_EXAMPLE_FACTOR } else { 1.0 }
            * if items_median > cal::ITEMS_MEDIAN { cal::AMBIGUITY_ITEMS_FACTOR } else { 1.0 }
            * normal(rng, 0.0, 0.30).exp();
        if subjective {
            // Free-text judgment calls: most pairs disagree (§4.1 prunes
            // disagreement > 0.5).
            ambiguity = rng.gen_range(0.55..0.95);
        }
        let ambiguity = ambiguity.clamp(0.002, 0.97);

        // --- latency/cost model ------------------------------------------
        // A small population of long-form tasks stretches the task-time
        // range by orders of magnitude (§4.9: range buckets up to 8754s
        // while nearly all clusters sit in the first bucket).
        let long_form = if bernoulli(rng, 0.02) { rng.gen_range(8.0..20.0) } else { 1.0 };
        let task_time_median = cal::TASK_TIME_BASE_MEDIAN
            * long_form
            * if text_boxes > 0 { cal::TASK_TIME_TEXTBOX_FACTOR } else { 1.0 }
            * if items_median > cal::ITEMS_MEDIAN { cal::TASK_TIME_ITEMS_FACTOR } else { 1.0 }
            * if images > 0 { cal::TASK_TIME_IMAGE_FACTOR } else { 1.0 }
            * normal(rng, 0.0, 0.25).exp();
        // A small population of "stale" tasks nobody wants: their pickup
        // medians stretch to weeks-months, reproducing the paper's §4.9
        // pickup range (buckets up to 1.6e7 s with nearly every cluster in
        // the first one).
        let stale = if bernoulli(rng, 0.02) { rng.gen_range(30.0..120.0) } else { 1.0 };
        let pickup_median = stale * cal::PICKUP_BASE_MEDIAN
            * if examples > 0 { cal::PICKUP_EXAMPLE_FACTOR } else { 1.0 }
            * if images > 0 { cal::PICKUP_IMAGE_FACTOR } else { 1.0 }
            // Continuous in #items (limited parallelism queues later
            // instances): a 10x-median batch takes ~1.7x longer to pick
            // up, matching Table 3's 4521s -> 8132s contrast.
            * (items_median / cal::ITEMS_MEDIAN).powf(0.22).clamp(0.45, 2.6)
            * normal(rng, 0.0, 0.35).exp();

        let template = TITLE_TEMPLATES[goal_idx];
        let title = format!("{} #{rank}", template[rng.gen_range(0..template.len())]);

        types.push(TaskTypeSpec {
            title,
            goals,
            operators,
            data_types,
            // The head clusters dominate instance mass; the authors'
            // labeling pass certainly covered them (§2.4 labels 89% of
            // instances via 83% of batches). The draw happens regardless
            // so the RNG stream does not depend on the rank.
            labeled: {
                let drawn = bernoulli(rng, cfg.label_fraction);
                rank < HEAD_ARCHETYPES.len() || drawn
            },
            words,
            text_boxes,
            examples,
            images,
            items_median,
            redundancy,
            choice_arity,
            planned_batches,
            start_week,
            end_week,
            pattern,
            heavy_hitter,
            bulk,
            ambiguity,
            subjective,
            task_time_median: task_time_median.clamp(8.0, 9_000.0),
            pickup_median: pickup_median.clamp(20.0, 2.0e7),
        });
    }
    types
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn types() -> Vec<TaskTypeSpec> {
        let cfg = SimConfig::default_scale(7);
        let mut rng = StdRng::seed_from_u64(7);
        generate_task_types(&cfg, &mut rng)
    }

    #[test]
    fn population_size_scales() {
        let tt = types();
        // 6600 * sqrt(0.01) = 660.
        assert!((600..=720).contains(&tt.len()), "got {}", tt.len());
    }

    #[test]
    fn every_type_is_fully_labeled_internally() {
        for t in types() {
            assert!(!t.goals.is_empty());
            assert!(!t.operators.is_empty());
            assert!(!t.data_types.is_empty());
            assert!(t.choice_arity >= 2);
            assert!(t.redundancy >= 2.0);
        }
    }

    #[test]
    fn lu_and_t_are_most_common_goals() {
        let tt = types();
        let mut counts = [0usize; 7];
        for t in &tt {
            for g in t.goals.iter() {
                counts[g.index()] += 1;
            }
        }
        let lu = counts[Goal::LanguageUnderstanding.index()];
        let tr = counts[Goal::Transcription.index()];
        for (i, &c) in counts.iter().enumerate() {
            if i != Goal::LanguageUnderstanding.index() && i != Goal::Transcription.index() {
                assert!(lu > c, "LU should lead (Fig 9a)");
                let _ = tr;
            }
        }
    }

    #[test]
    fn filter_and_rate_dominate_operators() {
        let tt = types();
        let mut counts = [0usize; 10];
        for t in &tt {
            for o in t.operators.iter() {
                counts[o.index()] += 1;
            }
        }
        let filt = counts[Operator::Filter.index()];
        assert!(filt > counts[Operator::Sort.index()] * 3, "filter dominates (Fig 9c)");
        assert!(counts[Operator::Rate.index()] > counts[Operator::Count.index()]);
    }

    #[test]
    fn text_and_image_dominate_data() {
        let tt = types();
        let mut counts = [0usize; 7];
        for t in &tt {
            for d in t.data_types.iter() {
                counts[d.index()] += 1;
            }
        }
        assert!(counts[DataType::Text.index()] > counts[DataType::Webpage.index()]);
        assert!(counts[DataType::Image.index()] > counts[DataType::Audio.index()]);
    }

    #[test]
    fn examples_are_rare_images_common() {
        let tt = types();
        let with_examples = tt.iter().filter(|t| t.examples > 0).count() as f64 / tt.len() as f64;
        let with_images = tt.iter().filter(|t| t.images > 0).count() as f64 / tt.len() as f64;
        assert!(with_examples < 0.10, "examples rare (§4.6): {with_examples}");
        assert!((0.15..=0.55).contains(&with_images), "images ~24%+ (§4.7): {with_images}");
    }

    #[test]
    fn heavy_hitters_have_many_batches() {
        let tt = types();
        let heavy: Vec<_> = tt.iter().filter(|t| t.heavy_hitter).collect();
        assert!(heavy.len() >= 3);
        for h in &heavy {
            assert!(
                h.planned_batches >= 36,
                "heavy hitters span many batches: {}",
                h.planned_batches
            );
        }
    }

    #[test]
    fn subjective_types_have_high_ambiguity_and_textboxes() {
        let tt = types();
        let subj: Vec<_> = tt.iter().filter(|t| t.subjective).collect();
        assert!(!subj.is_empty());
        for s in subj {
            assert!(s.ambiguity > 0.5);
            assert!(s.text_boxes > 0);
        }
    }

    #[test]
    fn causal_effects_visible_in_type_medians() {
        let tt = types();
        let med = |vals: &mut Vec<f64>| {
            vals.sort_by(f64::total_cmp);
            vals[vals.len() / 2]
        };
        let mut with_ex: Vec<f64> =
            tt.iter().filter(|t| t.examples > 0).map(|t| t.pickup_median).collect();
        let mut without_ex: Vec<f64> =
            tt.iter().filter(|t| t.examples == 0).map(|t| t.pickup_median).collect();
        if with_ex.len() >= 5 {
            assert!(med(&mut with_ex) < med(&mut without_ex), "examples reduce pickup (Table 3)");
        }
        let mut with_tb: Vec<f64> = tt
            .iter()
            .filter(|t| t.text_boxes > 0 && !t.subjective)
            .map(|t| t.task_time_median)
            .collect();
        let mut without_tb: Vec<f64> =
            tt.iter().filter(|t| t.text_boxes == 0).map(|t| t.task_time_median).collect();
        assert!(med(&mut with_tb) > med(&mut without_tb), "text boxes raise task time");
    }

    #[test]
    fn activity_windows_are_valid() {
        let cfg = SimConfig::default_scale(7);
        for t in types() {
            assert!(t.start_week <= t.end_week);
            assert!((t.end_week as usize) < cfg.n_weeks());
        }
    }

    #[test]
    fn interface_spec_mirrors_features() {
        let tt = types();
        let t = &tt[0];
        let spec = t.interface(99);
        assert_eq!(spec.examples, t.examples);
        assert_eq!(spec.images, t.images);
        assert_eq!(spec.text_boxes, t.text_boxes);
        assert_eq!(spec.variant, 99);
        assert_eq!(t.interface(1).seed, t.interface(2).seed, "text seed is type-stable");
    }

    #[test]
    fn deterministic_generation() {
        let cfg = SimConfig::default_scale(3);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let a = generate_task_types(&cfg, &mut r1);
        let b = generate_task_types(&cfg, &mut r2);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].title, b[0].title);
        assert_eq!(a[10].words, b[10].words);
    }
}
