//! Simulation configuration.

use crowd_core::rng::stream_seed;
use crowd_core::time::Timestamp;

/// Configuration of one simulated marketplace history.
///
/// `scale` controls the *volume* of the dataset relative to the paper's
/// full scale (27M sampled instances at `scale = 1.0`). Instance and batch
/// counts shrink linearly with `scale`; population counts (workers, task
/// types) shrink with `scale.sqrt()` so that per-entity distributions stay
/// populated at small scales. Fractions, medians and effect ratios — the
/// quantities compared against the paper — are scale-invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// RNG seed; equal configs produce bit-identical datasets.
    pub seed: u64,
    /// Volume relative to the paper's dataset (1.0 = full 27M instances).
    pub scale: f64,
    /// First day of the simulated history (paper: July 2012).
    pub start: Timestamp,
    /// Last day (exclusive) of the simulated history (paper: July 2016).
    pub end: Timestamp,
    /// The activity regime change the paper observes around January 2015
    /// (§3.1: "the task arrival plot is relatively sparse until Jan 2015").
    pub regime_change: Timestamp,
    /// Fraction of batches that are fully observed ("sampled", §2.2:
    /// 12k of 58k batches).
    pub sample_fraction: f64,
    /// Fraction of clusters that receive manual labels (§2.4: ~83% of
    /// batches, ~3,200 of the clusters).
    pub label_fraction: f64,
    /// Fraction of judgments routed via the *push* mechanism (§2.1: "the
    /// marketplace makes use of both push and pull mechanisms"; §3.1: push
    /// "reduces latencies for requesters and clears backlogged tasks"). Pushed judgments go to the engaged elite pool with a
    /// fraction of the pull pickup latency. Default 0 (pure pull), as the
    /// §4 latency calibration assumes the typical pull setting.
    pub push_fraction: f64,
}

impl SimConfig {
    /// The paper's timeline with a given seed and scale.
    pub fn new(seed: u64, scale: f64) -> SimConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        SimConfig {
            seed,
            scale,
            start: Timestamp::from_ymd(2012, 7, 2), // first Monday of July '12
            end: Timestamp::from_ymd(2016, 7, 1),
            regime_change: Timestamp::from_ymd(2015, 1, 1),
            sample_fraction: 12_000.0 / 58_000.0,
            label_fraction: 0.83,
            push_fraction: 0.0,
        }
    }

    /// Default experimentation scale: 1% of the paper's volume
    /// (~270k instances) — large enough for every distributional analysis,
    /// small enough to simulate in seconds.
    pub fn default_scale(seed: u64) -> SimConfig {
        SimConfig::new(seed, 0.01)
    }

    /// Tiny scale for unit/integration tests (~30k instances).
    pub fn tiny(seed: u64) -> SimConfig {
        SimConfig::new(seed, 0.001)
    }

    /// Conformance scale: 5% of the paper's volume (~1.4M instances).
    /// The `crowd-testkit` paper-invariant suite runs at this scale across
    /// several seeds, so effect directions are measured with enough power
    /// to be stable, deterministically per seed.
    pub fn conformance(seed: u64) -> SimConfig {
        SimConfig::new(seed, 0.05)
    }

    /// Full paper scale (27M instances; needs several GB of memory).
    pub fn full(seed: u64) -> SimConfig {
        SimConfig::new(seed, 1.0)
    }

    /// Number of whole weeks in the simulated timeline.
    pub fn n_weeks(&self) -> usize {
        (self.end.week().0 - self.start.week().0).max(0) as usize
    }

    /// Number of days in the simulated timeline.
    pub fn n_days(&self) -> usize {
        (self.end.day_number() - self.start.day_number()).max(0) as usize
    }

    /// Scale factor for population-like counts (workers, task types).
    pub fn population_scale(&self) -> f64 {
        self.scale.sqrt()
    }

    /// Week index (0-based from `start`) of an absolute timestamp.
    pub fn week_of(&self, t: Timestamp) -> usize {
        (t.week().0 - self.start.week().0).max(0) as usize
    }

    /// Day index (0-based from `start`) of an absolute timestamp.
    pub fn day_of(&self, t: Timestamp) -> usize {
        (t.day_number() - self.start.day_number()).max(0) as usize
    }

    /// Week index of the regime change.
    pub fn regime_week(&self) -> usize {
        self.week_of(self.regime_change)
    }

    /// Collision-resistant digest of every generative knob.
    ///
    /// Two configs share a fingerprint exactly when [`crate::simulate`]
    /// would produce bit-identical datasets from them, so the value can key
    /// caches of simulation output (`crowd-snapshot` does). Thread count,
    /// host, and process state play no part — the digest covers config
    /// fields only.
    pub fn fingerprint(&self) -> u64 {
        // Destructure so adding a SimConfig field without extending the
        // digest is a compile error, not a silent stale-cache hazard.
        let SimConfig {
            seed,
            scale,
            start,
            end,
            regime_change,
            sample_fraction,
            label_fraction,
            push_fraction,
        } = self;
        let mut h = stream_seed(0x534E_4150, *seed); // "SNAP" domain tag
        for field in [
            scale.to_bits(),
            start.as_secs() as u64,
            end.as_secs() as u64,
            regime_change.as_secs() as u64,
            sample_fraction.to_bits(),
            label_fraction.to_bits(),
            push_fraction.to_bits(),
        ] {
            h = stream_seed(h, field);
        }
        h
    }

    /// Enables push routing for a fraction of judgments (builder style).
    #[must_use]
    pub fn with_push_fraction(mut self, fraction: f64) -> SimConfig {
        assert!((0.0..=1.0).contains(&fraction), "push fraction must be in [0, 1]");
        self.push_fraction = fraction;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_spans_the_study() {
        let c = SimConfig::default_scale(1);
        assert_eq!(c.start.ymd(), (2012, 7, 2));
        assert_eq!(c.end.ymd(), (2016, 7, 1));
        // ~4 years of weeks.
        assert!((205..=212).contains(&c.n_weeks()), "weeks = {}", c.n_weeks());
        assert_eq!(c.n_days(), 1460);
    }

    #[test]
    fn regime_change_is_mid_timeline() {
        let c = SimConfig::default_scale(1);
        let rw = c.regime_week();
        assert!(rw > 100 && rw < c.n_weeks(), "regime week {rw}");
    }

    #[test]
    fn week_and_day_indexing() {
        let c = SimConfig::default_scale(1);
        assert_eq!(c.week_of(c.start), 0);
        assert_eq!(c.day_of(c.start), 0);
        assert_eq!(c.day_of(Timestamp::from_ymd(2012, 7, 3)), 1);
    }

    #[test]
    fn population_scale_is_sqrt() {
        let c = SimConfig::new(1, 0.04);
        assert!((c.population_scale() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        let _ = SimConfig::new(1, 0.0);
    }

    #[test]
    fn fingerprint_covers_every_knob() {
        let base = SimConfig::new(7, 0.01);
        assert_eq!(base.fingerprint(), SimConfig::new(7, 0.01).fingerprint());
        let variants = [
            SimConfig::new(8, 0.01),
            SimConfig::new(7, 0.02),
            SimConfig { start: Timestamp::from_ymd(2012, 7, 3), ..base.clone() },
            SimConfig { end: Timestamp::from_ymd(2016, 6, 30), ..base.clone() },
            SimConfig { regime_change: Timestamp::from_ymd(2015, 1, 2), ..base.clone() },
            SimConfig { sample_fraction: 0.5, ..base.clone() },
            SimConfig { label_fraction: 0.5, ..base.clone() },
            base.clone().with_push_fraction(0.25),
        ];
        let mut seen = std::collections::HashSet::new();
        seen.insert(base.fingerprint());
        for (i, v) in variants.iter().enumerate() {
            assert!(seen.insert(v.fingerprint()), "variant {i} collided");
        }
    }
}
