//! The task-assignment engine: matches planned instances to workers and
//! generates timings, trust scores, and answers (paper §2.1, §4).

use crowd_core::answer::Answer;
use crowd_core::rng::stream_seed;
use crowd_core::time::{Duration, Timestamp, SECS_PER_DAY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::calibration as cal;
use crate::config::SimConfig;
use crate::distributions::{bernoulli, lognormal_median, normal};
use crate::schedule::{BatchPlan, Schedule};
use crate::tasktypes::TaskTypeSpec;
use crate::workers::WorkerSpec;

/// A fully materialized instance, ready to convert into
/// [`crowd_core::TaskInstance`].
#[derive(Debug, Clone)]
pub struct InstanceDraft {
    /// Index of the batch in the schedule (== dataset batch id).
    pub batch: u32,
    /// Item index within the batch's task type.
    pub item: u32,
    /// Worker index.
    pub worker: u32,
    /// Start time.
    pub start: Timestamp,
    /// End time.
    pub end: Timestamp,
    /// Marketplace trust score.
    pub trust: f32,
    /// The worker's answer.
    pub answer: Answer,
}

/// Weighted per-week worker pools for O(log n) sampling.
struct WeekPools {
    /// Per week: parallel vectors of worker index and cumulative weight.
    workers: Vec<Vec<u32>>,
    cumweight: Vec<Vec<f64>>,
    /// Per week: the engaged elite (top-decile activity weight) — the
    /// "skilled, on-demand workers" push routing targets (§3.1).
    elite: Vec<Vec<u32>>,
    elite_cumweight: Vec<Vec<f64>>,
}

impl WeekPools {
    fn build(n_weeks: usize, workers: &[WorkerSpec]) -> WeekPools {
        let mut pool_workers: Vec<Vec<u32>> = vec![Vec::new(); n_weeks];
        for (wi, w) in workers.iter().enumerate() {
            for &week in &w.active_weeks {
                if (week as usize) < n_weeks {
                    pool_workers[week as usize].push(wi as u32);
                }
            }
        }
        let cumulate = |pools: &Vec<Vec<u32>>| -> Vec<Vec<f64>> {
            pools
                .iter()
                .map(|pool| {
                    let mut acc = 0.0;
                    pool.iter()
                        .map(|&wi| {
                            acc += workers[wi as usize].activity_weight.max(1e-6);
                            acc
                        })
                        .collect()
                })
                .collect()
        };
        let cumweight = cumulate(&pool_workers);
        // Elite pool per week: top decile by activity weight.
        let elite: Vec<Vec<u32>> = pool_workers
            .iter()
            .map(|pool| {
                if pool.is_empty() {
                    return Vec::new();
                }
                let mut by_weight: Vec<u32> = pool.clone();
                by_weight.sort_by(|&a, &b| {
                    workers[b as usize]
                        .activity_weight
                        .total_cmp(&workers[a as usize].activity_weight)
                });
                by_weight.truncate((by_weight.len() / 10).max(1));
                by_weight
            })
            .collect();
        let elite_cumweight = cumulate(&elite);
        WeekPools { workers: pool_workers, cumweight, elite, elite_cumweight }
    }

    /// Samples a worker active in (or near) `week`, widening the search to
    /// neighbouring weeks when the target week has nobody scheduled.
    /// `elite_only` restricts to the top-decile pool (push routing).
    fn sample(&self, week: usize, elite_only: bool, rng: &mut StdRng) -> Option<(u32, usize)> {
        let (pools, cums) = if elite_only {
            (&self.elite, &self.elite_cumweight)
        } else {
            (&self.workers, &self.cumweight)
        };
        let n = pools.len();
        for radius in 0..n {
            for cand in [week.checked_sub(radius), Some(week + radius)] {
                let Some(c) = cand else { continue };
                if c >= n || pools[c].is_empty() {
                    continue;
                }
                let cum = &cums[c];
                let total = *cum.last().unwrap();
                let x = rng.gen_range(0.0..total);
                let idx = cum.partition_point(|&v| v <= x).min(cum.len() - 1);
                return Some((pools[c][idx], c));
            }
        }
        None
    }
}

/// Domain tag separating the assignment engine's per-batch RNG streams
/// from every other consumer of the run seed.
const STREAM_ASSIGNMENT: u64 = 0xA551;

/// Sampled batches dispatched per parallel window by the streaming driver
/// ([`assign_windowed`]): wide enough to keep every thread busy, narrow
/// enough that only a sliver of the dataset's drafts is ever resident.
pub const ASSIGN_WINDOW: usize = 512;

/// Expected number of drafted instances for a schedule: Σ items ×
/// redundancy over sampled batches (with the engine's ≥2-judgment floor),
/// plus a small margin so callers can `reserve` once and stream drafts in
/// without reallocating mid-build.
pub fn planned_instances(types: &[TaskTypeSpec], schedule: &Schedule) -> usize {
    let est: f64 = schedule
        .batches
        .iter()
        .filter(|b| b.sampled)
        .map(|b| f64::from(b.items) * types[b.type_idx as usize].redundancy.max(2.0))
        .sum();
    (est * 1.01).ceil() as usize + 16
}

/// Runs assignment for every sampled batch of the schedule.
///
/// Each batch draws from its own RNG stream derived from
/// `(cfg.seed, batch index)` via [`stream_seed`], so batches are
/// independent units of work: they fan out across threads and the drafts
/// are concatenated in schedule order, making the output bit-identical at
/// any thread count (and to the sequential run).
pub fn assign_all(
    cfg: &SimConfig,
    types: &[TaskTypeSpec],
    schedule: &Schedule,
    workers: &[WorkerSpec],
) -> Vec<InstanceDraft> {
    let mut out = Vec::with_capacity(planned_instances(types, schedule));
    assign_windowed(cfg, types, schedule, workers, usize::MAX, |drafts| out.extend(drafts));
    out
}

/// Streaming form of [`assign_all`]: sampled batches are processed in
/// windows of `window` batches — each window fans out across threads, and
/// the per-batch draft vectors are delivered to `sink` in schedule order.
///
/// Because every batch owns an independent RNG stream and delivery order
/// is the schedule order, the concatenation of all sinks' input is
/// bit-identical to [`assign_all`]'s output for **any** window size (the
/// window, like the thread count, only batches the work). Peak memory is
/// one window of drafts instead of the whole dataset's.
pub fn assign_windowed(
    cfg: &SimConfig,
    types: &[TaskTypeSpec],
    schedule: &Schedule,
    workers: &[WorkerSpec],
    window: usize,
    mut sink: impl FnMut(Vec<InstanceDraft>),
) {
    let n_weeks = cfg.n_weeks();
    let pools = WeekPools::build(n_weeks, workers);
    // Load factors follow the *planned instance volume* per week (items ×
    // redundancy of sampled batches), which is what workers actually see.
    let mut weekly_volume = vec![0.0f64; n_weeks];
    for b in schedule.batches.iter().filter(|b| b.sampled) {
        let w = cfg.week_of(b.created_at).min(n_weeks.saturating_sub(1));
        weekly_volume[w] += f64::from(b.items) * types[b.type_idx as usize].redundancy;
    }
    let load_factor = load_factors(&weekly_volume, cfg);

    let sampled: Vec<(u32, &BatchPlan)> = schedule
        .batches
        .iter()
        .enumerate()
        .filter(|(_, b)| b.sampled)
        .map(|(i, b)| (i as u32, b))
        .collect();

    let domain = stream_seed(cfg.seed, STREAM_ASSIGNMENT);
    for chunk in sampled.chunks(window.max(1)) {
        let per_batch: Vec<Vec<InstanceDraft>> = chunk
            .par_iter()
            .map(|&(batch_idx, plan)| {
                let mut rng = StdRng::seed_from_u64(stream_seed(domain, u64::from(batch_idx)));
                let mut drafts = Vec::with_capacity(plan.items as usize * 3);
                assign_batch(
                    cfg,
                    batch_idx,
                    plan,
                    &types[plan.type_idx as usize],
                    &pools,
                    workers,
                    &load_factor,
                    &mut rng,
                    &mut drafts,
                );
                drafts
            })
            .collect();
        for drafts in per_batch {
            sink(drafts);
        }
    }
}

/// Relative pickup-speed multiplier per week: busy weeks move faster
/// (Fig 5a), via `(load / median_load)^PICKUP_LOAD_EXPONENT`.
fn load_factors(weekly_load: &[f64], cfg: &SimConfig) -> Vec<f64> {
    let mut post: Vec<f64> = weekly_load[cfg.regime_week().min(weekly_load.len())..]
        .iter()
        .copied()
        .filter(|&v| v > 0.0)
        .collect();
    post.sort_by(f64::total_cmp);
    let median = if post.is_empty() { 1.0 } else { post[post.len() / 2] };
    weekly_load
        .iter()
        .map(|&v| {
            if v <= 0.0 {
                1.0
            } else {
                (v / median).powf(cal::PICKUP_LOAD_EXPONENT).clamp(0.35, 2.8)
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn assign_batch(
    cfg: &SimConfig,
    batch_idx: u32,
    plan: &BatchPlan,
    t: &TaskTypeSpec,
    pools: &WeekPools,
    workers: &[WorkerSpec],
    load_factor: &[f64],
    rng: &mut StdRng,
    out: &mut Vec<InstanceDraft>,
) {
    let created_week = cfg.week_of(plan.created_at);
    let lf = load_factor.get(created_week).copied().unwrap_or(1.0);
    let pickup_median = t.pickup_median * lf;
    let textual = t.text_boxes > 0;

    for item in 0..plan.items {
        // Latent truth for this item.
        let truth = item_truth(batch_idx, item, t.choice_arity);
        // Redundancy: ≥2 judgments so pairwise disagreement is defined.
        let r =
            (t.redundancy.floor() as u32 + u32::from(bernoulli(rng, t.redundancy.fract()))).max(2);

        for _ in 0..r {
            // §2.1/§3.1 push routing: a configurable fraction of judgments
            // is pushed straight to the engaged elite instead of waiting
            // for pull pickup.
            let pushed = cfg.push_fraction > 0.0 && bernoulli(rng, cfg.push_fraction);
            let effective_median =
                if pushed { pickup_median * cal::PUSH_PICKUP_FACTOR } else { pickup_median };
            let delta = lognormal_median(rng, effective_median, cal::PICKUP_SIGMA)
                .clamp(5.0, 120.0 * SECS_PER_DAY as f64);
            let tentative = plan.created_at + Duration::from_secs(delta as i64);
            let target_week = cfg.week_of(tentative).min(cfg.n_weeks().saturating_sub(1));
            let Some((worker_idx, week)) = pools.sample(target_week, pushed, rng) else {
                continue; // no workers at all (degenerate config)
            };
            let w = &workers[worker_idx as usize];

            let start = snap_to_worker_day(cfg, w, week, tentative, plan.created_at, rng);
            let work_secs =
                lognormal_median(rng, t.task_time_median * w.speed, cal::TASK_TIME_SIGMA)
                    .clamp(3.0, 6.0 * 3_600.0);
            let end = start + Duration::from_secs(work_secs as i64);

            let trust = (w.skill + normal(rng, 0.0, cal::TRUST_NOISE_STD)).clamp(0.0, 1.0) as f32;

            let answer = draw_answer(t, w, truth, textual, rng);
            out.push(InstanceDraft {
                batch: batch_idx,
                item,
                worker: worker_idx,
                start,
                end,
                trust,
                answer,
            });
        }
    }
}

/// Deterministic latent answer for an item.
fn item_truth(batch: u32, item: u32, arity: u16) -> u16 {
    let mut h = (u64::from(batch) << 32) | u64::from(item);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h % u64::from(arity.max(2))) as u16
}

/// Places the instance start. The pickup-Δ-based tentative time is kept
/// verbatim for multi-day workers — pickup latency is a first-class §4
/// metric and must not be quantized to worker schedules. One-day workers
/// are the exception: all of their instances are snapped onto their single
/// scheduled day so the §5.3 one-day-lifetime population emerges from
/// instance timestamps (they carry only ~2.4% of tasks, so the distortion
/// to pickup medians is negligible).
fn snap_to_worker_day(
    cfg: &SimConfig,
    w: &WorkerSpec,
    week: usize,
    tentative: Timestamp,
    created: Timestamp,
    rng: &mut StdRng,
) -> Timestamp {
    let start = if w.class == crate::workers::EngagementClass::OneDay {
        let dow = w.days_in_week().next().unwrap_or(0);
        let day = week as i64 * 7 + dow as i64;
        cfg.start + Duration::from_days(day) + Duration::from_secs(tentative.seconds_of_day())
    } else {
        tentative
    };
    if start <= created {
        // Same-day pickup shortly after posting.
        created + Duration::from_secs(rng.gen_range(5..3_600))
    } else {
        start
    }
}

/// Draws a worker answer: correct with probability `1 − p_dev`, where the
/// deviation rate combines task ambiguity (design-feature-driven, §4) and
/// worker skill.
fn draw_answer(
    t: &TaskTypeSpec,
    w: &WorkerSpec,
    truth: u16,
    textual: bool,
    rng: &mut StdRng,
) -> Answer {
    let p_dev = (t.ambiguity * (1.0 + 1.5 * (0.88 - w.skill).max(0.0))).clamp(0.0, 0.97);
    let deviates = bernoulli(rng, p_dev);
    let arity = t.choice_arity.max(2);
    if textual {
        if !deviates {
            Answer::Text(format!("answer {truth}"))
        } else if t.subjective {
            // Open-ended judgment: essentially unique phrasing.
            Answer::Text(format!("answer {truth} variant {}", rng.gen_range(0..100_000)))
        } else {
            // Objective text task: wrong answers collide within a small
            // confusion set.
            let wrong = (truth + 1 + rng.gen_range(0..arity - 1)) % arity;
            Answer::Text(format!("answer {wrong}"))
        }
    } else if !deviates {
        Answer::Choice(truth)
    } else {
        let wrong = (truth + 1 + rng.gen_range(0..arity - 1)) % arity;
        Answer::Choice(wrong)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::plan_batches;
    use crate::tasktypes::generate_task_types;
    use crate::workers::generate_workers;
    use rand::SeedableRng;

    fn run() -> (SimConfig, Vec<TaskTypeSpec>, Schedule, Vec<WorkerSpec>, Vec<InstanceDraft>) {
        let cfg = SimConfig::tiny(17);
        let mut rng = StdRng::seed_from_u64(17);
        let types = generate_task_types(&cfg, &mut rng);
        let schedule = plan_batches(&cfg, &types, &mut rng);
        let workers = generate_workers(&cfg, &schedule.weekly_load, &mut rng);
        let drafts = assign_all(&cfg, &types, &schedule, &workers);
        (cfg, types, schedule, workers, drafts)
    }

    #[test]
    fn windowed_assignment_is_bit_identical_at_any_window_size() {
        let (cfg, types, schedule, workers, drafts) = run();
        for window in [1usize, 7, 64, usize::MAX] {
            let mut streamed = Vec::new();
            assign_windowed(&cfg, &types, &schedule, &workers, window, |w| streamed.extend(w));
            assert_eq!(streamed.len(), drafts.len(), "window {window}");
            for (a, b) in drafts.iter().zip(&streamed) {
                assert_eq!(a.batch, b.batch);
                assert_eq!(a.item, b.item);
                assert_eq!(a.worker, b.worker);
                assert_eq!(a.start, b.start);
                assert_eq!(a.end, b.end);
                assert_eq!(a.trust.to_bits(), b.trust.to_bits());
                assert_eq!(a.answer, b.answer);
            }
        }
    }

    #[test]
    fn planned_instances_estimate_tracks_the_actual_draft_count() {
        let (_, types, schedule, _, drafts) = run();
        let est = planned_instances(&types, &schedule);
        let ratio = est as f64 / drafts.len() as f64;
        assert!(
            (0.95..1.15).contains(&ratio),
            "reserve estimate {est} vs actual {} (ratio {ratio})",
            drafts.len()
        );
    }

    #[test]
    fn produces_instances_for_sampled_batches_only() {
        let (_, _, schedule, _, drafts) = run();
        assert!(!drafts.is_empty());
        for d in &drafts {
            assert!(schedule.batches[d.batch as usize].sampled);
        }
    }

    #[test]
    fn volume_matches_budget() {
        let (cfg, _, _, _, drafts) = run();
        let target = cal::FULL_SAMPLED_INSTANCES * cfg.scale;
        let got = drafts.len() as f64;
        assert!((got / target - 1.0).abs() < 0.30, "instances {got} vs target {target}");
    }

    #[test]
    fn starts_after_batch_creation_ends_after_start() {
        let (_, _, schedule, _, drafts) = run();
        for d in &drafts {
            let created = schedule.batches[d.batch as usize].created_at;
            assert!(d.start > created, "pickup strictly positive");
            assert!(d.end > d.start);
        }
    }

    #[test]
    fn trust_in_range() {
        let (_, _, _, _, drafts) = run();
        for d in &drafts {
            assert!((0.0..=1.0).contains(&d.trust));
        }
    }

    #[test]
    fn every_item_has_at_least_two_judgments() {
        let (_, _, _, _, drafts) = run();
        let mut counts = std::collections::HashMap::new();
        for d in &drafts {
            *counts.entry((d.batch, d.item)).or_insert(0u32) += 1;
        }
        let single = counts.values().filter(|&&c| c < 2).count();
        // Only the degenerate "no worker found" path can yield < 2.
        assert!(
            (single as f64 / counts.len() as f64) < 0.01,
            "{single} of {} items under-judged",
            counts.len()
        );
    }

    #[test]
    fn one_day_workers_emerge_with_one_day_lifetimes() {
        let (_, _, _, workers, drafts) = run();
        use crate::workers::EngagementClass;
        let mut days: std::collections::HashMap<u32, std::collections::HashSet<i64>> =
            std::collections::HashMap::new();
        for d in &drafts {
            days.entry(d.worker).or_default().insert(d.start.day_number());
        }
        let mut violations = 0usize;
        let mut one_day_seen = 0usize;
        for (&widx, dayset) in &days {
            if workers[widx as usize].class == EngagementClass::OneDay {
                one_day_seen += 1;
                if dayset.len() > 1 {
                    violations += 1;
                }
            }
        }
        assert!(one_day_seen > 0);
        // A few stragglers are expected: when a one-day worker's scheduled
        // day precedes the batch posting, the same-day fallback places the
        // instance on the posting day instead.
        // (A one-day worker whose scheduled day precedes a batch posting
        // falls back to the posting day, so a second assignment can land
        // on a different day; tolerated as a small minority.)
        assert!(
            (violations as f64) <= one_day_seen as f64 * 0.15,
            "{violations}/{one_day_seen} one-day workers spread over multiple days"
        );
    }

    #[test]
    fn pickup_medians_reflect_examples_effect() {
        let (_, types, schedule, _, drafts) = run();
        let mut with_ex: Vec<f64> = Vec::new();
        let mut without_ex: Vec<f64> = Vec::new();
        for d in &drafts {
            let plan = &schedule.batches[d.batch as usize];
            let t = &types[plan.type_idx as usize];
            let pickup = (d.start - plan.created_at).as_secs() as f64;
            if t.examples > 0 {
                with_ex.push(pickup);
            } else {
                without_ex.push(pickup);
            }
        }
        if with_ex.len() > 200 && without_ex.len() > 200 {
            let med = |v: &mut Vec<f64>| {
                v.sort_by(f64::total_cmp);
                v[v.len() / 2]
            };
            let (a, b) = (med(&mut with_ex), med(&mut without_ex));
            assert!(a < b, "examples cut pickup times (Table 3): {a} vs {b}");
        }
    }

    #[test]
    fn answers_disagree_more_on_ambiguous_types() {
        let (_, types, schedule, _, drafts) = run();
        use std::collections::HashMap;
        let mut by_item: HashMap<(u32, u32), Vec<&Answer>> = HashMap::new();
        for d in &drafts {
            by_item.entry((d.batch, d.item)).or_default().push(&d.answer);
        }
        let mut lo = Vec::new();
        let mut hi = Vec::new();
        for ((batch, _), answers) in &by_item {
            if answers.len() < 2 {
                continue;
            }
            let t = &types[schedule.batches[*batch as usize].type_idx as usize];
            let owned: Vec<Answer> = answers.iter().map(|&a| a.clone()).collect();
            let d = crowd_core::answer::item_disagreement(&owned).unwrap();
            if t.ambiguity < 0.05 {
                lo.push(d);
            } else if t.ambiguity > 0.2 {
                hi.push(d);
            }
        }
        if lo.len() > 50 && hi.len() > 50 {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            assert!(
                mean(&hi) > mean(&lo) + 0.05,
                "ambiguity drives disagreement: hi {} lo {}",
                mean(&hi),
                mean(&lo)
            );
        }
    }

    #[test]
    fn push_routing_cuts_pickup_and_concentrates_work() {
        use crate::simulate::simulate;
        let pull = simulate(&SimConfig::new(7, 0.001));
        let push = simulate(&SimConfig::new(7, 0.001).with_push_fraction(0.6));
        let med_pickup = |ds: &crowd_core::Dataset| {
            let mut v: Vec<i64> = ds
                .instances
                .iter()
                .map(|i| (i.start - ds.batch(i.batch).created_at).as_secs())
                .collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        let (p0, p1) = (med_pickup(&pull), med_pickup(&push));
        assert!(p1 < p0 / 2, "push routing collapses pickup latency (§3.1): {p1} vs {p0}");
        // Pushed work lands on the engaged elite, concentrating load.
        let top_share = |ds: &crowd_core::Dataset| {
            let mut counts = vec![0u64; ds.workers.len()];
            for i in &ds.instances {
                counts[i.worker.index()] += 1;
            }
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let total: u64 = counts.iter().sum();
            let active = counts.iter().filter(|&&c| c > 0).count();
            counts[..(active / 10).max(1)].iter().sum::<u64>() as f64 / total as f64
        };
        assert!(top_share(&push) >= top_share(&pull) - 0.02);
    }

    #[test]
    fn item_truth_is_deterministic_and_in_range() {
        for arity in [2u16, 3, 5] {
            for batch in 0..20 {
                for item in 0..20 {
                    let t1 = item_truth(batch, item, arity);
                    let t2 = item_truth(batch, item, arity);
                    assert_eq!(t1, t2);
                    assert!(t1 < arity);
                }
            }
        }
    }
}
