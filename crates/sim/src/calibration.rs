//! Calibration constants, each annotated with the paper statistic it
//! reproduces. These are **generator parameters**: the analytics layer
//! never reads them — it must re-derive the corresponding statistics from
//! the emitted rows.

/// §2.2: task instances in the fully observed 12k-batch sample, full scale.
pub const FULL_SAMPLED_INSTANCES: f64 = 27_000_000.0;

/// §2.2: total batches issued 2012–2016 (sampled + unsampled).
pub const FULL_BATCHES: f64 = 58_000.0;

/// §2.2: distinct tasks across all batches.
pub const FULL_DISTINCT_TASKS: f64 = 6_600.0;

/// §5.1: registered workers across the study period.
pub const FULL_WORKERS: f64 = 69_000.0;

/// §3.1: median daily instances post-Jan-2015 (~30,000 at full scale).
pub const POST2015_MEDIAN_DAILY: f64 = 30_000.0;

/// §3.1: the busiest day carries ~30× the median load.
pub const PEAK_DAILY_FACTOR: f64 = 30.0;

/// §3.1: weekly arrival burstiness — lognormal σ of the post-2015 weekly
/// volume multiplier. Large enough to produce the 30× peaks and the
/// 0.0004× troughs the paper reports.
pub const WEEKLY_VOLUME_SIGMA: f64 = 0.85;

/// §3.1 / Fig 3: relative instance volume by day of week (Mon..Sun).
/// Highest at the start of the week, declining, with weekend ≈ half of the
/// early-week weekdays.
pub const WEEKDAY_WEIGHTS: [f64; 7] = [1.30, 1.15, 1.05, 0.95, 0.85, 0.65, 0.65];

/// Fig 3 / §3.1: bulk production batches come from business requesters who
/// post at the start of the work week — their weekday profile is sharper.
/// (Also keeps the aggregate weekday shape stable at reduced scale, where
/// a single bulk batch otherwise dominates a whole weekday.)
pub const HEAD_WEEKDAY_WEIGHTS: [f64; 7] = [1.8, 1.6, 1.3, 0.9, 0.7, 0.15, 0.15];

/// §3.1: pre-2015 weekly volume relative to post-2015 (sparse early era).
pub const PRE2015_VOLUME_FACTOR: f64 = 0.045;

/// §3.1: probability a pre-2015 week has any activity at all.
pub const PRE2015_ACTIVE_WEEK_PROB: f64 = 0.62;

/// Fig 5a: during high-load weeks the marketplace "moves faster" — pickup
/// medians shrink roughly with this power of the relative weekly load.
pub const PICKUP_LOAD_EXPONENT: f64 = -0.75;

/// §3.1: the push mechanism exists to "reduce latencies for requesters and
/// clear backlogged … tasks" — pushed judgments reach a worker at a small
/// fraction of the pull pickup latency.
pub const PUSH_PICKUP_FACTOR: f64 = 0.08;

// ---------------------------------------------------------------- workers

/// §5.3: fraction of workers active on exactly one day (52.7%).
pub const ONE_DAY_WORKER_FRACTION: f64 = 0.527;

/// §5.3: 79% of workers have lifetime < 100 days; the rest form the
/// heavy-tailed active population (up to ~1,400 days).
pub const SHORT_LIFETIME_FRACTION: f64 = 0.79;

/// §5.2: top-10% of workers complete >80% of tasks. Achieved with a
/// Pareto activity-weight tail index near 1; tuned so the emergent share
/// lands at the paper's value.
pub const ACTIVITY_WEIGHT_ALPHA: f64 = 0.80;

/// §5.4: mean/median trust of active workers ≈ 0.91, with 90% above 0.84.
pub const ACTIVE_TRUST_MEAN: f64 = 0.91;

/// Spread of per-worker latent skill around the source mean.
pub const WORKER_SKILL_STD: f64 = 0.045;

/// Per-instance trust-score noise around worker skill.
pub const TRUST_NOISE_STD: f64 = 0.02;

/// §5.1: the marketplace-internal pool performs ~2% of tasks.
pub const INTERNAL_TASK_SHARE: f64 = 0.02;

// ---------------------------------------------------- design features (§4)

/// §4.3: median `#words` across clusters (Table 1 splits at 466).
pub const WORDS_MEDIAN: f64 = 466.0;
/// Lognormal shape of `#words`.
pub const WORDS_SIGMA: f64 = 0.95;

/// §4.5: `#items` median. Tables 1–3 split near 30–56 depending on the
/// cluster subset; the generating distribution is wide (1 … 100k). The
/// causal threshold matches the generating median so the analytics-side
/// median split selects (almost exactly) the causally treated group.
pub const ITEMS_MEDIAN: f64 = 35.0;
/// Lognormal shape of `#items`.
pub const ITEMS_SIGMA: f64 = 1.9;

/// §4.4 Table 1: 1014 of 2297 clusters have at least one text box (≈ 44%)
/// as a *baseline*; operator mix shifts this per task type.
pub const TEXTBOX_BASE_PREVALENCE: f64 = 0.38;

/// §4.6: examples are rare — "only around 200 task clusters employ
/// explicit examples, as compared to the around 3500 that don't".
pub const EXAMPLES_PREVALENCE: f64 = 0.04;

/// §4.7: ~700 of ~2,900 clusters contain at least one image.
pub const IMAGES_BASE_PREVALENCE: f64 = 0.24;

// ------------------------------------------------------- metric baselines

/// Baseline median work time in seconds (Table 2 medians range 119–286).
pub const TASK_TIME_BASE_MEDIAN: f64 = 170.0;
/// Lognormal shape of per-instance work time.
pub const TASK_TIME_SIGMA: f64 = 0.7;

/// §4.4 Table 2: text-boxes raise task-time 119s → 286s (×2.4).
pub const TASK_TIME_TEXTBOX_FACTOR: f64 = 2.40;
/// §4.5 Table 2: large #items lowers task-time 230s → 136s (×0.59).
pub const TASK_TIME_ITEMS_FACTOR: f64 = 0.59;
/// §4.7 Table 2: images lower task-time 184s → 129s (×0.70).
pub const TASK_TIME_IMAGE_FACTOR: f64 = 0.70;

/// Baseline median pickup latency in seconds (Table 3 medians 1.3k–8.1k).
pub const PICKUP_BASE_MEDIAN: f64 = 5_800.0;
/// Lognormal shape of pickup latency — heavy: the §4.9 range analysis sees
/// pickups from seconds to 1.6×10⁷ s.
pub const PICKUP_SIGMA: f64 = 2.1;

/// §4.6 Table 3: examples cut pickup 6303s → 1353s (×0.21).
pub const PICKUP_EXAMPLE_FACTOR: f64 = 0.21;
/// §4.7 Table 3: images cut pickup 7838s → 2431s (×0.31).
pub const PICKUP_IMAGE_FACTOR: f64 = 0.31;
/// §4.5 Table 3: large #items raises pickup 4521s → 8132s (×1.8) —
/// limited marketplace parallelism queues later instances.
pub const PICKUP_ITEMS_FACTOR: f64 = 1.80;

// --------------------------------------------------------- answer quality

/// Baseline per-question ambiguity: probability a worker deviates from the
/// latent answer on a neutral task. Tuned so cluster-median disagreement
/// lands near Table 1's 0.10–0.17 band.
pub const AMBIGUITY_BASE: f64 = 0.085;

/// §4.3 Table 1: many words (detailed instructions) cut disagreement
/// 0.147 → 0.108.
pub const AMBIGUITY_WORDS_FACTOR: f64 = 0.68;
/// §4.5 Table 1: many items cut disagreement 0.169 → 0.086.
pub const AMBIGUITY_ITEMS_FACTOR: f64 = 0.52;
/// §4.4 Table 1: text boxes raise disagreement 0.102 → 0.160.
pub const AMBIGUITY_TEXTBOX_FACTOR: f64 = 1.62;
/// §4.6 Table 1: examples cut disagreement 0.128 → 0.101.
pub const AMBIGUITY_EXAMPLE_FACTOR: f64 = 0.74;
/// Extra ambiguity multiplier for complex-goal tasks (drill-down §4.3:
/// feature effects are pronounced for hard tasks like Gather).
pub const AMBIGUITY_COMPLEX_FACTOR: f64 = 1.35;

/// §4.1: tasks with disagreement > 0.5 are pruned as subjective; the
/// generator includes a small population of such subjective tasks so the
/// pruning step has something to prune.
pub const SUBJECTIVE_TASK_FRACTION: f64 = 0.06;

// ------------------------------------------------------------- redundancy

/// Mean workers per item (redundancy). The marketplace collects multiple
/// judgments per item for majority-vote aggregation (§4.1).
pub const REDUNDANCY_MEAN: f64 = 3.2;

/// §2.2 / §3.3: median instances per cluster ≈ 400 at full scale; the
/// instances-per-batch distribution combines with batch counts to hit it.
pub const BATCH_ITEMS_MEDIAN: f64 = 14.0;

/// §3.3: heavy-hitter clusters issue ~80k instances per batch at full
/// scale ("these 'bulky' clusters have issued close to 80k tasks/batch").
pub const HEAVY_HITTER_BATCH_INSTANCES: f64 = 80_000.0;

/// §3.3: more than 10 distinct tasks had over 100 batches each; 3 clusters
/// exceed 1M instances. Fraction of task types that are heavy hitters.
pub const HEAVY_HITTER_TYPE_FRACTION: f64 = 0.002;

/// Share of the instance budget carried by the three "bulk" clusters
/// (§3.3 / Fig 7: 3 clusters with > 1M instances of 27M ≈ 15–25% combined).
pub const BULK_INSTANCE_SHARE: f64 = 0.20;

#[cfg(test)]
mod tests {
    // The whole point of these tests is to pin compile-time constants to
    // the paper's reported ratios.
    #![allow(clippy::assertions_on_constants)]

    use super::*;

    #[test]
    fn weekday_weights_decline_and_weekend_is_half() {
        for w in WEEKDAY_WEIGHTS.windows(2) {
            assert!(w[0] >= w[1], "volume declines across the week (Fig 3)");
        }
        let weekday_max = WEEKDAY_WEIGHTS[0];
        let weekend = WEEKDAY_WEIGHTS[5];
        assert!(weekday_max / weekend >= 1.8 && weekday_max / weekend <= 2.2);
    }

    #[test]
    fn factors_point_in_paper_directions() {
        assert!(TASK_TIME_TEXTBOX_FACTOR > 1.0);
        assert!(TASK_TIME_ITEMS_FACTOR < 1.0);
        assert!(TASK_TIME_IMAGE_FACTOR < 1.0);
        assert!(PICKUP_EXAMPLE_FACTOR < 1.0);
        assert!(PICKUP_IMAGE_FACTOR < 1.0);
        assert!(PICKUP_ITEMS_FACTOR > 1.0);
        assert!(AMBIGUITY_WORDS_FACTOR < 1.0);
        assert!(AMBIGUITY_ITEMS_FACTOR < 1.0);
        assert!(AMBIGUITY_TEXTBOX_FACTOR > 1.0);
        assert!(AMBIGUITY_EXAMPLE_FACTOR < 1.0);
    }

    #[test]
    fn effect_ratios_match_tables_1_to_3() {
        // Table 1 ratios.
        assert!((AMBIGUITY_WORDS_FACTOR - 0.108 / 0.147).abs() < 0.06);
        assert!((AMBIGUITY_ITEMS_FACTOR - 0.086 / 0.169).abs() < 0.06);
        assert!((AMBIGUITY_TEXTBOX_FACTOR - 0.160 / 0.102).abs() < 0.08);
        assert!((AMBIGUITY_EXAMPLE_FACTOR - 0.101 / 0.128).abs() < 0.06);
        // Table 2 ratios.
        assert!((TASK_TIME_TEXTBOX_FACTOR - 285.7 / 119.0).abs() < 0.05);
        assert!((TASK_TIME_ITEMS_FACTOR - 136.0 / 230.0).abs() < 0.05);
        assert!((TASK_TIME_IMAGE_FACTOR - 129.0 / 183.6).abs() < 0.05);
        // Table 3 ratios.
        assert!((PICKUP_EXAMPLE_FACTOR - 1_353.0 / 6_303.0).abs() < 0.05);
        assert!((PICKUP_IMAGE_FACTOR - 2_431.0 / 7_838.0).abs() < 0.05);
        assert!((PICKUP_ITEMS_FACTOR - 8_132.0 / 4_521.0).abs() < 0.05);
    }

    #[test]
    fn population_fractions_are_sane() {
        assert!(ONE_DAY_WORKER_FRACTION > 0.5 && ONE_DAY_WORKER_FRACTION < 0.55);
        assert!(SHORT_LIFETIME_FRACTION > ONE_DAY_WORKER_FRACTION);
        assert!(EXAMPLES_PREVALENCE < 0.1, "examples are rare (§4.6)");
        assert!(INTERNAL_TASK_SHARE < 0.05);
    }
}
