//! The 139 labor sources of paper Table 4, with per-source behavioural
//! profiles calibrated to §5.1.

use crowd_core::worker::SourceKind;

/// Behavioural profile of one labor source.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Source name (verbatim from Table 4).
    pub name: &'static str,
    /// Behavioural class.
    pub kind: SourceKind,
    /// Relative share of the registered workforce this source recruits.
    pub worker_weight: f64,
    /// Engagement multiplier: scales how many tasks this source's workers
    /// take on (Fig 26a spans > 10,000 tasks/worker down to ≤ 20).
    pub engagement: f64,
    /// Mean latent skill of the source's workers (→ trust scores, Fig 27c:
    /// ~10% of sources have mean trust < 0.8; amt sits at 0.75).
    pub trust_mean: f64,
    /// Mean relative task time (Fig 27f: most ≈ 1, 5% ≥ 3, a few ≥ 10;
    /// amt > 5).
    pub speed_factor: f64,
}

/// All 139 source names, in Table 4's order. The first ten are the "major"
/// sources of Fig 27 (≈86% of workers, ≈95% of tasks).
pub const SOURCE_NAMES: [&str; 139] = [
    "neodev",
    "clixsense",
    "prodege",
    "elite",
    "instagc",
    "tremorgames",
    "internal",
    "bitcoinget",
    "amt",
    "superrewards",
    "eup_slw",
    "gifthunterclub",
    "taskhunter",
    "prizerebel",
    "hiving",
    "fusioncash",
    "points2shop",
    "clicksfx",
    "getpaid",
    "cotter",
    "coinworker",
    "vivatic",
    "piyanstantrewards",
    "inboxpounds",
    "imerit_india",
    "personaly",
    "stuffpoint",
    "errtopc",
    "taskspay",
    "zoombucks",
    "crowdgur",
    "gifthulk",
    "tasks4dollars",
    "dollarsignup",
    "indivillagetest",
    "cbf",
    "mycashtasks",
    "sendearnings",
    "treasuretrooper",
    "pokerowned",
    "diamondtask",
    "pforads",
    "quickrewards",
    "uniquerewards",
    "extralunchmoney",
    "cashcrate",
    "wannads",
    "gptbanks",
    "listia",
    "gradible",
    "dailyrewardsca",
    "clickfair",
    "superpayme",
    "memolink",
    "rewardok",
    "snowcirrustechbpo",
    "pedtoclick",
    "rewardingways",
    "callmemoney",
    "pocketmoneygpt",
    "goldtasks",
    "dollarrewardz",
    "surveymad",
    "sharecashgpt",
    "irazoo",
    "zapbux",
    "ptcsolution",
    "ptc123",
    "content_runner",
    "jetbux",
    "qpr",
    "cointasker",
    "point_dollars",
    "meprizescf",
    "keeprewarding",
    "gptking",
    "dollarsgpt",
    "prizeplank",
    "yute_jamaica",
    "onestopgpt",
    "gptway",
    "trial_pay",
    "task_ph",
    "golddiggergpt",
    "prizezombie",
    "daproimafrica",
    "aceinnovations",
    "getpaidto",
    "globalactioncash",
    "piyoogle",
    "supersonicads",
    "poin_web",
    "rewardsspot",
    "giftgpt",
    "giftcardgpt",
    "northclicks",
    "fastcashgpt",
    "dealbarbiepays",
    "dailysurveypanel",
    "points4rewards",
    "gptpal",
    "rewards1",
    "new_rules",
    "surewardsgpt",
    "zorbor",
    "steamgameswap",
    "buxense",
    "surveywage",
    "offernation",
    "probux",
    "freeride",
    "ojooo",
    "luckytaskz",
    "medievaleurope",
    "proudclick",
    "steampowers",
    "paiddailysurveys",
    "wrkshop",
    "simplegpt",
    "realworld",
    "surveytokens",
    "bemybux",
    "onestop",
    "plusdollars",
    "gptbucks",
    "fepcrowdflower",
    "embee",
    "makethatdollar",
    "ayuwage",
    "luckykoin",
    "pointst",
    "sedgroup",
    "easycashclicks",
    "candy_ph",
    "piggybankgpt",
    "peoplesgpt",
    "matomy",
    "earnthemost",
    "fsprizes",
];

/// Sources with a geographically specialized workforce (§5.1 names
/// imerit_india, yute_jamaica, taskhunter as location-specific).
const REGIONAL: &[&str] =
    &["imerit_india", "yute_jamaica", "taskhunter", "task_ph", "candy_ph", "daproimafrica"];

/// Sources specialized by task domain (§5.1 cites ojooo for
/// advertising/marketing).
const DOMAIN_SPECIFIC: &[&str] =
    &["ojooo", "content_runner", "fepcrowdflower", "steamgameswap", "steampowers"];

/// Worker-share weights of the ten major sources (Fig 27a): NeoDev alone
/// contributed ~27k of the ~69k workers; amt ~1.5%; internal ~2.5%.
const MAJOR_WORKER_WEIGHTS: [(usize, f64); 10] = [
    (0, 0.390), // neodev
    (1, 0.150), // clixsense
    (2, 0.090), // prodege
    (3, 0.060), // elite
    (4, 0.050), // instagc
    (5, 0.040), // tremorgames
    (6, 0.025), // internal (≈2.5% of workforce, §5.1)
    (7, 0.030), // bitcoinget
    (8, 0.015), // amt (≈1.5% of workers, §5.1)
    (9, 0.020), // superrewards
];

/// Builds the full, deterministic source registry.
pub fn source_specs() -> Vec<SourceSpec> {
    let mut specs = Vec::with_capacity(SOURCE_NAMES.len());
    // Long-tail worker weight: the remaining 129 sources share ~13% of the
    // workforce with Zipf decay.
    let tail_total: f64 = (10..SOURCE_NAMES.len()).map(|i| 1.0 / (i as f64 - 8.0)).sum();
    let tail_mass = 1.0 - MAJOR_WORKER_WEIGHTS.iter().map(|&(_, w)| w).sum::<f64>();

    for (i, &name) in SOURCE_NAMES.iter().enumerate() {
        let kind = if name == "internal" {
            SourceKind::Internal
        } else if REGIONAL.contains(&name) {
            SourceKind::Regional
        } else if DOMAIN_SPECIFIC.contains(&name) {
            SourceKind::DomainSpecific
        } else if i < 10 || i % 5 == 2 {
            // Majors plus a scattering of engaged long-tail sources.
            SourceKind::Dedicated
        } else {
            SourceKind::OnDemand
        };

        let worker_weight = MAJOR_WORKER_WEIGHTS
            .iter()
            .find(|&&(idx, _)| idx == i)
            .map(|&(_, w)| w)
            .unwrap_or(tail_mass / tail_total / (i as f64 - 8.0));

        // Engagement: dedicated sources have workers doing orders of
        // magnitude more tasks; 40% of sources sit at ≤20 tasks/worker
        // (Fig 26a). Internal workers are few but highly engaged, yet the
        // internal *task share* stays ≈2% because the pool is small.
        let engagement = match kind {
            SourceKind::Dedicated => {
                if i < 10 {
                    14.0
                } else {
                    4.0
                }
            }
            SourceKind::Internal => 6.0,
            SourceKind::Regional => 2.5,
            SourceKind::DomainSpecific => 1.5,
            SourceKind::OnDemand => 0.22,
        };

        // Trust: majors high (Fig 27b: majors except amt have mean trust
        // > 0.8); amt 0.75; ~10% of the tail below 0.8, a couple below 0.5.
        let trust_mean = if name == "amt" {
            0.75
        } else if name == "internal" {
            0.96
        } else if i < 10 {
            0.92
        } else if i % 23 == 11 {
            0.45 // the paper notes trust "even lower than 0.5" for some
        } else if i % 11 == 3 {
            0.78 // the sub-0.8 band (~10% of sources)
        } else {
            0.88 + 0.06 * ((i % 7) as f64 / 7.0)
        };

        // Relative task time: amt > 5 (Fig 27e); ~5% of sources ≥ 3, three
        // of them ≥ 10 (Fig 27f); everyone else near 1.
        let speed_factor = if name == "amt" {
            5.5
        } else if i == 35 || i == 77 || i == 119 {
            11.0
        } else if i % 29 == 17 {
            3.5
        } else {
            0.85 + 0.5 * ((i % 10) as f64 / 10.0)
        };

        specs.push(SourceSpec { name, kind, worker_weight, engagement, trust_mean, speed_factor });
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_139_sources() {
        assert_eq!(SOURCE_NAMES.len(), 139, "paper §5.1 / Table 4");
        assert_eq!(source_specs().len(), 139);
    }

    #[test]
    fn names_are_unique() {
        let set: std::collections::HashSet<_> = SOURCE_NAMES.iter().collect();
        assert_eq!(set.len(), SOURCE_NAMES.len());
    }

    #[test]
    fn worker_weights_sum_to_one() {
        let total: f64 = source_specs().iter().map(|s| s.worker_weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn top_ten_hold_most_workers() {
        let specs = source_specs();
        let top10: f64 = specs.iter().take(10).map(|s| s.worker_weight).sum();
        assert!((0.82..=0.90).contains(&top10), "Fig 27: ~86% of workers, got {top10}");
    }

    #[test]
    fn amt_profile_matches_fig_27() {
        let specs = source_specs();
        let amt = specs.iter().find(|s| s.name == "amt").unwrap();
        assert!((amt.trust_mean - 0.75).abs() < 1e-9);
        assert!(amt.speed_factor > 5.0);
    }

    #[test]
    fn internal_pool_exists_and_is_small() {
        let specs = source_specs();
        let internal = specs.iter().find(|s| s.name == "internal").unwrap();
        assert_eq!(internal.kind, SourceKind::Internal);
        assert!((0.02..=0.03).contains(&internal.worker_weight));
    }

    #[test]
    fn roughly_ten_percent_low_trust_sources() {
        let specs = source_specs();
        let low = specs.iter().filter(|s| s.trust_mean < 0.8).count();
        let frac = low as f64 / specs.len() as f64;
        assert!((0.06..=0.16).contains(&frac), "Fig 27c: ~10% below 0.8, got {frac}");
        assert!(specs.iter().any(|s| s.trust_mean < 0.5), "some sources below 0.5");
    }

    #[test]
    fn slow_source_band_matches_fig_27f() {
        let specs = source_specs();
        let slow = specs.iter().filter(|s| s.speed_factor >= 3.0).count();
        let frac = slow as f64 / specs.len() as f64;
        assert!((0.03..=0.09).contains(&frac), "~5% of sources ≥3×, got {frac}");
        let very_slow = specs.iter().filter(|s| s.speed_factor >= 10.0).count();
        assert_eq!(very_slow, 3, "three sources ≥ 10× (Fig 27f)");
    }

    #[test]
    fn engaged_vs_on_demand_split() {
        let specs = source_specs();
        let on_demand = specs.iter().filter(|s| s.engagement <= 0.5).count();
        let frac = on_demand as f64 / specs.len() as f64;
        assert!(frac > 0.3, "a large share of sources is on-demand (Fig 26a): {frac}");
        assert!(specs[0].engagement > 5.0, "neodev is a dedicated workhorse");
    }

    #[test]
    fn regional_and_domain_sources_classified() {
        let specs = source_specs();
        assert_eq!(
            specs.iter().find(|s| s.name == "imerit_india").unwrap().kind,
            SourceKind::Regional
        );
        assert_eq!(
            specs.iter().find(|s| s.name == "ojooo").unwrap().kind,
            SourceKind::DomainSpecific
        );
    }
}
