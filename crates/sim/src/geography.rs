//! Worker geography: 148 countries with shares calibrated to Fig 28.
//!
//! "Close to 50% of the workers come from 5 countries — USA (21.3k),
//! Venezuela (5.3k), Great Britain (4.4k), India (4.1k) and Canada (2.8k)"
//! out of ~69k, and "17% of workers come from the emerging South American
//! and African markets".

/// One country with its share of the workforce and region tag.
#[derive(Debug, Clone, Copy)]
pub struct CountrySpec {
    /// Country display name.
    pub name: &'static str,
    /// Share of registered workers (sums to 1 across the registry).
    pub weight: f64,
    /// Region bucket for the emerging-market statistics.
    pub region: Region,
}

/// Coarse world regions used by the Fig 28 commentary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// North America.
    NorthAmerica,
    /// South & Central America.
    SouthAmerica,
    /// Europe.
    Europe,
    /// Asia.
    Asia,
    /// Africa.
    Africa,
    /// Oceania.
    Oceania,
}

/// Named heads of the distribution, matching the paper's top-5 shares.
const HEAD: [(&str, f64, Region); 5] = [
    ("USA", 21_300.0 / 69_000.0, Region::NorthAmerica),
    ("Venezuela", 5_300.0 / 69_000.0, Region::SouthAmerica),
    ("Great Britain", 4_400.0 / 69_000.0, Region::Europe),
    ("India", 4_100.0 / 69_000.0, Region::Asia),
    ("Canada", 2_800.0 / 69_000.0, Region::NorthAmerica),
];

/// The long tail of countries (143 more, for 148 total — Fig 28). Weights
/// decay by rank within the tail; regions chosen so South America + Africa
/// land near the paper's 17% (Venezuela included).
const TAIL: [(&str, Region); 143] = [
    ("Brazil", Region::SouthAmerica),
    ("Philippines", Region::Asia),
    ("Nigeria", Region::Africa),
    ("Egypt", Region::Africa),
    ("Serbia", Region::Europe),
    ("Romania", Region::Europe),
    ("Germany", Region::Europe),
    ("Indonesia", Region::Asia),
    ("Colombia", Region::SouthAmerica),
    ("Kenya", Region::Africa),
    ("Pakistan", Region::Asia),
    ("Bangladesh", Region::Asia),
    ("Mexico", Region::NorthAmerica),
    ("Spain", Region::Europe),
    ("Italy", Region::Europe),
    ("Argentina", Region::SouthAmerica),
    ("Morocco", Region::Africa),
    ("Peru", Region::SouthAmerica),
    ("France", Region::Europe),
    ("Poland", Region::Europe),
    ("Ukraine", Region::Europe),
    ("Vietnam", Region::Asia),
    ("Turkey", Region::Asia),
    ("Greece", Region::Europe),
    ("Portugal", Region::Europe),
    ("Netherlands", Region::Europe),
    ("Australia", Region::Oceania),
    ("South Africa", Region::Africa),
    ("Algeria", Region::Africa),
    ("Tunisia", Region::Africa),
    ("Ecuador", Region::SouthAmerica),
    ("Chile", Region::SouthAmerica),
    ("Bolivia", Region::SouthAmerica),
    ("Ghana", Region::Africa),
    ("Jamaica", Region::NorthAmerica),
    ("Sri Lanka", Region::Asia),
    ("Nepal", Region::Asia),
    ("Malaysia", Region::Asia),
    ("Thailand", Region::Asia),
    ("Hungary", Region::Europe),
    ("Bulgaria", Region::Europe),
    ("Croatia", Region::Europe),
    ("Bosnia", Region::Europe),
    ("Macedonia", Region::Europe),
    ("Albania", Region::Europe),
    ("Lithuania", Region::Europe),
    ("Latvia", Region::Europe),
    ("Estonia", Region::Europe),
    ("Czech Republic", Region::Europe),
    ("Slovakia", Region::Europe),
    ("Slovenia", Region::Europe),
    ("Austria", Region::Europe),
    ("Switzerland", Region::Europe),
    ("Belgium", Region::Europe),
    ("Ireland", Region::Europe),
    ("Sweden", Region::Europe),
    ("Norway", Region::Europe),
    ("Denmark", Region::Europe),
    ("Finland", Region::Europe),
    ("Russia", Region::Europe),
    ("Belarus", Region::Europe),
    ("Moldova", Region::Europe),
    ("Georgia", Region::Asia),
    ("Armenia", Region::Asia),
    ("Azerbaijan", Region::Asia),
    ("Kazakhstan", Region::Asia),
    ("Uzbekistan", Region::Asia),
    ("China", Region::Asia),
    ("Japan", Region::Asia),
    ("South Korea", Region::Asia),
    ("Taiwan", Region::Asia),
    ("Hong Kong", Region::Asia),
    ("Singapore", Region::Asia),
    ("Cambodia", Region::Asia),
    ("Laos", Region::Asia),
    ("Myanmar", Region::Asia),
    ("Mongolia", Region::Asia),
    ("Afghanistan", Region::Asia),
    ("Iraq", Region::Asia),
    ("Jordan", Region::Asia),
    ("Lebanon", Region::Asia),
    ("Israel", Region::Asia),
    ("Saudi Arabia", Region::Asia),
    ("UAE", Region::Asia),
    ("Qatar", Region::Asia),
    ("Kuwait", Region::Asia),
    ("Oman", Region::Asia),
    ("Yemen", Region::Asia),
    ("Iran", Region::Asia),
    ("Syria", Region::Asia),
    ("Palestine", Region::Asia),
    ("Uruguay", Region::SouthAmerica),
    ("Paraguay", Region::SouthAmerica),
    ("Guyana", Region::SouthAmerica),
    ("Suriname", Region::SouthAmerica),
    ("Costa Rica", Region::NorthAmerica),
    ("Panama", Region::NorthAmerica),
    ("Nicaragua", Region::NorthAmerica),
    ("Honduras", Region::NorthAmerica),
    ("El Salvador", Region::NorthAmerica),
    ("Guatemala", Region::NorthAmerica),
    ("Belize", Region::NorthAmerica),
    ("Cuba", Region::NorthAmerica),
    ("Haiti", Region::NorthAmerica),
    ("Dominican Republic", Region::NorthAmerica),
    ("Trinidad", Region::NorthAmerica),
    ("Barbados", Region::NorthAmerica),
    ("Bahamas", Region::NorthAmerica),
    ("Ethiopia", Region::Africa),
    ("Tanzania", Region::Africa),
    ("Uganda", Region::Africa),
    ("Rwanda", Region::Africa),
    ("Zambia", Region::Africa),
    ("Zimbabwe", Region::Africa),
    ("Botswana", Region::Africa),
    ("Namibia", Region::Africa),
    ("Mozambique", Region::Africa),
    ("Angola", Region::Africa),
    ("Cameroon", Region::Africa),
    ("Senegal", Region::Africa),
    ("Ivory Coast", Region::Africa),
    ("Mali", Region::Africa),
    ("Burkina Faso", Region::Africa),
    ("Niger", Region::Africa),
    ("Chad", Region::Africa),
    ("Sudan", Region::Africa),
    ("Libya", Region::Africa),
    ("Mauritius", Region::Africa),
    ("Madagascar", Region::Africa),
    ("Malawi", Region::Africa),
    ("Benin", Region::Africa),
    ("Togo", Region::Africa),
    ("Sierra Leone", Region::Africa),
    ("Liberia", Region::Africa),
    ("Gambia", Region::Africa),
    ("Guinea", Region::Africa),
    ("New Zealand", Region::Oceania),
    ("Fiji", Region::Oceania),
    ("Papua New Guinea", Region::Oceania),
    ("Samoa", Region::Oceania),
    ("Iceland", Region::Europe),
    ("Luxembourg", Region::Europe),
    ("Malta", Region::Europe),
];

/// The full 148-country registry with normalized weights.
pub fn country_specs() -> Vec<CountrySpec> {
    let head_mass: f64 = HEAD.iter().map(|&(_, w, _)| w).sum();
    let tail_mass = 1.0 - head_mass;
    // Zipf-ish decay over the tail ranks, with South America and Africa
    // down-weighted so the emerging-market total (incl. Venezuela's 7.7%)
    // lands near the paper's 17%.
    let region_factor = |r: Region| match r {
        Region::SouthAmerica | Region::Africa => 0.42,
        _ => 1.0,
    };
    let raw: Vec<f64> = TAIL
        .iter()
        .enumerate()
        .map(|(i, &(_, region))| region_factor(region) / (i as f64 + 2.0))
        .collect();
    let denom: f64 = raw.iter().sum();
    let mut out: Vec<CountrySpec> =
        HEAD.iter().map(|&(name, weight, region)| CountrySpec { name, weight, region }).collect();
    out.extend(TAIL.iter().enumerate().map(|(i, &(name, region))| CountrySpec {
        name,
        weight: tail_mass * raw[i] / denom,
        region,
    }));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_148_countries() {
        assert_eq!(country_specs().len(), 148, "Fig 28: 148 countries");
    }

    #[test]
    fn names_unique() {
        let specs = country_specs();
        let set: std::collections::HashSet<_> = specs.iter().map(|c| c.name).collect();
        assert_eq!(set.len(), specs.len());
    }

    #[test]
    fn weights_normalized() {
        let total: f64 = country_specs().iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top5_hold_half_the_workforce() {
        let specs = country_specs();
        let top5: f64 = specs.iter().take(5).map(|c| c.weight).sum();
        assert!((0.45..=0.60).contains(&top5), "close to 50% (Fig 28): {top5}");
        assert_eq!(specs[0].name, "USA");
        assert_eq!(specs[1].name, "Venezuela");
    }

    #[test]
    fn emerging_markets_near_17_percent() {
        let specs = country_specs();
        let emerging: f64 = specs
            .iter()
            .filter(|c| matches!(c.region, Region::SouthAmerica | Region::Africa))
            .map(|c| c.weight)
            .sum();
        assert!((0.12..=0.23).contains(&emerging), "≈17% (Fig 28): {emerging}");
    }

    #[test]
    fn head_weights_match_paper_counts() {
        let specs = country_specs();
        assert!((specs[0].weight * 69_000.0 - 21_300.0).abs() < 1.0);
        assert!((specs[4].weight * 69_000.0 - 2_800.0).abs() < 1.0);
    }
}
