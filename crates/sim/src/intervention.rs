//! Design interventions for A/B experiments (the paper's §7 future work:
//! "with full-fledged A/B testing, we may be able to solidify our
//! correlation and predictive claims with further causation-based
//! evidence").
//!
//! An [`Intervention`] edits a targeted subset of the task-type population
//! *after* generation and re-derives the affected latent response
//! parameters through the same calibrated formulas the generator uses —
//! so treatment differs from control exactly by the causal pathway under
//! test. The RNG stream is untouched (interventions never draw), keeping
//! control and treatment runs paired sample-for-sample.

use crowd_core::labels::{Goal, Operator};

use crate::calibration as cal;
use crate::tasktypes::TaskTypeSpec;

/// Which task types an experiment treats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetSelector {
    /// Every task type.
    All,
    /// Types carrying a goal label.
    Goal(Goal),
    /// Types carrying an operator label.
    Operator(Operator),
    /// Types whose title contains a substring.
    TitleContains(String),
}

impl TargetSelector {
    /// Whether a type is in the treatment group.
    pub fn matches(&self, t: &TaskTypeSpec) -> bool {
        match self {
            TargetSelector::All => true,
            TargetSelector::Goal(g) => t.goals.contains(*g),
            TargetSelector::Operator(o) => t.operators.contains(*o),
            TargetSelector::TitleContains(s) => t.title.contains(s.as_str()),
        }
    }
}

/// A design change applied to treated task types.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Intervention {
    /// Add `count` prominent examples to interfaces that have none (§4.6).
    AddExamples {
        /// Examples to add.
        count: u32,
    },
    /// Replace free-text inputs with closed choices (§4.4, §4.8: "it pays
    /// to simplify questions down to a set of alternatives").
    RemoveTextBoxes,
    /// Add `count` images to interfaces that have none (§4.7).
    AddImages {
        /// Images to add.
        count: u32,
    },
    /// Multiply the instruction length (§4.3).
    ScaleWords {
        /// Multiplier on `#words`.
        factor: f64,
    },
    /// Multiply the items per batch (§4.5).
    ScaleItems {
        /// Multiplier on the type's median `#items`.
        factor: f64,
    },
    /// No-op, for A/A validation runs.
    Null,
}

impl Intervention {
    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            Intervention::AddExamples { count } => format!("add {count} examples"),
            Intervention::RemoveTextBoxes => "remove text boxes".into(),
            Intervention::AddImages { count } => format!("add {count} images"),
            Intervention::ScaleWords { factor } => format!("scale words ×{factor}"),
            Intervention::ScaleItems { factor } => format!("scale items ×{factor}"),
            Intervention::Null => "null (A/A)".into(),
        }
    }

    /// Applies the change to one type, re-deriving the latent response
    /// parameters through the calibrated causal formulas. Returns whether
    /// the type actually changed.
    pub fn apply(&self, t: &mut TaskTypeSpec) -> bool {
        match *self {
            Intervention::Null => false,
            Intervention::AddExamples { count } => {
                if t.examples > 0 || count == 0 {
                    return false;
                }
                t.examples = count;
                t.ambiguity = (t.ambiguity * cal::AMBIGUITY_EXAMPLE_FACTOR).clamp(0.002, 0.97);
                t.pickup_median = (t.pickup_median * cal::PICKUP_EXAMPLE_FACTOR).max(20.0);
                true
            }
            Intervention::RemoveTextBoxes => {
                if t.text_boxes == 0 {
                    return false;
                }
                t.text_boxes = 0;
                t.ambiguity = (t.ambiguity / cal::AMBIGUITY_TEXTBOX_FACTOR).clamp(0.002, 0.97);
                t.task_time_median = (t.task_time_median / cal::TASK_TIME_TEXTBOX_FACTOR).max(8.0);
                // A closed interface also de-subjectivizes the task.
                if t.subjective {
                    t.subjective = false;
                    t.ambiguity = t.ambiguity.min(0.3);
                }
                true
            }
            Intervention::AddImages { count } => {
                if t.images > 0 || count == 0 {
                    return false;
                }
                t.images = count;
                t.pickup_median = (t.pickup_median * cal::PICKUP_IMAGE_FACTOR).max(20.0);
                t.task_time_median = (t.task_time_median * cal::TASK_TIME_IMAGE_FACTOR).max(8.0);
                true
            }
            Intervention::ScaleWords { factor } => {
                if factor <= 0.0 || (factor - 1.0).abs() < f64::EPSILON {
                    return false;
                }
                let before = f64::from(t.words) > cal::WORDS_MEDIAN;
                t.words = ((f64::from(t.words) * factor).round() as u32).clamp(15, 30_000);
                let after = f64::from(t.words) > cal::WORDS_MEDIAN;
                match (before, after) {
                    (false, true) => {
                        t.ambiguity = (t.ambiguity * cal::AMBIGUITY_WORDS_FACTOR).clamp(0.002, 0.97)
                    }
                    (true, false) => {
                        t.ambiguity = (t.ambiguity / cal::AMBIGUITY_WORDS_FACTOR).clamp(0.002, 0.97)
                    }
                    _ => {}
                }
                true
            }
            Intervention::ScaleItems { factor } => {
                if factor <= 0.0 || (factor - 1.0).abs() < f64::EPSILON {
                    return false;
                }
                let before = t.items_median;
                t.items_median = (t.items_median * factor).clamp(1.0, 120_000.0);
                // Re-derive the items-dependent latents.
                let was_large = before > cal::ITEMS_MEDIAN;
                let is_large = t.items_median > cal::ITEMS_MEDIAN;
                if was_large != is_large {
                    let (amb, tt) = if is_large {
                        (cal::AMBIGUITY_ITEMS_FACTOR, cal::TASK_TIME_ITEMS_FACTOR)
                    } else {
                        (1.0 / cal::AMBIGUITY_ITEMS_FACTOR, 1.0 / cal::TASK_TIME_ITEMS_FACTOR)
                    };
                    t.ambiguity = (t.ambiguity * amb).clamp(0.002, 0.97);
                    t.task_time_median = (t.task_time_median * tt).max(8.0);
                }
                // Pickup responds continuously to items (limited
                // parallelism), same exponent as the generator.
                let ratio = (t.items_median / before).powf(0.22).clamp(0.45, 2.6);
                t.pickup_median = (t.pickup_median * ratio).clamp(20.0, 2.0e7);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::tasktypes::generate_task_types;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn some_types() -> Vec<TaskTypeSpec> {
        let cfg = SimConfig::tiny(5);
        let mut rng = StdRng::seed_from_u64(5);
        generate_task_types(&cfg, &mut rng)
    }

    #[test]
    fn add_examples_cuts_pickup_and_ambiguity() {
        let mut types = some_types();
        let t = types.iter_mut().find(|t| t.examples == 0).unwrap();
        let (p0, a0) = (t.pickup_median, t.ambiguity);
        assert!(Intervention::AddExamples { count: 2 }.apply(t));
        assert!(t.pickup_median < p0 * 0.3);
        assert!(t.ambiguity < a0);
        // Idempotent: a second application is a no-op.
        assert!(!Intervention::AddExamples { count: 2 }.apply(t));
    }

    #[test]
    fn remove_text_boxes_reverses_their_penalty() {
        let mut types = some_types();
        let t = types.iter_mut().find(|t| t.text_boxes > 0 && !t.subjective).unwrap();
        let (tt0, a0) = (t.task_time_median, t.ambiguity);
        assert!(Intervention::RemoveTextBoxes.apply(t));
        assert_eq!(t.text_boxes, 0);
        assert!(t.task_time_median < tt0);
        assert!(t.ambiguity < a0);
        assert!(!Intervention::RemoveTextBoxes.apply(t), "no-op without text boxes");
    }

    #[test]
    fn scale_items_moves_pickup_continuously() {
        let mut types = some_types();
        let t = &mut types[10];
        let p0 = t.pickup_median;
        assert!(Intervention::ScaleItems { factor: 10.0 }.apply(t));
        assert!(t.pickup_median > p0, "more items → slower pickup");
        assert!(!Intervention::ScaleItems { factor: 1.0 }.apply(&mut types[11]));
    }

    #[test]
    fn scale_words_crossing_the_median_changes_ambiguity() {
        let mut types = some_types();
        let t = types.iter_mut().find(|t| f64::from(t.words) < cal::WORDS_MEDIAN / 2.0).unwrap();
        let a0 = t.ambiguity;
        assert!(Intervention::ScaleWords { factor: 10.0 }.apply(t));
        assert!(t.ambiguity < a0, "crossed the words median → less ambiguity");
    }

    #[test]
    fn null_is_a_noop() {
        let mut types = some_types();
        let before = types[0].clone();
        assert!(!Intervention::Null.apply(&mut types[0]));
        assert_eq!(types[0].words, before.words);
        assert_eq!(types[0].ambiguity, before.ambiguity);
    }

    #[test]
    fn selectors_match_labels() {
        let types = some_types();
        let by_goal =
            types.iter().filter(|t| TargetSelector::Goal(Goal::Transcription).matches(t)).count();
        assert!(by_goal > 0);
        for t in &types {
            if TargetSelector::Operator(Operator::Filter).matches(t) {
                assert!(t.operators.contains(Operator::Filter));
            }
        }
        assert!(TargetSelector::All.matches(&types[0]));
    }
}
