//! The dataset container: all entity tables plus derived indexes.
//!
//! The instance table — by far the hottest and largest — is stored as a
//! struct-of-arrays [`InstanceColumns`] so analytical scans touch only the
//! columns they read and vectorize naturally; [`InstanceRef`] row views keep
//! the ergonomic row-at-a-time API at call sites.

use std::collections::HashSet;
use std::sync::Arc;

use crate::answer::Answer;
use crate::error::{CoreError, Result};
use crate::id::{BatchId, CountryId, InstanceId, ItemId, SourceId, TaskTypeId, WorkerId};
use crate::task::{Batch, TaskType};
use crate::time::{Duration, Timestamp};
use crate::worker::{Country, Source, Worker};

/// One completed task instance: a single worker's unit of work on one item
/// (paper §2, §2.3 "Task instance attributes").
///
/// This owned row form is the construction/interchange currency; at rest the
/// instance table is columnar ([`InstanceColumns`]) and reads hand out
/// [`InstanceRef`] views instead.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskInstance {
    /// The batch this instance belongs to.
    pub batch: BatchId,
    /// The item the instance's question operates on, scoped to the batch's
    /// task type: equal `(task_type, item)` pairs denote the same datum.
    pub item: ItemId,
    /// The worker who performed the instance.
    pub worker: WorkerId,
    /// When the worker started the instance.
    pub start: Timestamp,
    /// When the worker submitted the instance.
    pub end: Timestamp,
    /// Marketplace-assigned trust score in `[0, 1]` — accuracy on hidden
    /// test questions, the paper's only proxy for worker accuracy (§2.3).
    pub trust: f32,
    /// The worker's answer.
    pub answer: Answer,
}

impl TaskInstance {
    /// Time the worker spent on the instance.
    #[inline]
    pub fn work_time(&self) -> Duration {
        self.end - self.start
    }
}

/// A borrowed row view over one instance in [`InstanceColumns`].
///
/// The hot fixed-width fields are copied out (they are each ≤ 8 bytes, so a
/// copy is cheaper than a pointer chase); the variable-width answer stays
/// borrowed. Field access syntax is identical to [`TaskInstance`], which is
/// what lets call sites migrate incrementally.
#[derive(Debug, Clone, Copy)]
pub struct InstanceRef<'a> {
    /// The batch this instance belongs to.
    pub batch: BatchId,
    /// The item the instance operates on (scoped to the batch's task type).
    pub item: ItemId,
    /// The worker who performed the instance.
    pub worker: WorkerId,
    /// When the worker started the instance.
    pub start: Timestamp,
    /// When the worker submitted the instance.
    pub end: Timestamp,
    /// Marketplace-assigned trust score in `[0, 1]`.
    pub trust: f32,
    /// The worker's answer.
    pub answer: &'a Answer,
}

impl InstanceRef<'_> {
    /// Time the worker spent on the instance.
    #[inline]
    pub fn work_time(&self) -> Duration {
        self.end - self.start
    }

    /// Materializes an owned [`TaskInstance`] (clones the answer).
    pub fn to_owned(&self) -> TaskInstance {
        TaskInstance {
            batch: self.batch,
            item: self.item,
            worker: self.worker,
            start: self.start,
            end: self.end,
            trust: self.trust,
            answer: self.answer.clone(),
        }
    }
}

/// Struct-of-arrays instance store: one dense column per [`TaskInstance`]
/// field, all the same length.
///
/// Scans that read a subset of fields (most analytics do) touch only those
/// columns; [`InstanceColumns::row`] / [`Dataset::instance`] reassemble a
/// full row view when row-at-a-time access is clearer.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InstanceColumns {
    batch: Vec<BatchId>,
    item: Vec<ItemId>,
    worker: Vec<WorkerId>,
    start: Vec<Timestamp>,
    end: Vec<Timestamp>,
    trust: Vec<f32>,
    answer: Vec<Answer>,
    /// Bumped by every row-visible mutation, so derived state (the memoized
    /// fused scan above all) can detect that its input changed out from
    /// under it. Not part of the value: excluded from equality.
    mutations: u64,
}

/// Equality is over the row data only — two stores holding the same rows
/// compare equal regardless of how many mutations produced them.
impl PartialEq for InstanceColumns {
    fn eq(&self, other: &InstanceColumns) -> bool {
        self.batch == other.batch
            && self.item == other.item
            && self.worker == other.worker
            && self.start == other.start
            && self.end == other.end
            && self.trust == other.trust
            && self.answer == other.answer
    }
}

impl InstanceColumns {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instances.
    #[inline]
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// True when there are no instances.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Reserves capacity for `additional` more instances in every column.
    pub fn reserve(&mut self, additional: usize) {
        self.batch.reserve(additional);
        self.item.reserve(additional);
        self.worker.reserve(additional);
        self.start.reserve(additional);
        self.end.reserve(additional);
        self.trust.reserve(additional);
        self.answer.reserve(additional);
    }

    /// Assembles a store directly from its columns (the bulk-load path used
    /// by snapshot deserialization, which reads each column verbatim).
    ///
    /// Fails with [`CoreError::ColumnLengthMismatch`] unless all columns
    /// have the same length; referential integrity is *not* checked here —
    /// run [`Dataset::validate`] on the containing dataset for that.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        batch: Vec<BatchId>,
        item: Vec<ItemId>,
        worker: Vec<WorkerId>,
        start: Vec<Timestamp>,
        end: Vec<Timestamp>,
        trust: Vec<f32>,
        answer: Vec<Answer>,
    ) -> Result<Self> {
        let n = batch.len();
        let lens = [item.len(), worker.len(), start.len(), end.len(), trust.len(), answer.len()];
        if let Some(&got) = lens.iter().find(|&&l| l != n) {
            return Err(CoreError::ColumnLengthMismatch { expected: n, got });
        }
        Ok(InstanceColumns { batch, item, worker, start, end, trust, answer, mutations: 0 })
    }

    /// How many row-visible mutations this store has absorbed. The counter
    /// travels with clones, so a cached scan result can stamp the count it
    /// saw and detect any later [`push`](Self::push)/`set_*`/
    /// [`truncate`](Self::truncate) that would silently invalidate it.
    #[inline]
    pub fn mutation_count(&self) -> u64 {
        self.mutations
    }

    /// Splits the store at `at`, returning the tail `[at, len)` and
    /// keeping `[0, at)` — column-wise [`Vec::split_off`], so rows move,
    /// they are never cloned. The sharding layer's partition primitive.
    ///
    /// # Panics
    /// When `at > len()`.
    pub fn split_off(&mut self, at: usize) -> InstanceColumns {
        self.mutations += 1;
        InstanceColumns {
            batch: self.batch.split_off(at),
            item: self.item.split_off(at),
            worker: self.worker.split_off(at),
            start: self.start.split_off(at),
            end: self.end.split_off(at),
            trust: self.trust.split_off(at),
            answer: self.answer.split_off(at),
            mutations: 0,
        }
    }

    /// Drops every row past `len` (no-op when `len >= len()`) — column-wise
    /// [`Vec::truncate`]. The restore path's "rewind to the checkpointed
    /// prefix" primitive.
    pub fn truncate(&mut self, len: usize) {
        self.mutations += 1;
        self.batch.truncate(len);
        self.item.truncate(len);
        self.worker.truncate(len);
        self.start.truncate(len);
        self.end.truncate(len);
        self.trust.truncate(len);
        self.answer.truncate(len);
    }

    /// Copies rows `range` of `other` onto the end of `self` — the
    /// append-aware growth path live delta application uses (columns stay
    /// contiguous; no per-row re-boxing).
    ///
    /// # Panics
    /// When `range` is out of bounds for `other`.
    pub fn extend_from(&mut self, other: &InstanceColumns, range: std::ops::Range<usize>) {
        self.mutations += 1;
        self.batch.extend_from_slice(&other.batch[range.clone()]);
        self.item.extend_from_slice(&other.item[range.clone()]);
        self.worker.extend_from_slice(&other.worker[range.clone()]);
        self.start.extend_from_slice(&other.start[range.clone()]);
        self.end.extend_from_slice(&other.end[range.clone()]);
        self.trust.extend_from_slice(&other.trust[range.clone()]);
        self.answer.extend_from_slice(&other.answer[range]);
    }

    /// A new store holding a copy of rows `range`, in order — the prefix
    /// extraction the differential view-vs-batch oracles are built on.
    ///
    /// # Panics
    /// When `range` is out of bounds.
    pub fn clone_range(&self, range: std::ops::Range<usize>) -> InstanceColumns {
        let mut out = InstanceColumns::new();
        out.extend_from(self, range);
        out.mutations = 0;
        out
    }

    /// Moves every row of `other` onto the end of `self`, leaving `other`
    /// empty — column-wise [`Vec::append`]. Inverse of
    /// [`split_off`](Self::split_off).
    pub fn append(&mut self, other: &mut InstanceColumns) {
        self.mutations += 1;
        other.mutations += 1;
        self.batch.append(&mut other.batch);
        self.item.append(&mut other.item);
        self.worker.append(&mut other.worker);
        self.start.append(&mut other.start);
        self.end.append(&mut other.end);
        self.trust.append(&mut other.trust);
        self.answer.append(&mut other.answer);
    }

    /// Appends one instance, decomposing it into the columns.
    pub fn push(&mut self, inst: TaskInstance) {
        self.mutations += 1;
        self.batch.push(inst.batch);
        self.item.push(inst.item);
        self.worker.push(inst.worker);
        self.start.push(inst.start);
        self.end.push(inst.end);
        self.trust.push(inst.trust);
        self.answer.push(inst.answer);
    }

    /// Row view at position `i`. Panics when out of bounds.
    #[inline]
    pub fn row(&self, i: usize) -> InstanceRef<'_> {
        InstanceRef {
            batch: self.batch[i],
            item: self.item[i],
            worker: self.worker[i],
            start: self.start[i],
            end: self.end[i],
            trust: self.trust[i],
            answer: &self.answer[i],
        }
    }

    /// Row view at position `i`, or `None` when out of bounds.
    pub fn get(&self, i: usize) -> Option<InstanceRef<'_>> {
        (i < self.len()).then(|| self.row(i))
    }

    /// Iterates row views in storage order.
    pub fn iter(&self) -> InstanceIter<'_> {
        InstanceIter { cols: self, next: 0 }
    }

    /// The batch-id column.
    #[inline]
    pub fn batch_col(&self) -> &[BatchId] {
        &self.batch
    }

    /// The item-id column.
    #[inline]
    pub fn item_col(&self) -> &[ItemId] {
        &self.item
    }

    /// The worker-id column.
    #[inline]
    pub fn worker_col(&self) -> &[WorkerId] {
        &self.worker
    }

    /// The start-timestamp column.
    #[inline]
    pub fn start_col(&self) -> &[Timestamp] {
        &self.start
    }

    /// The end-timestamp column.
    #[inline]
    pub fn end_col(&self) -> &[Timestamp] {
        &self.end
    }

    /// The trust column.
    #[inline]
    pub fn trust_col(&self) -> &[f32] {
        &self.trust
    }

    /// The answer column.
    #[inline]
    pub fn answer_col(&self) -> &[Answer] {
        &self.answer
    }

    /// Overwrites the batch id of row `i` (test/repair surgery; analytics
    /// never mutate).
    pub fn set_batch(&mut self, i: usize, batch: BatchId) {
        self.mutations += 1;
        self.batch[i] = batch;
    }

    /// Overwrites the worker id of row `i`.
    pub fn set_worker(&mut self, i: usize, worker: WorkerId) {
        self.mutations += 1;
        self.worker[i] = worker;
    }

    /// Overwrites the start timestamp of row `i`.
    pub fn set_start(&mut self, i: usize, start: Timestamp) {
        self.mutations += 1;
        self.start[i] = start;
    }

    /// Overwrites the end timestamp of row `i`.
    pub fn set_end(&mut self, i: usize, end: Timestamp) {
        self.mutations += 1;
        self.end[i] = end;
    }

    /// Overwrites the trust score of row `i`.
    pub fn set_trust(&mut self, i: usize, trust: f32) {
        self.mutations += 1;
        self.trust[i] = trust;
    }

    /// Overwrites the answer of row `i`.
    pub fn set_answer(&mut self, i: usize, answer: Answer) {
        self.mutations += 1;
        self.answer[i] = answer;
    }
}

impl FromIterator<TaskInstance> for InstanceColumns {
    fn from_iter<I: IntoIterator<Item = TaskInstance>>(iter: I) -> Self {
        let mut cols = InstanceColumns::new();
        for inst in iter {
            cols.push(inst);
        }
        cols
    }
}

/// Iterator over [`InstanceRef`] row views; see [`InstanceColumns::iter`].
#[derive(Debug, Clone)]
pub struct InstanceIter<'a> {
    cols: &'a InstanceColumns,
    next: usize,
}

impl<'a> Iterator for InstanceIter<'a> {
    type Item = InstanceRef<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        let row = self.cols.get(self.next)?;
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.cols.len() - self.next;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for InstanceIter<'_> {}

impl<'a> IntoIterator for &'a InstanceColumns {
    type Item = InstanceRef<'a>;
    type IntoIter = InstanceIter<'a>;

    fn into_iter(self) -> InstanceIter<'a> {
        self.iter()
    }
}

/// Interning arena for batch HTML: identical pages share one allocation.
///
/// The 12k-batch sample re-issues the same rendered task page across many
/// batches of a task type; storing each copy separately multiplied resident
/// memory by the re-issue factor. The builder routes every
/// [`Batch::html`] through this arena, so equal strings collapse to one
/// refcounted `Arc<str>` and dataset slices/clones share it.
#[derive(Debug, Clone, Default)]
pub struct HtmlArena {
    set: HashSet<Arc<str>>,
}

impl HtmlArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the canonical shared handle for `html`, inserting on first
    /// sight.
    pub fn intern(&mut self, html: Arc<str>) -> Arc<str> {
        match self.set.get(&html) {
            Some(existing) => existing.clone(),
            None => {
                self.set.insert(html.clone());
                html
            }
        }
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// The full relational dataset: dense entity tables linked by typed ids.
///
/// Construct through [`DatasetBuilder`], which validates referential
/// integrity; a `Dataset` in hand is therefore always consistent.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dataset {
    /// Labor sources (paper Table 4).
    pub sources: Vec<Source>,
    /// Worker countries (paper Fig. 28).
    pub countries: Vec<Country>,
    /// Workers.
    pub workers: Vec<Worker>,
    /// Distinct task types.
    pub task_types: Vec<TaskType>,
    /// Batches, in creation-time order.
    pub batches: Vec<Batch>,
    /// Task instances, stored column-wise.
    pub instances: InstanceColumns,
}

impl Dataset {
    /// Looks up a batch row.
    #[inline]
    pub fn batch(&self, id: BatchId) -> &Batch {
        &self.batches[id.index()]
    }

    /// Looks up a task-type row.
    #[inline]
    pub fn task_type(&self, id: TaskTypeId) -> &TaskType {
        &self.task_types[id.index()]
    }

    /// Looks up a worker row.
    #[inline]
    pub fn worker(&self, id: WorkerId) -> &Worker {
        &self.workers[id.index()]
    }

    /// Looks up a source row.
    #[inline]
    pub fn source(&self, id: SourceId) -> &Source {
        &self.sources[id.index()]
    }

    /// Looks up a country row.
    #[inline]
    pub fn country(&self, id: CountryId) -> &Country {
        &self.countries[id.index()]
    }

    /// Row view of an instance by id.
    #[inline]
    pub fn instance(&self, id: InstanceId) -> InstanceRef<'_> {
        self.instances.row(id.index())
    }

    /// The task type behind an instance (via its batch).
    #[inline]
    pub fn instance_task_type(&self, inst: InstanceRef<'_>) -> TaskTypeId {
        self.batch(inst.batch).task_type
    }

    /// Pickup latency of an instance: time from batch creation to the
    /// worker starting the instance (paper §4.1 "Median Pickup Time").
    #[inline]
    pub fn pickup_time(&self, inst: InstanceRef<'_>) -> Duration {
        inst.start - self.batch(inst.batch).created_at
    }

    /// Earliest batch creation time, if any batches exist.
    pub fn time_min(&self) -> Option<Timestamp> {
        self.batches.iter().map(|b| b.created_at).min()
    }

    /// Latest instance end time (falling back to batch creation times).
    pub fn time_max(&self) -> Option<Timestamp> {
        let inst_max = self.instances.end_col().iter().copied().max();
        let batch_max = self.batches.iter().map(|b| b.created_at).max();
        inst_max.into_iter().chain(batch_max).max()
    }

    /// Builds the derived navigation indexes (CSR adjacency per batch,
    /// task type, and worker). O(instances + batches).
    pub fn index(&self) -> DatasetIndex {
        let batch_col = self.instances.batch_col();
        let worker_col = self.instances.worker_col();
        let by_batch =
            Csr::build(self.batches.len(), self.instances.len(), |i| batch_col[i].index());
        let by_worker =
            Csr::build(self.workers.len(), self.instances.len(), |i| worker_col[i].index());
        let batches_by_type = Csr::build(self.task_types.len(), self.batches.len(), |b| {
            self.batches[b].task_type.index()
        });
        DatasetIndex { by_batch, by_worker, batches_by_type }
    }

    /// Summary counts, as the paper reports in §2.2.
    pub fn summary(&self) -> DatasetSummary {
        let sampled_batches = self.batches.iter().filter(|b| b.sampled).count();
        let mut type_seen = vec![false; self.task_types.len()];
        let mut type_sampled = vec![false; self.task_types.len()];
        for b in &self.batches {
            type_seen[b.task_type.index()] = true;
            if b.sampled {
                type_sampled[b.task_type.index()] = true;
            }
        }
        DatasetSummary {
            sources: self.sources.len(),
            countries: self.countries.len(),
            workers: self.workers.len(),
            distinct_tasks: type_seen.iter().filter(|&&x| x).count(),
            distinct_tasks_sampled: type_sampled.iter().filter(|&&x| x).count(),
            batches: self.batches.len(),
            batches_sampled: sampled_batches,
            instances: self.instances.len(),
            time_min: self.time_min(),
            time_max: self.time_max(),
        }
    }

    /// Validates referential integrity and value ranges; returns the first
    /// violation found. [`DatasetBuilder::finish`] runs this automatically.
    pub fn validate(&self) -> Result<()> {
        for w in &self.workers {
            if w.source.index() >= self.sources.len() {
                return Err(CoreError::DanglingReference {
                    table: "sources",
                    index: w.source.index(),
                    len: self.sources.len(),
                });
            }
            if w.country.index() >= self.countries.len() {
                return Err(CoreError::DanglingReference {
                    table: "countries",
                    index: w.country.index(),
                    len: self.countries.len(),
                });
            }
        }
        for (bi, b) in self.batches.iter().enumerate() {
            if b.task_type.index() >= self.task_types.len() {
                return Err(CoreError::DanglingReference {
                    table: "task_types",
                    index: b.task_type.index(),
                    len: self.task_types.len(),
                });
            }
            if b.sampled && b.html.is_none() {
                return Err(CoreError::SampledBatchWithoutHtml { batch: bi });
            }
        }
        for (ii, inst) in self.instances.iter().enumerate() {
            if inst.batch.index() >= self.batches.len() {
                return Err(CoreError::DanglingReference {
                    table: "batches",
                    index: inst.batch.index(),
                    len: self.batches.len(),
                });
            }
            if inst.worker.index() >= self.workers.len() {
                return Err(CoreError::DanglingReference {
                    table: "workers",
                    index: inst.worker.index(),
                    len: self.workers.len(),
                });
            }
            if inst.end < inst.start {
                return Err(CoreError::NegativeDuration { instance: ii });
            }
            if !(0.0..=1.0).contains(&inst.trust) || inst.trust.is_nan() {
                return Err(CoreError::TrustOutOfRange { instance: ii, value: inst.trust });
            }
        }
        Ok(())
    }
}

/// Compressed-sparse-row adjacency: for each of `n` keys, the list of row
/// indices mapping to it, in stable (row) order.
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<u32>,
    rows: Vec<u32>,
}

impl Csr {
    /// Builds by counting sort: `key(i)` gives the bucket of row `i`.
    pub fn build(n_keys: usize, n_rows: usize, key: impl Fn(usize) -> usize) -> Csr {
        let mut counts = vec![0u32; n_keys + 1];
        for i in 0..n_rows {
            counts[key(i) + 1] += 1;
        }
        for k in 0..n_keys {
            counts[k + 1] += counts[k];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut rows = vec![0u32; n_rows];
        for i in 0..n_rows {
            let k = key(i);
            rows[cursor[k] as usize] = i as u32;
            cursor[k] += 1;
        }
        Csr { offsets, rows }
    }

    /// Rows mapped to `key`.
    #[inline]
    pub fn get(&self, key: usize) -> &[u32] {
        &self.rows[self.offsets[key] as usize..self.offsets[key + 1] as usize]
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when there are no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Derived navigation indexes over a [`Dataset`].
#[derive(Debug, Clone)]
pub struct DatasetIndex {
    by_batch: Csr,
    by_worker: Csr,
    batches_by_type: Csr,
}

impl DatasetIndex {
    /// Instance row indices belonging to `batch`.
    pub fn instances_of_batch(&self, batch: BatchId) -> impl Iterator<Item = InstanceId> + '_ {
        self.by_batch.get(batch.index()).iter().map(|&r| InstanceId::new(r))
    }

    /// Instance row indices performed by `worker`.
    pub fn instances_of_worker(&self, worker: WorkerId) -> impl Iterator<Item = InstanceId> + '_ {
        self.by_worker.get(worker.index()).iter().map(|&r| InstanceId::new(r))
    }

    /// Batch row indices instantiating `task_type`.
    pub fn batches_of_type(&self, tt: TaskTypeId) -> impl Iterator<Item = BatchId> + '_ {
        self.batches_by_type.get(tt.index()).iter().map(|&r| BatchId::new(r))
    }

    /// Number of instances in `batch`.
    pub fn batch_size(&self, batch: BatchId) -> usize {
        self.by_batch.get(batch.index()).len()
    }

    /// Number of instances performed by `worker`.
    pub fn worker_load(&self, worker: WorkerId) -> usize {
        self.by_worker.get(worker.index()).len()
    }
}

/// Headline dataset counts (paper §2.2).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DatasetSummary {
    /// Number of labor sources.
    pub sources: usize,
    /// Number of countries with at least one registered worker row.
    pub countries: usize,
    /// Number of workers.
    pub workers: usize,
    /// Distinct task types with at least one batch.
    pub distinct_tasks: usize,
    /// Distinct task types with at least one *sampled* batch.
    pub distinct_tasks_sampled: usize,
    /// Total batches.
    pub batches: usize,
    /// Batches inside the fully observed sample.
    pub batches_sampled: usize,
    /// Total task instances (sampled batches only carry instances).
    pub instances: usize,
    /// Earliest batch creation time.
    pub time_min: Option<Timestamp>,
    /// Latest activity time.
    pub time_max: Option<Timestamp>,
}

/// Incremental, validating constructor for [`Dataset`].
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    ds: Dataset,
    arena: HtmlArena,
}

impl DatasetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a source, returning its id.
    pub fn add_source(&mut self, source: Source) -> SourceId {
        self.ds.sources.push(source);
        SourceId::from_usize(self.ds.sources.len() - 1)
    }

    /// Appends a country, returning its id.
    pub fn add_country(&mut self, name: impl Into<String>) -> CountryId {
        self.ds.countries.push(Country::new(name));
        CountryId::from_usize(self.ds.countries.len() - 1)
    }

    /// Appends a worker, returning its id.
    pub fn add_worker(&mut self, worker: Worker) -> WorkerId {
        self.ds.workers.push(worker);
        WorkerId::from_usize(self.ds.workers.len() - 1)
    }

    /// Appends a task type, returning its id.
    pub fn add_task_type(&mut self, tt: TaskType) -> TaskTypeId {
        self.ds.task_types.push(tt);
        TaskTypeId::from_usize(self.ds.task_types.len() - 1)
    }

    /// Appends a batch, returning its id. Batch HTML is routed through the
    /// builder's [`HtmlArena`], so re-issued identical pages share storage.
    pub fn add_batch(&mut self, mut batch: Batch) -> BatchId {
        if let Some(html) = batch.html.take() {
            batch.html = Some(self.arena.intern(html));
        }
        self.ds.batches.push(batch);
        BatchId::from_usize(self.ds.batches.len() - 1)
    }

    /// Appends a task instance, returning its id.
    pub fn add_instance(&mut self, inst: TaskInstance) -> InstanceId {
        self.ds.instances.push(inst);
        InstanceId::from_usize(self.ds.instances.len() - 1)
    }

    /// Reserves capacity in the instance table (the hot one).
    pub fn reserve_instances(&mut self, additional: usize) {
        self.ds.instances.reserve(additional);
    }

    /// Creation time of an already-added batch. Panics when `batch` was not
    /// produced by this builder (used by [`crate::fixture`] to express
    /// instance times as batch-relative offsets).
    pub fn batch_created_at(&self, batch: BatchId) -> Timestamp {
        self.ds.batches[batch.index()].created_at
    }

    /// Distinct HTML pages interned so far (diagnostics).
    pub fn distinct_html(&self) -> usize {
        self.arena.len()
    }

    /// Validates and returns the dataset.
    pub fn finish(self) -> Result<Dataset> {
        self.ds.validate()?;
        Ok(self.ds)
    }

    /// Returns the dataset without validation (for trusted bulk loads;
    /// prefer [`DatasetBuilder::finish`]).
    pub fn finish_unchecked(self) -> Dataset {
        self.ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Goal;

    fn tiny() -> Dataset {
        let mut b = DatasetBuilder::new();
        let s = b.add_source(Source::new("neodev", crate::worker::SourceKind::Dedicated));
        let c = b.add_country("USA");
        let w1 = b.add_worker(Worker::new(s, c));
        let w2 = b.add_worker(Worker::new(s, c));
        let tt = b.add_task_type(TaskType::new("label cats").with_goal(Goal::QualityAssurance));
        let t0 = Timestamp::from_ymd(2015, 2, 1);
        let batch = b.add_batch(Batch::new(tt, t0).with_html("<p>cat?</p>"));
        for (w, offset, ans) in [(w1, 60, 0u16), (w2, 120, 0), (w1, 300, 1)] {
            b.add_instance(TaskInstance {
                batch,
                item: ItemId::new(if ans == 1 { 1 } else { 0 }),
                worker: w,
                start: t0 + Duration::from_secs(offset),
                end: t0 + Duration::from_secs(offset + 30),
                trust: 0.9,
                answer: Answer::Choice(ans),
            });
        }
        b.finish().unwrap()
    }

    #[test]
    fn builder_produces_consistent_dataset() {
        let ds = tiny();
        assert_eq!(ds.instances.len(), 3);
        assert_eq!(ds.summary().distinct_tasks, 1);
        assert_eq!(ds.summary().batches_sampled, 1);
    }

    #[test]
    fn row_views_match_pushed_rows() {
        let ds = tiny();
        let first = ds.instances.row(0);
        assert_eq!(first.worker, WorkerId::new(0));
        assert_eq!(first.answer, &Answer::Choice(0));
        assert_eq!(first.to_owned().work_time(), Duration::from_secs(30));
        assert_eq!(ds.instance(InstanceId::new(2)).item, ItemId::new(1));
        assert!(ds.instances.get(3).is_none());
        let via_iter: Vec<_> = ds.instances.iter().map(|r| r.worker).collect();
        assert_eq!(via_iter, ds.instances.worker_col());
    }

    #[test]
    fn columns_roundtrip_through_from_iterator() {
        let ds = tiny();
        let rows: Vec<TaskInstance> = ds.instances.iter().map(|r| r.to_owned()).collect();
        let rebuilt: InstanceColumns = rows.into_iter().collect();
        assert_eq!(rebuilt, ds.instances);
    }

    #[test]
    fn mutation_counter_tracks_row_visible_changes_only() {
        let ds = tiny();
        let mut cols = ds.instances.clone();
        let stamp = cols.mutation_count();
        cols.reserve(16); // capacity-only: not a row-visible change
        assert_eq!(cols.mutation_count(), stamp);
        cols.set_trust(0, 0.5);
        assert!(cols.mutation_count() > stamp);
        let stamp = cols.mutation_count();
        cols.push(ds.instances.row(0).to_owned());
        assert!(cols.mutation_count() > stamp);
        let stamp = cols.mutation_count();
        cols.truncate(2);
        assert!(cols.mutation_count() > stamp);
        assert_eq!(cols.len(), 2);
        // The counter never participates in equality.
        assert_eq!(cols.clone_range(0..2), cols);
    }

    #[test]
    fn extend_from_and_clone_range_copy_rows_in_order() {
        let ds = tiny();
        let prefix = ds.instances.clone_range(0..2);
        assert_eq!(prefix.len(), 2);
        assert_eq!(prefix.row(1).to_owned(), ds.instances.row(1).to_owned());
        let mut grown = prefix.clone();
        grown.extend_from(&ds.instances, 2..3);
        assert_eq!(grown, ds.instances);
        assert_eq!(grown.clone_range(0..0).len(), 0);
    }

    #[test]
    fn validation_catches_dangling_worker() {
        let mut ds = tiny();
        ds.instances.set_worker(0, WorkerId::new(99));
        assert!(matches!(
            ds.validate(),
            Err(CoreError::DanglingReference { table: "workers", .. })
        ));
    }

    #[test]
    fn validation_catches_negative_duration() {
        let mut ds = tiny();
        let start = ds.instances.row(1).start;
        ds.instances.set_end(1, start - Duration::from_secs(1));
        assert_eq!(ds.validate(), Err(CoreError::NegativeDuration { instance: 1 }));
    }

    #[test]
    fn validation_catches_bad_trust() {
        let mut ds = tiny();
        ds.instances.set_trust(2, 1.5);
        assert!(matches!(ds.validate(), Err(CoreError::TrustOutOfRange { instance: 2, .. })));
        ds.instances.set_trust(2, f32::NAN);
        assert!(matches!(ds.validate(), Err(CoreError::TrustOutOfRange { .. })));
    }

    #[test]
    fn validation_catches_sampled_batch_without_html() {
        let mut ds = tiny();
        ds.batches[0].html = None;
        assert_eq!(ds.validate(), Err(CoreError::SampledBatchWithoutHtml { batch: 0 }));
    }

    #[test]
    fn pickup_and_work_time() {
        let ds = tiny();
        let inst = ds.instances.row(0);
        assert_eq!(ds.pickup_time(inst), Duration::from_secs(60));
        assert_eq!(inst.work_time(), Duration::from_secs(30));
    }

    #[test]
    fn html_is_interned_across_batches() {
        let mut b = DatasetBuilder::new();
        let tt = b.add_task_type(TaskType::new("t"));
        let t0 = Timestamp::from_ymd(2015, 2, 1);
        let page = "<p>same page</p>".repeat(10);
        let b1 = b.add_batch(Batch::new(tt, t0).with_html(page.clone()));
        let b2 = b.add_batch(Batch::new(tt, t0).with_html(page.clone()));
        let b3 = b.add_batch(Batch::new(tt, t0).with_html("<p>other</p>"));
        assert_eq!(b.distinct_html(), 2, "two distinct pages across three batches");
        let ds = b.finish().unwrap();
        let h1 = ds.batch(b1).html.clone().unwrap();
        let h2 = ds.batch(b2).html.clone().unwrap();
        let h3 = ds.batch(b3).html.clone().unwrap();
        assert!(Arc::ptr_eq(&h1, &h2), "identical pages share one allocation");
        assert!(!Arc::ptr_eq(&h1, &h3));
    }

    #[test]
    fn index_navigation() {
        let ds = tiny();
        let idx = ds.index();
        assert_eq!(idx.batch_size(BatchId::new(0)), 3);
        assert_eq!(idx.worker_load(WorkerId::new(0)), 2);
        assert_eq!(idx.worker_load(WorkerId::new(1)), 1);
        let batches: Vec<_> = idx.batches_of_type(TaskTypeId::new(0)).collect();
        assert_eq!(batches, vec![BatchId::new(0)]);
        // CSR preserves row order within a bucket.
        let rows: Vec<_> = idx.instances_of_batch(BatchId::new(0)).collect();
        assert_eq!(rows, vec![InstanceId::new(0), InstanceId::new(1), InstanceId::new(2)]);
    }

    #[test]
    fn csr_handles_empty_buckets() {
        let csr = Csr::build(3, 2, |i| i * 2); // keys 0 and 2; key 1 empty
        assert_eq!(csr.get(0), &[0]);
        assert_eq!(csr.get(1), &[] as &[u32]);
        assert_eq!(csr.get(2), &[1]);
        assert_eq!(csr.len(), 3);
    }

    #[test]
    fn index_handles_empty_batch_and_idle_worker_and_bare_type() {
        // Boundaries the columnar swap must not break: a batch with zero
        // instances, a worker who never worked, a task type with no batches.
        let mut b = DatasetBuilder::new();
        let s = b.add_source(Source::new("s", crate::worker::SourceKind::Dedicated));
        let c = b.add_country("X");
        let worked = b.add_worker(Worker::new(s, c));
        let idle = b.add_worker(Worker::new(s, c));
        let tt_used = b.add_task_type(TaskType::new("used"));
        let tt_bare = b.add_task_type(TaskType::new("bare"));
        let t0 = Timestamp::from_ymd(2015, 3, 1);
        let full = b.add_batch(Batch::new(tt_used, t0).with_html("<p/>"));
        let empty = b.add_batch(Batch::new(tt_used, t0).with_html("<p/>"));
        b.add_instance(TaskInstance {
            batch: full,
            item: ItemId::new(0),
            worker: worked,
            start: t0,
            end: t0 + Duration::from_secs(10),
            trust: 1.0,
            answer: Answer::Choice(0),
        });
        let ds = b.finish().unwrap();
        let idx = ds.index();
        assert_eq!(idx.batch_size(empty), 0);
        assert_eq!(idx.instances_of_batch(empty).count(), 0);
        assert_eq!(idx.worker_load(idle), 0);
        assert_eq!(idx.instances_of_worker(idle).count(), 0);
        assert_eq!(idx.batches_of_type(tt_bare).count(), 0);
        assert_eq!(idx.batches_of_type(tt_used).count(), 2);
        assert_eq!(idx.worker_load(worked), 1);
    }

    #[test]
    fn summary_time_range() {
        let ds = tiny();
        let s = ds.summary();
        assert_eq!(s.time_min.unwrap(), Timestamp::from_ymd(2015, 2, 1));
        assert!(s.time_max.unwrap() > s.time_min.unwrap());
    }

    #[test]
    fn empty_dataset_is_valid() {
        let ds = DatasetBuilder::new().finish().unwrap();
        assert_eq!(ds.summary().instances, 0);
        assert_eq!(ds.time_min(), None);
        assert_eq!(ds.time_max(), None);
    }
}
