//! Collision-resistant derivation of per-stream RNG seeds.
//!
//! The simulator and analytics fan work out over batches, types, and
//! clusters; to keep results bit-identical at any thread count, each unit
//! of work draws from its own RNG stream derived from `(root seed, stream
//! index)` instead of sharing one sequential generator. The derivation
//! must be collision-resistant: ad-hoc mixes like `seed ^ (i << 20) | tag`
//! collide for many `(seed, i, tag)` combinations and silently correlate
//! streams.

/// One step of the splitmix64 output function (Steele, Lea, Flood 2014).
///
/// A bijective finalizer on `u64` with full avalanche: every input bit
/// flips every output bit with probability ~1/2.
#[inline]
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of stream `stream` from `root`.
///
/// Equivalent to advancing a splitmix64 generator seeded at `root` by
/// `stream + 1` golden-ratio increments and taking one output: distinct
/// `(root, stream)` pairs map to distinct internal states before the
/// bijective mix, so streams never coincide for a fixed root, and nearby
/// roots/streams decorrelate fully.
///
/// Chain calls for domain separation: derive one seed per subsystem from
/// the run's root seed, then one per work unit from the subsystem seed —
/// `stream_seed(stream_seed(root, DOMAIN), index)`.
#[must_use]
#[inline]
pub fn stream_seed(root: u64, stream: u64) -> u64 {
    splitmix64_mix(root.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_distinct_for_fixed_root() {
        let mut seen = HashSet::new();
        for s in 0..100_000u64 {
            assert!(seen.insert(stream_seed(2017, s)), "collision at stream {s}");
        }
    }

    #[test]
    fn nearby_roots_decorrelate() {
        // The old `seed ^ (i << 20) | tag` mix collided trivially for
        // nearby seeds; the mixed derivation must not.
        let mut seen = HashSet::new();
        for root in 0..1_000u64 {
            for s in 0..100u64 {
                assert!(seen.insert(stream_seed(root, s)), "collision at ({root}, {s})");
            }
        }
    }

    #[test]
    fn chained_domains_do_not_collide() {
        let root = 42;
        let a = stream_seed(root, 0);
        let b = stream_seed(root, 1);
        let mut seen = HashSet::new();
        for s in 0..10_000u64 {
            seen.insert(stream_seed(a, s));
            seen.insert(stream_seed(b, s));
        }
        assert_eq!(seen.len(), 20_000, "domain chains overlap");
    }

    #[test]
    fn deterministic() {
        assert_eq!(stream_seed(7, 3), stream_seed(7, 3));
        assert_ne!(stream_seed(7, 3), stream_seed(7, 4));
        assert_ne!(stream_seed(7, 3), stream_seed(8, 3));
    }
}
