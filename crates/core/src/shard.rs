//! Deterministic partitioning of the instance store into contiguous,
//! chunk-aligned shards.
//!
//! A shard is a horizontal slice of [`InstanceColumns`]: shard `k` owns
//! global rows `[k · shard_rows, (k+1) · shard_rows)` (the last shard may
//! be short). Two invariants make shard count — like thread count — a
//! pure performance knob that can never leak into results:
//!
//! 1. **Chunk alignment.** `shard_rows` is always a multiple of
//!    [`ScanPass::CHUNK`](crate::query::ScanPass::CHUNK). The fused scan
//!    folds rows into fixed-size chunk accumulators and merges them in
//!    global chunk order; aligned shard boundaries mean a sharded table
//!    has *exactly* the same chunk decomposition as the monolithic one,
//!    so every float is added in the same order and the results are
//!    bit-identical at any shard count.
//! 2. **Determinism of the plan.** [`ShardPlan::new`] is a pure function
//!    of `(n_rows, requested_shards)` — no host property participates —
//!    so the same config always produces the same shard layout, on disk
//!    and in memory.
//!
//! The plan may produce *fewer* shards than requested: a table shorter
//! than `requested · CHUNK` rows cannot be cut into `requested` aligned
//! non-empty pieces. Callers treat the request as an upper bound.

use crate::dataset::{InstanceColumns, InstanceRef, TaskInstance};
use crate::query::ScanPass;

/// Receives completed, chunk-aligned shards one at a time, in ascending
/// base order — the streaming-build counterpart of
/// [`ShardedColumns::iter_shards`].
///
/// Producers (the simulator's shard-flushing assignment loop, a snapshot
/// reader replaying sections) call [`flush`](Self::flush) once per shard
/// with the shard's first global row and its columns, then drop the
/// columns — so a producer-plus-sink pipeline never holds more than one
/// shard of instances. Sinks that cannot fail (in-memory accumulation)
/// use [`std::convert::Infallible`] as their error; fallible sinks (an
/// incremental snapshot writer) surface IO errors to the producer.
///
/// The contract mirrors [`ScanPass::run_stream`](crate::query::ScanPass):
/// bases must be `CHUNK` multiples and arrive contiguously in ascending
/// order, so a sink folding into scan accumulators reproduces the
/// monolithic chunk decomposition — and every float bit — exactly.
pub trait ShardSink {
    /// Error surfaced to the producer, aborting the stream.
    type Error;

    /// Accepts the completed shard whose first row is global row `base`.
    fn flush(&mut self, base: usize, shard: &InstanceColumns) -> Result<(), Self::Error>;
}

impl<S: ShardSink + ?Sized> ShardSink for &mut S {
    type Error = S::Error;

    fn flush(&mut self, base: usize, shard: &InstanceColumns) -> Result<(), Self::Error> {
        (**self).flush(base, shard)
    }
}

/// A deterministic, chunk-aligned partition of `n_rows` into contiguous
/// shards of `shard_rows` rows each (last shard short).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    n_rows: usize,
    shard_rows: usize,
}

impl ShardPlan {
    /// Plans `n_rows` into at most `requested` shards, each a multiple of
    /// [`ScanPass::CHUNK`] rows (except the last, which takes the
    /// remainder). `requested` is clamped to at least 1.
    pub fn new(n_rows: usize, requested: usize) -> ShardPlan {
        let requested = requested.max(1);
        // Smallest chunk-aligned shard size that covers n_rows in at most
        // `requested` pieces.
        let target = n_rows.div_ceil(requested).max(1);
        let shard_rows = target.div_ceil(ScanPass::CHUNK) * ScanPass::CHUNK;
        ShardPlan { n_rows, shard_rows }
    }

    /// A single-shard plan (the monolithic layout).
    pub fn single(n_rows: usize) -> ShardPlan {
        ShardPlan { n_rows, shard_rows: n_rows.div_ceil(ScanPass::CHUNK).max(1) * ScanPass::CHUNK }
    }

    /// Total rows covered.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Rows per shard (always a [`ScanPass::CHUNK`] multiple).
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Number of shards (0 for an empty table).
    pub fn n_shards(&self) -> usize {
        self.n_rows.div_ceil(self.shard_rows)
    }

    /// Global row range of shard `k`.
    ///
    /// # Panics
    /// When `k >= n_shards()`.
    pub fn bounds(&self, k: usize) -> std::ops::Range<usize> {
        assert!(k < self.n_shards(), "shard {k} out of {}", self.n_shards());
        let lo = k * self.shard_rows;
        lo..((lo + self.shard_rows).min(self.n_rows))
    }

    /// Iterates every shard's global row range, in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        (0..self.n_shards()).map(|k| self.bounds(k))
    }

    /// The shard a global row falls into.
    pub fn shard_of(&self, row: usize) -> usize {
        row / self.shard_rows
    }
}

/// An owning, sharded instance store: [`InstanceColumns`] split into
/// contiguous chunk-aligned pieces per a [`ShardPlan`], still addressable
/// by global row through the same [`InstanceRef`] row view.
///
/// This is the layout the sharded snapshot format mirrors on disk (one
/// independently checksummed section per shard) and the unit the
/// streaming scan ([`ScanPass::run_stream`](crate::query::ScanPass))
/// consumes one piece at a time for bounded peak memory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardedColumns {
    shard_rows: usize,
    n_rows: usize,
    shards: Vec<InstanceColumns>,
}

impl ShardedColumns {
    /// An empty store laid out per `plan`, ready for [`push`](Self::push).
    pub fn with_plan(plan: ShardPlan) -> ShardedColumns {
        ShardedColumns { shard_rows: plan.shard_rows(), n_rows: 0, shards: Vec::new() }
    }

    /// Splits a monolithic store into at most `requested` chunk-aligned
    /// shards. Total order is preserved: concatenating the shards yields
    /// the input exactly.
    pub fn split(cols: InstanceColumns, requested: usize) -> ShardedColumns {
        let plan = ShardPlan::new(cols.len(), requested);
        let mut shards = Vec::with_capacity(plan.n_shards());
        let n_rows = cols.len();
        let mut remaining = cols;
        while remaining.len() > plan.shard_rows() {
            let tail = remaining.split_off(plan.shard_rows());
            shards.push(remaining);
            remaining = tail;
        }
        if !remaining.is_empty() {
            shards.push(remaining);
        }
        ShardedColumns { shard_rows: plan.shard_rows(), n_rows, shards }
    }

    /// Reassembles the monolithic store, preserving global row order.
    pub fn concat(self) -> InstanceColumns {
        let mut out = InstanceColumns::new();
        out.reserve(self.n_rows);
        for mut shard in self.shards {
            out.append(&mut shard);
        }
        out
    }

    /// Total rows across all shards.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Rows per full shard (a [`ScanPass::CHUNK`] multiple).
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// The plan this store is laid out under.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan { n_rows: self.n_rows, shard_rows: self.shard_rows }
    }

    /// Shard `k`'s columns.
    pub fn shard(&self, k: usize) -> &InstanceColumns {
        &self.shards[k]
    }

    /// Global row index of shard `k`'s first row.
    pub fn base(&self, k: usize) -> usize {
        k * self.shard_rows
    }

    /// Row view at *global* position `i`. Panics when out of bounds.
    pub fn row(&self, i: usize) -> InstanceRef<'_> {
        self.shards[i / self.shard_rows].row(i % self.shard_rows)
    }

    /// Row view at global position `i`, or `None` when out of bounds.
    pub fn get(&self, i: usize) -> Option<InstanceRef<'_>> {
        (i < self.n_rows).then(|| self.row(i))
    }

    /// Appends one instance to the tail, opening a new shard whenever the
    /// current one reaches `shard_rows` — the streaming-build entry point
    /// (simulation fills shards as drafts arrive instead of materializing
    /// one monolithic table first).
    pub fn push(&mut self, inst: TaskInstance) {
        if self.n_rows == self.shards.len() * self.shard_rows {
            self.shards.push(InstanceColumns::new());
        }
        self.shards.last_mut().expect("shard just ensured").push(inst);
        self.n_rows += 1;
    }

    /// Iterates `(base_row, shard)` pairs in shard order.
    pub fn iter_shards(&self) -> impl Iterator<Item = (usize, &InstanceColumns)> + '_ {
        self.shards.iter().enumerate().map(|(k, s)| (k * self.shard_rows, s))
    }

    /// Iterates row views in global row order.
    pub fn iter(&self) -> impl Iterator<Item = InstanceRef<'_>> + '_ {
        self.shards.iter().flat_map(|s| s.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Answer;
    use crate::id::{BatchId, ItemId, WorkerId};
    use crate::time::{Duration, Timestamp};

    const CHUNK: usize = ScanPass::CHUNK;

    fn cols(rows: usize) -> InstanceColumns {
        let t0 = Timestamp::from_ymd(2015, 1, 1);
        let mut c = InstanceColumns::new();
        c.reserve(rows);
        for i in 0..rows {
            let start = t0 + Duration::from_secs(i as i64);
            c.push(TaskInstance {
                batch: BatchId::new((i % 7) as u32),
                item: ItemId::new(i as u32),
                worker: WorkerId::new((i % 13) as u32),
                start,
                end: start + Duration::from_secs(30),
                trust: (i % 100) as f32 / 100.0,
                answer: if i % 5 == 0 {
                    Answer::Text(format!("t{i}"))
                } else {
                    Answer::Choice((i % 3) as u16)
                },
            });
        }
        c
    }

    #[test]
    fn plan_is_chunk_aligned_and_covers_all_rows() {
        for n_rows in [0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 10 * CHUNK + 17, 123_456] {
            for requested in [1, 2, 3, 8, 16, 1000] {
                let plan = ShardPlan::new(n_rows, requested);
                assert_eq!(plan.shard_rows() % CHUNK, 0, "rows={n_rows} req={requested}");
                assert!(plan.n_shards() <= requested, "request is an upper bound");
                let covered: usize = plan.ranges().map(|r| r.len()).sum();
                assert_eq!(covered, n_rows);
                // Contiguous and ordered.
                let mut next = 0;
                for r in plan.ranges() {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
            }
        }
    }

    #[test]
    fn plan_is_deterministic_and_empty_is_zero_shards() {
        assert_eq!(ShardPlan::new(50_000, 4), ShardPlan::new(50_000, 4));
        assert_eq!(ShardPlan::new(0, 8).n_shards(), 0);
        assert_eq!(ShardPlan::single(3 * CHUNK + 5).n_shards(), 1);
    }

    #[test]
    fn split_concat_round_trips() {
        for rows in [0, 1, CHUNK, 3 * CHUNK + 100] {
            for requested in [1, 2, 3, 8] {
                let original = cols(rows);
                let sharded = ShardedColumns::split(original.clone(), requested);
                assert_eq!(sharded.len(), rows);
                assert_eq!(sharded.concat(), original, "rows={rows} req={requested}");
            }
        }
    }

    #[test]
    fn global_row_view_crosses_shard_boundaries() {
        let rows = 2 * CHUNK + 57;
        let original = cols(rows);
        let sharded = ShardedColumns::split(original.clone(), 3);
        assert!(sharded.n_shards() > 1, "test must exercise a boundary");
        for i in [0, CHUNK - 1, CHUNK, rows - 1] {
            assert_eq!(sharded.row(i).to_owned(), original.row(i).to_owned(), "row {i}");
        }
        assert!(sharded.get(rows).is_none());
        let via_iter: Vec<_> = sharded.iter().map(|r| r.to_owned()).collect();
        let direct: Vec<_> = original.iter().map(|r| r.to_owned()).collect();
        assert_eq!(via_iter, direct);
    }

    #[test]
    fn streaming_push_matches_split() {
        let rows = CHUNK + 99;
        let original = cols(rows);
        let plan = ShardPlan::new(rows, 2);
        let mut streamed = ShardedColumns::with_plan(plan);
        for r in original.iter() {
            streamed.push(r.to_owned());
        }
        assert_eq!(streamed, ShardedColumns::split(original, 2));
        assert_eq!(streamed.n_shards(), plan.n_shards());
    }

    #[test]
    fn bases_and_shard_lookup_agree() {
        let sharded = ShardedColumns::split(cols(3 * CHUNK + 1), 4);
        let plan = sharded.plan();
        for (k, (base, shard)) in sharded.iter_shards().enumerate() {
            assert_eq!(base, sharded.base(k));
            assert_eq!(base % CHUNK, 0, "shard bases stay chunk-aligned");
            assert_eq!(shard.len(), plan.bounds(k).len());
            assert_eq!(plan.shard_of(base), k);
        }
    }
}
