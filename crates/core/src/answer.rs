//! Worker answers and the exact-agreement relation the paper's
//! disagreement score is built on (§4.1 "Error: Disagreement Score").

use std::fmt;

/// A worker's response to a task question.
///
/// The paper's metric requires only an *exact-match* equality test between
/// two answers; it deliberately rejects edit-distance/partial credit since
/// "crowdsourcing requesters require high exact agreement … so that answers
/// can be easily aggregated via conventional majority vote" (§4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Answer {
    /// A selection from a closed set of alternatives (radio buttons,
    /// check boxes, drop-downs). The value is the alternative's index.
    Choice(u16),
    /// A free-form textual response typed into a text box.
    Text(String),
    /// The worker abandoned or skipped the question.
    Skipped,
}

impl Answer {
    /// Exact-match agreement, as defined in §4.1: a pair of workers scores
    /// 0 if their answers are identical and 1 otherwise. Skipped answers
    /// never agree with anything, including other skips — a skip carries no
    /// signal of consensus.
    pub fn agrees_with(&self, other: &Answer) -> bool {
        match (self, other) {
            (Answer::Choice(a), Answer::Choice(b)) => a == b,
            (Answer::Text(a), Answer::Text(b)) => a == b,
            (Answer::Skipped, _) | (_, Answer::Skipped) => false,
            _ => false,
        }
    }

    /// True for free-form textual responses (used when pruning highly
    /// subjective tasks, §4.1).
    pub fn is_textual(&self) -> bool {
        matches!(self, Answer::Text(_))
    }

    /// Pairwise disagreement contribution: `0.0` on agreement, `1.0`
    /// otherwise (§4.1).
    pub fn disagreement(&self, other: &Answer) -> f64 {
        if self.agrees_with(other) {
            0.0
        } else {
            1.0
        }
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Answer::Choice(i) => write!(f, "choice:{i}"),
            Answer::Text(t) => write!(f, "text:{t}"),
            Answer::Skipped => f.write_str("skipped"),
        }
    }
}

/// Average pairwise disagreement across a set of answers to the *same item*
/// (§4.1): all worker pairs are compared; identical answers contribute 0,
/// differing answers 1. Returns `None` when fewer than two answers exist —
/// disagreement is undefined without a pair.
pub fn item_disagreement(answers: &[Answer]) -> Option<f64> {
    item_disagreement_impl(answers.iter())
}

/// [`item_disagreement`] over borrowed answers, for callers that index
/// answers by item without owning them (the enrichment hot loop) — avoids
/// cloning each answer just to build a contiguous slice.
pub fn item_disagreement_ref(answers: &[&Answer]) -> Option<f64> {
    item_disagreement_impl(answers.iter().copied())
}

fn item_disagreement_impl<'a>(answers: impl ExactSizeIterator<Item = &'a Answer>) -> Option<f64> {
    let n = answers.len();
    if n < 2 {
        return None;
    }
    // O(k·n) via counting identical answers instead of O(n²) pair loops:
    // pairs agreeing = Σ_v C(count_v, 2) over distinct non-skip values.
    let mut counts: Vec<(&Answer, u64)> = Vec::new();
    let mut skips = 0u64;
    for a in answers {
        if matches!(a, Answer::Skipped) {
            skips += 1;
            continue;
        }
        match counts.iter_mut().find(|(v, _)| *v == a) {
            Some((_, c)) => *c += 1,
            None => counts.push((a, 1)),
        }
    }
    let total_pairs = (n as u64 * (n as u64 - 1)) / 2;
    let agreeing: u64 = counts.iter().map(|&(_, c)| c * (c - 1) / 2).sum();
    let _ = skips; // skips form only disagreeing pairs.
    Some((total_pairs - agreeing) as f64 / total_pairs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_semantics() {
        assert!(Answer::Choice(1).agrees_with(&Answer::Choice(1)));
        assert!(!Answer::Choice(1).agrees_with(&Answer::Choice(2)));
        assert!(Answer::Text("cat".into()).agrees_with(&Answer::Text("cat".into())));
        assert!(!Answer::Text("cat".into()).agrees_with(&Answer::Text("Cat".into())));
        assert!(!Answer::Choice(0).agrees_with(&Answer::Text("0".into())));
        assert!(!Answer::Skipped.agrees_with(&Answer::Skipped));
    }

    #[test]
    fn disagreement_is_indicator() {
        assert_eq!(Answer::Choice(3).disagreement(&Answer::Choice(3)), 0.0);
        assert_eq!(Answer::Choice(3).disagreement(&Answer::Choice(4)), 1.0);
    }

    #[test]
    fn item_disagreement_unanimous() {
        let answers = vec![Answer::Choice(1); 5];
        assert_eq!(item_disagreement(&answers), Some(0.0));
    }

    #[test]
    fn item_disagreement_total() {
        let answers: Vec<_> = (0..4).map(Answer::Choice).collect();
        assert_eq!(item_disagreement(&answers), Some(1.0));
    }

    #[test]
    fn item_disagreement_matches_pairwise_definition() {
        // 3 workers answer A, 2 answer B: pairs = 10, agreeing = C(3,2)+C(2,2) = 4.
        let mut answers = vec![Answer::Choice(0); 3];
        answers.extend(vec![Answer::Choice(1); 2]);
        let d = item_disagreement(&answers).unwrap();
        assert!((d - 6.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn item_disagreement_undefined_below_two() {
        assert_eq!(item_disagreement(&[]), None);
        assert_eq!(item_disagreement(&[Answer::Choice(1)]), None);
    }

    #[test]
    fn skips_always_disagree() {
        let answers = vec![Answer::Skipped, Answer::Skipped];
        assert_eq!(item_disagreement(&answers), Some(1.0));
        let mixed = vec![Answer::Choice(1), Answer::Skipped];
        assert_eq!(item_disagreement(&mixed), Some(1.0));
    }

    #[test]
    fn ref_variant_matches_owned() {
        let answers = vec![
            Answer::Choice(0),
            Answer::Choice(0),
            Answer::Choice(1),
            Answer::Text("x".into()),
            Answer::Skipped,
        ];
        let refs: Vec<&Answer> = answers.iter().collect();
        assert_eq!(item_disagreement_ref(&refs), item_disagreement(&answers));
        assert_eq!(item_disagreement_ref(&refs[..1]), None);
        assert_eq!(item_disagreement_ref(&[]), None);
    }

    #[test]
    fn textual_flag() {
        assert!(Answer::Text("x".into()).is_textual());
        assert!(!Answer::Choice(0).is_textual());
        assert!(!Answer::Skipped.is_textual());
    }

    #[test]
    fn display() {
        assert_eq!(Answer::Choice(2).to_string(), "choice:2");
        assert_eq!(Answer::Text("ok".into()).to_string(), "text:ok");
        assert_eq!(Answer::Skipped.to_string(), "skipped");
    }
}
